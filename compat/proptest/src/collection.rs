//! Collection strategies.

use crate::strategy::{Strategy, VecStrategy};
use std::ops::Range;

/// Generates `Vec`s whose length is drawn from `size` and whose elements
/// come from `element`.
pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
    assert!(size.start < size.end, "empty size range for collection::vec");
    VecStrategy { element, size }
}
