//! Generation of strings matching a small regex subset.
//!
//! Supported syntax — exactly what this workspace's property tests use,
//! plus the obvious neighbours:
//!
//! * literal characters and `\`-escapes (`\.`, `\\`, …)
//! * character classes `[a-z0-9 -~]` (ranges and singletons, no negation)
//! * `.` (any printable ASCII character)
//! * groups `( … )` with alternation `a|b`
//! * quantifiers `{n}`, `{m,n}`, `?`, `*` (capped at 8), `+` (capped at 8)
//!
//! Anything else panics loudly — better a failed test naming the
//! unsupported pattern than silently wrong generation.

use crate::TestRng;

#[derive(Debug, Clone)]
enum Node {
    Literal(char),
    /// Inclusive character ranges; a singleton is `(c, c)`.
    Class(Vec<(char, char)>),
    /// Any printable ASCII character (`.`).
    Dot,
    /// Alternatives, each a concatenation.
    Group(Vec<Vec<Node>>),
    /// `node{min,max}` with `max` inclusive.
    Repeat(Box<Node>, u32, u32),
}

struct Parser<'a> {
    pattern: &'a str,
    chars: std::iter::Peekable<std::str::Chars<'a>>,
}

impl<'a> Parser<'a> {
    fn new(pattern: &'a str) -> Self {
        Parser { pattern, chars: pattern.chars().peekable() }
    }

    fn fail(&self, what: &str) -> ! {
        panic!("unsupported regex strategy {:?}: {what}", self.pattern)
    }

    /// alternation := concat ('|' concat)*
    fn parse_alternation(&mut self) -> Vec<Vec<Node>> {
        let mut alternatives = vec![self.parse_concat()];
        while self.chars.peek() == Some(&'|') {
            self.chars.next();
            alternatives.push(self.parse_concat());
        }
        alternatives
    }

    /// concat := (atom quantifier?)*
    fn parse_concat(&mut self) -> Vec<Node> {
        let mut nodes = Vec::new();
        while let Some(&c) = self.chars.peek() {
            if c == ')' || c == '|' {
                break;
            }
            let atom = self.parse_atom();
            nodes.push(self.parse_quantifier(atom));
        }
        nodes
    }

    fn parse_atom(&mut self) -> Node {
        match self.chars.next() {
            Some('\\') => match self.chars.next() {
                Some(
                    c @ ('.' | '\\' | '[' | ']' | '(' | ')' | '{' | '}' | '?' | '*' | '+' | '|'
                    | '-'),
                ) => Node::Literal(c),
                Some('n') => Node::Literal('\n'),
                Some('t') => Node::Literal('\t'),
                Some(c) => self.fail(&format!("escape \\{c}")),
                None => self.fail("dangling escape"),
            },
            Some('[') => self.parse_class(),
            Some('(') => {
                let alternatives = self.parse_alternation();
                if self.chars.next() != Some(')') {
                    self.fail("unclosed group");
                }
                Node::Group(alternatives)
            }
            Some('.') => Node::Dot,
            Some(c @ ('{' | '}' | '?' | '*' | '+' | ']')) => {
                self.fail(&format!("metacharacter {c} in atom position"))
            }
            Some(c) => Node::Literal(c),
            None => self.fail("empty atom"),
        }
    }

    fn parse_class(&mut self) -> Node {
        let mut ranges = Vec::new();
        loop {
            let lo = match self.chars.next() {
                Some(']') => {
                    if ranges.is_empty() {
                        self.fail("empty character class");
                    }
                    return Node::Class(ranges);
                }
                Some('\\') => self.chars.next().unwrap_or_else(|| self.fail("dangling escape")),
                Some('^') if ranges.is_empty() => self.fail("negated class"),
                Some(c) => c,
                None => self.fail("unclosed character class"),
            };
            if self.chars.peek() == Some(&'-') {
                self.chars.next();
                match self.chars.peek() {
                    // Trailing '-' is a literal, e.g. `[a-]`.
                    Some(&']') | None => {
                        ranges.push((lo, lo));
                        ranges.push(('-', '-'));
                    }
                    Some(_) => {
                        let hi = self.chars.next().unwrap();
                        if hi < lo {
                            self.fail(&format!("inverted range {lo}-{hi}"));
                        }
                        ranges.push((lo, hi));
                    }
                }
            } else {
                ranges.push((lo, lo));
            }
        }
    }

    fn parse_quantifier(&mut self, atom: Node) -> Node {
        match self.chars.peek() {
            Some('?') => {
                self.chars.next();
                Node::Repeat(Box::new(atom), 0, 1)
            }
            Some('*') => {
                self.chars.next();
                Node::Repeat(Box::new(atom), 0, 8)
            }
            Some('+') => {
                self.chars.next();
                Node::Repeat(Box::new(atom), 1, 8)
            }
            Some('{') => {
                self.chars.next();
                let mut min = String::new();
                while matches!(self.chars.peek(), Some(c) if c.is_ascii_digit()) {
                    min.push(self.chars.next().unwrap());
                }
                let min: u32 = min.parse().unwrap_or_else(|_| self.fail("bad repetition count"));
                let max = match self.chars.next() {
                    Some('}') => min,
                    Some(',') => {
                        let mut max = String::new();
                        while matches!(self.chars.peek(), Some(c) if c.is_ascii_digit()) {
                            max.push(self.chars.next().unwrap());
                        }
                        if self.chars.next() != Some('}') {
                            self.fail("unclosed repetition");
                        }
                        max.parse().unwrap_or_else(|_| self.fail("open-ended repetition"))
                    }
                    _ => self.fail("unclosed repetition"),
                };
                if max < min {
                    self.fail("inverted repetition bounds");
                }
                Node::Repeat(Box::new(atom), min, max)
            }
            _ => atom,
        }
    }
}

fn emit(node: &Node, rng: &mut TestRng, out: &mut String) {
    match node {
        Node::Literal(c) => out.push(*c),
        Node::Dot => out.push((0x20u8 + rng.below(0x5f) as u8) as char),
        Node::Class(ranges) => {
            // Weight by range width so `[ -~]` is uniform over its span.
            let total: u64 = ranges.iter().map(|(lo, hi)| (*hi as u64 - *lo as u64) + 1).sum();
            let mut pick = rng.below(total);
            for (lo, hi) in ranges {
                let width = (*hi as u64 - *lo as u64) + 1;
                if pick < width {
                    out.push(char::from_u32(*lo as u32 + pick as u32).expect("valid char"));
                    return;
                }
                pick -= width;
            }
            unreachable!("pick within total");
        }
        Node::Group(alternatives) => {
            let alt = &alternatives[rng.below(alternatives.len() as u64) as usize];
            for n in alt {
                emit(n, rng, out);
            }
        }
        Node::Repeat(inner, min, max) => {
            let count = *min + rng.below((*max - *min + 1) as u64) as u32;
            for _ in 0..count {
                emit(inner, rng, out);
            }
        }
    }
}

/// Generates one string matching `pattern`.
pub fn generate_matching(pattern: &str, rng: &mut TestRng) -> String {
    let mut parser = Parser::new(pattern);
    let alternatives = parser.parse_alternation();
    if parser.chars.next().is_some() {
        parser.fail("trailing input (unbalanced ')' ?)");
    }
    let mut out = String::new();
    emit(&Node::Group(alternatives), rng, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::generate_matching;
    use crate::TestRng;

    fn rng() -> TestRng {
        TestRng::for_case("string::tests", 0)
    }

    #[test]
    fn classes_and_counts() {
        let mut rng = rng();
        for case in 0..200u64 {
            let mut rng_case = TestRng::for_case("classes", case);
            let s = generate_matching("[a-c]{0,3}", &mut rng_case);
            assert!(s.len() <= 3, "{s:?}");
            assert!(s.chars().all(|c| ('a'..='c').contains(&c)), "{s:?}");
            let t = generate_matching("[a-z]{1,6}", &mut rng);
            assert!((1..=6).contains(&t.len()), "{t:?}");
        }
    }

    #[test]
    fn printable_span_class() {
        for case in 0..200u64 {
            let mut rng = TestRng::for_case("span", case);
            let s = generate_matching("[ -~]{1,16}", &mut rng);
            assert!((1..=16).contains(&s.len()));
            assert!(s.bytes().all(|b| (0x20..=0x7e).contains(&b)), "{s:?}");
        }
    }

    #[test]
    fn optional_group_with_escape() {
        let mut saw_long = false;
        let mut saw_short = false;
        for case in 0..200u64 {
            let mut rng = TestRng::for_case("group", case);
            let s = generate_matching("[a-z]{1,6}(\\.[a-z]{1,6})?", &mut rng);
            if let Some((head, tail)) = s.split_once('.') {
                saw_long = true;
                assert!((1..=6).contains(&head.len()), "{s:?}");
                assert!((1..=6).contains(&tail.len()), "{s:?}");
            } else {
                saw_short = true;
                assert!((1..=6).contains(&s.len()), "{s:?}");
            }
        }
        assert!(saw_long && saw_short, "both group arms should occur");
    }

    #[test]
    fn alternation_and_exact_counts() {
        for case in 0..50u64 {
            let mut rng = TestRng::for_case("alt", case);
            let s = generate_matching("(ab|cd){2}", &mut rng);
            assert_eq!(s.len(), 4);
            assert!(s.as_bytes().chunks(2).all(|c| c == b"ab" || c == b"cd"), "{s:?}");
        }
    }

    #[test]
    #[should_panic(expected = "unsupported regex strategy")]
    fn negated_class_is_rejected() {
        let mut rng = rng();
        generate_matching("[^a]", &mut rng);
    }
}
