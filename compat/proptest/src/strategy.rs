//! Strategies: how values are generated from the [`TestRng`].

use crate::TestRng;
use std::marker::PhantomData;
use std::ops::Range;

/// A recipe for generating values of one type.
///
/// Unlike upstream proptest there is no value tree and no shrinking; a
/// strategy is just a deterministic function of the RNG stream.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values.
    fn prop_map<O, F>(self, mapper: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { strategy: self, mapper }
    }

    /// Erases the strategy's concrete type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy { inner: Box::new(self) }
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T> {
    inner: Box<dyn Strategy<Value = T>>,
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        self.inner.generate(rng)
    }
}

/// Always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The result of [`Strategy::prop_map`].
pub struct Map<S, F> {
    strategy: S,
    mapper: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.mapper)(self.strategy.generate(rng))
    }
}

/// Uniform choice between same-valued strategies ([`prop_oneof!`]).
///
/// [`prop_oneof!`]: crate::prop_oneof
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! of zero strategies");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.options.len() as u64) as usize;
        self.options[i].generate(rng)
    }
}

/// Types generatable over their whole domain via [`any`](crate::any).
pub trait Arbitrary {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for u128 {
    fn arbitrary(rng: &mut TestRng) -> u128 {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Arbitrary for i128 {
    fn arbitrary(rng: &mut TestRng) -> i128 {
        u128::arbitrary(rng) as i128
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    /// Finite floats over a wide but well-behaved range (no NaN/inf; the
    /// workspace's properties all assume ordinary numbers).
    fn arbitrary(rng: &mut TestRng) -> f64 {
        (rng.unit() - 0.5) * 2e9
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> f32 {
        f64::arbitrary(rng) as f32
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> char {
        // Printable ASCII keeps generated text XML-friendly.
        (0x20u8 + rng.below(0x5f) as u8) as char
    }
}

/// Strategy form of [`Arbitrary`], returned by [`any`](crate::any).
pub struct Any<T> {
    marker: PhantomData<fn() -> T>,
}

impl<T> Any<T> {
    pub(crate) fn new() -> Self {
        Any { marker: PhantomData }
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + (self.end - self.start) * rng.unit()
    }
}

/// String literals act as regex-subset strategies, as in upstream
/// proptest: `"[a-z]{1,6}"` generates matching strings.
impl Strategy for &'static str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        crate::string::generate_matching(self, rng)
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

/// The result of [`collection::vec`](crate::collection::vec).
pub struct VecStrategy<S> {
    pub(crate) element: S,
    pub(crate) size: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = self.size.clone().generate(rng);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}
