//! Offline stand-in for the `proptest` crate.
//!
//! Supports the subset this workspace's property tests use: the
//! [`proptest!`] macro with `#![proptest_config(..)]`, [`prop_oneof!`],
//! `prop_assert!`/`prop_assert_eq!`/`prop_assert_ne!`, [`Just`],
//! [`any`], range strategies, tuple strategies, regex-subset string
//! strategies (`"[a-z]{1,6}"` and friends), `prop_map`, and
//! `proptest::collection::vec`.
//!
//! Differences from upstream: cases are generated from a seed derived
//! from the test's name (deterministic across runs), and failures are
//! reported without shrinking — the failing inputs are printed as-is.

use std::fmt;

pub mod collection;
pub mod strategy;
pub mod string;

pub use strategy::{Any, BoxedStrategy, Just, Map, Strategy, Union, VecStrategy};

/// Deterministic RNG feeding all strategies; seeded per test and case.
#[derive(Debug, Clone)]
pub struct TestRng {
    inner: rand::rngs::StdRng,
}

impl TestRng {
    /// Derives a generator from a test identifier and case number, so
    /// each test gets a reproducible but distinct stream.
    pub fn for_case(test_id: &str, case: u64) -> Self {
        let mut seed: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_id.bytes() {
            seed ^= b as u64;
            seed = seed.wrapping_mul(0x100_0000_01b3);
        }
        seed ^= case.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        use rand::SeedableRng;
        TestRng { inner: rand::rngs::StdRng::seed_from_u64(seed) }
    }

    pub fn next_u64(&mut self) -> u64 {
        use rand::RngCore;
        self.inner.next_u64()
    }

    /// Uniform value in `[0, below)`.
    pub fn below(&mut self, below: u64) -> u64 {
        assert!(below > 0, "below(0)");
        use rand::Rng;
        self.inner.gen_range(0..below)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        use rand::Rng;
        self.inner.gen::<f64>()
    }
}

/// A failed property, produced by the `prop_assert*` macros.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError { message: message.into() }
    }

    /// Upstream-compatible alias.
    pub fn reject(message: impl Into<String>) -> Self {
        TestCaseError { message: message.into() }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for TestCaseError {}

/// Per-`proptest!` block configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Everything a property test usually imports.
pub mod prelude {
    pub use crate::strategy::{Any, BoxedStrategy, Just, Strategy, Union};
    pub use crate::{any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
    pub use crate::{ProptestConfig, TestCaseError, TestRng};
}

/// Strategy producing any value of `T` over its full domain.
pub fn any<T: strategy::Arbitrary>() -> Any<T> {
    strategy::Any::new()
}

/// Declares property tests. Each `arg in strategy` binding is generated
/// afresh for every case; the body runs once per case.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($config) $($rest)*);
    };
    (@with_config ($config:expr)
        $(
            #[test]
            fn $name:ident($($arg:ident in $strategy:expr),* $(,)?) $body:block
        )*
    ) => {
        $(
            #[test]
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                for __case in 0..config.cases as u64 {
                    let mut __rng = $crate::TestRng::for_case(
                        concat!(module_path!(), "::", stringify!($name)),
                        __case,
                    );
                    $(
                        let $arg = $crate::Strategy::generate(&($strategy), &mut __rng);
                    )*
                    let __inputs = format!(
                        concat!($(stringify!($arg), " = {:?}; "),*),
                        $(&$arg),*
                    );
                    let __outcome: ::std::result::Result<(), $crate::TestCaseError> =
                        (move || {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    if let ::std::result::Result::Err(err) = __outcome {
                        panic!(
                            "property '{}' failed at case {}:\n  {}\n  inputs: {}",
                            stringify!($name),
                            __case,
                            err,
                            __inputs,
                        );
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@with_config ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Picks uniformly between the given strategies (all with the same
/// `Value` type).
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strategy)),+])
    };
}

/// Fails the current case unless the condition holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Fails the current case unless the two values are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = &$left;
        let right = &$right;
        if !(*left == *right) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `left == right`\n  left: `{:?}`\n  right: `{:?}`",
                left, right
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let left = &$left;
        let right = &$right;
        if !(*left == *right) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    }};
}

/// Fails the current case if the two values are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let left = &$left;
        let right = &$right;
        if *left == *right {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `left != right`\n  both: `{:?}`",
                left
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let left = &$left;
        let right = &$right;
        if *left == *right {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    }};
}
