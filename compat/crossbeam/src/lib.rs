//! Offline stand-in for the `crossbeam` crate.
//!
//! Implements `crossbeam::channel`'s unbounded MPMC channel over a
//! `Mutex<VecDeque>` + `Condvar`. Clonable senders *and* receivers,
//! disconnect semantics on either side — the subset this workspace uses.

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex};

    struct Shared<T> {
        queue: Mutex<VecDeque<T>>,
        ready: Condvar,
        senders: AtomicUsize,
        receivers: AtomicUsize,
    }

    /// Error returned by [`Sender::send`] when all receivers are gone;
    /// carries the unsent value, like crossbeam's.
    pub struct SendError<T>(pub T);

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// all senders are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("receiving on an empty and disconnected channel")
        }
    }

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        Empty,
        Disconnected,
    }

    /// The sending half; clonable.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving half; clonable (competing consumers).
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            senders: AtomicUsize::new(1),
            receivers: AtomicUsize::new(1),
        });
        (Sender { shared: shared.clone() }, Receiver { shared })
    }

    impl<T> Sender<T> {
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            if self.shared.receivers.load(Ordering::SeqCst) == 0 {
                return Err(SendError(value));
            }
            let mut queue = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            queue.push_back(value);
            drop(queue);
            self.shared.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.senders.fetch_add(1, Ordering::SeqCst);
            Sender { shared: self.shared.clone() }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.shared.senders.fetch_sub(1, Ordering::SeqCst) == 1 {
                // Last sender gone: wake all blocked receivers so they can
                // observe the disconnect.
                self.shared.ready.notify_all();
            }
        }
    }

    impl<T> fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Sender { .. }")
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a value arrives or every sender is dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut queue = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(value) = queue.pop_front() {
                    return Ok(value);
                }
                if self.shared.senders.load(Ordering::SeqCst) == 0 {
                    return Err(RecvError);
                }
                queue = self.shared.ready.wait(queue).unwrap_or_else(|e| e.into_inner());
            }
        }

        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut queue = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            match queue.pop_front() {
                Some(value) => Ok(value),
                None if self.shared.senders.load(Ordering::SeqCst) == 0 => {
                    Err(TryRecvError::Disconnected)
                }
                None => Err(TryRecvError::Empty),
            }
        }

        /// Blocking iterator that ends when the channel disconnects.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { receiver: self }
        }

        /// Non-blocking iterator over currently queued values.
        pub fn try_iter(&self) -> TryIter<'_, T> {
            TryIter { receiver: self }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.receivers.fetch_add(1, Ordering::SeqCst);
            Receiver { shared: self.shared.clone() }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.shared.receivers.fetch_sub(1, Ordering::SeqCst);
        }
    }

    impl<T> fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Receiver { .. }")
        }
    }

    pub struct Iter<'a, T> {
        receiver: &'a Receiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;

        fn next(&mut self) -> Option<T> {
            self.receiver.recv().ok()
        }
    }

    pub struct TryIter<'a, T> {
        receiver: &'a Receiver<T>,
    }

    impl<T> Iterator for TryIter<'_, T> {
        type Item = T;

        fn next(&mut self) -> Option<T> {
            self.receiver.try_recv().ok()
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn send_recv_in_order() {
            let (tx, rx) = unbounded();
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.recv(), Ok(2));
        }

        #[test]
        fn recv_unblocks_on_disconnect() {
            let (tx, rx) = unbounded::<u32>();
            let h = std::thread::spawn(move || rx.recv());
            drop(tx);
            assert_eq!(h.join().unwrap(), Err(RecvError));
        }

        #[test]
        fn send_fails_without_receivers() {
            let (tx, rx) = unbounded::<u32>();
            drop(rx);
            assert!(tx.send(9).is_err());
        }

        #[test]
        fn cross_thread_volume() {
            let (tx, rx) = unbounded();
            let producer = std::thread::spawn(move || {
                for i in 0..10_000u64 {
                    tx.send(i).unwrap();
                }
            });
            let mut total = 0u64;
            while let Ok(v) = rx.recv() {
                total += v;
            }
            producer.join().unwrap();
            assert_eq!(total, 10_000 * 9_999 / 2);
        }

        #[test]
        fn try_recv_and_iters() {
            let (tx, rx) = unbounded();
            assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            assert_eq!(rx.try_iter().collect::<Vec<_>>(), vec![1, 2]);
            drop(tx);
            assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
        }
    }
}
