//! Offline stand-in for the `parking_lot` crate.
//!
//! Wraps the std locks behind `parking_lot`'s poison-free API: `lock()`
//! returns a guard directly, and a poisoned lock (a panicked holder) is
//! recovered rather than propagated, matching parking_lot's behaviour of
//! not having poisoning at all.

use std::fmt;
use std::sync::{Mutex as StdMutex, MutexGuard as StdMutexGuard, RwLock as StdRwLock};
pub use std::sync::{RwLockReadGuard, RwLockWriteGuard};

pub type MutexGuard<'a, T> = StdMutexGuard<'a, T>;

/// A mutex whose `lock` never returns a poison error.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: StdMutex<T>,
}

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Mutex { inner: StdMutex::new(value) }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(guard) => Some(guard),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(guard) => f.debug_struct("Mutex").field("data", &&*guard).finish(),
            None => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

/// A reader-writer lock whose accessors never return poison errors.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: StdRwLock<T>,
}

impl<T> RwLock<T> {
    pub fn new(value: T) -> Self {
        RwLock { inner: StdRwLock::new(value) }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RwLock").finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_returns_guard_directly() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn survives_panicked_holder() {
        let m = Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison it");
        })
        .join();
        assert_eq!(*m.lock(), 0);
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 6;
        assert_eq!(*l.read(), 6);
    }
}
