//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the small slice of the `rand 0.8` API it actually uses:
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], and the [`Rng`]
//! extension methods `gen`, `gen_range` and `gen_bool`.
//!
//! `StdRng` here is xoshiro256** seeded through SplitMix64 — not the same
//! stream as upstream's ChaCha12, but deterministic, `Clone`, and of more
//! than adequate statistical quality for the simulations in this repo.

use std::ops::Range;

/// Low-level source of randomness.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let word = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }
}

/// Construction of a generator from seed material.
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// Types sampleable uniformly over their whole domain via [`Rng::gen`].
pub trait Standard: Sized {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u8 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 56) as u8
    }
}

impl Standard for u128 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Standard for i64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as i64
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Half-open ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform `u64` in `[0, span)` via Lemire's widening-multiply method
/// (bias is at most 2^-64 per draw, irrelevant at simulation scale).
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(
                    self.start < self.end,
                    "cannot sample empty range {}..{}",
                    self.start,
                    self.end
                );
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + uniform_below(rng, span) as i128) as $t
            }
        }
    )*};
}

int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + (self.end - self.start) * f64::sample_standard(rng)
    }
}

/// Extension methods over any [`RngCore`].
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability {p} out of range");
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic generator: xoshiro256** seeded through SplitMix64.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let mut s = [0u64; 4];
            for w in &mut s {
                *w = splitmix64(&mut state);
            }
            // xoshiro must not start from the all-zero state.
            if s == [0, 0, 0, 0] {
                s[0] = 0x9e37_79b9_7f4a_7c15;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let sa: Vec<u64> = (0..8).map(|_| a.next_u64_pub()).collect();
        let sb: Vec<u64> = (0..8).map(|_| b.next_u64_pub()).collect();
        let sc: Vec<u64> = (0..8).map(|_| c.next_u64_pub()).collect();
        assert_eq!(sa, sb);
        assert_ne!(sa, sc);
    }

    trait NextPub {
        fn next_u64_pub(&mut self) -> u64;
    }
    impl NextPub for StdRng {
        fn next_u64_pub(&mut self) -> u64 {
            use super::RngCore;
            self.next_u64()
        }
    }

    #[test]
    fn range_bounds_hold() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let i = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&i));
            let f = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn unit_mean_is_centered() {
        let mut rng = StdRng::seed_from_u64(2);
        let n = 100_000;
        let total: f64 = (0..n).map(|_| rng.gen::<f64>()).sum();
        let mean = total / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.25)).count();
        let rate = hits as f64 / 100_000.0;
        assert!((rate - 0.25).abs() < 0.01, "rate {rate}");
    }
}
