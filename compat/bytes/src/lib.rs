//! Offline stand-in for the `bytes` crate.
//!
//! Provides [`Bytes`]: an immutable, cheaply clonable byte buffer backed by
//! `Arc<[u8]>`. Only the API surface this workspace uses is implemented.

use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

/// An immutable, reference-counted byte buffer.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Wraps a static byte slice without copying semantics concerns.
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Bytes { data: Arc::from(bytes) }
    }

    /// Copies the buffer out into a `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.to_vec()
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Copies from a slice.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes { data: Arc::from(data) }
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes { data: Arc::from(v) }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(v: &'static [u8]) -> Self {
        Bytes::from_static(v)
    }
}

impl<const N: usize> From<&'static [u8; N]> for Bytes {
    fn from(v: &'static [u8; N]) -> Self {
        Bytes::from_static(v)
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Self {
        Bytes::from(s.into_bytes())
    }
}

impl From<&str> for Bytes {
    fn from(s: &str) -> Self {
        Bytes { data: Arc::from(s.as_bytes()) }
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<I: IntoIterator<Item = u8>>(iter: I) -> Self {
        Bytes::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

impl fmt::Debug for Bytes {
    /// Printable ASCII as characters, everything else as `\x..` — close
    /// enough to upstream `bytes`' debug format.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.data.iter() {
            if (0x20..0x7f).contains(&b) && b != b'"' && b != b'\\' {
                write!(f, "{}", b as char)?;
            } else {
                write!(f, "\\x{b:02x}")?;
            }
        }
        write!(f, "\"")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_and_compares() {
        let a = Bytes::from(vec![1u8, 2, 3]);
        let b = a.clone();
        assert_eq!(a, b);
        assert_eq!(a.len(), 3);
        assert_eq!(a.to_vec(), vec![1, 2, 3]);
        assert_eq!(&*a, &[1u8, 2, 3][..]);
    }

    #[test]
    fn static_and_string_sources() {
        assert_eq!(Bytes::from_static(b"hi"), Bytes::from("hi".to_string()));
        assert!(Bytes::new().is_empty());
    }

    #[test]
    fn debug_is_printable() {
        let d = format!("{:?}", Bytes::from_static(b"a\x00"));
        assert_eq!(d, "b\"a\\x00\"");
    }
}
