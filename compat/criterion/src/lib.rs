//! Offline stand-in for the `criterion` crate.
//!
//! Benches written against the real criterion API (`criterion_group!`,
//! `criterion_main!`, `Criterion::bench_function`, `Bencher::iter`,
//! `iter_batched`) compile and run against this harness. Instead of
//! criterion's statistical machinery it times a calibrated batch of
//! iterations with `Instant` and prints one mean-per-iteration line per
//! benchmark — enough to compare hot paths between commits.
//!
//! Extras over plain printing:
//!
//! - positional CLI arguments (after `cargo bench ... --`) are substring
//!   filters: only matching benchmarks run;
//! - `CRITERION_JSON=<path>` appends one JSON line per benchmark
//!   (`{"name": ..., "mean_ns": ..., "iters": ...}`), which
//!   `scripts/bench_record.sh` assembles into a committed report;
//! - `GLOSS_BENCH_SMOKE=1` clamps measurement to a few milliseconds per
//!   benchmark so CI can *execute* every bench without paying for
//!   stable numbers.

use std::fmt;
use std::io::Write as _;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How `iter_batched` amortises setup; accepted and ignored beyond
/// batching granularity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Identifier for parameterised benchmarks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId { id: format!("{}/{}", function_name.into(), parameter) }
    }

    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// The per-benchmark measurement driver handed to the bench closure.
pub struct Bencher<'a> {
    measurement_time: Duration,
    warm_up_time: Duration,
    elapsed: Duration,
    iterations: u64,
    _criterion: &'a (),
}

impl Bencher<'_> {
    /// Times repeated calls of `routine`.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: run untimed until the warm-up budget is spent.
        let warm_start = Instant::now();
        while warm_start.elapsed() < self.warm_up_time {
            black_box(routine());
        }
        let start = Instant::now();
        let mut iterations = 0u64;
        while start.elapsed() < self.measurement_time {
            black_box(routine());
            iterations += 1;
        }
        self.elapsed = start.elapsed();
        self.iterations = iterations.max(1);
    }

    /// Times `routine` over inputs produced by `setup`, excluding setup
    /// cost from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let warm_start = Instant::now();
        while warm_start.elapsed() < self.warm_up_time {
            let input = setup();
            black_box(routine(input));
        }
        let mut measured = Duration::ZERO;
        let mut iterations = 0u64;
        while measured < self.measurement_time {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            measured += start.elapsed();
            iterations += 1;
        }
        self.elapsed = measured;
        self.iterations = iterations.max(1);
    }
}

/// Entry point mirroring `criterion::Criterion`.
pub struct Criterion {
    measurement_time: Duration,
    warm_up_time: Duration,
    sample_size: usize,
    /// Substring filters from the CLI; empty means run everything.
    filters: Vec<String>,
    /// Append one JSON line per benchmark here, when set.
    json_path: Option<String>,
    /// Clamp budgets so benches only prove they execute.
    smoke: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            measurement_time: Duration::from_millis(200),
            warm_up_time: Duration::from_millis(20),
            sample_size: 10,
            filters: Vec::new(),
            json_path: std::env::var("CRITERION_JSON").ok(),
            smoke: std::env::var("GLOSS_BENCH_SMOKE").is_ok_and(|v| v != "0"),
        }
    }
}

impl Criterion {
    /// Adopts positional CLI arguments as benchmark name filters
    /// (mirroring real criterion's `configure_from_args`). Called by
    /// `criterion_main!`-driven groups — NOT by `default()`, so
    /// constructing a `Criterion` inside a test binary never picks up
    /// libtest's filter arguments. Flag-style arguments (`-…`) are
    /// ignored; a value following a flag is treated as a filter, so
    /// prefer `cargo bench -- <substring>` without extra flags.
    pub fn configure_from_args(mut self) -> Self {
        self.filters = std::env::args().skip(1).filter(|a| !a.starts_with('-')).collect();
        self
    }

    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn measurement_time(mut self, t: Duration) -> Self {
        self.measurement_time = t;
        self
    }

    pub fn warm_up_time(mut self, t: Duration) -> Self {
        self.warm_up_time = t;
        self
    }

    /// Runs one benchmark and prints its mean time per iteration.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        if !self.filters.is_empty() && !self.filters.iter().any(|flt| name.contains(flt.as_str())) {
            return self;
        }
        // Spread the measurement budget over the configured samples so a
        // `measurement_time` tuned for real criterion keeps total runtime
        // in the same ballpark here.
        let per_sample = self.measurement_time / self.sample_size as u32;
        let (measurement_time, warm_up_time) = if self.smoke {
            (Duration::from_millis(2), Duration::ZERO)
        } else {
            (
                per_sample.max(Duration::from_millis(5)),
                self.warm_up_time.min(Duration::from_millis(50)),
            )
        };
        let unit = ();
        let mut bencher = Bencher {
            measurement_time,
            warm_up_time,
            elapsed: Duration::ZERO,
            iterations: 0,
            _criterion: &unit,
        };
        f(&mut bencher);
        if bencher.iterations == 0 {
            println!("{name:<40} (no measurement: bencher closure never called iter)");
            return self;
        }
        let nanos = bencher.elapsed.as_nanos() as f64 / bencher.iterations as f64;
        println!(
            "{name:<40} {:>12} / iter ({} iterations)",
            format_nanos(nanos),
            bencher.iterations
        );
        if let Some(path) = &self.json_path {
            let line = format!(
                "{{\"name\": \"{name}\", \"mean_ns\": {nanos:.1}, \"iters\": {}}}",
                bencher.iterations
            );
            let appended = std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(path)
                .and_then(|mut file| writeln!(file, "{line}"));
            if let Err(e) = appended {
                eprintln!("criterion: cannot append to {path}: {e}");
            }
        }
        self
    }

    pub fn bench_with_input<F, I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>, &I),
    {
        let name = id.to_string();
        self.bench_function(&name, |b| f(b, input))
    }

    /// Compatibility no-op (criterion finalises reports here).
    pub fn final_summary(&mut self) {}
}

fn format_nanos(nanos: f64) -> String {
    if nanos < 1_000.0 {
        format!("{nanos:.1} ns")
    } else if nanos < 1_000_000.0 {
        format!("{:.2} µs", nanos / 1_000.0)
    } else if nanos < 1_000_000_000.0 {
        format!("{:.2} ms", nanos / 1_000_000.0)
    } else {
        format!("{:.2} s", nanos / 1_000_000_000.0)
    }
}

/// Declares a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            criterion = criterion.configure_from_args();
            $(
                $target(&mut criterion);
            )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the bench binary's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $(
                $group();
            )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_measures_something() {
        let mut c = Criterion::default()
            .sample_size(2)
            .measurement_time(Duration::from_millis(10))
            .warm_up_time(Duration::from_millis(1));
        let mut total = 0u64;
        c.bench_function("spin", |b| {
            b.iter(|| {
                total = total.wrapping_add(1);
                total
            })
        });
        assert!(total > 0);
    }

    #[test]
    fn iter_batched_excludes_setup() {
        let mut c = Criterion::default()
            .sample_size(2)
            .measurement_time(Duration::from_millis(10))
            .warm_up_time(Duration::from_millis(1));
        c.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 64], |v| v.len(), BatchSize::SmallInput)
        });
    }

    #[test]
    fn format_scales() {
        assert!(format_nanos(12.3).ends_with("ns"));
        assert!(format_nanos(12_300.0).ends_with("µs"));
        assert!(format_nanos(12_300_000.0).ends_with("ms"));
    }
}
