//! Umbrella crate for the Gloss reproduction of *Active Architecture for
//! Pervasive Contextual Services* (MPAC 2003).
//!
//! Re-exports every layer of the architecture under one roof and hosts the
//! runnable examples (`examples/`) and cross-crate integration tests
//! (`tests/`). Start with [`core`] — [`core::ActiveArchitecture`] assembles
//! the full stack — or run `cargo run --example quickstart`.

pub use gloss_analysis as analysis;
pub use gloss_bundle as bundle;
pub use gloss_core as core;
pub use gloss_deploy as deploy;
pub use gloss_event as event;
pub use gloss_governor as governor;
pub use gloss_knowledge as knowledge;
pub use gloss_matchlet as matchlet;
pub use gloss_overlay as overlay;
pub use gloss_pipeline as pipeline;
pub use gloss_sim as sim;
pub use gloss_store as store;
pub use gloss_xml as xml;
