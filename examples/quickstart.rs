//! Quickstart: build the architecture, deploy a one-rule contextual
//! service, publish a sensor event, and watch the synthesised alert come
//! back through the event service.
//!
//! Run with: `cargo run --example quickstart`

use gloss::core::{ActiveArchitecture, ArchConfig, ServiceSpec};
use gloss::event::{Event, Filter};
use gloss::sim::{NodeIndex, SimDuration};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Build an eight-node architecture (node 0 coordinates) and let the
    //    overlays form.
    let mut arch = ActiveArchitecture::build(ArchConfig::default());
    arch.settle();
    println!("architecture up: {} nodes, t = {}", arch.len(), arch.now());

    // 2. Deploy a contextual service: two replicas of a hot-weather alert
    //    matchlet. The evolution engine picks the hosts and ships bundles.
    let spec = ServiceSpec::new(
        "hot-alert",
        include_str!("matchlets/hot_alert.matchlet"),
        vec![(None, 2)],
    )?;
    arch.deploy_service(spec);
    arch.run_for(SimDuration::from_secs(60));
    println!(
        "service deployed on {:?}, constraint satisfaction = {:.0}%",
        arch.hosts_of("matchlet:hot-alert"),
        arch.satisfaction() * 100.0
    );

    // 3. A UI client on node 3 subscribes to the service's output.
    arch.subscribe_ui(NodeIndex(3), Filter::for_kind("alert"));
    arch.run_for(SimDuration::from_secs(30));

    // 4. A thermometer on node 5 reports warm weather...
    arch.publish(
        NodeIndex(5),
        Event::new("weather.reading")
            .with_attr("street", "Market Street")
            .with_attr("celsius", 21.5),
    );
    arch.run_for(SimDuration::from_secs(30));

    // 5. ...and the alert arrives at the UI.
    for ev in &arch.node(NodeIndex(3)).ui_received {
        println!("UI received: {ev}");
    }
    println!("sensed {} events, synthesised {}", arch.total_sensed(), arch.total_synthesized());
    assert!(!arch.node(NodeIndex(3)).ui_received.is_empty(), "alert must arrive");
    Ok(())
}
