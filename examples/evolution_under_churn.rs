//! Evolution under churn (§4.4): placement constraints are maintained as
//! nodes crash and recover. "As events arise that cause a given
//! constraint to be violated (such as the sudden unavailability of a
//! particular node), it is the role of the monitoring engine to make
//! appropriate adjustments to satisfy the constraint again."
//!
//! Run with: `cargo run --example evolution_under_churn`

use gloss::core::{ActiveArchitecture, ArchConfig, ServiceSpec};
use gloss::sim::{NodeIndex, SimDuration};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut arch =
        ActiveArchitecture::build(ArchConfig { nodes: 10, seed: 99, ..Default::default() });
    arch.settle();

    let spec = ServiceSpec::new(
        "replication",
        include_str!("matchlets/replication_noop.matchlet"),
        vec![(None, 3)],
    )?;
    arch.deploy_service(spec);
    arch.run_for(SimDuration::from_secs(60));

    let hosts = arch.hosts_of("matchlet:replication");
    println!("initial hosts: {hosts:?}  satisfaction {:.0}%", arch.satisfaction() * 100.0);
    assert_eq!(hosts.len(), 3);

    // Kill two of the three hosts, 30 s apart.
    println!("\ncrashing {} and {}...", hosts[0], hosts[1]);
    arch.world_mut().crash(hosts[0]);
    arch.run_for(SimDuration::from_secs(30));
    arch.world_mut().crash(hosts[1]);

    // Monitor deadline (30 s) + sweep (10 s) + bundle round trips.
    arch.run_for(SimDuration::from_secs(150));
    let new_hosts = arch.hosts_of("matchlet:replication");
    println!(
        "after repair: hosts {new_hosts:?}  satisfaction {:.0}%  repair episodes: {:?}",
        arch.satisfaction() * 100.0,
        arch.node(NodeIndex(0))
            .coordinator_state
            .as_ref()
            .unwrap()
            .evolution
            .repair_episodes
            .iter()
            .map(|(a, b)| format!("{}", b.since(*a)))
            .collect::<Vec<_>>(),
    );
    assert_eq!(arch.satisfaction(), 1.0);
    assert!(new_hosts.len() >= 3);
    assert!(new_hosts.iter().all(|h| *h != hosts[0] && *h != hosts[1]));

    // One victim recovers and rejoins the resource pool.
    println!("\nrecovering {}...", hosts[0]);
    arch.world_mut().recover(hosts[0]);
    arch.run_for(SimDuration::from_secs(60));
    let cs = arch.node(NodeIndex(0)).coordinator_state.as_ref().unwrap();
    println!(
        "monitor sees {} alive workers; constraint still satisfied: {}",
        cs.monitor.alive_count(),
        arch.satisfaction() == 1.0
    );
    Ok(())
}
