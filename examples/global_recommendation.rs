//! The paper's global scenario (§1.1): "Bob, currently in Australia,
//! walks past a restaurant previously recommended by Anna: her opinion of
//! the restaurant should be delivered to Bob if it is dinner time and he
//! has no plans for dinner."
//!
//! The knowledge (Anna's recommendation, made in Scotland) and the event
//! (Bob's location in Sydney) are on opposite sides of the planet; the
//! P2P store moves the knowledge to the matching computation.
//!
//! Run with: `cargo run --example global_recommendation`

use gloss::core::{ActiveArchitecture, ArchConfig, ServiceSpec};
use gloss::event::{Event, Filter};
use gloss::knowledge::{Fact, Term};
use gloss::sim::{GeoPoint, NodeIndex, SimDuration, SimTime};

const RULES: &str = include_str!("matchlets/past_recommendation.matchlet");

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut arch =
        ActiveArchitecture::build(ArchConfig { nodes: 10, seed: 7, ..Default::default() });
    arch.settle();

    // Anna (back home) recommended the Harbour Grill in Sydney months ago.
    let harbour_grill = GeoPoint::new(-33.8570, 151.2100);
    arch.seed_knowledge(
        NodeIndex(1),
        "anna",
        &[Fact::new("anna", "recommends", Term::str("Harbour Grill"))],
    );
    arch.seed_knowledge(
        NodeIndex(1),
        "Harbour Grill",
        &[Fact::new("Harbour Grill", "located_at", Term::Geo(harbour_grill))],
    );
    arch.seed_knowledge(NodeIndex(2), "bob", &[Fact::new("bob", "knows", Term::str("anna"))]);
    arch.run_for(SimDuration::from_secs(30));

    // The service runs wherever the evolution engine places it — require
    // an instance in Australia, near Bob.
    let spec =
        ServiceSpec::new("recommendations", RULES, vec![(Some("australia".into()), 1), (None, 2)])?;
    arch.deploy_service(spec);
    arch.run_for(SimDuration::from_secs(60));
    println!(
        "service hosts: {:?} (satisfaction {:.0}%)",
        arch.hosts_of("matchlet:recommendations"),
        arch.satisfaction() * 100.0
    );

    // The matching hosts pull the relevant knowledge from the P2P store.
    for subject in ["anna", "bob", "Harbour Grill"] {
        arch.prefetch_subject_everywhere(subject);
    }
    arch.run_for(SimDuration::from_secs(30));

    // Bob's phone is his UI.
    arch.subscribe_ui(NodeIndex(4), Filter::for_kind("recommendation"));
    arch.run_for(SimDuration::from_secs(10));

    // 19:10 local: Bob strolls along the quay, 200 m from the restaurant.
    let dinner_time = SimTime::from_secs(19 * 3600 + 10 * 60);
    arch.run_until(dinner_time);
    arch.publish(
        NodeIndex(4),
        Event::new("user.location")
            .with_attr("user", "bob")
            .with_attr("lat", -33.8553)
            .with_attr("lon", 151.2090),
    );
    arch.run_for(SimDuration::from_secs(120));

    let delivered = &arch.node(NodeIndex(4)).ui_received;
    println!("{} recommendation(s) delivered:", delivered.len());
    for r in delivered {
        println!(
            "  {} -> try {} (recommended by {})",
            r.str_attr("user").unwrap_or("?"),
            r.str_attr("place").unwrap_or("?"),
            r.str_attr("from").unwrap_or("?"),
        );
    }
    assert!(!delivered.is_empty(), "Anna's opinion must reach Bob");
    Ok(())
}
