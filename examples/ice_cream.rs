//! The paper's §1.1 worked example, end to end: "a pervasive contextual
//! service could suggest to both Bob and Anna ... that they might wish to
//! meet for an ice cream at Janetta's".
//!
//! Run with: `cargo run --example ice_cream`

use gloss::core::IceCreamScenario;
use gloss::sim::SimDuration;

fn main() {
    println!("setting up: knowledge base (Bob, Anna, St Andrews), ice-cream service...");
    let mut scenario = IceCreamScenario::setup(2003);

    println!("playing the correlation window:");
    println!("  - 20C in South Street");
    println!("  - Bob on foot in North Street (likes ice cream, Scottish => 20C is hot)");
    println!("  - Anna at 56.3397,-2.80753 (Bob knows Anna)");
    scenario.play_events();
    scenario.arch.run_for(SimDuration::from_secs(360));

    let suggestions = scenario.suggestions();
    println!("\n{} suggestion(s) synthesised:", suggestions.len());
    for s in &suggestions {
        println!(
            "  suggest: {} meets {} for {} at {}",
            s.str_attr("user").unwrap_or("?"),
            s.str_attr("friend").unwrap_or("?"),
            s.str_attr("what").unwrap_or("?"),
            s.str_attr("shop").unwrap_or("?"),
        );
    }
    println!(
        "\ndistillation: {} sensed events -> {} meaningful events",
        scenario.arch.total_sensed(),
        scenario.arch.total_synthesized()
    );
    assert!(!suggestions.is_empty());
}
