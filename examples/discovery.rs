//! Discovery matchlets (§5): "In order to deal with unknown events, a
//! mechanism is needed within the event distribution mechanism for
//! routing unknown event types to discovery matchlets. These look for
//! code capable of matching these new events in the storage architecture
//! and deploy this code onto the network."
//!
//! Run with: `cargo run --example discovery`

use gloss::core::{ActiveArchitecture, ArchConfig};
use gloss::event::{Event, Filter};
use gloss::sim::{NodeIndex, SimDuration};

fn main() {
    let mut arch =
        ActiveArchitecture::build(ArchConfig { nodes: 8, seed: 5, ..Default::default() });
    arch.settle();

    // A vendor publishes handler code for a brand-new sensor type into
    // the storage architecture — no node runs it yet.
    arch.register_handler_code(
        NodeIndex(1),
        "air.quality",
        include_str!("matchlets/smog.matchlet"),
    );
    arch.run_for(SimDuration::from_secs(30));
    arch.subscribe_ui(NodeIndex(2), Filter::for_kind("smog_warning"));
    arch.run_for(SimDuration::from_secs(10));

    // A new sensor starts emitting an event kind nothing handles.
    println!("publishing unknown kind `air.quality`...");
    arch.publish(
        NodeIndex(6),
        Event::new("air.quality").with_attr("street", "South Street").with_attr("aqi", 140i64),
    );
    arch.run_for(SimDuration::from_secs(60));

    let cs = arch.node(NodeIndex(0)).coordinator_state.as_ref().unwrap();
    println!("discovered kinds: {:?}", cs.discovered);
    println!("handler hosts: {:?}", arch.hosts_of("discovered:air.quality"));
    assert!(cs.discovered.contains(&"air.quality".to_string()));

    // The next readings are matched by the freshly deployed matchlet.
    arch.publish(
        NodeIndex(6),
        Event::new("air.quality").with_attr("street", "South Street").with_attr("aqi", 155i64),
    );
    arch.run_for(SimDuration::from_secs(30));
    let ui = &arch.node(NodeIndex(2)).ui_received;
    println!("{} smog warning(s) delivered after discovery:", ui.len());
    for w in ui {
        println!("  {w}");
    }
    assert!(!ui.is_empty(), "post-discovery events must be matched");
}
