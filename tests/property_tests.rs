//! Property-based tests (proptest) for the core invariants called out in
//! DESIGN.md §6.

use gloss::event::{AttrValue, Constraint, Event, Filter, Op};
use gloss::overlay::Key;
use gloss::sim::SimRng;
use gloss::store::{Document, ErasureCode, LruCache};
use gloss::xml::{parse, Element};
use proptest::prelude::*;

// --- helpers -------------------------------------------------------------

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        Just(Op::Eq),
        Just(Op::Ne),
        Just(Op::Lt),
        Just(Op::Le),
        Just(Op::Gt),
        Just(Op::Ge),
        Just(Op::Exists),
    ]
}

fn arb_value() -> impl Strategy<Value = AttrValue> {
    prop_oneof![
        (-50i64..50).prop_map(AttrValue::Int),
        (-50i64..50).prop_map(|i| AttrValue::Float(i as f64 / 2.0)),
        any::<bool>().prop_map(AttrValue::Bool),
        "[a-c]{0,3}".prop_map(AttrValue::from),
    ]
}

fn arb_constraint() -> impl Strategy<Value = Constraint> {
    ("[xy]", arb_op(), arb_value()).prop_map(|(attr, op, value)| Constraint { attr, op, value })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    // Covering soundness: if c1 covers c2, every value satisfying c2
    // satisfies c1 (the invariant broker routing correctness rests on).
    #[test]
    fn constraint_covering_is_sound(
        c1 in arb_constraint(),
        c2 in arb_constraint(),
        v in arb_value(),
    ) {
        if c1.attr == c2.attr && c1.covers(&c2) && c2.matches_value(&v) {
            prop_assert!(
                c1.matches_value(&v),
                "{c1} claims to cover {c2} but rejects {v:?}"
            );
        }
    }

    // Disjointness soundness: provably disjoint constraints never share a
    // satisfying value.
    #[test]
    fn constraint_disjointness_is_sound(
        c1 in arb_constraint(),
        c2 in arb_constraint(),
        v in arb_value(),
    ) {
        if c1.attr == c2.attr && c1.disjoint(&c2) {
            prop_assert!(
                !(c1.matches_value(&v) && c2.matches_value(&v)),
                "{c1} and {c2} claimed disjoint but both match {v:?}"
            );
        }
    }

    // Filter covering lifts constraint covering to conjunctions.
    #[test]
    fn filter_covering_is_sound(
        cs1 in proptest::collection::vec(arb_constraint(), 0..3),
        cs2 in proptest::collection::vec(arb_constraint(), 0..3),
        x in arb_value(),
        y in arb_value(),
    ) {
        let mut f1 = Filter::any();
        for c in &cs1 {
            f1 = f1.with_constraint(&c.attr, c.op, c.value.clone());
        }
        let mut f2 = Filter::any();
        for c in &cs2 {
            f2 = f2.with_constraint(&c.attr, c.op, c.value.clone());
        }
        let ev = Event::new("k").with_attr("x", x).with_attr("y", y);
        if f1.covers(&f2) && f2.matches(&ev) {
            prop_assert!(f1.matches(&ev));
        }
    }

    // Erasure coding reconstructs from any m-subset of shards.
    #[test]
    fn erasure_round_trips_from_any_subset(
        data in proptest::collection::vec(any::<u8>(), 0..300),
        m in 1usize..6,
        extra in 1usize..5,
        seed in any::<u64>(),
    ) {
        let n = m + extra;
        let code = ErasureCode::new(m, n).expect("valid");
        let shards = code.encode(&data);
        // Pick a random m-subset.
        let mut rng = SimRng::new(seed);
        let mut indices: Vec<usize> = (0..n).collect();
        rng.shuffle(&mut indices);
        let kept: Vec<(usize, Vec<u8>)> =
            indices[..m].iter().map(|&i| (i, shards[i].clone())).collect();
        let restored = code.decode(&kept, data.len()).expect("decodes");
        prop_assert_eq!(restored, data);
    }

    // XML compact serialisation round-trips to an equal tree. (Empty
    // text nodes are excluded: they have no serialised form, so they
    // cannot survive a round trip — the standard XML situation.)
    #[test]
    fn xml_write_parse_round_trip(
        name in "[a-z]{1,6}",
        attr in "[a-z]{1,4}",
        value in "[ -~]{0,12}",
        text in "[ -~]{1,16}",
        child in "[a-z]{1,5}",
    ) {
        let el = Element::new(name)
            .with_attr(attr, value)
            .with_text(text)
            .with_child(Element::new(child));
        let reparsed = parse(&el.to_xml()).expect("own output parses");
        prop_assert_eq!(reparsed, el);
    }

    // Event XML wire form preserves kind, ids and attributes.
    #[test]
    fn event_wire_form_round_trips(
        kind in "[a-z]{1,6}(\\.[a-z]{1,6})?",
        s in "[ -~]{0,10}",
        i in any::<i64>(),
        b in any::<bool>(),
    ) {
        let ev = Event::new(kind)
            .with_attr("s", s)
            .with_attr("i", i)
            .with_attr("b", b);
        let back = Event::from_xml_text(&ev.to_xml().to_xml()).expect("parses");
        prop_assert_eq!(back.kind(), ev.kind());
        prop_assert_eq!(back.str_attr("s"), ev.str_attr("s"));
        prop_assert_eq!(back.num_attr("i"), ev.num_attr("i"));
        prop_assert_eq!(back.attr("b"), ev.attr("b"));
    }

    // Ring distance is a symmetric metric bounded by half the ring, and
    // shared prefixes agree with digit equality.
    #[test]
    fn key_geometry_invariants(a in any::<u128>(), b in any::<u128>()) {
        let (ka, kb) = (Key(a), Key(b));
        prop_assert_eq!(ka.ring_distance(kb), kb.ring_distance(ka));
        prop_assert!(ka.ring_distance(kb) <= u128::MAX / 2 + 1);
        prop_assert_eq!(ka.ring_distance(ka), 0);
        let p = ka.shared_prefix(kb);
        for i in 0..p {
            prop_assert_eq!(ka.digit(i), kb.digit(i));
        }
        if p < 32 {
            prop_assert_ne!(ka.digit(p), kb.digit(p));
        }
    }

    // The LRU cache never exceeds its byte budget and its accounting
    // matches its contents.
    #[test]
    fn cache_respects_capacity(
        sizes in proptest::collection::vec(1usize..200, 1..30),
        capacity in 100usize..600,
    ) {
        let mut cache = LruCache::new(capacity);
        for (i, size) in sizes.iter().enumerate() {
            cache.insert(Document::new(format!("doc-{i}"), vec![0u8; *size]));
            prop_assert!(cache.used_bytes() <= capacity);
        }
    }

    // Deterministic replay: same seed, same stream.
    #[test]
    fn rng_streams_replay(seed in any::<u64>()) {
        let mut a = SimRng::new(seed).fork("replay");
        let mut b = SimRng::new(seed).fork("replay");
        for _ in 0..16 {
            prop_assert_eq!(a.range(0, 1 << 30), b.range(0, 1 << 30));
        }
    }
}
