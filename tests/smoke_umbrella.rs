//! Workspace-wiring smoke test for the umbrella crate.
//!
//! Assembles the full stack through `gloss::core::ActiveArchitecture` and
//! pushes one contextual event through the event → matchlet → knowledge
//! path: the deployed rule only fires if the matchlet host can join the
//! event against facts fetched from the distributed knowledge base. This
//! proves the re-exported crates actually link and interoperate — the
//! thing the per-crate unit tests cannot see.

use gloss::core::{ActiveArchitecture, ArchConfig, ServiceSpec};
use gloss::event::{Event, Filter};
use gloss::knowledge::{Fact, Term};
use gloss::sim::{NodeIndex, SimDuration};

#[test]
fn event_through_matchlet_joins_knowledge_and_delivers() {
    let mut arch =
        ActiveArchitecture::build(ArchConfig { nodes: 6, seed: 2003, ..Default::default() });
    arch.settle();
    assert_eq!(arch.len(), 6);

    // Knowledge layer: facts about bob live in the distributed KB and are
    // prefetched to every node so any matchlet host can join against them.
    let facts = vec![
        Fact::new("bob", "likes", Term::str("ice cream")),
        Fact::new("bob", "nationality", Term::str("scottish")),
    ];
    arch.seed_knowledge(NodeIndex(2), "bob", &facts);
    arch.run_for(SimDuration::from_secs(30));
    arch.prefetch_subject_everywhere("bob");
    arch.run_for(SimDuration::from_secs(30));

    // Matchlet layer: the rule requires a fact join, not just the event.
    let spec = ServiceSpec::new(
        "smoke",
        r#"
        rule smoke {
            on l: event user.location(user: ?u)
            where fact(?u, likes, "ice cream")
            within 1 m
            emit smoke.hit(user: ?u)
        }
        "#,
        vec![(None, 2)],
    )
    .expect("rule compiles");
    arch.deploy_service(spec);
    arch.run_for(SimDuration::from_secs(60));
    assert_eq!(arch.satisfaction(), 1.0, "service placed on 2 hosts");

    // Event layer: a UI subscriber and one contextual event.
    arch.subscribe_ui(NodeIndex(1), Filter::for_kind("smoke.hit"));
    arch.run_for(SimDuration::from_secs(30));
    arch.publish(NodeIndex(5), Event::new("user.location").with_attr("user", "bob"));
    arch.run_for(SimDuration::from_secs(30));

    assert!(arch.total_synthesized() >= 1, "matchlet fired off the fact join");
    let delivered = &arch.node(NodeIndex(1)).ui_received;
    assert!(!delivered.is_empty(), "synthesised event delivered to the UI subscriber");
    assert!(delivered.iter().any(|e| e.kind() == "smoke.hit" && e.str_attr("user") == Some("bob")));

    // Control: an event about a user with no matching facts must not fire.
    let before = arch.node(NodeIndex(1)).ui_received.len();
    arch.publish(NodeIndex(4), Event::new("user.location").with_attr("user", "mallory"));
    arch.run_for(SimDuration::from_secs(30));
    assert_eq!(arch.node(NodeIndex(1)).ui_received.len(), before, "no facts, no synthesised event");
}
