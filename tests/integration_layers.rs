//! Integration tests pairing adjacent layers (narrower than the full
//! stack, wider than unit tests).

use gloss::bundle::{AuthKey, Bundle, Capability, ThinServer};
use gloss::event::{Event, Filter};
use gloss::knowledge::{DistributedKnowledge, Fact, InMemoryFacts, Term};
use gloss::matchlet::MatchletEngine;
use gloss::pipeline::{assemble, standard::register_standard};
use gloss::sim::{NodeIndex, SimDuration, SimTime};
use gloss::store::{StoreConfig, StoreNetwork};
use gloss::xml::parse;

/// Bundle → thin server → matchlet engine → events (bundle/matchlet/event).
#[test]
fn bundle_deploys_rules_that_match_events() {
    let key = AuthKey::new("ops", b"secret");
    let mut server = ThinServer::new("edge-1");
    server.trust(key.clone());
    server.grant("ops", Capability::DeployMatchlet);
    let packet = Bundle::matchlet(
        "movement",
        r#"
        rule fast {
            on l: event user.location(user: ?u, speed: ?s)
            where ?s > 30.0
            within 1 m
            emit speeding(user: ?u, speed: ?s)
        }
        "#,
    )
    .issued_by("ops")
    .to_packet(&key);
    server.receive_packet(&packet).unwrap();

    let kb = InMemoryFacts::new();
    let out = server.match_event(
        SimTime::ZERO,
        &Event::new("user.location").with_attr("user", "bob").with_attr("speed", 42.0),
        &kb,
    );
    assert_eq!(out.len(), 1);
    assert_eq!(out[0].kind(), "speeding");
}

/// XML spec → registry → pipeline → filtered events (xml/bundle/pipeline).
#[test]
fn xml_assembled_pipeline_filters_event_stream() {
    let mut registry = gloss::bundle::Registry::new();
    register_standard(&mut registry);
    let spec = parse(
        r#"<pipeline>
             <component id="f" kind="filter.kind"><cfg kind="user.location"/></component>
             <component id="m" kind="filter.movement"><cfg min_km="0.5"/></component>
             <component id="c" kind="counter"/>
             <link from="f" to="m"/>
             <link from="m" to="c"/>
             <entry id="f"/>
           </pipeline>"#,
    )
    .unwrap();
    let mut graph = assemble(&spec, &registry).unwrap();
    let mut passed = 0;
    for i in 0..10 {
        let lat = 56.34 + if i % 5 == 0 { i as f64 * 0.01 } else { 0.00001 * i as f64 };
        let ev = Event::new("user.location")
            .with_attr("user", "bob")
            .with_attr("lat", lat)
            .with_attr("lon", -2.8);
        passed += graph.push(SimTime::ZERO, ev).len();
    }
    assert!(passed > 0 && passed < 10, "threshold filter must drop small moves; passed {passed}");
}

/// Matchlet engine fed from the pub/sub network, facts from the store
/// (event/store/knowledge/matchlet).
#[test]
fn matchlets_consume_store_backed_facts() {
    // Facts go through a real storage network round trip first.
    let mut net = StoreNetwork::build(10, StoreConfig::default(), 2001);
    net.settle();
    let writer = DistributedKnowledge::new(NodeIndex(0));
    let facts = [Fact::new("anna", "vip", Term::Bool(true))];
    let refs: Vec<&Fact> = facts.iter().collect();
    writer.put_subject(&mut net, "anna", &refs);
    net.run_for(SimDuration::from_secs(30));
    let reader = DistributedKnowledge::new(NodeIndex(7));
    let req = reader.fetch_subject(&mut net, "anna");
    net.run_for(SimDuration::from_secs(30));
    let fetched = reader.take_facts(&net, req).expect("facts round-trip the store");

    let mut kb = InMemoryFacts::new();
    kb.extend(fetched);
    let mut engine = MatchletEngine::compile(
        r#"
        rule vip_arrival {
            on l: event user.location(user: ?u)
            where fact(?u, vip, true)
            within 1 m
            emit vip_seen(user: ?u)
        }
        "#,
    )
    .unwrap();
    let out =
        engine.on_event(SimTime::ZERO, &Event::new("user.location").with_attr("user", "anna"), &kb);
    assert_eq!(out.len(), 1);
    let none = engine.on_event(
        SimTime::from_secs(1),
        &Event::new("user.location").with_attr("user", "bob"),
        &kb,
    );
    assert!(none.is_empty());
}

/// Events keep their meaning across the XML wire form used between
/// pipeline hosts and inside bundles (xml/event round trip under filters).
#[test]
fn filters_agree_before_and_after_wire_form() {
    let filter = Filter::for_kind("weather.reading").with_eq("street", "Market Street");
    let ev = Event::new("weather.reading")
        .with_attr("street", "Market Street")
        .with_attr("celsius", 19.5);
    let wire = ev.to_xml().to_xml();
    let back = Event::from_xml_text(&wire).unwrap();
    assert_eq!(filter.matches(&ev), filter.matches(&back));
    assert_eq!(back.num_attr("celsius"), Some(19.5));
}

/// A thin server's object store holds XML objects shipped in bundles and
/// serves them to locally running code (bundle/xml).
#[test]
fn bundle_data_objects_feed_local_code() {
    let key = AuthKey::new("ops", b"secret");
    let mut server = ThinServer::new("edge-2");
    server.trust(key.clone());
    server.grant("ops", Capability::DeployMatchlet);
    server.grant("ops", Capability::StoreAccess);
    let packet = Bundle::matchlet("with-config", r#"rule r { on a: event k() emit out() }"#)
        .issued_by("ops")
        .with_data("config/thresholds", parse(r#"<t hot="18.0" cold="5.0"/>"#).unwrap())
        .to_packet(&key);
    server.receive_packet(&packet).unwrap();
    let cfg = server.object("config/thresholds").unwrap();
    assert_eq!(cfg.attr("hot"), Some("18.0"));
}
