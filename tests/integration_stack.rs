//! Cross-crate integration tests: the full stack working together.

use gloss::core::{ActiveArchitecture, ArchConfig, ServiceSpec};
use gloss::event::{Event, Filter};
use gloss::knowledge::{Fact, FactSource, Term};
use gloss::sim::{NodeIndex, SimDuration};

fn arch(nodes: usize, seed: u64) -> ActiveArchitecture {
    let mut a = ActiveArchitecture::build(ArchConfig { nodes, seed, ..Default::default() });
    a.settle();
    a
}

#[test]
fn full_stack_sense_match_deliver() {
    let mut a = arch(8, 1001);
    let spec = ServiceSpec::new(
        "integration",
        r#"
        rule pair {
            on x: event sensor.a(v: ?a)
            on y: event sensor.b(v: ?b)
            where ?a + ?b = 10
            within 2 m
            emit pair_found(a: ?a, b: ?b)
        }
        "#,
        vec![(None, 2)],
    )
    .unwrap();
    a.deploy_service(spec);
    a.run_for(SimDuration::from_secs(60));
    a.subscribe_ui(NodeIndex(7), Filter::for_kind("pair_found"));
    a.run_for(SimDuration::from_secs(20));

    // Two halves of the correlation arrive at different nodes.
    a.publish(NodeIndex(2), Event::new("sensor.a").with_attr("v", 4i64));
    a.run_for(SimDuration::from_secs(10));
    a.publish(NodeIndex(5), Event::new("sensor.b").with_attr("v", 6i64));
    a.run_for(SimDuration::from_secs(30));

    let ui = &a.node(NodeIndex(7)).ui_received;
    assert!(!ui.is_empty(), "correlated event must reach the UI");
    assert_eq!(ui[0].num_attr("a"), Some(4.0));
    assert_eq!(ui[0].num_attr("b"), Some(6.0));
}

#[test]
fn knowledge_travels_through_the_p2p_store() {
    let mut a = arch(8, 1002);
    // Seed at node 1, consume from a service hosted elsewhere.
    a.seed_knowledge(
        NodeIndex(1),
        "shop-42",
        &[
            Fact::new("shop-42", "sells", Term::str("coffee")),
            Fact::new("shop-42", "rating", Term::Int(5)),
        ],
    );
    a.run_for(SimDuration::from_secs(30));
    let spec = ServiceSpec::new(
        "kb-service",
        r#"
        rule rated {
            on q: event query.shop(name: ?n)
            where fact(?n, rating, ?r) and ?r >= 4
            within 1 m
            emit good_shop(name: ?n, rating: ?r)
        }
        "#,
        vec![(None, 2)],
    )
    .unwrap();
    a.deploy_service(spec);
    a.run_for(SimDuration::from_secs(60));
    a.prefetch_subject_everywhere("shop-42");
    a.run_for(SimDuration::from_secs(30));
    a.subscribe_ui(NodeIndex(3), Filter::for_kind("good_shop"));
    a.run_for(SimDuration::from_secs(10));
    a.publish(NodeIndex(6), Event::new("query.shop").with_attr("name", "shop-42"));
    a.run_for(SimDuration::from_secs(30));
    let ui = &a.node(NodeIndex(3)).ui_received;
    assert!(!ui.is_empty());
    assert_eq!(ui[0].num_attr("rating"), Some(5.0));
}

#[test]
fn knowledge_updates_propagate_as_new_versions() {
    let mut a = arch(6, 1003);
    a.seed_knowledge(NodeIndex(1), "bob", &[Fact::new("bob", "likes", Term::str("ice cream"))]);
    a.run_for(SimDuration::from_secs(30));
    a.prefetch_subject(NodeIndex(4), "bob");
    a.run_for(SimDuration::from_secs(30));
    assert_eq!(a.node(NodeIndex(4)).kb.query(Some("bob"), None).count(), 1);

    // The profile changes; re-seeding writes a newer document version.
    a.seed_knowledge(
        NodeIndex(1),
        "bob",
        &[
            Fact::new("bob", "likes", Term::str("ice cream")),
            Fact::new("bob", "likes", Term::str("golf")),
        ],
    );
    a.run_for(SimDuration::from_secs(30));
    a.prefetch_subject(NodeIndex(4), "bob");
    a.run_for(SimDuration::from_secs(30));
    assert_eq!(
        a.node(NodeIndex(4)).kb.query(Some("bob"), Some("likes")).count(),
        2,
        "refetch picks up the updated profile"
    );
}

#[test]
fn architecture_survives_worker_loss_end_to_end() {
    let mut a = arch(8, 1004);
    let spec = ServiceSpec::new(
        "resilient",
        r#"rule echo { on p: event probe(n: ?n) emit echo(n: ?n) }"#,
        vec![(None, 2)],
    )
    .unwrap();
    a.deploy_service(spec);
    a.run_for(SimDuration::from_secs(60));
    a.subscribe_ui(NodeIndex(7), Filter::for_kind("echo"));
    a.run_for(SimDuration::from_secs(20));

    // Verify the service works, then kill both hosts.
    a.publish(NodeIndex(3), Event::new("probe").with_attr("n", 1i64));
    a.run_for(SimDuration::from_secs(20));
    let before = a.node(NodeIndex(7)).ui_received.len();
    assert!(before >= 1);
    for h in a.hosts_of("matchlet:resilient") {
        a.world_mut().crash(h);
    }
    a.run_for(SimDuration::from_secs(180)); // detect + redeploy
    assert_eq!(a.satisfaction(), 1.0);

    a.publish(NodeIndex(3), Event::new("probe").with_attr("n", 2i64));
    a.run_for(SimDuration::from_secs(30));
    let after = a.node(NodeIndex(7)).ui_received.len();
    assert!(after > before, "service answers again after repair");
}
