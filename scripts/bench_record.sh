#!/usr/bin/env bash
# Runs the criterion bench suite and records per-benchmark means as one
# JSON document (the format committed as BENCH_pr2.json / BENCH_pr3.json).
#
# Usage:
#   scripts/bench_record.sh [output.json] [bench-name-filter...]
#
# Examples:
#   scripts/bench_record.sh                          # all benches -> BENCH_pr10.json
#   scripts/bench_record.sh out.json e1_ c7_         # only e1_* and c7_* benches
#   scripts/bench_record.sh BENCH_pr3.json s3_ s4_ s5_ c1_filter
#                                                    # the PR 3 scale/churn/mobility set
#
# The committed BENCH_pr3.json interleaves this script's output for the
# seed commit (in a git worktree, with this bench file copied in) and the
# current tree, same machine, back to back; c1_filter_match is the
# untouched control that proves the machine noise is matched.
# GLOSS_BENCH_SMOKE=1 passes through to the harness for quick smoke runs.
set -euo pipefail
cd "$(dirname "$0")/.."

out="${1:-BENCH_pr10.json}"
shift $(( $# > 0 ? 1 : 0 ))

tmp="$(mktemp)"
trap 'rm -f "$tmp"' EXIT

CRITERION_JSON="$tmp" cargo bench --bench experiments -- "$@"
# The delta-plane and repair benches live in their own files (their APIs
# postdate the seed baseline); CRITERION_JSON appends, so all land in
# one document. Skip each when a filter is given that can't match it.
if [ $# -eq 0 ] || printf '%s\n' "$@" | grep -q '^c18_'; then
    CRITERION_JSON="$tmp" cargo bench --bench knowledge_delta -- "$@" || true
fi
if [ $# -eq 0 ] || printf '%s\n' "$@" | grep -qE '^(c19_|s8_)'; then
    CRITERION_JSON="$tmp" cargo bench --bench repair -- "$@" || true
fi

if [ ! -s "$tmp" ]; then
    echo "no benchmark results produced (bad filter?)" >&2
    exit 1
fi

{
    echo '{'
    echo "  \"git\": \"$(git rev-parse --short HEAD 2>/dev/null || echo unknown)\","
    echo "  \"date\": \"$(date -u +%Y-%m-%dT%H:%M:%SZ)\","
    echo '  "results": ['
    sed '$!s/$/,/' "$tmp" | sed 's/^/    /'
    echo '  ]'
    echo '}'
} > "$out"

echo "wrote $out ($(grep -c mean_ns "$out") benchmarks)"
