//! Data placement policies (§4.6).
//!
//! "Data placement monitors will observe meta-data arising from
//! distributed probes and gauges. Periodically they will initiate data
//! replication, the details of when and where depending on the placement
//! policies currently in operation."
//!
//! Two policies from the paper:
//!
//! * [`LatencyReductionPolicy`] — "seek to replicate progressively more of
//!   a user's personal data at storage units geographically close to the
//!   user's current location, the longer that the user remained at that
//!   location";
//! * [`BackupPolicy`] — "seek to replicate data on a geographically remote
//!   storage unit as soon as possible after it was created".
//!
//! On top of the reactive policies sits the *quota-aware placement
//! planner* ([`plan_quota_targets`]): every replica push — initial
//! placement and crash repair alike — filters candidates by advertised
//! capacity and spreads copies across regions, so one full disk or one
//! lost machine room never takes every copy with it.

use gloss_overlay::Key;
use gloss_sim::{GeoPoint, NodeIndex, SimTime};
use std::collections::BTreeMap;

/// Per-node storage quota: how many bytes a storage unit is willing to
/// host for the overlay, how much of that is set aside for local use,
/// and the free-space watermark below which it starts shedding
/// lower-priority replicas.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodeCapacity {
    /// Total bytes the node exposes to the storage plane.
    pub max_bytes: u64,
    /// Bytes held back from placement (local headroom).
    pub reserved_bytes: u64,
    /// Eviction watermark: once free space dips under this, the node is
    /// over-committed and refuses new replicas / evicts low tiers.
    pub min_free_bytes: u64,
}

impl Default for NodeCapacity {
    fn default() -> Self {
        NodeCapacity {
            max_bytes: 64 * 1024 * 1024,
            reserved_bytes: 4 * 1024 * 1024,
            min_free_bytes: 1024 * 1024,
        }
    }
}

impl NodeCapacity {
    /// Bytes actually placeable (max minus reserved).
    pub fn budget(&self) -> u64 {
        self.max_bytes.saturating_sub(self.reserved_bytes)
    }

    /// Placeable bytes left given `used` bytes already stored.
    pub fn available(&self, used: u64) -> u64 {
        self.budget().saturating_sub(used)
    }

    /// Whether a write of `size` bytes fits without crossing the
    /// free-space watermark.
    pub fn admits(&self, used: u64, size: u64) -> bool {
        used.saturating_add(size).saturating_add(self.min_free_bytes) <= self.budget()
    }

    /// Whether the node has already dipped under its watermark.
    pub fn over_watermark(&self, used: u64) -> bool {
        self.available(used) < self.min_free_bytes
    }
}

/// A lightweight directory entry describing a storage node (distributed
/// dynamically by the deployment layer; static within one experiment).
#[derive(Debug, Clone, PartialEq)]
pub struct NodeSite {
    /// The node.
    pub node: NodeIndex,
    /// Where it is.
    pub geo: GeoPoint,
    /// Its region name.
    pub region: String,
    /// Advertised storage quota.
    pub capacity: NodeCapacity,
}

impl NodeSite {
    /// A site with the default capacity profile.
    pub fn new(node: NodeIndex, geo: GeoPoint, region: impl Into<String>) -> Self {
        NodeSite { node, geo, region: region.into(), capacity: NodeCapacity::default() }
    }

    /// Overrides the advertised capacity.
    pub fn with_capacity(mut self, capacity: NodeCapacity) -> Self {
        self.capacity = capacity;
        self
    }
}

/// Quota- and diversity-aware replica target selection.
///
/// `candidates` come in preference order (typically ring distance to the
/// GUID, as `replica_targets` computes) and the planner re-ranks them:
///
/// 1. candidates whose advertised quota cannot admit `size` more bytes
///    (given what the planner knows of their usage — unknown usage is
///    treated optimistically as zero, and the receiving node still
///    enforces its own quota on arrival) are dropped;
/// 2. a greedy pass prefers candidates in regions not yet holding a
///    copy (seeded by `covered_regions`, usually the primary's region),
///    breaking ties by available capacity (descending) and then by the
///    caller's preference order — so under equal pressure the plan
///    degrades to exactly the classic closest-in-ring placement;
/// 3. once every region is covered, remaining slots fill by available
///    capacity, same tie-break.
///
/// Entirely deterministic: no randomness, and every comparison grounds
/// out in the caller-supplied ordering.
pub fn plan_quota_targets(
    size: u64,
    want: usize,
    covered_regions: &[&str],
    candidates: &[NodeIndex],
    directory: &[NodeSite],
    used_bytes: &BTreeMap<NodeIndex, u64>,
) -> Vec<NodeIndex> {
    struct Cand<'a> {
        node: NodeIndex,
        region: Option<&'a str>,
        avail: u64,
        pref: usize,
    }
    let mut pool: Vec<Cand<'_>> = Vec::with_capacity(candidates.len());
    for (pref, &node) in candidates.iter().enumerate() {
        let site = directory.iter().find(|s| s.node == node);
        let cap = site.map(|s| s.capacity).unwrap_or_default();
        let used = used_bytes.get(&node).copied().unwrap_or(0);
        if !cap.admits(used, size) {
            continue;
        }
        pool.push(Cand {
            node,
            region: site.map(|s| s.region.as_str()),
            avail: cap.available(used),
            pref,
        });
    }
    fn best(pool: &[Cand<'_>], covered: &[String], fresh_only: bool) -> Option<usize> {
        pool.iter()
            .enumerate()
            .filter(|(_, c)| {
                !fresh_only || c.region.map(|r| !covered.iter().any(|v| v == r)).unwrap_or(true)
            })
            .min_by(|(_, a), (_, b)| b.avail.cmp(&a.avail).then(a.pref.cmp(&b.pref)))
            .map(|(i, _)| i)
    }
    let mut covered: Vec<String> = covered_regions.iter().map(|r| r.to_string()).collect();
    let mut chosen = Vec::with_capacity(want);
    while chosen.len() < want && !pool.is_empty() {
        // Prefer a region we have no copy in yet; otherwise anyone.
        let pick = best(&pool, &covered, true)
            .or_else(|| best(&pool, &covered, false))
            .expect("pool is non-empty");
        let c = pool.remove(pick);
        if let Some(r) = c.region {
            covered.push(r.to_string());
        }
        chosen.push(c.node);
    }
    chosen
}

/// An action requested by a placement policy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlacementAction {
    /// Push a replica of `guid` to `target`.
    ReplicateTo {
        /// The document.
        guid: Key,
        /// The node that should hold a copy.
        target: NodeIndex,
    },
}

/// A placement policy reacting to access and creation metadata.
///
/// Policies run at the node holding the primary copy; the storage layer
/// executes the returned actions as replica pushes.
pub trait PlacementPolicy: std::fmt::Debug {
    /// Called when `reader` (at `site`) fetched `guid`.
    fn on_access(
        &mut self,
        guid: Key,
        site: &NodeSite,
        now: SimTime,
        directory: &[NodeSite],
        holders: &[NodeIndex],
    ) -> Vec<PlacementAction>;

    /// Called when `guid` is first stored at a primary located at `site`.
    fn on_create(
        &mut self,
        guid: Key,
        site: &NodeSite,
        now: SimTime,
        directory: &[NodeSite],
        holders: &[NodeIndex],
    ) -> Vec<PlacementAction>;
}

/// Replicates a document toward a locality once it has been read from
/// there `threshold` times — "replicate progressively more of a user's
/// personal data at storage units geographically close to the user's
/// current location, the longer that the user remained at that location".
#[derive(Debug, Clone)]
pub struct LatencyReductionPolicy {
    threshold: u64,
    /// A holder within this distance of the reader counts as "close";
    /// no further replica is made.
    near_km: f64,
    counts: BTreeMap<(Key, String), u64>,
}

impl LatencyReductionPolicy {
    /// Creates a policy that replicates after `threshold` accesses from
    /// the same region, unless a copy already sits within 50 km of the
    /// reader.
    pub fn new(threshold: u64) -> Self {
        LatencyReductionPolicy {
            threshold: threshold.max(1),
            near_km: 50.0,
            counts: BTreeMap::new(),
        }
    }

    /// Adjusts the "close enough" radius.
    pub fn with_near_km(mut self, near_km: f64) -> Self {
        self.near_km = near_km;
        self
    }
}

impl PlacementPolicy for LatencyReductionPolicy {
    fn on_access(
        &mut self,
        guid: Key,
        site: &NodeSite,
        _now: SimTime,
        directory: &[NodeSite],
        holders: &[NodeIndex],
    ) -> Vec<PlacementAction> {
        let count = self.counts.entry((guid, site.region.clone())).or_insert(0);
        *count += 1;
        if *count != self.threshold {
            return Vec::new();
        }
        // Already a copy geographically close to the reader?
        let close_already = directory
            .iter()
            .filter(|s| holders.contains(&s.node))
            .any(|s| s.geo.distance_km(site.geo) <= self.near_km);
        if close_already {
            return Vec::new();
        }
        // Replicate to the node nearest the reader (often the reader's
        // own storage unit).
        directory
            .iter()
            .min_by(|a, b| {
                a.geo
                    .distance_km(site.geo)
                    .partial_cmp(&b.geo.distance_km(site.geo))
                    .expect("finite distances")
            })
            .map(|s| vec![PlacementAction::ReplicateTo { guid, target: s.node }])
            .unwrap_or_default()
    }

    fn on_create(
        &mut self,
        _guid: Key,
        _site: &NodeSite,
        _now: SimTime,
        _directory: &[NodeSite],
        _holders: &[NodeIndex],
    ) -> Vec<PlacementAction> {
        Vec::new()
    }
}

/// Pushes a replica to a geographically remote node (≥ `min_km` away)
/// immediately on creation.
#[derive(Debug, Clone)]
pub struct BackupPolicy {
    min_km: f64,
}

impl BackupPolicy {
    /// Creates a backup policy requiring at least `min_km` of separation.
    pub fn new(min_km: f64) -> Self {
        BackupPolicy { min_km }
    }
}

impl PlacementPolicy for BackupPolicy {
    fn on_access(
        &mut self,
        _guid: Key,
        _site: &NodeSite,
        _now: SimTime,
        _directory: &[NodeSite],
        _holders: &[NodeIndex],
    ) -> Vec<PlacementAction> {
        Vec::new()
    }

    fn on_create(
        &mut self,
        guid: Key,
        site: &NodeSite,
        _now: SimTime,
        directory: &[NodeSite],
        holders: &[NodeIndex],
    ) -> Vec<PlacementAction> {
        // Is any existing holder already remote enough?
        let holder_sites: Vec<&NodeSite> =
            directory.iter().filter(|s| holders.contains(&s.node)).collect();
        if holder_sites.iter().any(|s| s.geo.distance_km(site.geo) >= self.min_km) {
            return Vec::new();
        }
        // Choose the closest node that satisfies the distance bound, so
        // the backup is remote but not needlessly far.
        directory
            .iter()
            .filter(|s| s.geo.distance_km(site.geo) >= self.min_km)
            .min_by(|a, b| {
                a.geo
                    .distance_km(site.geo)
                    .partial_cmp(&b.geo.distance_km(site.geo))
                    .expect("finite distances")
            })
            .map(|s| vec![PlacementAction::ReplicateTo { guid, target: s.node }])
            .unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn site(node: u32, region: &str, lat: f64, lon: f64) -> NodeSite {
        NodeSite::new(NodeIndex(node), GeoPoint::new(lat, lon), region)
    }

    fn directory() -> Vec<NodeSite> {
        vec![
            site(0, "scotland", 56.3, -3.0),
            site(1, "scotland", 56.0, -3.5),
            site(2, "australia", -33.9, 151.2),
            site(3, "australia", -37.8, 145.0),
        ]
    }

    #[test]
    fn latency_policy_replicates_after_threshold() {
        let mut p = LatencyReductionPolicy::new(3);
        let guid = Key::hash_of_str("doc");
        let dir = directory();
        let reader = &dir[2]; // australia
        let holders = [NodeIndex(0)];
        let now = SimTime::ZERO;
        assert!(p.on_access(guid, reader, now, &dir, &holders).is_empty());
        assert!(p.on_access(guid, reader, now, &dir, &holders).is_empty());
        let actions = p.on_access(guid, reader, now, &dir, &holders);
        assert_eq!(
            actions,
            vec![PlacementAction::ReplicateTo { guid, target: NodeIndex(2) }],
            "third access from australia triggers a replica there"
        );
        // Only fires once at the threshold crossing.
        assert!(p.on_access(guid, reader, now, &dir, &holders).is_empty());
    }

    #[test]
    fn latency_policy_skips_if_a_copy_is_already_close() {
        let mut p = LatencyReductionPolicy::new(1);
        let guid = Key::hash_of_str("doc");
        let dir = directory();
        // The reader itself already holds a copy: nothing to do.
        let holders = [NodeIndex(2)];
        let actions = p.on_access(guid, &dir[2], SimTime::ZERO, &dir, &holders);
        assert!(actions.is_empty());
        // A copy in the same *region* but 700 km away is not close enough.
        let mut p = LatencyReductionPolicy::new(1);
        let holders = [NodeIndex(3)]; // melbourne vs sydney reader
        let actions = p.on_access(guid, &dir[2], SimTime::ZERO, &dir, &holders);
        assert_eq!(actions.len(), 1);
    }

    #[test]
    fn latency_policy_counts_regions_independently() {
        let mut p = LatencyReductionPolicy::new(2);
        let guid = Key::hash_of_str("doc");
        let dir = directory();
        let holders = [NodeIndex(0)];
        assert!(p.on_access(guid, &dir[2], SimTime::ZERO, &dir, &holders).is_empty());
        // One access from scotland does not advance australia's count.
        assert!(p.on_access(guid, &dir[1], SimTime::ZERO, &dir, &holders).is_empty());
        let actions = p.on_access(guid, &dir[2], SimTime::ZERO, &dir, &holders);
        assert_eq!(actions.len(), 1);
    }

    #[test]
    fn backup_policy_picks_remote_node_on_create() {
        let mut p = BackupPolicy::new(5000.0);
        let guid = Key::hash_of_str("doc");
        let dir = directory();
        let primary = &dir[0]; // scotland
        let actions = p.on_create(guid, primary, SimTime::ZERO, &dir, &[NodeIndex(0)]);
        assert_eq!(actions.len(), 1);
        match &actions[0] {
            PlacementAction::ReplicateTo { target, .. } => {
                assert!(
                    *target == NodeIndex(2) || *target == NodeIndex(3),
                    "backup must be in australia, got {target}"
                );
            }
        }
    }

    #[test]
    fn backup_policy_satisfied_by_existing_remote_holder() {
        let mut p = BackupPolicy::new(5000.0);
        let guid = Key::hash_of_str("doc");
        let dir = directory();
        let actions =
            p.on_create(guid, &dir[0], SimTime::ZERO, &dir, &[NodeIndex(0), NodeIndex(2)]);
        assert!(actions.is_empty());
    }

    #[test]
    fn backup_policy_no_candidate_is_noop() {
        let mut p = BackupPolicy::new(50_000.0); // farther than any point on earth
        let guid = Key::hash_of_str("doc");
        let dir = directory();
        assert!(p.on_create(guid, &dir[0], SimTime::ZERO, &dir, &[NodeIndex(0)]).is_empty());
    }

    #[test]
    fn capacity_admission_and_watermark() {
        let cap = NodeCapacity { max_bytes: 100, reserved_bytes: 20, min_free_bytes: 10 };
        assert_eq!(cap.budget(), 80);
        assert_eq!(cap.available(30), 50);
        assert!(cap.admits(30, 40)); // 30 + 40 + 10 = 80 fits exactly
        assert!(!cap.admits(30, 41));
        assert!(!cap.over_watermark(70));
        assert!(cap.over_watermark(71));
    }

    #[test]
    fn planner_skips_full_nodes() {
        let tiny = NodeCapacity { max_bytes: 8, reserved_bytes: 0, min_free_bytes: 0 };
        let dir = vec![
            site(0, "scotland", 56.3, -3.0).with_capacity(tiny),
            site(1, "england", 51.5, -0.1),
            site(2, "europe", 48.8, 2.3),
        ];
        let used = BTreeMap::new();
        let plan = plan_quota_targets(
            100,
            2,
            &[],
            &[NodeIndex(0), NodeIndex(1), NodeIndex(2)],
            &dir,
            &used,
        );
        assert_eq!(plan, vec![NodeIndex(1), NodeIndex(2)], "full node 0 must be skipped");
    }

    #[test]
    fn planner_prefers_region_diversity() {
        let dir = vec![
            site(0, "scotland", 56.3, -3.0),
            site(1, "scotland", 56.0, -3.5),
            site(2, "australia", -33.9, 151.2),
        ];
        let used = BTreeMap::new();
        // Primary already sits in scotland: the first pick must jump to
        // australia even though both scotland nodes are preferred by ring
        // order.
        let plan = plan_quota_targets(
            10,
            2,
            &["scotland"],
            &[NodeIndex(0), NodeIndex(1), NodeIndex(2)],
            &dir,
            &used,
        );
        assert_eq!(plan[0], NodeIndex(2), "uncovered region wins the first slot");
        assert_eq!(plan.len(), 2);
    }

    #[test]
    fn planner_breaks_ties_by_available_capacity_then_preference() {
        let big = NodeCapacity { max_bytes: 1 << 30, ..NodeCapacity::default() };
        let dir = vec![
            site(0, "scotland", 56.3, -3.0),
            site(1, "scotland", 56.0, -3.5).with_capacity(big),
        ];
        let mut used = BTreeMap::new();
        let plan = plan_quota_targets(10, 1, &[], &[NodeIndex(0), NodeIndex(1)], &dir, &used);
        assert_eq!(plan, vec![NodeIndex(1)], "more available capacity wins");
        // Equal capacity: caller preference order decides.
        used.insert(NodeIndex(1), (1 << 30) - (64 * 1024 * 1024));
        let plan = plan_quota_targets(10, 1, &[], &[NodeIndex(0), NodeIndex(1)], &dir, &used);
        assert_eq!(plan, vec![NodeIndex(0)]);
    }

    #[test]
    fn planner_is_deterministic_and_bounded() {
        let dir = directory();
        let used = BTreeMap::new();
        let cands = [NodeIndex(0), NodeIndex(1), NodeIndex(2), NodeIndex(3)];
        let a = plan_quota_targets(5, 10, &[], &cands, &dir, &used);
        let b = plan_quota_targets(5, 10, &[], &cands, &dir, &used);
        assert_eq!(a, b);
        assert_eq!(a.len(), 4, "cannot return more targets than candidates");
    }
}
