//! Data placement policies (§4.6).
//!
//! "Data placement monitors will observe meta-data arising from
//! distributed probes and gauges. Periodically they will initiate data
//! replication, the details of when and where depending on the placement
//! policies currently in operation."
//!
//! Two policies from the paper:
//!
//! * [`LatencyReductionPolicy`] — "seek to replicate progressively more of
//!   a user's personal data at storage units geographically close to the
//!   user's current location, the longer that the user remained at that
//!   location";
//! * [`BackupPolicy`] — "seek to replicate data on a geographically remote
//!   storage unit as soon as possible after it was created".

use gloss_overlay::Key;
use gloss_sim::{GeoPoint, NodeIndex, SimTime};
use std::collections::BTreeMap;

/// A lightweight directory entry describing a storage node (distributed
/// dynamically by the deployment layer; static within one experiment).
#[derive(Debug, Clone, PartialEq)]
pub struct NodeSite {
    /// The node.
    pub node: NodeIndex,
    /// Where it is.
    pub geo: GeoPoint,
    /// Its region name.
    pub region: String,
}

/// An action requested by a placement policy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlacementAction {
    /// Push a replica of `guid` to `target`.
    ReplicateTo {
        /// The document.
        guid: Key,
        /// The node that should hold a copy.
        target: NodeIndex,
    },
}

/// A placement policy reacting to access and creation metadata.
///
/// Policies run at the node holding the primary copy; the storage layer
/// executes the returned actions as replica pushes.
pub trait PlacementPolicy: std::fmt::Debug {
    /// Called when `reader` (at `site`) fetched `guid`.
    fn on_access(
        &mut self,
        guid: Key,
        site: &NodeSite,
        now: SimTime,
        directory: &[NodeSite],
        holders: &[NodeIndex],
    ) -> Vec<PlacementAction>;

    /// Called when `guid` is first stored at a primary located at `site`.
    fn on_create(
        &mut self,
        guid: Key,
        site: &NodeSite,
        now: SimTime,
        directory: &[NodeSite],
        holders: &[NodeIndex],
    ) -> Vec<PlacementAction>;
}

/// Replicates a document toward a locality once it has been read from
/// there `threshold` times — "replicate progressively more of a user's
/// personal data at storage units geographically close to the user's
/// current location, the longer that the user remained at that location".
#[derive(Debug, Clone)]
pub struct LatencyReductionPolicy {
    threshold: u64,
    /// A holder within this distance of the reader counts as "close";
    /// no further replica is made.
    near_km: f64,
    counts: BTreeMap<(Key, String), u64>,
}

impl LatencyReductionPolicy {
    /// Creates a policy that replicates after `threshold` accesses from
    /// the same region, unless a copy already sits within 50 km of the
    /// reader.
    pub fn new(threshold: u64) -> Self {
        LatencyReductionPolicy {
            threshold: threshold.max(1),
            near_km: 50.0,
            counts: BTreeMap::new(),
        }
    }

    /// Adjusts the "close enough" radius.
    pub fn with_near_km(mut self, near_km: f64) -> Self {
        self.near_km = near_km;
        self
    }
}

impl PlacementPolicy for LatencyReductionPolicy {
    fn on_access(
        &mut self,
        guid: Key,
        site: &NodeSite,
        _now: SimTime,
        directory: &[NodeSite],
        holders: &[NodeIndex],
    ) -> Vec<PlacementAction> {
        let count = self.counts.entry((guid, site.region.clone())).or_insert(0);
        *count += 1;
        if *count != self.threshold {
            return Vec::new();
        }
        // Already a copy geographically close to the reader?
        let close_already = directory
            .iter()
            .filter(|s| holders.contains(&s.node))
            .any(|s| s.geo.distance_km(site.geo) <= self.near_km);
        if close_already {
            return Vec::new();
        }
        // Replicate to the node nearest the reader (often the reader's
        // own storage unit).
        directory
            .iter()
            .min_by(|a, b| {
                a.geo
                    .distance_km(site.geo)
                    .partial_cmp(&b.geo.distance_km(site.geo))
                    .expect("finite distances")
            })
            .map(|s| vec![PlacementAction::ReplicateTo { guid, target: s.node }])
            .unwrap_or_default()
    }

    fn on_create(
        &mut self,
        _guid: Key,
        _site: &NodeSite,
        _now: SimTime,
        _directory: &[NodeSite],
        _holders: &[NodeIndex],
    ) -> Vec<PlacementAction> {
        Vec::new()
    }
}

/// Pushes a replica to a geographically remote node (≥ `min_km` away)
/// immediately on creation.
#[derive(Debug, Clone)]
pub struct BackupPolicy {
    min_km: f64,
}

impl BackupPolicy {
    /// Creates a backup policy requiring at least `min_km` of separation.
    pub fn new(min_km: f64) -> Self {
        BackupPolicy { min_km }
    }
}

impl PlacementPolicy for BackupPolicy {
    fn on_access(
        &mut self,
        _guid: Key,
        _site: &NodeSite,
        _now: SimTime,
        _directory: &[NodeSite],
        _holders: &[NodeIndex],
    ) -> Vec<PlacementAction> {
        Vec::new()
    }

    fn on_create(
        &mut self,
        guid: Key,
        site: &NodeSite,
        _now: SimTime,
        directory: &[NodeSite],
        holders: &[NodeIndex],
    ) -> Vec<PlacementAction> {
        // Is any existing holder already remote enough?
        let holder_sites: Vec<&NodeSite> =
            directory.iter().filter(|s| holders.contains(&s.node)).collect();
        if holder_sites.iter().any(|s| s.geo.distance_km(site.geo) >= self.min_km) {
            return Vec::new();
        }
        // Choose the closest node that satisfies the distance bound, so
        // the backup is remote but not needlessly far.
        directory
            .iter()
            .filter(|s| s.geo.distance_km(site.geo) >= self.min_km)
            .min_by(|a, b| {
                a.geo
                    .distance_km(site.geo)
                    .partial_cmp(&b.geo.distance_km(site.geo))
                    .expect("finite distances")
            })
            .map(|s| vec![PlacementAction::ReplicateTo { guid, target: s.node }])
            .unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn site(node: u32, region: &str, lat: f64, lon: f64) -> NodeSite {
        NodeSite { node: NodeIndex(node), geo: GeoPoint::new(lat, lon), region: region.into() }
    }

    fn directory() -> Vec<NodeSite> {
        vec![
            site(0, "scotland", 56.3, -3.0),
            site(1, "scotland", 56.0, -3.5),
            site(2, "australia", -33.9, 151.2),
            site(3, "australia", -37.8, 145.0),
        ]
    }

    #[test]
    fn latency_policy_replicates_after_threshold() {
        let mut p = LatencyReductionPolicy::new(3);
        let guid = Key::hash_of_str("doc");
        let dir = directory();
        let reader = &dir[2]; // australia
        let holders = [NodeIndex(0)];
        let now = SimTime::ZERO;
        assert!(p.on_access(guid, reader, now, &dir, &holders).is_empty());
        assert!(p.on_access(guid, reader, now, &dir, &holders).is_empty());
        let actions = p.on_access(guid, reader, now, &dir, &holders);
        assert_eq!(
            actions,
            vec![PlacementAction::ReplicateTo { guid, target: NodeIndex(2) }],
            "third access from australia triggers a replica there"
        );
        // Only fires once at the threshold crossing.
        assert!(p.on_access(guid, reader, now, &dir, &holders).is_empty());
    }

    #[test]
    fn latency_policy_skips_if_a_copy_is_already_close() {
        let mut p = LatencyReductionPolicy::new(1);
        let guid = Key::hash_of_str("doc");
        let dir = directory();
        // The reader itself already holds a copy: nothing to do.
        let holders = [NodeIndex(2)];
        let actions = p.on_access(guid, &dir[2], SimTime::ZERO, &dir, &holders);
        assert!(actions.is_empty());
        // A copy in the same *region* but 700 km away is not close enough.
        let mut p = LatencyReductionPolicy::new(1);
        let holders = [NodeIndex(3)]; // melbourne vs sydney reader
        let actions = p.on_access(guid, &dir[2], SimTime::ZERO, &dir, &holders);
        assert_eq!(actions.len(), 1);
    }

    #[test]
    fn latency_policy_counts_regions_independently() {
        let mut p = LatencyReductionPolicy::new(2);
        let guid = Key::hash_of_str("doc");
        let dir = directory();
        let holders = [NodeIndex(0)];
        assert!(p.on_access(guid, &dir[2], SimTime::ZERO, &dir, &holders).is_empty());
        // One access from scotland does not advance australia's count.
        assert!(p.on_access(guid, &dir[1], SimTime::ZERO, &dir, &holders).is_empty());
        let actions = p.on_access(guid, &dir[2], SimTime::ZERO, &dir, &holders);
        assert_eq!(actions.len(), 1);
    }

    #[test]
    fn backup_policy_picks_remote_node_on_create() {
        let mut p = BackupPolicy::new(5000.0);
        let guid = Key::hash_of_str("doc");
        let dir = directory();
        let primary = &dir[0]; // scotland
        let actions = p.on_create(guid, primary, SimTime::ZERO, &dir, &[NodeIndex(0)]);
        assert_eq!(actions.len(), 1);
        match &actions[0] {
            PlacementAction::ReplicateTo { target, .. } => {
                assert!(
                    *target == NodeIndex(2) || *target == NodeIndex(3),
                    "backup must be in australia, got {target}"
                );
            }
        }
    }

    #[test]
    fn backup_policy_satisfied_by_existing_remote_holder() {
        let mut p = BackupPolicy::new(5000.0);
        let guid = Key::hash_of_str("doc");
        let dir = directory();
        let actions =
            p.on_create(guid, &dir[0], SimTime::ZERO, &dir, &[NodeIndex(0), NodeIndex(2)]);
        assert!(actions.is_empty());
    }

    #[test]
    fn backup_policy_no_candidate_is_noop() {
        let mut p = BackupPolicy::new(50_000.0); // farther than any point on earth
        let guid = Key::hash_of_str("doc");
        let dir = directory();
        assert!(p.on_create(guid, &dir[0], SimTime::ZERO, &dir, &[NodeIndex(0)]).is_empty());
    }
}
