//! Simulation harness for the storage layer: insert/lookup workloads,
//! cache experiments, healing under churn, and erasure-coded storage.

use crate::document::{Document, Priority};
use crate::erasure::{ErasureCode, ErasureError};
use crate::placement::NodeSite;
use crate::repair::FragmentManifest;
use crate::store_node::{LookupOutcome, StoreConfig, StoreMsg, StoreNode, StorePayload};
use gloss_overlay::{Key, OverlayMsg, OverlayNode};
use gloss_sim::{Input, Node, NodeIndex, Outbox, SimDuration, SimRng, SimTime, Topology, World};
use std::collections::BTreeMap;

/// Convenient alias: the outcome of one lookup.
pub type LookupResult = LookupOutcome;

/// The world node wrapping a [`StoreNode`].
#[derive(Debug)]
pub struct StoreWorldNode {
    /// The storage state machine.
    pub store: StoreNode,
}

impl Node for StoreWorldNode {
    type Msg = StoreMsg;

    fn handle(&mut self, now: SimTime, input: Input<StoreMsg>, out: &mut Outbox<StoreMsg>) {
        match input {
            Input::Start => self.store.on_start(out),
            Input::Timer { tag } => self.store.on_timer(now, tag, out),
            Input::Msg { from, msg } => self.store.handle(now, from, msg, out),
        }
    }
}

/// A storage network over the overlay, on a simulated wide-area topology.
///
/// See the [crate docs](crate) for an example.
#[derive(Debug)]
pub struct StoreNetwork {
    world: World<StoreWorldNode>,
    next_req: u64,
    req_origin: BTreeMap<u64, NodeIndex>,
    rng: SimRng,
}

impl StoreNetwork {
    /// Builds `n` storage nodes over a fresh overlay, scattered across six
    /// world regions.
    pub fn build(n: usize, cfg: StoreConfig, seed: u64) -> Self {
        let topology = Topology::random(
            n,
            &["scotland", "england", "europe", "us-east", "us-west", "australia"],
            seed,
        );
        Self::build_on(topology, cfg, seed)
    }

    /// Builds the storage network over an explicit topology.
    pub fn build_on(topology: Topology, cfg: StoreConfig, seed: u64) -> Self {
        let n = topology.len();
        let mut rng = SimRng::new(seed).fork("store-net");
        let directory: Vec<NodeSite> = topology
            .iter()
            .map(|info| NodeSite::new(info.index, info.geo, info.region.clone()))
            .collect();
        let mut nodes = Vec::with_capacity(n);
        for i in 0..n {
            let idx = NodeIndex(i as u32);
            let key = Key::hash_of(format!("store-node-{i}-{seed}").as_bytes());
            let (bootstrap, delay) = if i == 0 {
                (None, SimDuration::ZERO)
            } else {
                let b = NodeIndex(rng.index(i) as u32);
                (Some(b), SimDuration::from_millis(200) * i as u64)
            };
            let overlay: OverlayNode<StorePayload> = OverlayNode::new(key, idx, bootstrap, delay)
                .with_probe_interval(SimDuration::from_secs(5))
                .with_governor(gloss_overlay::GovernorConfig::default(), seed ^ ((i as u64) << 17));
            let store = StoreNode::new(idx, overlay, cfg.clone(), directory.clone());
            nodes.push(StoreWorldNode { store });
        }
        let world = World::new(topology, seed, nodes);
        StoreNetwork { world, next_req: 0, req_origin: BTreeMap::new(), rng }
    }

    /// Runs the simulation long enough for all joins to complete.
    pub fn settle(&mut self) {
        let n = self.world.topology().len() as u64;
        self.run_for(SimDuration::from_millis(200) * n + SimDuration::from_secs(60));
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.world.topology().len()
    }

    /// Whether the network is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A uniformly random node.
    pub fn random_node(&mut self) -> NodeIndex {
        NodeIndex(self.rng.index(self.len()) as u32)
    }

    /// A random node in the given region, if any.
    pub fn random_node_in(&mut self, region: &str) -> Option<NodeIndex> {
        let nodes: Vec<NodeIndex> =
            self.world.topology().in_region(region).map(|i| i.index).collect();
        self.rng.choose(&nodes).copied()
    }

    /// Advances the simulation.
    pub fn run_for(&mut self, d: SimDuration) {
        self.world.run_for(d);
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.world.now()
    }

    /// The underlying world.
    pub fn world(&self) -> &World<StoreWorldNode> {
        &self.world
    }

    /// Mutable world access (failure injection etc.).
    pub fn world_mut(&mut self) -> &mut World<StoreWorldNode> {
        &mut self.world
    }

    /// Inserts a document from `node`.
    pub fn insert(&mut self, node: NodeIndex, mut doc: Document) {
        doc.stamp(self.world.now());
        let guid = doc.guid;
        self.world.inject(
            node,
            node,
            StoreMsg::Overlay(OverlayMsg::Route {
                target: guid,
                payload: StorePayload::Insert { doc },
                origin: node,
                hops: 0,
            }),
        );
    }

    /// Looks up `guid` from `node`; returns the request id.
    pub fn lookup(&mut self, node: NodeIndex, guid: Key) -> u64 {
        self.next_req += 1;
        let id = self.next_req;
        self.req_origin.insert(id, node);
        let now = self.world.now();
        self.world.inject(
            node,
            node,
            StoreMsg::Overlay(OverlayMsg::Route {
                target: guid,
                payload: StorePayload::Lookup {
                    guid,
                    reply_to: node,
                    req_id: id,
                    issued_at: now,
                    path: Vec::new(),
                    min_version: 0,
                },
                origin: node,
                hops: 0,
            }),
        );
        id
    }

    /// Originates a lookup through the node's full client path — local
    /// fast path, routing, and the retry/backoff plane. Unlike
    /// [`lookup`](Self::lookup) (a raw injected route), an unanswered
    /// request here is re-routed with exponential backoff and concludes
    /// as a timeout outcome once the attempt budget is spent.
    pub fn lookup_retrying(&mut self, node: NodeIndex, guid: Key) -> u64 {
        self.next_req += 1;
        let id = self.next_req;
        self.req_origin.insert(id, node);
        self.world.inject(node, node, StoreMsg::LocalLookup { guid, req_id: id });
        id
    }

    /// The outcome of a lookup, if concluded.
    pub fn result(&self, req_id: u64) -> Option<&LookupResult> {
        let origin = self.req_origin.get(&req_id)?;
        self.world.node(*origin).store.outcomes.get(&req_id)
    }

    /// How many *alive* nodes durably hold `guid`.
    pub fn replica_count(&self, guid: Key) -> usize {
        (0..self.len() as u32)
            .map(NodeIndex)
            .filter(|&i| self.world.is_alive(i) && self.world.node(i).store.holds(guid))
            .count()
    }

    /// How many nodes hold `guid` in cache.
    pub fn cache_count(&self, guid: Key) -> usize {
        (0..self.len() as u32)
            .map(NodeIndex)
            .filter(|&i| self.world.node(i).store.has_cached(guid))
            .count()
    }

    /// Crashes a node.
    pub fn crash(&mut self, node: NodeIndex) {
        self.world.crash(node);
    }

    /// Crashes every node in `region` (correlated machine-room loss);
    /// returns how many went down.
    pub fn crash_region(&mut self, region: &str) -> usize {
        let victims: Vec<NodeIndex> =
            self.world.topology().in_region(region).map(|i| i.index).collect();
        for &v in &victims {
            self.world.crash(v);
        }
        victims.len()
    }

    /// Nodes currently alive.
    pub fn alive_count(&self) -> usize {
        (0..self.len() as u32).map(NodeIndex).filter(|&i| self.world.is_alive(i)).count()
    }

    /// A metrics counter's current value (e.g. `store.repair_puts`).
    pub fn counter(&self, name: &str) -> f64 {
        self.world.metrics().counter(name)
    }

    /// Inserts `content` as `(m, n)` erasure-coded shards named
    /// `name#shard{i}` plus a `name#manifest` document (whose primary
    /// becomes the object's repair coordinator); returns the shard GUIDs
    /// in index order. All documents carry `priority`.
    ///
    /// # Errors
    ///
    /// Returns [`ErasureError`] for invalid `(m, n)`.
    pub fn insert_erasure_priority(
        &mut self,
        node: NodeIndex,
        name: &str,
        content: &[u8],
        m: usize,
        n: usize,
        priority: Priority,
    ) -> Result<Vec<Key>, ErasureError> {
        let code = ErasureCode::new(m, n)?;
        let shards = code.encode(content);
        let mut guids = Vec::with_capacity(n);
        for (i, shard) in shards.into_iter().enumerate() {
            let doc = Document::new(format!("{name}#shard{i}"), shard).with_priority(priority);
            guids.push(doc.guid);
            self.insert(node, doc);
        }
        let manifest = FragmentManifest { base: name.to_string(), m, n, len: content.len() };
        self.insert(node, manifest.to_doc(priority));
        Ok(guids)
    }

    /// [`insert_erasure_priority`](Self::insert_erasure_priority) at
    /// [`Priority::Normal`].
    ///
    /// # Errors
    ///
    /// Returns [`ErasureError`] for invalid `(m, n)`.
    pub fn insert_erasure(
        &mut self,
        node: NodeIndex,
        name: &str,
        content: &[u8],
        m: usize,
        n: usize,
    ) -> Result<Vec<Key>, ErasureError> {
        self.insert_erasure_priority(node, name, content, m, n, Priority::Normal)
    }

    /// How many of the `n` shards of erasure object `name` still have at
    /// least one alive durable holder.
    pub fn shards_alive(&self, name: &str, n: usize) -> usize {
        (0..n)
            .filter(|&i| {
                let guid = Key::hash_of_str(&FragmentManifest::shard_name(name, i));
                self.replica_count(guid) > 0
            })
            .count()
    }

    /// Fetches and reconstructs an erasure-coded object by issuing
    /// lookups for all shards; call after [`run_for`](Self::run_for) has
    /// let the lookups conclude, passing the ids returned here.
    pub fn lookup_erasure(&mut self, node: NodeIndex, shard_guids: &[Key]) -> Vec<u64> {
        shard_guids.iter().map(|g| self.lookup(node, *g)).collect()
    }

    /// Attempts reconstruction from the concluded shard lookups.
    ///
    /// # Errors
    ///
    /// Returns [`ErasureError::NotEnoughShards`] when too few shards were
    /// retrievable.
    pub fn reconstruct(
        &self,
        req_ids: &[u64],
        m: usize,
        n: usize,
        len: usize,
    ) -> Result<Vec<u8>, ErasureError> {
        let code = ErasureCode::new(m, n)?;
        let mut shards = Vec::new();
        for (i, id) in req_ids.iter().enumerate() {
            if let Some(r) = self.result(*id) {
                if let Some(doc) = &r.doc {
                    shards.push((i, doc.content.to_vec()));
                }
            }
        }
        code.decode(&shards, len)
    }

    /// Mean lookup latency in milliseconds (from the world histogram).
    pub fn mean_lookup_ms(&self) -> f64 {
        self.world.metrics().summary("store.lookup_ms").mean
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn settled(n: usize, cfg: StoreConfig, seed: u64) -> StoreNetwork {
        let mut net = StoreNetwork::build(n, cfg, seed);
        net.settle();
        net
    }

    #[test]
    fn insert_then_lookup_from_elsewhere() {
        let mut net = settled(16, StoreConfig::default(), 11);
        let writer = NodeIndex(2);
        let reader = NodeIndex(13);
        let doc = Document::new("menu", b"pistachio, vanilla".to_vec());
        net.insert(writer, doc.clone());
        net.run_for(SimDuration::from_secs(30));
        assert!(net.replica_count(doc.guid) >= 1);
        let id = net.lookup(reader, doc.guid);
        net.run_for(SimDuration::from_secs(30));
        let r = net.result(id).expect("lookup concluded");
        assert_eq!(r.doc.as_ref().unwrap().content, doc.content);
    }

    #[test]
    fn replication_reaches_k_nodes() {
        let cfg = StoreConfig { replicas: 3, ..Default::default() };
        let mut net = settled(16, cfg, 12);
        let doc = Document::new("replicated-doc", vec![7u8; 64]);
        net.insert(NodeIndex(0), doc.clone());
        net.run_for(SimDuration::from_secs(60));
        assert!(net.replica_count(doc.guid) >= 3, "got {} replicas", net.replica_count(doc.guid));
    }

    #[test]
    fn missing_guid_concludes_not_found() {
        let mut net = settled(12, StoreConfig::default(), 13);
        let id = net.lookup(NodeIndex(3), Key::hash_of_str("never-inserted"));
        net.run_for(SimDuration::from_secs(30));
        let r = net.result(id).expect("concluded");
        assert!(r.doc.is_none());
    }

    #[test]
    fn repeated_reads_hit_cache_and_get_faster() {
        let mut net = settled(20, StoreConfig::default(), 14);
        let doc = Document::new("hot-doc", vec![1u8; 256]);
        net.insert(NodeIndex(0), doc.clone());
        net.run_for(SimDuration::from_secs(30));
        let reader = NodeIndex(19);
        let first = net.lookup(reader, doc.guid);
        net.run_for(SimDuration::from_secs(30));
        let first_latency = net.result(first).unwrap().latency;
        let second = net.lookup(reader, doc.guid);
        net.run_for(SimDuration::from_secs(30));
        let r2 = net.result(second).unwrap();
        assert!(r2.from_cache || r2.latency < first_latency);
        assert!(
            r2.latency < first_latency,
            "cached read {:?} not faster than first {:?}",
            r2.latency,
            first_latency
        );
    }

    #[test]
    fn healing_restores_replica_count_after_crash() {
        let cfg = StoreConfig {
            replicas: 3,
            heal_interval: SimDuration::from_secs(10),
            ..Default::default()
        };
        let mut net = settled(16, cfg, 15);
        let doc = Document::new("precious", vec![9u8; 128]);
        net.insert(NodeIndex(1), doc.clone());
        net.run_for(SimDuration::from_secs(40));
        let before = net.replica_count(doc.guid);
        assert!(before >= 3);
        // Crash one replica holder.
        let holder = (0..net.len() as u32)
            .map(NodeIndex)
            .find(|&i| net.world().node(i).store.holds(doc.guid))
            .unwrap();
        net.crash(holder);
        assert!(net.replica_count(doc.guid) < before);
        // Probes detect the death (~20 s), heal runs every 10 s.
        net.run_for(SimDuration::from_secs(120));
        assert!(
            net.replica_count(doc.guid) >= 3,
            "healed back to {} replicas",
            net.replica_count(doc.guid)
        );
    }

    #[test]
    fn erasure_round_trip_with_node_loss() {
        let cfg = StoreConfig { replicas: 1, ..Default::default() };
        let mut net = settled(20, cfg, 16);
        let content: Vec<u8> = (0..500u32).map(|i| (i % 251) as u8).collect();
        let guids = net.insert_erasure(NodeIndex(0), "big-object", &content, 4, 8).unwrap();
        net.run_for(SimDuration::from_secs(30));
        // Crash three arbitrary nodes; any 4 of 8 shards suffice.
        for i in [3u32, 7, 11] {
            net.crash(NodeIndex(i));
        }
        net.run_for(SimDuration::from_secs(60));
        let reader = NodeIndex(19);
        let ids = net.lookup_erasure(reader, &guids);
        net.run_for(SimDuration::from_secs(60));
        let restored = net.reconstruct(&ids, 4, 8, content.len()).unwrap();
        assert_eq!(restored, content);
    }

    #[test]
    fn crash_purges_replica_location_maps_network_wide() {
        let cfg = StoreConfig {
            replicas: 3,
            heal_interval: SimDuration::from_secs(10),
            ..Default::default()
        };
        let mut net = settled(16, cfg, 21);
        let doc = Document::new("tracked-doc", vec![3u8; 128]);
        net.insert(NodeIndex(0), doc.clone());
        net.run_for(SimDuration::from_secs(40));
        // Find the primary (the holder that believes it is responsible)
        // and one acknowledged replica holder to kill.
        let primary = (0..net.len() as u32)
            .map(NodeIndex)
            .find(|&i| {
                let s = &net.world().node(i).store;
                s.holds(doc.guid) && s.is_primary_for(doc.guid) && s.known_replicas(doc.guid) > 0
            })
            .expect("a primary with acknowledged replicas");
        let victim = (0..net.len() as u32)
            .map(NodeIndex)
            .find(|&i| i != primary && net.world().node(i).store.holds(doc.guid))
            .expect("a replica holder");
        net.crash(victim);
        // Probes detect the death; every node's failure drain then purges
        // the dead peer from its location maps.
        net.run_for(SimDuration::from_secs(90));
        assert!(
            net.counter("store.locations_purged") >= 1.0,
            "crash purged at least one location entry"
        );
        assert!(
            net.replica_count(doc.guid) >= 3,
            "repair restored redundancy to {} alive holders",
            net.replica_count(doc.guid)
        );
    }

    #[test]
    fn high_priority_documents_get_extra_replicas() {
        let cfg = StoreConfig {
            replicas: 2,
            tier_high_extra: 2,
            repair_interval: Some(SimDuration::from_secs(10)),
            ..Default::default()
        };
        let mut net = settled(16, cfg, 22);
        let high = Document::new("vital", vec![8u8; 64]).with_priority(Priority::High);
        let low = Document::new("scratch", vec![8u8; 64]).with_priority(Priority::Low);
        net.insert(NodeIndex(0), high.clone());
        net.insert(NodeIndex(1), low.clone());
        // The repair scan tops the high-tier doc up to replicas +
        // tier_high_extra even though initial placement may find fewer
        // usable targets.
        net.run_for(SimDuration::from_secs(90));
        assert!(
            net.replica_count(high.guid) >= 4,
            "high tier reached {} copies",
            net.replica_count(high.guid)
        );
        assert!(net.replica_count(low.guid) >= 1);
    }

    #[test]
    fn retrying_lookup_concludes_even_when_every_holder_crashed() {
        let cfg = StoreConfig { replicas: 2, ..Default::default() };
        let mut net = settled(16, cfg, 31);
        let doc = Document::new("fragile", vec![9u8; 64]);
        net.insert(NodeIndex(0), doc.clone());
        net.run_for(SimDuration::from_secs(30));
        let victims: Vec<NodeIndex> = (0..net.len() as u32)
            .map(NodeIndex)
            .filter(|&i| net.world().node(i).store.holds(doc.guid))
            .collect();
        assert!(!victims.is_empty());
        let reader = (0..net.len() as u32)
            .map(NodeIndex)
            .find(|i| !victims.contains(i))
            .expect("a surviving reader");
        for v in victims {
            net.crash(v);
        }
        // A raw routed lookup towards a dead holder would hang forever;
        // the client-path lookup re-routes with backoff and concludes —
        // as not-found or a timeout — within the retry budget.
        let id = net.lookup_retrying(reader, doc.guid);
        net.run_for(SimDuration::from_secs(90));
        let r = net.result(id).expect("lookup never concluded despite retry plane");
        assert!(r.doc.is_none(), "every durable copy died with the crash");
    }

    #[test]
    fn fragment_repair_recreates_lost_shards() {
        let cfg = StoreConfig {
            replicas: 2,
            heal_interval: SimDuration::from_secs(10),
            repair_interval: Some(SimDuration::from_secs(10)),
            ..Default::default()
        };
        let mut net = settled(20, cfg, 23);
        let content: Vec<u8> = (0..600u32).map(|i| (i * 7 % 251) as u8).collect();
        net.insert_erasure(NodeIndex(0), "sharded", &content, 3, 6).unwrap();
        net.run_for(SimDuration::from_secs(40));
        assert_eq!(net.shards_alive("sharded", 6), 6);
        // Kill every durable holder of shard 4: no surviving copy, so
        // only re-encoding from the other shards can bring it back.
        let g4 = Key::hash_of_str("sharded#shard4");
        let victims: Vec<NodeIndex> = (0..net.len() as u32)
            .map(NodeIndex)
            .filter(|&i| net.world().is_alive(i) && net.world().node(i).store.holds(g4))
            .collect();
        assert!(!victims.is_empty());
        for v in victims {
            net.crash(v);
        }
        assert!(net.shards_alive("sharded", 6) < 6, "shard 4 is gone");
        net.run_for(SimDuration::from_secs(240));
        assert_eq!(
            net.shards_alive("sharded", 6),
            6,
            "repair pipeline re-encoded the lost shard from survivors"
        );
        assert!(net.counter("store.repair_shards") >= 1.0);
    }

    #[test]
    fn backup_policy_creates_remote_replica() {
        let cfg =
            StoreConfig { replicas: 1, backup_policy_min_km: Some(5_000.0), ..Default::default() };
        let mut net = settled(18, cfg, 17);
        let doc = Document::new("backup-me", vec![5u8; 64]);
        net.insert(NodeIndex(0), doc.clone());
        net.run_for(SimDuration::from_secs(60));
        // Find holders and check at least two are far apart.
        let holders: Vec<NodeIndex> = (0..net.len() as u32)
            .map(NodeIndex)
            .filter(|&i| net.world().node(i).store.holds(doc.guid))
            .collect();
        assert!(holders.len() >= 2, "backup replica created");
        let far = holders.iter().any(|&a| {
            holders.iter().any(|&b| {
                net.world().topology().node(a).geo.distance_km(net.world().topology().node(b).geo)
                    >= 5_000.0
            })
        });
        assert!(far, "some pair of holders is geographically remote");
    }

    #[test]
    fn latency_policy_pulls_data_toward_readers() {
        let cfg = StoreConfig {
            replicas: 1,
            cache_enabled: false, // isolate the policy effect from caching
            latency_policy_threshold: Some(3),
            ..Default::default()
        };
        let mut net = settled(18, cfg, 18);
        let doc = Document::new("personal-data", vec![2u8; 64]);
        net.insert(NodeIndex(0), doc.clone());
        net.run_for(SimDuration::from_secs(30));
        let reader = net.random_node_in("australia").unwrap();
        // Read repeatedly from Australia.
        let mut latencies = Vec::new();
        for _ in 0..6 {
            let id = net.lookup(reader, doc.guid);
            net.run_for(SimDuration::from_secs(20));
            latencies.push(net.result(id).unwrap().latency);
        }
        let first = latencies.first().unwrap();
        let last = latencies.last().unwrap();
        assert!(last < first, "policy should cut read latency: first {first}, last {last}");
    }
}
