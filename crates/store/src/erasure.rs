//! Systematic Reed–Solomon erasure coding over GF(2⁸).
//!
//! "The schemes for storing replicated copies of data vary from simple
//! block copying to erasure-codes which permit data to be reconstituted
//! from a subset of the servers on which it is stored." (§3)
//!
//! An `(m, n)` code splits data into `m` data shards and computes `n - m`
//! parity shards; **any** `m` of the `n` shards reconstruct the original.
//! The encoding matrix is a Vandermonde matrix normalised so its top
//! `m × m` block is the identity (making the code systematic: the first
//! `m` shards are the plain data).

use std::error::Error;
use std::fmt;

/// An erasure coding failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ErasureError {
    /// Parameters out of range (`0 < m <= n <= 255` required).
    BadParameters {
        /// Requested data shards.
        m: usize,
        /// Requested total shards.
        n: usize,
    },
    /// Fewer than `m` distinct shards supplied to `decode`.
    NotEnoughShards {
        /// Shards needed.
        needed: usize,
        /// Shards supplied.
        got: usize,
    },
    /// Shards had inconsistent lengths or invalid indices.
    MalformedShards(String),
}

impl fmt::Display for ErasureError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ErasureError::BadParameters { m, n } => {
                write!(f, "invalid erasure parameters ({m}, {n})")
            }
            ErasureError::NotEnoughShards { needed, got } => {
                write!(f, "need {needed} shards to reconstruct, got {got}")
            }
            ErasureError::MalformedShards(msg) => write!(f, "malformed shards: {msg}"),
        }
    }
}

impl Error for ErasureError {}

// --- GF(2^8) arithmetic with generator polynomial 0x11d ---

const GF_POLY: u16 = 0x11d;

/// Exp/log tables built once per process.
fn tables() -> &'static ([u8; 512], [u8; 256]) {
    use std::sync::OnceLock;
    static TABLES: OnceLock<([u8; 512], [u8; 256])> = OnceLock::new();
    TABLES.get_or_init(|| {
        let mut exp = [0u8; 512];
        let mut log = [0u8; 256];
        let mut x: u16 = 1;
        for (i, e) in exp.iter_mut().enumerate().take(255) {
            *e = x as u8;
            log[x as usize] = i as u8;
            x <<= 1;
            if x & 0x100 != 0 {
                x ^= GF_POLY;
            }
        }
        for i in 255..512 {
            exp[i] = exp[i - 255];
        }
        (exp, log)
    })
}

fn gf_mul(a: u8, b: u8) -> u8 {
    if a == 0 || b == 0 {
        return 0;
    }
    let (exp, log) = tables();
    exp[log[a as usize] as usize + log[b as usize] as usize]
}

fn gf_inv(a: u8) -> u8 {
    assert!(a != 0, "inverse of zero");
    let (exp, log) = tables();
    exp[255 - log[a as usize] as usize]
}

fn gf_pow(a: u8, e: usize) -> u8 {
    if e == 0 {
        return 1;
    }
    if a == 0 {
        return 0;
    }
    let (exp, log) = tables();
    exp[(log[a as usize] as usize * e) % 255]
}

/// Inverts an `m × m` matrix over GF(2⁸) (Gauss–Jordan).
fn invert(matrix: &[Vec<u8>]) -> Option<Vec<Vec<u8>>> {
    let m = matrix.len();
    let mut a: Vec<Vec<u8>> = matrix.to_vec();
    let mut inv: Vec<Vec<u8>> =
        (0..m).map(|i| (0..m).map(|j| u8::from(i == j)).collect()).collect();
    for col in 0..m {
        // Find a pivot.
        let pivot = (col..m).find(|&r| a[r][col] != 0)?;
        a.swap(col, pivot);
        inv.swap(col, pivot);
        let scale = gf_inv(a[col][col]);
        for j in 0..m {
            a[col][j] = gf_mul(a[col][j], scale);
            inv[col][j] = gf_mul(inv[col][j], scale);
        }
        for r in 0..m {
            if r != col && a[r][col] != 0 {
                let factor = a[r][col];
                for j in 0..m {
                    a[r][j] ^= gf_mul(factor, a[col][j]);
                    inv[r][j] ^= gf_mul(factor, inv[col][j]);
                }
            }
        }
    }
    Some(inv)
}

/// Shard length below which building a 256-entry multiplication table is
/// not amortised and the plain exp/log path wins.
const MUL_TABLE_MIN_LEN: usize = 64;

/// The full multiplication row `coef · x` for every byte `x`, built with
/// 255 table lookups and then amortised over the whole shard: the inner
/// loop becomes one load per byte instead of two log lookups, an add,
/// and an exp lookup.
fn mul_table(coef: u8) -> [u8; 256] {
    let (exp, log) = tables();
    let mut t = [0u8; 256];
    let lc = log[coef as usize] as usize;
    for (x, slot) in t.iter_mut().enumerate().skip(1) {
        *slot = exp[lc + log[x] as usize];
    }
    t
}

/// `out ^= src`, eight bytes at a time (the identity-coefficient rows of
/// the systematic matrix, and any other coefficient-1 term).
fn xor_assign(out: &mut [u8], src: &[u8]) {
    let mut o = out.chunks_exact_mut(8);
    let mut s = src.chunks_exact(8);
    for (oc, sc) in o.by_ref().zip(s.by_ref()) {
        let x = u64::from_ne_bytes(oc.try_into().expect("8-byte chunk"))
            ^ u64::from_ne_bytes(sc.try_into().expect("8-byte chunk"));
        oc.copy_from_slice(&x.to_ne_bytes());
    }
    for (o, &b) in o.into_remainder().iter_mut().zip(s.remainder()) {
        *o ^= b;
    }
}

/// `out[i] ^= table[src[i]]`, unrolled in 8-byte strides so the loads
/// pipeline (a table lookup per byte is unavoidable without SIMD
/// gather, but the XOR accumulation needn't serialise on it).
fn mul_xor(out: &mut [u8], src: &[u8], table: &[u8; 256]) {
    let o = out.chunks_exact_mut(8);
    let s = src.chunks_exact(8);
    let (otail, stail) = (o.len() * 8, s.len() * 8);
    for (oc, sc) in o.zip(s) {
        oc[0] ^= table[sc[0] as usize];
        oc[1] ^= table[sc[1] as usize];
        oc[2] ^= table[sc[2] as usize];
        oc[3] ^= table[sc[3] as usize];
        oc[4] ^= table[sc[4] as usize];
        oc[5] ^= table[sc[5] as usize];
        oc[6] ^= table[sc[6] as usize];
        oc[7] ^= table[sc[7] as usize];
    }
    for (o, &b) in out[otail..].iter_mut().zip(&src[stail..]) {
        *o ^= table[b as usize];
    }
}

/// Multiplies matrix rows by data columns: `rows` is `r × m`, `shards` is
/// `m` equal-length slices; returns `r` output shards.
///
/// Each nonzero coefficient's multiplication table is built once per row
/// use and amortised over the shard length; coefficient 1 (the whole
/// systematic half of the encode matrix) degenerates to a word-wide XOR.
fn matmul(rows: &[Vec<u8>], shards: &[&[u8]]) -> Vec<Vec<u8>> {
    let len = shards.first().map_or(0, |s| s.len());
    rows.iter()
        .map(|row| {
            let mut out = vec![0u8; len];
            for (coef, shard) in row.iter().zip(shards) {
                match *coef {
                    0 => {}
                    1 => xor_assign(&mut out, shard),
                    c if len >= MUL_TABLE_MIN_LEN => mul_xor(&mut out, shard, &mul_table(c)),
                    c => {
                        for (o, &b) in out.iter_mut().zip(shard.iter()) {
                            *o ^= gf_mul(c, b);
                        }
                    }
                }
            }
            out
        })
        .collect()
}

/// A systematic `(m, n)` Reed–Solomon code.
///
/// # Example
///
/// ```
/// use gloss_store::ErasureCode;
/// let code = ErasureCode::new(4, 7)?; // tolerate any 3 losses
/// let data = b"the knowledge base of the global matching engine".to_vec();
/// let shards = code.encode(&data);
/// // Lose three shards, keep any four:
/// let kept: Vec<(usize, Vec<u8>)> =
///     [6, 2, 5, 0].iter().map(|&i| (i, shards[i].clone())).collect();
/// let restored = code.decode(&kept, data.len())?;
/// assert_eq!(restored, data);
/// # Ok::<(), gloss_store::ErasureError>(())
/// ```
#[derive(Debug, Clone)]
pub struct ErasureCode {
    m: usize,
    n: usize,
    /// The full `n × m` encoding matrix (top `m` rows = identity).
    rows: Vec<Vec<u8>>,
}

impl ErasureCode {
    /// Creates an `(m, n)` code: `m` data shards, `n` total.
    ///
    /// # Errors
    ///
    /// Returns [`ErasureError::BadParameters`] unless `0 < m <= n <= 255`.
    pub fn new(m: usize, n: usize) -> Result<Self, ErasureError> {
        if m == 0 || n < m || n > 255 {
            return Err(ErasureError::BadParameters { m, n });
        }
        // Vandermonde rows v[i][j] = (i+1)^j, then normalise so the top
        // m×m block becomes the identity: E = V · (V_top)⁻¹. Every m×m
        // submatrix of a Vandermonde with distinct points is invertible,
        // and right-multiplication preserves that property.
        let v: Vec<Vec<u8>> =
            (0..n).map(|i| (0..m).map(|j| gf_pow((i + 1) as u8, j)).collect()).collect();
        let top: Vec<Vec<u8>> = v[..m].to_vec();
        let top_inv = invert(&top).expect("vandermonde top block is invertible");
        let rows: Vec<Vec<u8>> = (0..n)
            .map(|i| {
                (0..m)
                    .map(|j| {
                        let mut acc = 0u8;
                        for (k, inv_row) in top_inv.iter().enumerate() {
                            acc ^= gf_mul(v[i][k], inv_row[j]);
                        }
                        acc
                    })
                    .collect()
            })
            .collect();
        Ok(ErasureCode { m, n, rows })
    }

    /// Data shards per object.
    pub fn data_shards(&self) -> usize {
        self.m
    }

    /// Total shards per object.
    pub fn total_shards(&self) -> usize {
        self.n
    }

    /// Storage overhead factor `n / m` (1.0 = no redundancy).
    pub fn overhead(&self) -> f64 {
        self.n as f64 / self.m as f64
    }

    /// Splits `data` into `n` shards (the first `m` carry the data, padded
    /// to equal length; the rest are parity).
    pub fn encode(&self, data: &[u8]) -> Vec<Vec<u8>> {
        let shard_len = data.len().div_ceil(self.m).max(1);
        let mut padded = data.to_vec();
        padded.resize(shard_len * self.m, 0);
        let data_shards: Vec<&[u8]> = padded.chunks(shard_len).collect();
        matmul(&self.rows, &data_shards)
    }

    /// Reconstructs the original `len` bytes from any `m` shards, given as
    /// `(shard_index, bytes)` pairs.
    ///
    /// Every supplied shard is validated — a duplicate index is rejected
    /// rather than skipped, because a caller presenting the same shard
    /// twice (a repair pipeline double-counting one survivor, say) is
    /// operating on a wrong model of how much redundancy it has. Given
    /// more than `m` shards, the `m` *lowest* indices are used, so the
    /// same survivor set always decodes through the same matrix no
    /// matter what order the survivors answered in.
    ///
    /// # Errors
    ///
    /// Returns [`ErasureError`] if fewer than `m` shards are provided or
    /// the shards are malformed (out-of-range or duplicate indices,
    /// unequal lengths).
    pub fn decode(&self, shards: &[(usize, Vec<u8>)], len: usize) -> Result<Vec<u8>, ErasureError> {
        let mut seen = [false; 256]; // n <= 255
        let mut chosen: Vec<(usize, &[u8])> = Vec::with_capacity(shards.len());
        for (idx, bytes) in shards {
            if *idx >= self.n {
                return Err(ErasureError::MalformedShards(format!("index {idx} out of range")));
            }
            if seen[*idx] {
                return Err(ErasureError::MalformedShards(format!("duplicate shard index {idx}")));
            }
            seen[*idx] = true;
            if let Some((_, first)) = chosen.first() {
                if first.len() != bytes.len() {
                    return Err(ErasureError::MalformedShards("unequal shard lengths".into()));
                }
            }
            chosen.push((*idx, bytes.as_slice()));
        }
        if chosen.len() < self.m {
            return Err(ErasureError::NotEnoughShards { needed: self.m, got: chosen.len() });
        }
        // Surplus shards: keep the lowest m indices. With a systematic
        // code those are the cheapest rows (often the identity block).
        chosen.sort_by_key(|(i, _)| *i);
        chosen.truncate(self.m);
        let sub: Vec<Vec<u8>> = chosen.iter().map(|(i, _)| self.rows[*i].clone()).collect();
        let inv = invert(&sub).ok_or_else(|| {
            ErasureError::MalformedShards("singular decode matrix (duplicate rows?)".into())
        })?;
        let shard_refs: Vec<&[u8]> = chosen.iter().map(|(_, s)| *s).collect();
        let data_shards = matmul(&inv, &shard_refs);
        let mut out = Vec::with_capacity(len);
        for s in data_shards {
            out.extend_from_slice(&s);
        }
        out.truncate(len);
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gf_field_properties() {
        // Multiplicative identity and inverses.
        for a in 1..=255u8 {
            assert_eq!(gf_mul(a, 1), a);
            assert_eq!(gf_mul(a, gf_inv(a)), 1, "a={a}");
        }
        // Commutativity spot checks.
        assert_eq!(gf_mul(7, 19), gf_mul(19, 7));
        // Distributivity over XOR (addition in GF(2^8)).
        for (a, b, c) in [(3u8, 100u8, 200u8), (255, 254, 1)] {
            assert_eq!(gf_mul(a, b ^ c), gf_mul(a, b) ^ gf_mul(a, c));
        }
    }

    #[test]
    fn encode_is_systematic() {
        let code = ErasureCode::new(3, 5).unwrap();
        let data = b"abcdefghi".to_vec(); // 9 bytes = 3 shards of 3
        let shards = code.encode(&data);
        assert_eq!(shards.len(), 5);
        assert_eq!(shards[0], b"abc");
        assert_eq!(shards[1], b"def");
        assert_eq!(shards[2], b"ghi");
    }

    #[test]
    fn reconstruct_from_any_m_subset() {
        let code = ErasureCode::new(3, 6).unwrap();
        let data: Vec<u8> = (0..100u8).collect();
        let shards = code.encode(&data);
        // Try every 3-subset of 6 shards.
        for a in 0..6 {
            for b in (a + 1)..6 {
                for c in (b + 1)..6 {
                    let kept = vec![
                        (a, shards[a].clone()),
                        (b, shards[b].clone()),
                        (c, shards[c].clone()),
                    ];
                    let out = code.decode(&kept, data.len()).unwrap();
                    assert_eq!(out, data, "subset ({a},{b},{c})");
                }
            }
        }
    }

    #[test]
    fn unpadded_lengths_round_trip() {
        let code = ErasureCode::new(4, 7).unwrap();
        for len in [0usize, 1, 3, 4, 5, 64, 1000, 1001] {
            let data: Vec<u8> = (0..len).map(|i| (i * 31 % 251) as u8).collect();
            let shards = code.encode(&data);
            let kept: Vec<(usize, Vec<u8>)> = (3..7).map(|i| (i, shards[i].clone())).collect();
            assert_eq!(code.decode(&kept, len).unwrap(), data, "len {len}");
        }
    }

    #[test]
    fn too_few_shards_fails() {
        let code = ErasureCode::new(3, 5).unwrap();
        let shards = code.encode(b"hello world");
        let kept = vec![(0, shards[0].clone()), (1, shards[1].clone())];
        assert!(matches!(
            code.decode(&kept, 11),
            Err(ErasureError::NotEnoughShards { needed: 3, got: 2 })
        ));
    }

    #[test]
    fn duplicate_shard_indices_rejected() {
        let code = ErasureCode::new(2, 4).unwrap();
        let shards = code.encode(b"data!");
        // The same shard presented three times is one shard — and a
        // caller that thinks otherwise has lost track of its redundancy,
        // so the duplicate is an error even when enough distinct shards
        // ride along.
        let kept = vec![(1, shards[1].clone()), (1, shards[1].clone()), (1, shards[1].clone())];
        assert!(matches!(code.decode(&kept, 5), Err(ErasureError::MalformedShards(_))));
        let dup = vec![(1, shards[1].clone()), (3, shards[3].clone()), (1, shards[1].clone())];
        assert!(matches!(code.decode(&dup, 5), Err(ErasureError::MalformedShards(_))));
    }

    #[test]
    fn exactly_m_survivors_reconstruct() {
        let code = ErasureCode::new(3, 6).unwrap();
        let data: Vec<u8> = (0..64u8).collect();
        let shards = code.encode(&data);
        // The worst crash the code tolerates: n - m losses, exactly m
        // survivors — and all-parity survivors are the hardest subset.
        let kept = vec![(5, shards[5].clone()), (3, shards[3].clone()), (4, shards[4].clone())];
        assert_eq!(code.decode(&kept, data.len()).unwrap(), data);
    }

    #[test]
    fn surplus_shards_decode_deterministically() {
        let code = ErasureCode::new(2, 5).unwrap();
        let data = b"surplus shards".to_vec();
        let shards = code.encode(&data);
        // More than m shards, presented in scrambled orders: every
        // ordering must decode (via the lowest-m-indices rule) to the
        // same bytes.
        let orders: [[usize; 4]; 3] = [[4, 2, 0, 3], [0, 2, 3, 4], [3, 4, 2, 0]];
        for order in orders {
            let kept: Vec<(usize, Vec<u8>)> =
                order.iter().map(|&i| (i, shards[i].clone())).collect();
            assert_eq!(code.decode(&kept, data.len()).unwrap(), data, "order {order:?}");
        }
    }

    #[test]
    fn malformed_inputs_rejected() {
        let code = ErasureCode::new(2, 3).unwrap();
        let shards = code.encode(b"xy");
        assert!(matches!(
            code.decode(&[(9, shards[0].clone()), (1, shards[1].clone())], 2),
            Err(ErasureError::MalformedShards(_))
        ));
        assert!(matches!(
            code.decode(&[(0, vec![1, 2, 3]), (1, vec![1])], 2),
            Err(ErasureError::MalformedShards(_))
        ));
    }

    #[test]
    fn parameter_validation() {
        assert!(ErasureCode::new(0, 5).is_err());
        assert!(ErasureCode::new(5, 4).is_err());
        assert!(ErasureCode::new(4, 256).is_err());
        assert!(ErasureCode::new(1, 1).is_ok());
        assert!(ErasureCode::new(255, 255).is_ok());
    }

    #[test]
    fn replication_is_the_m1_special_case() {
        // (1, k) erasure coding is k-way replication.
        let code = ErasureCode::new(1, 3).unwrap();
        let shards = code.encode(b"copy");
        assert_eq!(shards[0], b"copy");
        assert_eq!(shards[1], b"copy");
        assert_eq!(shards[2], b"copy");
        assert_eq!(code.overhead(), 3.0);
    }

    #[test]
    fn overhead_factor() {
        assert!((ErasureCode::new(4, 6).unwrap().overhead() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn table_path_matches_scalar_multiplies() {
        // Every coefficient's 256-entry row table must agree with gf_mul,
        // and mul_xor/xor_assign must agree with the scalar loop on
        // lengths spanning the 8-byte stride and the table threshold.
        for coef in 1..=255u8 {
            let t = mul_table(coef);
            for x in 0..=255u8 {
                assert_eq!(t[x as usize], gf_mul(coef, x), "coef {coef} x {x}");
            }
        }
        let src: Vec<u8> = (0..300usize).map(|i| (i * 37 % 256) as u8).collect();
        for len in [0usize, 1, 7, 8, 9, 63, 64, 65, 300] {
            for coef in [1u8, 2, 29, 173, 255] {
                let mut fast = vec![0x5au8; len];
                let mut slow = fast.clone();
                if coef == 1 {
                    xor_assign(&mut fast, &src[..len]);
                } else {
                    mul_xor(&mut fast, &src[..len], &mul_table(coef));
                }
                for (o, &b) in slow.iter_mut().zip(&src[..len]) {
                    *o ^= gf_mul(coef, b);
                }
                assert_eq!(fast, slow, "coef {coef} len {len}");
            }
        }
    }
}
