//! Documents: named, versioned byte blobs with overlay GUIDs.

use bytes::Bytes;
use gloss_overlay::Key;
use gloss_sim::SimTime;
use std::fmt;
use std::sync::Arc;

/// A document's redundancy tier. The storage layer maps each tier to a
/// replica/fragment target count ("a rule might create 5 copies of some
/// data for resilience"): high-priority documents get extra copies, low
/// priority fewer, and the eviction path sheds lower-priority replicas
/// first when a node crosses its capacity watermark.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub enum Priority {
    /// Evictable first; below-default redundancy target.
    Low,
    /// The default tier.
    #[default]
    Normal,
    /// Extra redundancy; never evicted in favour of lower tiers.
    High,
}

impl Priority {
    /// Stable short label (trace/report rendering).
    pub fn label(self) -> &'static str {
        match self {
            Priority::Low => "low",
            Priority::Normal => "normal",
            Priority::High => "high",
        }
    }
}

/// A stored document.
///
/// The GUID is derived from the document *name* (as in PAST, where GUIDs
/// come from "a hash of keywords, filename and the public key of the
/// creator"), so a name always routes to the same overlay neighbourhood
/// and updates are expressed as higher [`version`](Document::version)s of
/// the same GUID.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Document {
    /// The overlay key the document lives under.
    pub guid: Key,
    /// Human-readable name (hashes to `guid`). `Arc<str>` so cloning a
    /// document — which replication, caching, and lookup replies do on
    /// the hot path — bumps two refcounts instead of copying heap data.
    pub name: Arc<str>,
    /// The payload.
    pub content: Bytes,
    /// Monotonic version; replicas keep the highest they have seen.
    pub version: u64,
    /// When the document was created (stamped by the inserting client).
    pub created_at: SimTime,
    /// Redundancy tier (drives the replica target and eviction order).
    pub priority: Priority,
}

impl Document {
    /// Creates version 1 of a named document.
    pub fn new(name: impl Into<String>, content: impl Into<Bytes>) -> Self {
        let name = name.into();
        Document {
            guid: Key::hash_of_str(&name),
            name: name.into(),
            content: content.into(),
            version: 1,
            created_at: SimTime::ZERO,
            priority: Priority::Normal,
        }
    }

    /// Sets the redundancy tier.
    pub fn with_priority(mut self, priority: Priority) -> Self {
        self.priority = priority;
        self
    }

    /// A later version of this document with new content.
    pub fn updated(&self, content: impl Into<Bytes>) -> Document {
        Document {
            guid: self.guid,
            name: self.name.clone(),
            content: content.into(),
            version: self.version + 1,
            created_at: self.created_at,
            priority: self.priority,
        }
    }

    /// Size of the payload in bytes.
    pub fn size(&self) -> usize {
        self.content.len()
    }

    /// Sets the creation timestamp (used by the inserting harness).
    pub fn stamp(&mut self, at: SimTime) {
        self.created_at = at;
    }
}

impl fmt::Display for Document {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} v{} ({} bytes, {})", self.name, self.version, self.size(), self.guid)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn guid_is_name_derived() {
        let a = Document::new("menu", b"gelato".to_vec());
        let b = Document::new("menu", b"sorbet".to_vec());
        assert_eq!(a.guid, b.guid, "same name, same guid");
        let c = Document::new("other", b"gelato".to_vec());
        assert_ne!(a.guid, c.guid);
    }

    #[test]
    fn updated_bumps_version_keeps_guid() {
        let a = Document::new("menu", b"v1".to_vec());
        let b = a.updated(b"v2".to_vec());
        assert_eq!(b.version, 2);
        assert_eq!(b.guid, a.guid);
        assert_eq!(b.content, Bytes::from_static(b"v2"));
    }

    #[test]
    fn size_and_display() {
        let d = Document::new("x", vec![0u8; 100]);
        assert_eq!(d.size(), 100);
        assert!(d.to_string().contains("100 bytes"));
    }
}
