//! P2P storage over the Plaxton overlay: the paper's knowledge-base
//! substrate (§4.5, §4.6).
//!
//! Implements the storage stack the paper assembles from the literature:
//!
//! * **PAST-style replication** — each document is stored at the `k` live
//!   nodes whose overlay keys are numerically closest to its GUID
//!   ([`StoreNode`]),
//! * **promiscuous caching** — "data is free to be cached anywhere at any
//!   time ... crucial to the performance of the system if the fetching of
//!   remote data at every access is to be avoided": lookup replies are
//!   pushed into LRU caches along the route path, and any node holding a
//!   copy answers immediately ([`LruCache`], experiment **C3**),
//! * **erasure codes** — "permit data to be reconstituted from a subset of
//!   the servers on which it is stored": systematic Reed–Solomon over
//!   GF(256) ([`ErasureCode`], experiment **C10**),
//! * **self-healing** — "a rule might create 5 copies of some data for
//!   resilience, but over time some of these might become unavailable — in
//!   which case further copies should be made. An obvious analogy is with
//!   RAID systems": periodic audits re-replicate lost copies (**C3**),
//! * **data placement policies** (§4.6) — the latency-reduction policy
//!   ("replicate progressively more of a user's personal data at storage
//!   units geographically close to the user") and the backup policy
//!   ("replicate data on a geographically remote storage unit as soon as
//!   possible after it was created") (**C5**).
//!
//! # Example
//!
//! ```
//! use gloss_store::{Document, StoreConfig, StoreNetwork};
//! use gloss_sim::SimDuration;
//!
//! let mut net = StoreNetwork::build(16, StoreConfig::default(), 42);
//! net.run_for(SimDuration::from_secs(300)); // overlay forms
//! let node = net.random_node();
//! let doc = Document::new("ice-cream-shops", b"janettas: market street".to_vec());
//! net.insert(node, doc.clone());
//! net.run_for(SimDuration::from_secs(30));
//! assert!(net.replica_count(doc.guid) >= 1);
//! ```

pub mod cache;
pub mod document;
pub mod erasure;
pub mod network;
pub mod placement;
pub mod repair;
pub mod store_node;

pub use cache::LruCache;
pub use document::{Document, Priority};
pub use erasure::{ErasureCode, ErasureError};
pub use network::{LookupResult, StoreNetwork};
pub use placement::{
    plan_quota_targets, BackupPolicy, LatencyReductionPolicy, NodeCapacity, NodeSite,
    PlacementAction, PlacementPolicy,
};
pub use repair::{FragmentManifest, RepairScheduler};
pub use store_node::{LookupOutcome, StoreConfig, StoreMsg, StoreNode, StorePayload};
