//! The storelet: a storage node embedding an overlay node, implementing
//! PAST-style replication, promiscuous caching, self-healing, and the
//! placement policies.

use crate::cache::LruCache;
use crate::document::{Document, Priority};
use crate::erasure::ErasureCode;
use crate::placement::{
    plan_quota_targets, BackupPolicy, LatencyReductionPolicy, NodeCapacity, NodeSite,
    PlacementAction, PlacementPolicy,
};
use crate::repair::{FragmentManifest, RepairScheduler};
use gloss_overlay::{Key, OverlayMsg, OverlayNode};
use gloss_sim::{splitmix64, splitmix_unit, FnvHashMap, NodeIndex, Outbox, SimDuration, SimTime};
use std::collections::{BTreeMap, BTreeSet};

/// Timer tags private to the storage layer (overlay tags pass through).
pub mod timers {
    /// Periodic replica audit (self-healing).
    pub const HEAL: u64 = 0x20;
    /// Repair pipeline scan (under-replication + fragment audits).
    pub const REPAIR: u64 = 0x21;
    /// One-shot sweep of lookup retry/timeout deadlines.
    pub const LOOKUP_RETRY: u64 = 0x22;
}

/// High bit marking request ids minted by the storage layer itself
/// (fragment audits); their outcomes feed the repair pipeline instead of
/// the embedder-visible [`StoreNode::outcomes`] map. Embedder request
/// ids must stay below this bit.
pub const INTERNAL_REQ_BIT: u64 = 1 << 63;

/// Payloads routed through the overlay.
#[derive(Debug, Clone, PartialEq)]
pub enum StorePayload {
    /// Store a document at the nodes responsible for its GUID.
    Insert {
        /// The document.
        doc: Document,
    },
    /// Find a document; the holder replies directly to `reply_to`.
    Lookup {
        /// The GUID sought.
        guid: Key,
        /// Where to send the reply.
        reply_to: NodeIndex,
        /// Correlation id (assigned by the requester).
        req_id: u64,
        /// When the request was issued (for latency measurement).
        issued_at: SimTime,
        /// Nodes the request has passed through (promiscuous caching
        /// pushes copies back along this path).
        path: Vec<NodeIndex>,
        /// Minimum acceptable `Document::version`. Cached copies below
        /// this floor neither satisfy the request locally nor intercept
        /// it en route; only the responsible node answers with whatever
        /// it holds. `0` preserves the classic any-copy behaviour.
        min_version: u64,
    },
}

/// Messages of the storage layer.
#[derive(Debug, Clone, PartialEq)]
pub enum StoreMsg {
    /// Overlay protocol traffic (join, routing, probes) carrying
    /// [`StorePayload`]s.
    Overlay(OverlayMsg<StorePayload>),
    /// Push a durable replica (idempotent; receivers keep the highest
    /// version). Answered with a [`StoreMsg::ReplicaPutAck`].
    ReplicaPut {
        /// The document.
        doc: Document,
    },
    /// Answer to a [`StoreMsg::ReplicaPut`]: whether the receiver kept
    /// the replica, and its current durable usage — the capacity gossip
    /// that feeds the sender's quota-aware placement planner.
    ReplicaPutAck {
        /// The document acknowledged.
        guid: Key,
        /// Whether the replica was (or already is) durably stored; a
        /// refusal means the receiver's quota is exhausted and the
        /// sender should place elsewhere.
        accepted: bool,
        /// The receiver's durable bytes after handling the put.
        used_bytes: u64,
    },
    /// Push a cached copy (promiscuous caching; evictable).
    CachePush {
        /// The document.
        doc: Document,
    },
    /// Audit: does the receiver hold a replica of `guid` at `version`?
    HaveReplica {
        /// The GUID audited.
        guid: Key,
        /// The auditor's version.
        version: u64,
    },
    /// Audit answer; `false` triggers a [`StoreMsg::ReplicaPut`].
    HaveReplicaAck {
        /// The GUID audited.
        guid: Key,
        /// Whether the responder holds it (at `version` or newer).
        have: bool,
    },
    /// Successful lookup reply, sent directly to the requester.
    FetchReply {
        /// Correlation id.
        req_id: u64,
        /// The document found.
        doc: Document,
        /// When the lookup was issued.
        issued_at: SimTime,
        /// Whether it was served from a cache (vs a durable replica).
        from_cache: bool,
        /// Overlay hops the request travelled before being served.
        hops: u32,
    },
    /// The responsible node does not hold the document.
    NotFound {
        /// Correlation id.
        req_id: u64,
        /// The GUID sought.
        guid: Key,
        /// When the lookup was issued.
        issued_at: SimTime,
    },
    /// Harness request: originate a lookup from this node through the
    /// full client path — local fast path, routing, and the retry /
    /// backoff plane (unlike a raw injected `Route`, which bypasses
    /// retries).
    LocalLookup {
        /// The GUID to look up.
        guid: Key,
        /// Correlation id for [`StoreNode::outcomes`].
        req_id: u64,
    },
}

/// The outcome of a lookup, recorded at the requesting node.
#[derive(Debug, Clone, PartialEq)]
pub struct LookupOutcome {
    /// The GUID sought.
    pub guid: Key,
    /// The document, if found.
    pub doc: Option<Document>,
    /// Request-to-reply latency.
    pub latency: SimDuration,
    /// Whether a cache served it.
    pub from_cache: bool,
    /// Overlay hops travelled by the request.
    pub hops: u32,
}

/// Storage layer configuration.
#[derive(Debug, Clone)]
pub struct StoreConfig {
    /// Replication factor `k` (primary + `k − 1` replicas).
    pub replicas: usize,
    /// Enable promiscuous caching.
    pub cache_enabled: bool,
    /// Per-node cache capacity in bytes.
    pub cache_capacity: usize,
    /// How often each node audits the documents it is primary for.
    pub heal_interval: SimDuration,
    /// Latency-reduction policy: replicate into a region after this many
    /// reads from it (`None` = off).
    pub latency_policy_threshold: Option<u64>,
    /// Backup policy: minimum distance (km) for the creation-time remote
    /// replica (`None` = off).
    pub backup_policy_min_km: Option<f64>,
    /// Extra replicas for [`Priority::High`] documents.
    pub tier_high_extra: usize,
    /// Replicas trimmed from [`Priority::Low`] documents (floored at 1).
    pub tier_low_cut: usize,
    /// Shed lower-priority non-primary replicas when a write would cross
    /// the capacity watermark.
    pub eviction_enabled: bool,
    /// Repair pipeline scan cadence (`None` disables the pipeline;
    /// per-node jitter of ±25% is applied to each tick).
    pub repair_interval: Option<SimDuration>,
    /// Sustained repair transfers per second a node will initiate.
    pub repair_rate_per_sec: f64,
    /// Repair transfer burst (token-bucket capacity).
    pub repair_burst: f64,
    /// Outstanding repair transfers allowed per target peer.
    pub repair_inflight_per_peer: usize,
    /// Retries for an unanswered lookup before reporting a timeout
    /// (`0` disables retry but keeps the timeout).
    pub lookup_retries: u32,
    /// Base per-attempt lookup deadline; doubles each retry, jittered
    /// ±25% so synchronised readers do not re-storm a recovering node.
    pub lookup_timeout: SimDuration,
}

impl Default for StoreConfig {
    fn default() -> Self {
        StoreConfig {
            replicas: 3,
            cache_enabled: true,
            cache_capacity: 1 << 20,
            heal_interval: SimDuration::from_secs(30),
            latency_policy_threshold: None,
            backup_policy_min_km: None,
            tier_high_extra: 1,
            tier_low_cut: 1,
            eviction_enabled: true,
            repair_interval: Some(SimDuration::from_secs(10)),
            repair_rate_per_sec: 8.0,
            repair_burst: 4.0,
            repair_inflight_per_peer: 2,
            lookup_retries: 3,
            lookup_timeout: SimDuration::from_secs(2),
        }
    }
}

/// A lookup this node issued and has not yet seen answered: the retry
/// plane re-routes it when its deadline lapses and reports a timeout
/// outcome once the attempt budget is spent.
#[derive(Debug, Clone)]
struct PendingLookup {
    guid: Key,
    min_version: u64,
    issued_at: SimTime,
    attempts: u32,
    deadline: SimTime,
}

/// An in-flight fragment audit: one internal lookup per shard; once all
/// resolve, missing shards are re-encoded from the survivors.
#[derive(Debug, Clone)]
struct FragmentRepair {
    manifest: FragmentManifest,
    priority: Priority,
    /// Outstanding internal request id → shard index.
    pending: BTreeMap<u64, usize>,
    found: BTreeMap<usize, Vec<u8>>,
    missing: BTreeSet<usize>,
}

/// A storage node (storelet) embedding an overlay node.
#[derive(Debug)]
pub struct StoreNode {
    me: NodeIndex,
    overlay: OverlayNode<StorePayload>,
    cfg: StoreConfig,
    store: BTreeMap<Key, Document>,
    cache: LruCache,
    directory: Vec<NodeSite>,
    latency_policy: Option<LatencyReductionPolicy>,
    backup_policy: Option<BackupPolicy>,
    /// Nodes we have pushed policy replicas of each doc to.
    policy_holders: BTreeMap<Key, BTreeSet<NodeIndex>>,
    /// Outcomes of lookups issued from this node, by request id (FNV:
    /// written once per lookup, probed by the discovery/ingest hooks).
    pub outcomes: FnvHashMap<u64, LookupOutcome>,
    /// Durable bytes stored locally (replicas + primaries).
    used: u64,
    /// Last advertised durable usage of each peer (from
    /// [`StoreMsg::ReplicaPutAck`]s); feeds the placement planner.
    peer_used: BTreeMap<NodeIndex, u64>,
    /// Where the replicas of each document this node is primary for are
    /// known (acknowledged) to live. Purged when the overlay declares a
    /// holder dead; the repair scan replaces the lost copies.
    replica_locations: BTreeMap<Key, BTreeSet<NodeIndex>>,
    /// Lookups awaiting a reply, by request id.
    pending_lookups: BTreeMap<u64, PendingLookup>,
    /// Fragment audits in flight, by manifest GUID.
    repairs: BTreeMap<Key, FragmentRepair>,
    /// Anti-storm pacing for repair traffic.
    scheduler: RepairScheduler,
    /// Internal request id counter (fragment audits).
    internal_req: u64,
    /// Private jitter stream (retry deadlines).
    rng: u64,
}

impl StoreNode {
    /// Creates a storage node wrapping `overlay`, with `directory`
    /// describing all nodes' locations (used by placement policies).
    pub fn new(
        me: NodeIndex,
        overlay: OverlayNode<StorePayload>,
        cfg: StoreConfig,
        directory: Vec<NodeSite>,
    ) -> Self {
        let cache = LruCache::new(cfg.cache_capacity);
        let latency_policy = cfg.latency_policy_threshold.map(LatencyReductionPolicy::new);
        let backup_policy = cfg.backup_policy_min_km.map(BackupPolicy::new);
        let key = overlay.id().key.0;
        let mut rng = (key as u64) ^ ((key >> 64) as u64) ^ ((me.0 as u64) << 32);
        splitmix64(&mut rng);
        let scheduler = RepairScheduler::new(
            cfg.repair_rate_per_sec,
            cfg.repair_burst,
            cfg.repair_inflight_per_peer,
            rng,
        );
        StoreNode {
            me,
            overlay,
            cfg,
            store: BTreeMap::new(),
            cache,
            directory,
            latency_policy,
            backup_policy,
            policy_holders: BTreeMap::new(),
            outcomes: FnvHashMap::default(),
            used: 0,
            peer_used: BTreeMap::new(),
            replica_locations: BTreeMap::new(),
            pending_lookups: BTreeMap::new(),
            repairs: BTreeMap::new(),
            scheduler,
            internal_req: 0,
            rng,
        }
    }

    /// This node's index.
    pub fn index(&self) -> NodeIndex {
        self.me
    }

    /// The embedded overlay node.
    pub fn overlay(&self) -> &OverlayNode<StorePayload> {
        &self.overlay
    }

    /// Whether this node durably stores `guid`.
    pub fn holds(&self, guid: Key) -> bool {
        self.store.contains_key(&guid)
    }

    /// Whether this node has `guid` cached.
    pub fn has_cached(&self, guid: Key) -> bool {
        self.cache.contains(guid)
    }

    /// Number of durably stored documents.
    pub fn stored_count(&self) -> usize {
        self.store.len()
    }

    /// Cache statistics: (hits, misses).
    pub fn cache_stats(&self) -> (u64, u64) {
        (self.cache.hits, self.cache.misses)
    }

    /// Durable bytes stored locally.
    pub fn used_bytes(&self) -> u64 {
        self.used
    }

    /// This node's advertised capacity (directory entry, or the default
    /// profile when the deployment layer did not describe it).
    pub fn capacity(&self) -> NodeCapacity {
        self.site_of(self.me).map(|s| s.capacity).unwrap_or_default()
    }

    /// Acknowledged replica holders of `guid` (primary-side knowledge).
    pub fn known_replicas(&self, guid: Key) -> usize {
        self.replica_locations.get(&guid).map_or(0, BTreeSet::len)
    }

    /// The replica target for a document of the given tier.
    pub fn target_replicas(&self, p: Priority) -> usize {
        match p {
            Priority::High => self.cfg.replicas + self.cfg.tier_high_extra,
            Priority::Normal => self.cfg.replicas,
            Priority::Low => self.cfg.replicas.saturating_sub(self.cfg.tier_low_cut).max(1),
        }
    }

    /// Cold start: reset overlay state and arm the periodic timers.
    pub fn on_start(&mut self, out: &mut Outbox<StoreMsg>) {
        let mut oout = Outbox::new();
        self.overlay.on_start(&mut oout);
        oout.transfer_into(out, StoreMsg::Overlay);
        out.timer(self.cfg.heal_interval, timers::HEAL);
        if let Some(iv) = self.cfg.repair_interval {
            // Jittered per node so regional crashes do not produce a
            // synchronised wall of repair scans.
            let delay = self.scheduler.backoff(iv);
            out.timer(delay, timers::REPAIR);
        }
    }

    /// Timer dispatch (overlay tags pass through; `HEAL` audits replicas,
    /// `REPAIR` runs the self-healing scan, `LOOKUP_RETRY` sweeps lookup
    /// deadlines).
    pub fn on_timer(&mut self, now: SimTime, tag: u64, out: &mut Outbox<StoreMsg>) {
        match tag {
            timers::HEAL => {
                self.heal(out);
                out.timer(self.cfg.heal_interval, timers::HEAL);
            }
            timers::REPAIR => {
                self.repair_tick(now, out);
                if let Some(iv) = self.cfg.repair_interval {
                    let delay = self.scheduler.backoff(iv);
                    out.timer(delay, timers::REPAIR);
                }
            }
            timers::LOOKUP_RETRY => self.retry_sweep(now, out),
            _ => {
                let mut oout = Outbox::new();
                self.overlay.on_timer(now, tag, &mut oout);
                oout.transfer_into(out, StoreMsg::Overlay);
                self.drain_failures(out);
            }
        }
    }

    /// Whether this node believes it is the primary for `guid` (closest
    /// among itself and its leaf set).
    pub fn is_primary_for(&self, guid: Key) -> bool {
        let my_d = self.overlay.id().key.ring_distance(guid);
        self.overlay.leaf_members().iter().all(|m| m.key.ring_distance(guid) >= my_d)
    }

    /// The `k − 1` leaf-set members numerically closest to `guid` (the
    /// desired replica holders besides the primary). Suspected peers are
    /// excluded — replicas placed on a node with an open circuit would be
    /// unreachable exactly when they are needed. (`is_primary_for` stays
    /// on the full leaf set: primaryship is about ring position, and a
    /// suspected-but-alive closer neighbour must still suppress us.)
    fn replica_targets(&self, guid: Key) -> Vec<NodeIndex> {
        let mut members = self.overlay.usable_leaf_members();
        members.sort_by_key(|m| m.key.ring_distance(guid));
        members.into_iter().take(self.cfg.replicas.saturating_sub(1)).map(|m| m.node).collect()
    }

    fn heal(&mut self, out: &mut Outbox<StoreMsg>) {
        let guids: Vec<(Key, u64)> = self
            .store
            .iter()
            .filter(|(g, _)| self.is_primary_for(**g))
            .map(|(g, d)| (*g, d.version))
            .collect();
        for (guid, version) in guids {
            for target in self.replica_targets(guid) {
                out.send(target, StoreMsg::HaveReplica { guid, version });
            }
        }
    }

    /// Initial replica placement for a document rooted here: the quota
    /// planner re-ranks the ring-closest usable leaf members by
    /// advertised capacity and region diversity.
    fn placement_targets(&self, guid: Key, doc: &Document) -> Vec<NodeIndex> {
        let want = self.target_replicas(doc.priority).saturating_sub(1);
        let mut members = self.overlay.usable_leaf_members();
        members.sort_by_key(|m| m.key.ring_distance(guid));
        let candidates: Vec<NodeIndex> = members.into_iter().map(|m| m.node).collect();
        let covered: Vec<String> =
            self.site_of(self.me).map(|s| vec![s.region.clone()]).unwrap_or_default();
        let covered_refs: Vec<&str> = covered.iter().map(String::as_str).collect();
        plan_quota_targets(
            doc.size() as u64,
            want,
            &covered_refs,
            &candidates,
            &self.directory,
            &self.peer_used,
        )
    }

    /// One repair scan: re-replicate documents this node is primary for
    /// that have fallen under their tier target, and audit the shard
    /// sets of erasure manifests rooted here. All transfers pass through
    /// the scheduler — deferred work is retried on the next tick.
    fn repair_tick(&mut self, now: SimTime, out: &mut Outbox<StoreMsg>) {
        let primaries: Vec<(Key, Document)> = self
            .store
            .iter()
            .filter(|(g, _)| self.is_primary_for(**g))
            .map(|(g, d)| (*g, d.clone()))
            .collect();
        for (guid, doc) in &primaries {
            let target = self.target_replicas(doc.priority);
            let holders = self.replica_locations.get(guid).cloned().unwrap_or_default();
            let have = holders.len() + 1; // + this primary
            if have >= target {
                continue;
            }
            out.count("store.repair_underreplicated", 1.0);
            let mut members = self.overlay.usable_leaf_members();
            members.sort_by_key(|m| m.key.ring_distance(*guid));
            let candidates: Vec<NodeIndex> = members
                .into_iter()
                .map(|m| m.node)
                .filter(|n| !holders.contains(n) && *n != self.me)
                .collect();
            let mut covered: Vec<String> =
                holders.iter().filter_map(|h| self.site_of(*h).map(|s| s.region.clone())).collect();
            if let Some(s) = self.site_of(self.me) {
                covered.push(s.region.clone());
            }
            let covered_refs: Vec<&str> = covered.iter().map(String::as_str).collect();
            let plan = plan_quota_targets(
                doc.size() as u64,
                target - have,
                &covered_refs,
                &candidates,
                &self.directory,
                &self.peer_used,
            );
            for t in plan {
                if self.scheduler.try_grant(now, t) {
                    out.count("store.repair_puts", 1.0);
                    out.count("store.repair_bytes", doc.size() as f64);
                    out.send(t, StoreMsg::ReplicaPut { doc: doc.clone() });
                } else {
                    out.count("store.repair_deferred", 1.0);
                }
            }
        }
        // Fragment audits: the manifest's primary is the coordinator.
        // One scheduler grant per audit (held until it concludes) caps
        // concurrency; the budget is shared with replica repair above.
        for (mguid, doc) in &primaries {
            let Some(manifest) = FragmentManifest::parse(doc) else { continue };
            if self.repairs.contains_key(mguid) {
                continue;
            }
            if !self.scheduler.try_grant(now, self.me) {
                out.count("store.repair_deferred", 1.0);
                break;
            }
            out.count("store.repair_audits", 1.0);
            self.start_fragment_audit(*mguid, manifest, doc.priority, now, out);
        }
    }

    /// Issues one internal lookup per shard of `manifest`; outcomes are
    /// routed back through [`on_internal_outcome`](Self::on_internal_outcome).
    fn start_fragment_audit(
        &mut self,
        mguid: Key,
        manifest: FragmentManifest,
        priority: Priority,
        now: SimTime,
        out: &mut Outbox<StoreMsg>,
    ) {
        let mut reqs: Vec<(u64, usize, Key)> = Vec::with_capacity(manifest.n);
        for i in 0..manifest.n {
            self.internal_req += 1;
            let req = INTERNAL_REQ_BIT | self.internal_req;
            let shard_guid = Key::hash_of_str(&FragmentManifest::shard_name(&manifest.base, i));
            reqs.push((req, i, shard_guid));
        }
        // Register the audit before issuing: a shard held locally
        // resolves synchronously inside lookup_min_version.
        self.repairs.insert(
            mguid,
            FragmentRepair {
                manifest,
                priority,
                pending: reqs.iter().map(|(r, i, _)| (*r, *i)).collect(),
                found: BTreeMap::new(),
                missing: BTreeSet::new(),
            },
        );
        for (req, _, shard_guid) in reqs {
            // An unsatisfiable version floor pushes the probe past every
            // promiscuous cache to the shard's responsible node: the
            // audit must measure durable redundancy, and a cache hit
            // en route would mask a shard whose holders all crashed.
            self.lookup_min_version(shard_guid, u64::MAX, req, now, out);
        }
    }

    /// Receives the outcome of one internal shard lookup; when the last
    /// one lands, the audit concludes.
    fn on_internal_outcome(
        &mut self,
        req: u64,
        outcome: LookupOutcome,
        now: SimTime,
        out: &mut Outbox<StoreMsg>,
    ) {
        let Some(mguid) =
            self.repairs.iter().find(|(_, fr)| fr.pending.contains_key(&req)).map(|(g, _)| *g)
        else {
            return; // late duplicate reply after the audit concluded
        };
        let fr = self.repairs.get_mut(&mguid).expect("found above");
        let idx = fr.pending.remove(&req).expect("found above");
        match outcome.doc {
            Some(d) if !outcome.from_cache => {
                fr.found.insert(idx, d.content.to_vec());
            }
            Some(d) => {
                // The responsible node answered from its *cache*: the
                // bytes survive but no durable authority holds them.
                // Keep them (they spare a decode) and repair the shard.
                fr.found.insert(idx, d.content.to_vec());
                fr.missing.insert(idx);
            }
            None => {
                fr.missing.insert(idx);
            }
        }
        if fr.pending.is_empty() {
            let fr = self.repairs.remove(&mguid).expect("present");
            self.scheduler.complete(self.me);
            self.finish_fragment_audit(fr, now, out);
        }
    }

    /// All shard lookups resolved: re-encode whatever is missing from
    /// the survivors and re-insert it through normal (quota-aware)
    /// placement. Systematic Reed–Solomon makes the repaired bytes
    /// byte-identical to the originals.
    fn finish_fragment_audit(
        &mut self,
        fr: FragmentRepair,
        _now: SimTime,
        out: &mut Outbox<StoreMsg>,
    ) {
        if fr.missing.is_empty() {
            out.count("store.repair_audits_clean", 1.0);
            return;
        }
        let (m, n) = (fr.manifest.m, fr.manifest.n);
        let mut bytes_of = fr.found;
        // Shards whose bytes arrived (e.g. cache-served) re-insert as-is;
        // the rest must be re-encoded from any m survivors.
        if fr.missing.iter().any(|i| !bytes_of.contains_key(i)) {
            if bytes_of.len() < m {
                // Fewer than m survivors: unrecoverable for now; the next
                // scan retries in case survivors were merely unreachable.
                out.count("store.repair_unrecoverable", 1.0);
                return;
            }
            let Ok(code) = ErasureCode::new(m, n) else {
                out.count("store.repair_bad_manifest", 1.0);
                return;
            };
            let survivors: Vec<(usize, Vec<u8>)> =
                bytes_of.iter().map(|(i, b)| (*i, b.clone())).collect();
            let Ok(data) = code.decode(&survivors, fr.manifest.len) else {
                out.count("store.repair_decode_failed", 1.0);
                return;
            };
            let shards = code.encode(&data);
            for (idx, shard) in shards.into_iter().enumerate() {
                bytes_of.entry(idx).or_insert(shard);
            }
        }
        for idx in fr.missing {
            let shard = bytes_of.get(&idx).expect("present or re-encoded").clone();
            let name = FragmentManifest::shard_name(&fr.manifest.base, idx);
            let doc = Document::new(name, shard).with_priority(fr.priority);
            out.count("store.repair_shards", 1.0);
            out.count("store.repair_bytes", doc.size() as f64);
            self.insert(doc, out);
        }
    }

    /// A jittered deadline for lookup attempt number `attempt`
    /// (exponential: base × 2^attempt, ±25%).
    fn retry_delay(&mut self, attempt: u32) -> SimDuration {
        let base = self.cfg.lookup_timeout.as_micros().saturating_mul(1u64 << attempt.min(16));
        let unit = splitmix_unit(&mut self.rng);
        let factor = 0.75 + 0.5 * unit;
        SimDuration::from_micros(((base as f64) * factor).round().max(1.0) as u64)
    }

    /// Sweeps lookup deadlines: re-routes lapsed requests with budget
    /// left, reports a timeout outcome for the rest.
    fn retry_sweep(&mut self, now: SimTime, out: &mut Outbox<StoreMsg>) {
        let due: Vec<u64> = self
            .pending_lookups
            .iter()
            .filter(|(_, p)| p.deadline <= now)
            .map(|(r, _)| *r)
            .collect();
        for req in due {
            let mut p = self.pending_lookups.remove(&req).expect("collected above");
            if p.attempts >= self.cfg.lookup_retries {
                out.count("store.lookups_timeout", 1.0);
                let o = LookupOutcome {
                    guid: p.guid,
                    doc: None,
                    latency: now.since(p.issued_at),
                    from_cache: false,
                    hops: 0,
                };
                self.record_outcome(req, o, now, out);
                continue;
            }
            p.attempts += 1;
            out.count("store.lookups_retried", 1.0);
            // Re-route: the previous carrier is presumed lost with a
            // crashed hop (or the responsible node died holding it).
            let payload = StorePayload::Lookup {
                guid: p.guid,
                reply_to: self.me,
                req_id: req,
                issued_at: p.issued_at,
                path: vec![self.me],
                min_version: p.min_version,
            };
            let mut oout = Outbox::new();
            let delivered = self.overlay.route(p.guid, payload, &mut oout);
            oout.transfer_into(out, StoreMsg::Overlay);
            if delivered.is_some() {
                // The ring shrank onto us: answer authoritatively.
                let outcome = match self.local_copy(p.guid) {
                    Some((doc, from_cache)) => {
                        out.count("store.lookups_ok", 1.0);
                        out.observe("store.lookup_ms", now.since(p.issued_at).as_secs_f64() * 1e3);
                        if from_cache {
                            out.count("store.cache_served", 1.0);
                        }
                        LookupOutcome {
                            guid: p.guid,
                            doc: Some(doc),
                            latency: now.since(p.issued_at),
                            from_cache,
                            hops: 0,
                        }
                    }
                    None => {
                        out.count("store.lookups_missing", 1.0);
                        LookupOutcome {
                            guid: p.guid,
                            doc: None,
                            latency: now.since(p.issued_at),
                            from_cache: false,
                            hops: 0,
                        }
                    }
                };
                self.record_outcome(req, outcome, now, out);
            } else {
                let delay = self.retry_delay(p.attempts);
                p.deadline = now + delay;
                out.timer(delay, timers::LOOKUP_RETRY);
                self.pending_lookups.insert(req, p);
            }
        }
    }

    /// Routes a finished lookup to its consumer: the embedder-visible
    /// outcomes map, or the repair pipeline for internal requests.
    fn record_outcome(
        &mut self,
        req_id: u64,
        outcome: LookupOutcome,
        now: SimTime,
        out: &mut Outbox<StoreMsg>,
    ) {
        if req_id & INTERNAL_REQ_BIT != 0 {
            self.on_internal_outcome(req_id, outcome, now, out);
        } else {
            self.outcomes.insert(req_id, outcome);
        }
    }

    fn site_of(&self, node: NodeIndex) -> Option<&NodeSite> {
        self.directory.iter().find(|s| s.node == node)
    }

    fn run_placement_actions(&mut self, actions: Vec<PlacementAction>, out: &mut Outbox<StoreMsg>) {
        for action in actions {
            match action {
                PlacementAction::ReplicateTo { guid, target } => {
                    if let Some(doc) = self.store.get(&guid).cloned() {
                        self.policy_holders.entry(guid).or_default().insert(target);
                        out.count("store.policy_replicas", 1.0);
                        if target == self.me {
                            continue;
                        }
                        out.send(target, StoreMsg::ReplicaPut { doc });
                    }
                }
            }
        }
    }

    /// Stores a document durably, keeping the newest version. Returns
    /// whether the write changed state.
    fn put_local(&mut self, doc: Document) -> bool {
        match self.store.get(&doc.guid) {
            Some(existing) if existing.version >= doc.version => false,
            existing => {
                let old = existing.map_or(0, |d| d.size() as u64);
                self.used = self.used.saturating_sub(old).saturating_add(doc.size() as u64);
                self.store.insert(doc.guid, doc);
                true
            }
        }
    }

    /// Makes room for `need` more bytes, shedding strictly-lower-priority
    /// replicas this node is not primary for (lowest tier first, then
    /// GUID order — deterministic). Returns whether the write now fits.
    fn make_room(&mut self, need: u64, incoming: Priority, out: &mut Outbox<StoreMsg>) -> bool {
        let cap = self.capacity();
        if cap.admits(self.used, need) {
            return true;
        }
        if !self.cfg.eviction_enabled {
            return false;
        }
        let mut victims: Vec<(Priority, Key, u64)> = self
            .store
            .iter()
            .filter(|(g, d)| d.priority < incoming && !self.is_primary_for(**g))
            .map(|(g, d)| (d.priority, *g, d.size() as u64))
            .collect();
        victims.sort();
        for (_, guid, size) in victims {
            if cap.admits(self.used, need) {
                break;
            }
            self.store.remove(&guid);
            self.used = self.used.saturating_sub(size);
            out.count("store.evictions", 1.0);
        }
        cap.admits(self.used, need)
    }

    /// Forgets everything predicated on `peer` being alive: replica
    /// location entries, policy holder records, advertised usage, and
    /// repair in-flight slots. Runs for every peer the overlay declares
    /// dead, so the repair scan sees true (not wishful) redundancy.
    fn drain_failures(&mut self, out: &mut Outbox<StoreMsg>) {
        for peer in self.overlay.take_failed() {
            let mut purged = 0u64;
            self.replica_locations.retain(|_, holders| {
                if holders.remove(&peer) {
                    purged += 1;
                }
                !holders.is_empty()
            });
            for holders in self.policy_holders.values_mut() {
                holders.remove(&peer);
            }
            self.peer_used.remove(&peer);
            self.scheduler.forget_peer(peer);
            if purged > 0 {
                out.count("store.locations_purged", purged as f64);
            }
        }
    }

    /// A local copy from durable store or (if enabled) cache:
    /// `(doc, from_cache)`.
    fn local_copy(&mut self, guid: Key) -> Option<(Document, bool)> {
        if let Some(doc) = self.store.get(&guid) {
            return Some((doc.clone(), false));
        }
        if self.cfg.cache_enabled {
            if let Some(doc) = self.cache.get(guid) {
                return Some((doc, true));
            }
        }
        None
    }

    /// Handles one message.
    pub fn handle(
        &mut self,
        now: SimTime,
        from: NodeIndex,
        msg: StoreMsg,
        out: &mut Outbox<StoreMsg>,
    ) {
        match msg {
            StoreMsg::Overlay(omsg) => self.handle_overlay(now, from, omsg, out),
            StoreMsg::ReplicaPut { doc } => {
                let guid = doc.guid;
                let already = self.store.get(&guid).is_some_and(|d| d.version >= doc.version);
                let accepted = if already {
                    true
                } else {
                    let old = self.store.get(&guid).map_or(0, |d| d.size() as u64);
                    let extra = (doc.size() as u64).saturating_sub(old);
                    if self.make_room(extra, doc.priority, out) {
                        if self.put_local(doc) {
                            out.count("store.replica_puts", 1.0);
                        }
                        true
                    } else {
                        out.count("store.replica_rejected", 1.0);
                        false
                    }
                };
                out.send(from, StoreMsg::ReplicaPutAck { guid, accepted, used_bytes: self.used });
            }
            StoreMsg::ReplicaPutAck { guid, accepted, used_bytes } => {
                self.peer_used.insert(from, used_bytes);
                self.scheduler.complete(from);
                if accepted {
                    self.replica_locations.entry(guid).or_default().insert(from);
                } else {
                    // The peer's quota refused us: stop counting it and
                    // let the next repair scan place elsewhere.
                    out.count("store.replica_refused", 1.0);
                    if let Some(holders) = self.replica_locations.get_mut(&guid) {
                        holders.remove(&from);
                    }
                }
            }
            StoreMsg::CachePush { doc } => {
                if self.cfg.cache_enabled {
                    self.cache.insert(doc);
                }
            }
            StoreMsg::HaveReplica { guid, version } => {
                let have = self.store.get(&guid).is_some_and(|d| d.version >= version);
                out.send(from, StoreMsg::HaveReplicaAck { guid, have });
            }
            StoreMsg::HaveReplicaAck { guid, have } => {
                if have {
                    self.replica_locations.entry(guid).or_default().insert(from);
                } else if let Some(doc) = self.store.get(&guid).cloned() {
                    out.count("store.heal_puts", 1.0);
                    out.send(from, StoreMsg::ReplicaPut { doc });
                }
            }
            StoreMsg::FetchReply { req_id, doc, issued_at, from_cache, hops } => {
                self.pending_lookups.remove(&req_id);
                // First conclusion wins: re-routing delivers at least
                // once, so a request the retry plane already concluded
                // (or a slow original racing its own re-route) can see a
                // second reply. Dropping it keeps outcomes — and their
                // latencies — deterministic.
                if req_id & INTERNAL_REQ_BIT == 0 && self.outcomes.contains_key(&req_id) {
                    out.count("store.lookups_dup_replies", 1.0);
                    return;
                }
                if req_id & INTERNAL_REQ_BIT != 0 {
                    out.count("store.repair_fetches", 1.0);
                    let o = LookupOutcome {
                        guid: doc.guid,
                        doc: Some(doc),
                        latency: now.since(issued_at),
                        from_cache,
                        hops,
                    };
                    self.on_internal_outcome(req_id, o, now, out);
                    return;
                }
                out.count("store.lookups_ok", 1.0);
                out.observe("store.lookup_ms", now.since(issued_at).as_secs_f64() * 1e3);
                out.observe("store.lookup_hops", hops as f64);
                if from_cache {
                    out.count("store.cache_served", 1.0);
                }
                // The requester caches what it fetched (promiscuous).
                if self.cfg.cache_enabled {
                    self.cache.insert(doc.clone());
                }
                self.outcomes.insert(
                    req_id,
                    LookupOutcome {
                        guid: doc.guid,
                        doc: Some(doc),
                        latency: now.since(issued_at),
                        from_cache,
                        hops,
                    },
                );
            }
            StoreMsg::NotFound { req_id, guid, issued_at } => {
                self.pending_lookups.remove(&req_id);
                if req_id & INTERNAL_REQ_BIT == 0 && self.outcomes.contains_key(&req_id) {
                    out.count("store.lookups_dup_replies", 1.0);
                    return;
                }
                if req_id & INTERNAL_REQ_BIT != 0 {
                    let o = LookupOutcome {
                        guid,
                        doc: None,
                        latency: now.since(issued_at),
                        from_cache: false,
                        hops: 0,
                    };
                    self.on_internal_outcome(req_id, o, now, out);
                    return;
                }
                out.count("store.lookups_missing", 1.0);
                self.outcomes.insert(
                    req_id,
                    LookupOutcome {
                        guid,
                        doc: None,
                        latency: now.since(issued_at),
                        from_cache: false,
                        hops: 0,
                    },
                );
            }
            StoreMsg::LocalLookup { guid, req_id } => {
                self.lookup(guid, req_id, now, out);
            }
        }
    }

    fn handle_overlay(
        &mut self,
        now: SimTime,
        from: NodeIndex,
        mut omsg: OverlayMsg<StorePayload>,
        out: &mut Outbox<StoreMsg>,
    ) {
        // Intercept lookups: any node along the route holding a copy
        // answers immediately (promiscuous caching's latency win).
        if let OverlayMsg::Route { payload: StorePayload::Lookup { .. }, .. } = &omsg {
            if let OverlayMsg::Route {
                payload:
                    StorePayload::Lookup { guid, reply_to, req_id, issued_at, path, min_version },
                hops,
                ..
            } = &mut omsg
            {
                if let Some((doc, from_cache)) =
                    self.local_copy(*guid).filter(|(d, _)| d.version >= *min_version)
                {
                    // The intercept consumes the Route without the overlay
                    // ever seeing it, so the previous hop's forward must
                    // be acknowledged here — otherwise the hop holds the
                    // payload as un-acked, conduct-suspects this node, and
                    // re-routes a duplicate lookup every probe round.
                    if self.overlay.governed() && from != self.me {
                        out.send(from, StoreMsg::Overlay(OverlayMsg::RouteAck));
                    }
                    // Cache along the path walked so far, then move the
                    // copy into the reply (no clone for the common
                    // empty-path case).
                    if self.cfg.cache_enabled {
                        for n in path.iter().filter(|n| **n != self.me) {
                            out.send(*n, StoreMsg::CachePush { doc: doc.clone() });
                        }
                    }
                    out.send(
                        *reply_to,
                        StoreMsg::FetchReply {
                            req_id: *req_id,
                            doc,
                            issued_at: *issued_at,
                            from_cache,
                            hops: *hops,
                        },
                    );
                    self.after_serve(*guid, *reply_to, now, out);
                    return;
                }
                path.push(self.me);
            }
        }

        let mut oout = Outbox::new();
        let deliveries = self.overlay.handle(now, from, omsg, &mut oout);
        oout.transfer_into(out, StoreMsg::Overlay);
        self.drain_failures(out);

        for d in deliveries {
            match d.payload {
                StorePayload::Insert { doc } => {
                    let guid = doc.guid;
                    out.count("store.inserts_rooted", 1.0);
                    for target in self.placement_targets(guid, &doc) {
                        out.send(target, StoreMsg::ReplicaPut { doc: doc.clone() });
                    }
                    // The primary always keeps its copy (it is the
                    // authority); eviction still makes best-effort room.
                    let old = self.store.get(&guid).map_or(0, |d2| d2.size() as u64);
                    self.make_room((doc.size() as u64).saturating_sub(old), Priority::High, out);
                    self.put_local(doc);
                    // Backup policy: remote replica as soon as created.
                    if self.backup_policy.is_some() {
                        if let Some(site) = self.site_of(self.me).cloned() {
                            let mut holders: Vec<NodeIndex> = self.replica_targets(guid);
                            holders.push(self.me);
                            let policy = self.backup_policy.as_mut().expect("checked above");
                            let actions =
                                policy.on_create(guid, &site, now, &self.directory, &holders);
                            self.run_placement_actions(actions, out);
                        }
                    }
                }
                StorePayload::Lookup { guid, reply_to, req_id, issued_at, .. } => {
                    // Delivered at the responsible node and nothing local:
                    // the document does not exist.
                    match self.local_copy(guid) {
                        Some((doc, from_cache)) => {
                            out.send(
                                reply_to,
                                StoreMsg::FetchReply {
                                    req_id,
                                    doc,
                                    issued_at,
                                    from_cache,
                                    hops: d.hops,
                                },
                            );
                            self.after_serve(guid, reply_to, now, out);
                        }
                        None => {
                            out.send(reply_to, StoreMsg::NotFound { req_id, guid, issued_at });
                        }
                    }
                }
            }
        }
    }

    /// Post-serve hook: run the latency-reduction policy.
    fn after_serve(
        &mut self,
        guid: Key,
        reader: NodeIndex,
        now: SimTime,
        out: &mut Outbox<StoreMsg>,
    ) {
        if self.latency_policy.is_none() {
            return;
        }
        let Some(reader_site) = self.site_of(reader).cloned() else {
            return;
        };
        let mut holders: Vec<NodeIndex> =
            self.policy_holders.get(&guid).map(|s| s.iter().copied().collect()).unwrap_or_default();
        holders.push(self.me);
        let actions = self.latency_policy.as_mut().expect("checked above").on_access(
            guid,
            &reader_site,
            now,
            &self.directory,
            &holders,
        );
        self.run_placement_actions(actions, out);
    }

    /// Originates an insert from this node (used by the harness).
    pub fn insert(&mut self, doc: Document, out: &mut Outbox<StoreMsg>) {
        let guid = doc.guid;
        let mut oout = Outbox::new();
        let delivered = self.overlay.route(guid, StorePayload::Insert { doc }, &mut oout);
        oout.transfer_into(out, StoreMsg::Overlay);
        if let Some(d) = delivered {
            // We are the root ourselves.
            if let StorePayload::Insert { doc } = d.payload {
                let guid = doc.guid;
                for target in self.placement_targets(guid, &doc) {
                    out.send(target, StoreMsg::ReplicaPut { doc: doc.clone() });
                }
                let old = self.store.get(&guid).map_or(0, |d2| d2.size() as u64);
                self.make_room((doc.size() as u64).saturating_sub(old), Priority::High, out);
                self.put_local(doc);
            }
        }
    }

    /// Originates a lookup from this node; the outcome lands in
    /// [`outcomes`](Self::outcomes) keyed by `req_id`.
    pub fn lookup(&mut self, guid: Key, req_id: u64, now: SimTime, out: &mut Outbox<StoreMsg>) {
        self.lookup_min_version(guid, 0, req_id, now, out);
    }

    /// Like [`lookup`](Self::lookup), but refuses cached copies below
    /// `min_version`: neither the local fast path nor en-route
    /// interception serves a stale copy, so the request reaches the
    /// responsible node, which answers with whatever it holds. Lets
    /// readers who know a document has advanced (e.g. the knowledge
    /// plane pulling the next delta batch) bypass promiscuous caching's
    /// stale copies without losing its latency win for fresh ones.
    pub fn lookup_min_version(
        &mut self,
        guid: Key,
        min_version: u64,
        req_id: u64,
        now: SimTime,
        out: &mut Outbox<StoreMsg>,
    ) {
        // Fresh-enough local copy? Serve instantly.
        if let Some((doc, from_cache)) =
            self.local_copy(guid).filter(|(d, _)| d.version >= min_version)
        {
            out.count("store.lookups_ok", 1.0);
            out.count("store.lookups_local", 1.0);
            out.observe("store.lookup_ms", 0.0);
            out.observe("store.lookup_hops", 0.0);
            if from_cache {
                out.count("store.cache_served", 1.0);
            }
            let o = LookupOutcome {
                guid,
                doc: Some(doc),
                latency: SimDuration::ZERO,
                from_cache,
                hops: 0,
            };
            self.record_outcome(req_id, o, now, out);
            return;
        }
        let payload = StorePayload::Lookup {
            guid,
            reply_to: self.me,
            req_id,
            issued_at: now,
            path: vec![self.me],
            min_version,
        };
        let mut oout = Outbox::new();
        let delivered = self.overlay.route(guid, payload, &mut oout);
        oout.transfer_into(out, StoreMsg::Overlay);
        if delivered.is_some() {
            // We are the responsible node: answer with whatever we hold
            // (the floor only filters non-authoritative copies), or
            // record the miss.
            match self.local_copy(guid) {
                Some((doc, from_cache)) => {
                    out.count("store.lookups_ok", 1.0);
                    out.count("store.lookups_local", 1.0);
                    out.observe("store.lookup_ms", 0.0);
                    out.observe("store.lookup_hops", 0.0);
                    if from_cache {
                        out.count("store.cache_served", 1.0);
                    }
                    let o = LookupOutcome {
                        guid,
                        doc: Some(doc),
                        latency: SimDuration::ZERO,
                        from_cache,
                        hops: 0,
                    };
                    self.record_outcome(req_id, o, now, out);
                }
                None => {
                    out.count("store.lookups_missing", 1.0);
                    let o = LookupOutcome {
                        guid,
                        doc: None,
                        latency: SimDuration::ZERO,
                        from_cache: false,
                        hops: 0,
                    };
                    self.record_outcome(req_id, o, now, out);
                }
            }
        } else {
            // In flight toward the responsible node: arm the retry plane.
            // An unanswered lookup (crashed holder, lost carrier) is
            // re-routed after a jittered deadline and reported as a
            // timeout once the attempt budget is spent.
            let delay = self.retry_delay(0);
            self.pending_lookups.insert(
                req_id,
                PendingLookup {
                    guid,
                    min_version,
                    issued_at: now,
                    attempts: 0,
                    deadline: now + delay,
                },
            );
            out.timer(delay, timers::LOOKUP_RETRY);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gloss_overlay::KeyedNode;

    fn n(i: u32) -> NodeIndex {
        NodeIndex(i)
    }

    fn store_node(key: u128, idx: u32, cfg: StoreConfig) -> StoreNode {
        let overlay = OverlayNode::new(Key(key), n(idx), None, SimDuration::ZERO);
        StoreNode::new(n(idx), overlay, cfg, Vec::new())
    }

    fn doc(name: &str) -> Document {
        Document::new(name, format!("content of {name}").into_bytes())
    }

    #[test]
    fn singleton_insert_then_lookup_locally() {
        let mut s = store_node(0x100, 0, StoreConfig::default());
        let d = doc("menu");
        let mut out = Outbox::new();
        s.insert(d.clone(), &mut out);
        assert!(s.holds(d.guid));
        let mut out = Outbox::new();
        s.lookup(d.guid, 1, SimTime::ZERO, &mut out);
        let o = &s.outcomes[&1];
        assert_eq!(o.doc.as_ref().unwrap().content, d.content);
        assert!(!o.from_cache);
        assert_eq!(o.latency, SimDuration::ZERO);
    }

    #[test]
    fn missing_document_reports_not_found() {
        let mut s = store_node(0x100, 0, StoreConfig::default());
        let mut out = Outbox::new();
        s.lookup(Key::hash_of_str("ghost"), 9, SimTime::ZERO, &mut out);
        assert!(s.outcomes[&9].doc.is_none());
    }

    #[test]
    fn insert_replicates_to_leaf_targets() {
        let mut s = store_node(0x100, 0, StoreConfig { replicas: 3, ..Default::default() });
        // Teach the node two leaf neighbours.
        s.overlay.learn(KeyedNode::new(Key(0x110), n(1)));
        s.overlay.learn(KeyedNode::new(Key(0x120), n(2)));
        let d = doc("replicated");
        let mut out = Outbox::new();
        s.insert(d.clone(), &mut out);
        let puts: Vec<NodeIndex> = out
            .sends()
            .iter()
            .filter(|(_, m, _)| matches!(m, StoreMsg::ReplicaPut { .. }))
            .map(|(t, _, _)| *t)
            .collect();
        assert_eq!(puts.len(), 2, "k-1 replica pushes");
        assert!(puts.contains(&n(1)));
        assert!(puts.contains(&n(2)));
    }

    #[test]
    fn replica_put_keeps_newest_version() {
        let mut s = store_node(0x100, 0, StoreConfig::default());
        let v1 = doc("versioned");
        let v2 = v1.updated(b"newer".to_vec());
        let mut out = Outbox::new();
        s.handle(SimTime::ZERO, n(5), StoreMsg::ReplicaPut { doc: v2.clone() }, &mut out);
        s.handle(SimTime::ZERO, n(5), StoreMsg::ReplicaPut { doc: v1 }, &mut out);
        let mut out = Outbox::new();
        s.lookup(v2.guid, 1, SimTime::ZERO, &mut out);
        assert_eq!(s.outcomes[&1].doc.as_ref().unwrap().version, 2);
    }

    #[test]
    fn cache_push_serves_later_lookups() {
        let mut s = store_node(0x100, 0, StoreConfig::default());
        let d = doc("cached");
        let mut out = Outbox::new();
        s.handle(SimTime::ZERO, n(5), StoreMsg::CachePush { doc: d.clone() }, &mut out);
        assert!(s.has_cached(d.guid));
        let mut out = Outbox::new();
        s.lookup(d.guid, 2, SimTime::ZERO, &mut out);
        assert!(s.outcomes[&2].from_cache);
    }

    #[test]
    fn cache_disabled_ignores_pushes() {
        let cfg = StoreConfig { cache_enabled: false, ..Default::default() };
        let mut s = store_node(0x100, 0, cfg);
        let d = doc("cached");
        let mut out = Outbox::new();
        s.handle(SimTime::ZERO, n(5), StoreMsg::CachePush { doc: d.clone() }, &mut out);
        assert!(!s.has_cached(d.guid));
    }

    #[test]
    fn lookup_interception_serves_en_route() {
        let mut s = store_node(0x100, 0, StoreConfig::default());
        let d = doc("popular");
        let mut out = Outbox::new();
        s.handle(SimTime::ZERO, n(5), StoreMsg::CachePush { doc: d.clone() }, &mut out);
        // A lookup routed through this node gets answered here.
        let lookup = StoreMsg::Overlay(OverlayMsg::Route {
            target: d.guid,
            payload: StorePayload::Lookup {
                guid: d.guid,
                reply_to: n(9),
                req_id: 4,
                issued_at: SimTime::ZERO,
                path: vec![n(9), n(7)],
                min_version: 0,
            },
            origin: n(9),
            hops: 2,
        });
        let mut out = Outbox::new();
        s.handle(SimTime::from_millis(10), n(7), lookup, &mut out);
        let reply = out
            .sends()
            .iter()
            .find(|(t, m, _)| *t == n(9) && matches!(m, StoreMsg::FetchReply { .. }));
        assert!(reply.is_some(), "served from the intermediate cache");
        // Path nodes get cache pushes (n9 and n7).
        let pushes =
            out.sends().iter().filter(|(_, m, _)| matches!(m, StoreMsg::CachePush { .. })).count();
        assert_eq!(pushes, 2);
    }

    #[test]
    fn cache_intercept_acks_the_forward() {
        // Under the governor every accepted forward must be acknowledged,
        // *including* lookups the cache intercept consumes before the
        // overlay sees them. An un-acked forward is held by the previous
        // hop and re-routed every probe round: the same lookup is served
        // again and again, and an honest cache-serving node accumulates
        // conduct suspicion.
        let overlay = OverlayNode::new(Key(0x100), n(0), None, SimDuration::ZERO)
            .with_governor(gloss_overlay::GovernorConfig::default(), 7);
        let mut s = StoreNode::new(n(0), overlay, StoreConfig::default(), Vec::new());
        let d = doc("popular");
        let mut out = Outbox::new();
        s.handle(SimTime::ZERO, n(5), StoreMsg::CachePush { doc: d.clone() }, &mut out);
        let lookup = StoreMsg::Overlay(OverlayMsg::Route {
            target: d.guid,
            payload: StorePayload::Lookup {
                guid: d.guid,
                reply_to: n(9),
                req_id: 4,
                issued_at: SimTime::ZERO,
                path: vec![n(9), n(7)],
                min_version: 0,
            },
            origin: n(9),
            hops: 2,
        });
        let mut out = Outbox::new();
        s.handle(SimTime::from_millis(10), n(7), lookup, &mut out);
        assert!(
            out.sends().iter().any(|(t, m, _)| *t == n(7)
                && matches!(m, StoreMsg::Overlay(OverlayMsg::RouteAck))),
            "cache intercept must ack the previous hop's forward"
        );
    }

    #[test]
    fn duplicate_replies_keep_the_first_outcome() {
        // Re-routing delivers at least once; a request can see a second
        // reply (slow original racing its own re-route). The first
        // conclusion wins — a late duplicate must not overwrite the
        // recorded latency.
        let mut s = store_node(0x100, 0, StoreConfig::default());
        let d = doc("raced");
        let reply = |at_ms: u64, out: &mut Outbox<StoreMsg>, s: &mut StoreNode| {
            s.handle(
                SimTime::from_millis(at_ms),
                n(3),
                StoreMsg::FetchReply {
                    req_id: 8,
                    doc: d.clone(),
                    issued_at: SimTime::ZERO,
                    from_cache: false,
                    hops: 2,
                },
                out,
            );
        };
        let mut out = Outbox::new();
        reply(10, &mut out, &mut s);
        assert_eq!(s.outcomes[&8].latency, SimDuration::from_millis(10));
        let mut out = Outbox::new();
        reply(5000, &mut out, &mut s);
        assert_eq!(
            s.outcomes[&8].latency,
            SimDuration::from_millis(10),
            "duplicate reply overwrote the concluded outcome"
        );
    }

    #[test]
    fn heal_audits_and_repairs() {
        let mut s = store_node(0x100, 0, StoreConfig { replicas: 2, ..Default::default() });
        s.overlay.learn(KeyedNode::new(Key(0x110), n(1)));
        let d = doc("healme");
        let mut out = Outbox::new();
        s.insert(d.clone(), &mut out);
        // Heal timer: audit goes to the replica target.
        let mut out = Outbox::new();
        s.on_timer(SimTime::from_secs(30), timers::HEAL, &mut out);
        let audits: Vec<NodeIndex> = out
            .sends()
            .iter()
            .filter(|(_, m, _)| matches!(m, StoreMsg::HaveReplica { .. }))
            .map(|(t, _, _)| *t)
            .collect();
        assert_eq!(audits, vec![n(1)]);
        // Negative ack triggers a repair put.
        let mut out = Outbox::new();
        s.handle(
            SimTime::from_secs(31),
            n(1),
            StoreMsg::HaveReplicaAck { guid: d.guid, have: false },
            &mut out,
        );
        assert!(out
            .sends()
            .iter()
            .any(|(t, m, _)| *t == n(1) && matches!(m, StoreMsg::ReplicaPut { .. })));
        // Positive ack does not.
        let mut out = Outbox::new();
        s.handle(
            SimTime::from_secs(32),
            n(1),
            StoreMsg::HaveReplicaAck { guid: d.guid, have: true },
            &mut out,
        );
        assert!(out.sends().is_empty());
    }

    #[test]
    fn have_replica_answers_by_version() {
        let mut s = store_node(0x100, 0, StoreConfig::default());
        let d = doc("audited");
        let mut out = Outbox::new();
        s.handle(SimTime::ZERO, n(5), StoreMsg::ReplicaPut { doc: d.clone() }, &mut out);
        let mut out = Outbox::new();
        s.handle(SimTime::ZERO, n(2), StoreMsg::HaveReplica { guid: d.guid, version: 1 }, &mut out);
        assert!(matches!(out.sends()[0].1, StoreMsg::HaveReplicaAck { have: true, .. }));
        // A newer version elsewhere means we do not "have" it.
        let mut out = Outbox::new();
        s.handle(SimTime::ZERO, n(2), StoreMsg::HaveReplica { guid: d.guid, version: 2 }, &mut out);
        assert!(matches!(out.sends()[0].1, StoreMsg::HaveReplicaAck { have: false, .. }));
    }

    fn site_with(node: u32, region: &str, capacity: NodeCapacity) -> NodeSite {
        NodeSite::new(n(node), gloss_sim::GeoPoint::new(0.0, 0.0), region).with_capacity(capacity)
    }

    #[test]
    fn tier_targets_follow_priority() {
        let s = store_node(0x100, 0, StoreConfig { replicas: 3, ..Default::default() });
        assert_eq!(s.target_replicas(Priority::Normal), 3);
        assert_eq!(s.target_replicas(Priority::High), 4);
        assert_eq!(s.target_replicas(Priority::Low), 2);
        let s = store_node(
            0x100,
            0,
            StoreConfig { replicas: 1, tier_low_cut: 3, ..Default::default() },
        );
        assert_eq!(s.target_replicas(Priority::Low), 1, "low tier never drops below one copy");
    }

    #[test]
    fn replica_put_is_acked_with_usage() {
        let mut s = store_node(0x100, 0, StoreConfig::default());
        let d = doc("acked");
        let size = d.size() as u64;
        let mut out = Outbox::new();
        s.handle(SimTime::ZERO, n(5), StoreMsg::ReplicaPut { doc: d.clone() }, &mut out);
        match out.sends().iter().find(|(t, _, _)| *t == n(5)) {
            Some((_, StoreMsg::ReplicaPutAck { guid, accepted, used_bytes }, _)) => {
                assert_eq!(*guid, d.guid);
                assert!(accepted);
                assert_eq!(*used_bytes, size);
            }
            other => panic!("expected ReplicaPutAck, got {other:?}"),
        }
        assert_eq!(s.used_bytes(), size);
    }

    #[test]
    fn replica_put_rejected_when_quota_exhausted() {
        let cap = NodeCapacity { max_bytes: 16, reserved_bytes: 0, min_free_bytes: 0 };
        let overlay = OverlayNode::new(Key(0x100), n(0), None, SimDuration::ZERO);
        let mut s = StoreNode::new(
            n(0),
            overlay,
            StoreConfig { eviction_enabled: false, ..Default::default() },
            vec![site_with(0, "scotland", cap)],
        );
        let d = doc("too-big-to-host"); // content > 16 bytes
        let mut out = Outbox::new();
        s.handle(SimTime::ZERO, n(5), StoreMsg::ReplicaPut { doc: d.clone() }, &mut out);
        match &out.sends()[0].1 {
            StoreMsg::ReplicaPutAck { accepted, used_bytes, .. } => {
                assert!(!accepted, "over-quota put must be refused");
                assert_eq!(*used_bytes, 0);
            }
            other => panic!("expected ReplicaPutAck, got {other:?}"),
        }
        assert!(!s.holds(d.guid));
    }

    #[test]
    fn eviction_sheds_lower_priority_non_primary_docs() {
        // Budget fits one ~30-byte doc; the node is NOT primary for the
        // low-priority resident (a peer sits exactly on its guid).
        let low = doc("low-doc").with_priority(Priority::Low);
        let high = doc("high-doc").with_priority(Priority::High);
        let cap = NodeCapacity {
            max_bytes: low.size().max(high.size()) as u64 + 8,
            reserved_bytes: 0,
            min_free_bytes: 0,
        };
        let overlay = OverlayNode::new(Key(0x100), n(0), None, SimDuration::ZERO);
        let mut s =
            StoreNode::new(n(0), overlay, StoreConfig::default(), vec![site_with(0, "x", cap)]);
        s.overlay.learn(KeyedNode::new(low.guid, n(1)));
        let mut out = Outbox::new();
        s.handle(SimTime::ZERO, n(5), StoreMsg::ReplicaPut { doc: low.clone() }, &mut out);
        assert!(s.holds(low.guid));
        let mut out = Outbox::new();
        s.handle(SimTime::ZERO, n(5), StoreMsg::ReplicaPut { doc: high.clone() }, &mut out);
        assert!(s.holds(high.guid), "high-priority replica admitted");
        assert!(!s.holds(low.guid), "low-priority replica evicted to make room");
        assert!(out.counts().iter().any(|(name, _)| name == "store.evictions"));
    }

    #[test]
    fn acks_build_replica_locations_and_refusals_unbuild_them() {
        let mut s = store_node(0x100, 0, StoreConfig::default());
        let d = doc("tracked");
        let mut out = Outbox::new();
        s.handle(
            SimTime::ZERO,
            n(1),
            StoreMsg::ReplicaPutAck { guid: d.guid, accepted: true, used_bytes: 64 },
            &mut out,
        );
        assert_eq!(s.known_replicas(d.guid), 1);
        s.handle(
            SimTime::ZERO,
            n(1),
            StoreMsg::ReplicaPutAck { guid: d.guid, accepted: false, used_bytes: 512 },
            &mut out,
        );
        assert_eq!(s.known_replicas(d.guid), 0, "a refusal withdraws the holder");
    }

    #[test]
    fn crash_purges_location_maps() {
        let mut s = store_node(0x100, 0, StoreConfig::default());
        s.overlay.learn(KeyedNode::new(Key(0x110), n(1)));
        let d = doc("purge-me");
        let mut out = Outbox::new();
        s.insert(d.clone(), &mut out);
        s.handle(
            SimTime::ZERO,
            n(1),
            StoreMsg::ReplicaPutAck { guid: d.guid, accepted: true, used_bytes: 64 },
            &mut out,
        );
        assert_eq!(s.known_replicas(d.guid), 1);
        // The overlay declares n1 dead; the next store-layer activity
        // drains the failure and purges every map keyed by it.
        let mut oout = Outbox::new();
        s.overlay.declare_failed(n(1), &mut oout);
        let mut out = Outbox::new();
        s.drain_failures(&mut out);
        assert_eq!(s.known_replicas(d.guid), 0, "dead holder purged from location map");
        assert!(out.counts().iter().any(|(name, _)| name == "store.locations_purged"));
    }

    #[test]
    fn repair_tick_replaces_lost_replicas() {
        let d = doc("under-replicated");
        let mut s = store_node(
            d.guid.0,
            0,
            StoreConfig { replicas: 3, repair_rate_per_sec: 100.0, ..Default::default() },
        );
        s.overlay.learn(KeyedNode::new(Key(d.guid.0 ^ 0x10), n(1)));
        s.overlay.learn(KeyedNode::new(Key(d.guid.0 ^ 0x20), n(2)));
        let mut out = Outbox::new();
        s.insert(d.clone(), &mut out);
        // Only n1 acknowledged; n2's put was lost. Target 3, have 2.
        s.handle(
            SimTime::ZERO,
            n(1),
            StoreMsg::ReplicaPutAck { guid: d.guid, accepted: true, used_bytes: 64 },
            &mut out,
        );
        let mut out = Outbox::new();
        s.on_timer(SimTime::from_secs(10), timers::REPAIR, &mut out);
        let repairs: Vec<NodeIndex> = out
            .sends()
            .iter()
            .filter(|(_, m, _)| matches!(m, StoreMsg::ReplicaPut { .. }))
            .map(|(t, _, _)| *t)
            .collect();
        assert_eq!(repairs, vec![n(2)], "the unacknowledged slot is re-placed");
        assert!(out.counts().iter().any(|(name, _)| name == "store.repair_puts"));
    }

    #[test]
    fn lookup_times_out_after_bounded_retries() {
        let mut s = store_node(0x100, 0, StoreConfig { lookup_retries: 2, ..Default::default() });
        // A peer sits on the guid, so the lookup routes away and nobody
        // ever answers.
        let guid = Key::hash_of_str("silent");
        s.overlay.learn(KeyedNode::new(guid, n(1)));
        let mut out = Outbox::new();
        s.lookup(guid, 7, SimTime::ZERO, &mut out);
        assert!(!s.outcomes.contains_key(&7), "in flight");
        assert!(
            out.timers().iter().any(|(_, tag)| *tag == timers::LOOKUP_RETRY),
            "retry deadline armed"
        );
        // Sweep far past every (jittered, doubling) deadline each time:
        // two retries, then the timeout outcome.
        let mut retried = 0u32;
        for i in 1..=4u64 {
            let mut out = Outbox::new();
            s.on_timer(SimTime::from_secs(i * 60), timers::LOOKUP_RETRY, &mut out);
            retried +=
                out.counts().iter().filter(|(name, _)| name == "store.lookups_retried").count()
                    as u32;
            if s.outcomes.contains_key(&7) {
                break;
            }
        }
        assert_eq!(retried, 2, "bounded retry budget");
        let o = s.outcomes.get(&7).expect("timeout outcome recorded");
        assert!(o.doc.is_none());
        assert!(o.latency >= SimDuration::from_secs(60));
    }

    #[test]
    fn fetch_reply_cancels_pending_retry() {
        let mut s = store_node(0x100, 0, StoreConfig::default());
        let guid = Key::hash_of_str("answered");
        s.overlay.learn(KeyedNode::new(guid, n(1)));
        let mut out = Outbox::new();
        s.lookup(guid, 8, SimTime::ZERO, &mut out);
        let d = Document::new("answered", b"late but fine".to_vec());
        let mut out = Outbox::new();
        s.handle(
            SimTime::from_millis(300),
            n(1),
            StoreMsg::FetchReply {
                req_id: 8,
                doc: d,
                issued_at: SimTime::ZERO,
                from_cache: false,
                hops: 2,
            },
            &mut out,
        );
        // A later sweep must not retry or overwrite the outcome.
        let mut out = Outbox::new();
        s.on_timer(SimTime::from_secs(600), timers::LOOKUP_RETRY, &mut out);
        assert!(out.sends().is_empty());
        assert!(s.outcomes[&8].doc.is_some());
    }

    #[test]
    fn fragment_audit_reencodes_missing_shards() {
        let mut s = store_node(
            0x100,
            0,
            StoreConfig { replicas: 1, repair_rate_per_sec: 100.0, ..Default::default() },
        );
        // The node is primary for everything (no peers): store the
        // manifest and all-but-one shard locally, then let the repair
        // tick audit and re-create the missing one.
        let content: Vec<u8> = (0..200u8).collect();
        let code = crate::erasure::ErasureCode::new(3, 5).unwrap();
        let shards = code.encode(&content);
        let manifest = FragmentManifest { base: "obj".into(), m: 3, n: 5, len: content.len() };
        let mut out = Outbox::new();
        s.insert(manifest.to_doc(Priority::Normal), &mut out);
        for (i, bytes) in shards.iter().enumerate() {
            if i == 2 {
                continue; // lost shard
            }
            let d = Document::new(FragmentManifest::shard_name("obj", i), bytes.clone());
            s.insert(d, &mut out);
        }
        let missing_guid = Key::hash_of_str(&FragmentManifest::shard_name("obj", 2));
        assert!(!s.holds(missing_guid));
        let mut out = Outbox::new();
        s.on_timer(SimTime::from_secs(10), timers::REPAIR, &mut out);
        assert!(s.holds(missing_guid), "audit re-encoded and re-inserted the lost shard");
        let repaired = s.store.get(&missing_guid).unwrap();
        assert_eq!(
            repaired.content.as_ref(),
            shards[2].as_slice(),
            "systematic re-encode reproduces the original bytes exactly"
        );
        assert!(out.counts().iter().any(|(name, _)| name == "store.repair_shards"));
    }

    #[test]
    fn fetch_reply_records_outcome_and_caches() {
        let mut s = store_node(0x100, 0, StoreConfig::default());
        let d = doc("fetched");
        let mut out = Outbox::new();
        s.handle(
            SimTime::from_millis(150),
            n(3),
            StoreMsg::FetchReply {
                req_id: 11,
                doc: d.clone(),
                issued_at: SimTime::from_millis(100),
                from_cache: false,
                hops: 3,
            },
            &mut out,
        );
        let o = &s.outcomes[&11];
        assert_eq!(o.latency, SimDuration::from_millis(50));
        assert_eq!(o.hops, 3);
        assert!(s.has_cached(d.guid), "requester caches what it fetched");
    }
}
