//! The storelet: a storage node embedding an overlay node, implementing
//! PAST-style replication, promiscuous caching, self-healing, and the
//! placement policies.

use crate::cache::LruCache;
use crate::document::Document;
use crate::placement::{
    BackupPolicy, LatencyReductionPolicy, NodeSite, PlacementAction, PlacementPolicy,
};
use gloss_overlay::{Key, OverlayMsg, OverlayNode};
use gloss_sim::{FnvHashMap, NodeIndex, Outbox, SimDuration, SimTime};
use std::collections::{BTreeMap, BTreeSet};

/// Timer tags private to the storage layer (overlay tags pass through).
pub mod timers {
    /// Periodic replica audit (self-healing).
    pub const HEAL: u64 = 0x20;
}

/// Payloads routed through the overlay.
#[derive(Debug, Clone, PartialEq)]
pub enum StorePayload {
    /// Store a document at the nodes responsible for its GUID.
    Insert {
        /// The document.
        doc: Document,
    },
    /// Find a document; the holder replies directly to `reply_to`.
    Lookup {
        /// The GUID sought.
        guid: Key,
        /// Where to send the reply.
        reply_to: NodeIndex,
        /// Correlation id (assigned by the requester).
        req_id: u64,
        /// When the request was issued (for latency measurement).
        issued_at: SimTime,
        /// Nodes the request has passed through (promiscuous caching
        /// pushes copies back along this path).
        path: Vec<NodeIndex>,
        /// Minimum acceptable `Document::version`. Cached copies below
        /// this floor neither satisfy the request locally nor intercept
        /// it en route; only the responsible node answers with whatever
        /// it holds. `0` preserves the classic any-copy behaviour.
        min_version: u64,
    },
}

/// Messages of the storage layer.
#[derive(Debug, Clone, PartialEq)]
pub enum StoreMsg {
    /// Overlay protocol traffic (join, routing, probes) carrying
    /// [`StorePayload`]s.
    Overlay(OverlayMsg<StorePayload>),
    /// Push a durable replica (idempotent; receivers keep the highest
    /// version).
    ReplicaPut {
        /// The document.
        doc: Document,
    },
    /// Push a cached copy (promiscuous caching; evictable).
    CachePush {
        /// The document.
        doc: Document,
    },
    /// Audit: does the receiver hold a replica of `guid` at `version`?
    HaveReplica {
        /// The GUID audited.
        guid: Key,
        /// The auditor's version.
        version: u64,
    },
    /// Audit answer; `false` triggers a [`StoreMsg::ReplicaPut`].
    HaveReplicaAck {
        /// The GUID audited.
        guid: Key,
        /// Whether the responder holds it (at `version` or newer).
        have: bool,
    },
    /// Successful lookup reply, sent directly to the requester.
    FetchReply {
        /// Correlation id.
        req_id: u64,
        /// The document found.
        doc: Document,
        /// When the lookup was issued.
        issued_at: SimTime,
        /// Whether it was served from a cache (vs a durable replica).
        from_cache: bool,
        /// Overlay hops the request travelled before being served.
        hops: u32,
    },
    /// The responsible node does not hold the document.
    NotFound {
        /// Correlation id.
        req_id: u64,
        /// The GUID sought.
        guid: Key,
        /// When the lookup was issued.
        issued_at: SimTime,
    },
}

/// The outcome of a lookup, recorded at the requesting node.
#[derive(Debug, Clone, PartialEq)]
pub struct LookupOutcome {
    /// The GUID sought.
    pub guid: Key,
    /// The document, if found.
    pub doc: Option<Document>,
    /// Request-to-reply latency.
    pub latency: SimDuration,
    /// Whether a cache served it.
    pub from_cache: bool,
    /// Overlay hops travelled by the request.
    pub hops: u32,
}

/// Storage layer configuration.
#[derive(Debug, Clone)]
pub struct StoreConfig {
    /// Replication factor `k` (primary + `k − 1` replicas).
    pub replicas: usize,
    /// Enable promiscuous caching.
    pub cache_enabled: bool,
    /// Per-node cache capacity in bytes.
    pub cache_capacity: usize,
    /// How often each node audits the documents it is primary for.
    pub heal_interval: SimDuration,
    /// Latency-reduction policy: replicate into a region after this many
    /// reads from it (`None` = off).
    pub latency_policy_threshold: Option<u64>,
    /// Backup policy: minimum distance (km) for the creation-time remote
    /// replica (`None` = off).
    pub backup_policy_min_km: Option<f64>,
}

impl Default for StoreConfig {
    fn default() -> Self {
        StoreConfig {
            replicas: 3,
            cache_enabled: true,
            cache_capacity: 1 << 20,
            heal_interval: SimDuration::from_secs(30),
            latency_policy_threshold: None,
            backup_policy_min_km: None,
        }
    }
}

/// A storage node (storelet) embedding an overlay node.
#[derive(Debug)]
pub struct StoreNode {
    me: NodeIndex,
    overlay: OverlayNode<StorePayload>,
    cfg: StoreConfig,
    store: BTreeMap<Key, Document>,
    cache: LruCache,
    directory: Vec<NodeSite>,
    latency_policy: Option<LatencyReductionPolicy>,
    backup_policy: Option<BackupPolicy>,
    /// Nodes we have pushed policy replicas of each doc to.
    policy_holders: BTreeMap<Key, BTreeSet<NodeIndex>>,
    /// Outcomes of lookups issued from this node, by request id (FNV:
    /// written once per lookup, probed by the discovery/ingest hooks).
    pub outcomes: FnvHashMap<u64, LookupOutcome>,
}

impl StoreNode {
    /// Creates a storage node wrapping `overlay`, with `directory`
    /// describing all nodes' locations (used by placement policies).
    pub fn new(
        me: NodeIndex,
        overlay: OverlayNode<StorePayload>,
        cfg: StoreConfig,
        directory: Vec<NodeSite>,
    ) -> Self {
        let cache = LruCache::new(cfg.cache_capacity);
        let latency_policy = cfg.latency_policy_threshold.map(LatencyReductionPolicy::new);
        let backup_policy = cfg.backup_policy_min_km.map(BackupPolicy::new);
        StoreNode {
            me,
            overlay,
            cfg,
            store: BTreeMap::new(),
            cache,
            directory,
            latency_policy,
            backup_policy,
            policy_holders: BTreeMap::new(),
            outcomes: FnvHashMap::default(),
        }
    }

    /// This node's index.
    pub fn index(&self) -> NodeIndex {
        self.me
    }

    /// The embedded overlay node.
    pub fn overlay(&self) -> &OverlayNode<StorePayload> {
        &self.overlay
    }

    /// Whether this node durably stores `guid`.
    pub fn holds(&self, guid: Key) -> bool {
        self.store.contains_key(&guid)
    }

    /// Whether this node has `guid` cached.
    pub fn has_cached(&self, guid: Key) -> bool {
        self.cache.contains(guid)
    }

    /// Number of durably stored documents.
    pub fn stored_count(&self) -> usize {
        self.store.len()
    }

    /// Cache statistics: (hits, misses).
    pub fn cache_stats(&self) -> (u64, u64) {
        (self.cache.hits, self.cache.misses)
    }

    /// Cold start: reset overlay state and arm the heal timer.
    pub fn on_start(&mut self, out: &mut Outbox<StoreMsg>) {
        let mut oout = Outbox::new();
        self.overlay.on_start(&mut oout);
        oout.transfer_into(out, StoreMsg::Overlay);
        out.timer(self.cfg.heal_interval, timers::HEAL);
    }

    /// Timer dispatch (overlay tags pass through; `HEAL` audits replicas).
    pub fn on_timer(&mut self, now: SimTime, tag: u64, out: &mut Outbox<StoreMsg>) {
        if tag == timers::HEAL {
            self.heal(out);
            out.timer(self.cfg.heal_interval, timers::HEAL);
        } else {
            let mut oout = Outbox::new();
            self.overlay.on_timer(now, tag, &mut oout);
            oout.transfer_into(out, StoreMsg::Overlay);
        }
    }

    /// Whether this node believes it is the primary for `guid` (closest
    /// among itself and its leaf set).
    pub fn is_primary_for(&self, guid: Key) -> bool {
        let my_d = self.overlay.id().key.ring_distance(guid);
        self.overlay.leaf_members().iter().all(|m| m.key.ring_distance(guid) >= my_d)
    }

    /// The `k − 1` leaf-set members numerically closest to `guid` (the
    /// desired replica holders besides the primary). Suspected peers are
    /// excluded — replicas placed on a node with an open circuit would be
    /// unreachable exactly when they are needed. (`is_primary_for` stays
    /// on the full leaf set: primaryship is about ring position, and a
    /// suspected-but-alive closer neighbour must still suppress us.)
    fn replica_targets(&self, guid: Key) -> Vec<NodeIndex> {
        let mut members = self.overlay.usable_leaf_members();
        members.sort_by_key(|m| m.key.ring_distance(guid));
        members.into_iter().take(self.cfg.replicas.saturating_sub(1)).map(|m| m.node).collect()
    }

    fn heal(&mut self, out: &mut Outbox<StoreMsg>) {
        let guids: Vec<(Key, u64)> = self
            .store
            .iter()
            .filter(|(g, _)| self.is_primary_for(**g))
            .map(|(g, d)| (*g, d.version))
            .collect();
        for (guid, version) in guids {
            for target in self.replica_targets(guid) {
                out.send(target, StoreMsg::HaveReplica { guid, version });
            }
        }
    }

    fn site_of(&self, node: NodeIndex) -> Option<&NodeSite> {
        self.directory.iter().find(|s| s.node == node)
    }

    fn run_placement_actions(&mut self, actions: Vec<PlacementAction>, out: &mut Outbox<StoreMsg>) {
        for action in actions {
            match action {
                PlacementAction::ReplicateTo { guid, target } => {
                    if let Some(doc) = self.store.get(&guid).cloned() {
                        self.policy_holders.entry(guid).or_default().insert(target);
                        out.count("store.policy_replicas", 1.0);
                        if target == self.me {
                            continue;
                        }
                        out.send(target, StoreMsg::ReplicaPut { doc });
                    }
                }
            }
        }
    }

    /// Stores a document durably, keeping the newest version. Returns
    /// whether the write changed state.
    fn put_local(&mut self, doc: Document) -> bool {
        match self.store.get(&doc.guid) {
            Some(existing) if existing.version >= doc.version => false,
            _ => {
                self.store.insert(doc.guid, doc);
                true
            }
        }
    }

    /// A local copy from durable store or (if enabled) cache:
    /// `(doc, from_cache)`.
    fn local_copy(&mut self, guid: Key) -> Option<(Document, bool)> {
        if let Some(doc) = self.store.get(&guid) {
            return Some((doc.clone(), false));
        }
        if self.cfg.cache_enabled {
            if let Some(doc) = self.cache.get(guid) {
                return Some((doc, true));
            }
        }
        None
    }

    /// Handles one message.
    pub fn handle(
        &mut self,
        now: SimTime,
        from: NodeIndex,
        msg: StoreMsg,
        out: &mut Outbox<StoreMsg>,
    ) {
        match msg {
            StoreMsg::Overlay(omsg) => self.handle_overlay(now, from, omsg, out),
            StoreMsg::ReplicaPut { doc } => {
                if self.put_local(doc) {
                    out.count("store.replica_puts", 1.0);
                }
            }
            StoreMsg::CachePush { doc } => {
                if self.cfg.cache_enabled {
                    self.cache.insert(doc);
                }
            }
            StoreMsg::HaveReplica { guid, version } => {
                let have = self.store.get(&guid).is_some_and(|d| d.version >= version);
                out.send(from, StoreMsg::HaveReplicaAck { guid, have });
            }
            StoreMsg::HaveReplicaAck { guid, have } => {
                if !have {
                    if let Some(doc) = self.store.get(&guid).cloned() {
                        out.count("store.heal_puts", 1.0);
                        out.send(from, StoreMsg::ReplicaPut { doc });
                    }
                }
            }
            StoreMsg::FetchReply { req_id, doc, issued_at, from_cache, hops } => {
                out.count("store.lookups_ok", 1.0);
                out.observe("store.lookup_ms", now.since(issued_at).as_secs_f64() * 1e3);
                out.observe("store.lookup_hops", hops as f64);
                if from_cache {
                    out.count("store.cache_served", 1.0);
                }
                // The requester caches what it fetched (promiscuous).
                if self.cfg.cache_enabled {
                    self.cache.insert(doc.clone());
                }
                self.outcomes.insert(
                    req_id,
                    LookupOutcome {
                        guid: doc.guid,
                        doc: Some(doc),
                        latency: now.since(issued_at),
                        from_cache,
                        hops,
                    },
                );
            }
            StoreMsg::NotFound { req_id, guid, issued_at } => {
                out.count("store.lookups_missing", 1.0);
                self.outcomes.insert(
                    req_id,
                    LookupOutcome {
                        guid,
                        doc: None,
                        latency: now.since(issued_at),
                        from_cache: false,
                        hops: 0,
                    },
                );
            }
        }
    }

    fn handle_overlay(
        &mut self,
        now: SimTime,
        from: NodeIndex,
        mut omsg: OverlayMsg<StorePayload>,
        out: &mut Outbox<StoreMsg>,
    ) {
        // Intercept lookups: any node along the route holding a copy
        // answers immediately (promiscuous caching's latency win).
        if let OverlayMsg::Route { payload: StorePayload::Lookup { .. }, .. } = &omsg {
            if let OverlayMsg::Route {
                payload:
                    StorePayload::Lookup { guid, reply_to, req_id, issued_at, path, min_version },
                hops,
                ..
            } = &mut omsg
            {
                if let Some((doc, from_cache)) =
                    self.local_copy(*guid).filter(|(d, _)| d.version >= *min_version)
                {
                    // Cache along the path walked so far, then move the
                    // copy into the reply (no clone for the common
                    // empty-path case).
                    if self.cfg.cache_enabled {
                        for n in path.iter().filter(|n| **n != self.me) {
                            out.send(*n, StoreMsg::CachePush { doc: doc.clone() });
                        }
                    }
                    out.send(
                        *reply_to,
                        StoreMsg::FetchReply {
                            req_id: *req_id,
                            doc,
                            issued_at: *issued_at,
                            from_cache,
                            hops: *hops,
                        },
                    );
                    self.after_serve(*guid, *reply_to, now, out);
                    return;
                }
                path.push(self.me);
            }
        }

        let mut oout = Outbox::new();
        let deliveries = self.overlay.handle(now, from, omsg, &mut oout);
        oout.transfer_into(out, StoreMsg::Overlay);

        for d in deliveries {
            match d.payload {
                StorePayload::Insert { doc } => {
                    let guid = doc.guid;
                    out.count("store.inserts_rooted", 1.0);
                    for target in self.replica_targets(guid) {
                        out.send(target, StoreMsg::ReplicaPut { doc: doc.clone() });
                    }
                    self.put_local(doc);
                    // Backup policy: remote replica as soon as created.
                    if self.backup_policy.is_some() {
                        if let Some(site) = self.site_of(self.me).cloned() {
                            let mut holders: Vec<NodeIndex> = self.replica_targets(guid);
                            holders.push(self.me);
                            let policy = self.backup_policy.as_mut().expect("checked above");
                            let actions =
                                policy.on_create(guid, &site, now, &self.directory, &holders);
                            self.run_placement_actions(actions, out);
                        }
                    }
                }
                StorePayload::Lookup { guid, reply_to, req_id, issued_at, .. } => {
                    // Delivered at the responsible node and nothing local:
                    // the document does not exist.
                    match self.local_copy(guid) {
                        Some((doc, from_cache)) => {
                            out.send(
                                reply_to,
                                StoreMsg::FetchReply {
                                    req_id,
                                    doc,
                                    issued_at,
                                    from_cache,
                                    hops: d.hops,
                                },
                            );
                            self.after_serve(guid, reply_to, now, out);
                        }
                        None => {
                            out.send(reply_to, StoreMsg::NotFound { req_id, guid, issued_at });
                        }
                    }
                }
            }
        }
    }

    /// Post-serve hook: run the latency-reduction policy.
    fn after_serve(
        &mut self,
        guid: Key,
        reader: NodeIndex,
        now: SimTime,
        out: &mut Outbox<StoreMsg>,
    ) {
        if self.latency_policy.is_none() {
            return;
        }
        let Some(reader_site) = self.site_of(reader).cloned() else {
            return;
        };
        let mut holders: Vec<NodeIndex> =
            self.policy_holders.get(&guid).map(|s| s.iter().copied().collect()).unwrap_or_default();
        holders.push(self.me);
        let actions = self.latency_policy.as_mut().expect("checked above").on_access(
            guid,
            &reader_site,
            now,
            &self.directory,
            &holders,
        );
        self.run_placement_actions(actions, out);
    }

    /// Originates an insert from this node (used by the harness).
    pub fn insert(&mut self, doc: Document, out: &mut Outbox<StoreMsg>) {
        let guid = doc.guid;
        let mut oout = Outbox::new();
        let delivered = self.overlay.route(guid, StorePayload::Insert { doc }, &mut oout);
        oout.transfer_into(out, StoreMsg::Overlay);
        if let Some(d) = delivered {
            // We are the root ourselves.
            if let StorePayload::Insert { doc } = d.payload {
                let guid = doc.guid;
                for target in self.replica_targets(guid) {
                    out.send(target, StoreMsg::ReplicaPut { doc: doc.clone() });
                }
                self.put_local(doc);
            }
        }
    }

    /// Originates a lookup from this node; the outcome lands in
    /// [`outcomes`](Self::outcomes) keyed by `req_id`.
    pub fn lookup(&mut self, guid: Key, req_id: u64, now: SimTime, out: &mut Outbox<StoreMsg>) {
        self.lookup_min_version(guid, 0, req_id, now, out);
    }

    /// Like [`lookup`](Self::lookup), but refuses cached copies below
    /// `min_version`: neither the local fast path nor en-route
    /// interception serves a stale copy, so the request reaches the
    /// responsible node, which answers with whatever it holds. Lets
    /// readers who know a document has advanced (e.g. the knowledge
    /// plane pulling the next delta batch) bypass promiscuous caching's
    /// stale copies without losing its latency win for fresh ones.
    pub fn lookup_min_version(
        &mut self,
        guid: Key,
        min_version: u64,
        req_id: u64,
        now: SimTime,
        out: &mut Outbox<StoreMsg>,
    ) {
        // Fresh-enough local copy? Serve instantly.
        if let Some((doc, from_cache)) =
            self.local_copy(guid).filter(|(d, _)| d.version >= min_version)
        {
            out.count("store.lookups_ok", 1.0);
            out.count("store.lookups_local", 1.0);
            out.observe("store.lookup_ms", 0.0);
            out.observe("store.lookup_hops", 0.0);
            if from_cache {
                out.count("store.cache_served", 1.0);
            }
            self.outcomes.insert(
                req_id,
                LookupOutcome {
                    guid,
                    doc: Some(doc),
                    latency: SimDuration::ZERO,
                    from_cache,
                    hops: 0,
                },
            );
            return;
        }
        let payload = StorePayload::Lookup {
            guid,
            reply_to: self.me,
            req_id,
            issued_at: now,
            path: vec![self.me],
            min_version,
        };
        let mut oout = Outbox::new();
        let delivered = self.overlay.route(guid, payload, &mut oout);
        oout.transfer_into(out, StoreMsg::Overlay);
        if delivered.is_some() {
            // We are the responsible node: answer with whatever we hold
            // (the floor only filters non-authoritative copies), or
            // record the miss.
            match self.local_copy(guid) {
                Some((doc, from_cache)) => {
                    out.count("store.lookups_ok", 1.0);
                    out.count("store.lookups_local", 1.0);
                    out.observe("store.lookup_ms", 0.0);
                    out.observe("store.lookup_hops", 0.0);
                    if from_cache {
                        out.count("store.cache_served", 1.0);
                    }
                    self.outcomes.insert(
                        req_id,
                        LookupOutcome {
                            guid,
                            doc: Some(doc),
                            latency: SimDuration::ZERO,
                            from_cache,
                            hops: 0,
                        },
                    );
                }
                None => {
                    out.count("store.lookups_missing", 1.0);
                    self.outcomes.insert(
                        req_id,
                        LookupOutcome {
                            guid,
                            doc: None,
                            latency: SimDuration::ZERO,
                            from_cache: false,
                            hops: 0,
                        },
                    );
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gloss_overlay::KeyedNode;

    fn n(i: u32) -> NodeIndex {
        NodeIndex(i)
    }

    fn store_node(key: u128, idx: u32, cfg: StoreConfig) -> StoreNode {
        let overlay = OverlayNode::new(Key(key), n(idx), None, SimDuration::ZERO);
        StoreNode::new(n(idx), overlay, cfg, Vec::new())
    }

    fn doc(name: &str) -> Document {
        Document::new(name, format!("content of {name}").into_bytes())
    }

    #[test]
    fn singleton_insert_then_lookup_locally() {
        let mut s = store_node(0x100, 0, StoreConfig::default());
        let d = doc("menu");
        let mut out = Outbox::new();
        s.insert(d.clone(), &mut out);
        assert!(s.holds(d.guid));
        let mut out = Outbox::new();
        s.lookup(d.guid, 1, SimTime::ZERO, &mut out);
        let o = &s.outcomes[&1];
        assert_eq!(o.doc.as_ref().unwrap().content, d.content);
        assert!(!o.from_cache);
        assert_eq!(o.latency, SimDuration::ZERO);
    }

    #[test]
    fn missing_document_reports_not_found() {
        let mut s = store_node(0x100, 0, StoreConfig::default());
        let mut out = Outbox::new();
        s.lookup(Key::hash_of_str("ghost"), 9, SimTime::ZERO, &mut out);
        assert!(s.outcomes[&9].doc.is_none());
    }

    #[test]
    fn insert_replicates_to_leaf_targets() {
        let mut s = store_node(0x100, 0, StoreConfig { replicas: 3, ..Default::default() });
        // Teach the node two leaf neighbours.
        s.overlay.learn(KeyedNode::new(Key(0x110), n(1)));
        s.overlay.learn(KeyedNode::new(Key(0x120), n(2)));
        let d = doc("replicated");
        let mut out = Outbox::new();
        s.insert(d.clone(), &mut out);
        let puts: Vec<NodeIndex> = out
            .sends()
            .iter()
            .filter(|(_, m, _)| matches!(m, StoreMsg::ReplicaPut { .. }))
            .map(|(t, _, _)| *t)
            .collect();
        assert_eq!(puts.len(), 2, "k-1 replica pushes");
        assert!(puts.contains(&n(1)));
        assert!(puts.contains(&n(2)));
    }

    #[test]
    fn replica_put_keeps_newest_version() {
        let mut s = store_node(0x100, 0, StoreConfig::default());
        let v1 = doc("versioned");
        let v2 = v1.updated(b"newer".to_vec());
        let mut out = Outbox::new();
        s.handle(SimTime::ZERO, n(5), StoreMsg::ReplicaPut { doc: v2.clone() }, &mut out);
        s.handle(SimTime::ZERO, n(5), StoreMsg::ReplicaPut { doc: v1 }, &mut out);
        let mut out = Outbox::new();
        s.lookup(v2.guid, 1, SimTime::ZERO, &mut out);
        assert_eq!(s.outcomes[&1].doc.as_ref().unwrap().version, 2);
    }

    #[test]
    fn cache_push_serves_later_lookups() {
        let mut s = store_node(0x100, 0, StoreConfig::default());
        let d = doc("cached");
        let mut out = Outbox::new();
        s.handle(SimTime::ZERO, n(5), StoreMsg::CachePush { doc: d.clone() }, &mut out);
        assert!(s.has_cached(d.guid));
        let mut out = Outbox::new();
        s.lookup(d.guid, 2, SimTime::ZERO, &mut out);
        assert!(s.outcomes[&2].from_cache);
    }

    #[test]
    fn cache_disabled_ignores_pushes() {
        let cfg = StoreConfig { cache_enabled: false, ..Default::default() };
        let mut s = store_node(0x100, 0, cfg);
        let d = doc("cached");
        let mut out = Outbox::new();
        s.handle(SimTime::ZERO, n(5), StoreMsg::CachePush { doc: d.clone() }, &mut out);
        assert!(!s.has_cached(d.guid));
    }

    #[test]
    fn lookup_interception_serves_en_route() {
        let mut s = store_node(0x100, 0, StoreConfig::default());
        let d = doc("popular");
        let mut out = Outbox::new();
        s.handle(SimTime::ZERO, n(5), StoreMsg::CachePush { doc: d.clone() }, &mut out);
        // A lookup routed through this node gets answered here.
        let lookup = StoreMsg::Overlay(OverlayMsg::Route {
            target: d.guid,
            payload: StorePayload::Lookup {
                guid: d.guid,
                reply_to: n(9),
                req_id: 4,
                issued_at: SimTime::ZERO,
                path: vec![n(9), n(7)],
                min_version: 0,
            },
            origin: n(9),
            hops: 2,
        });
        let mut out = Outbox::new();
        s.handle(SimTime::from_millis(10), n(7), lookup, &mut out);
        let reply = out
            .sends()
            .iter()
            .find(|(t, m, _)| *t == n(9) && matches!(m, StoreMsg::FetchReply { .. }));
        assert!(reply.is_some(), "served from the intermediate cache");
        // Path nodes get cache pushes (n9 and n7).
        let pushes =
            out.sends().iter().filter(|(_, m, _)| matches!(m, StoreMsg::CachePush { .. })).count();
        assert_eq!(pushes, 2);
    }

    #[test]
    fn heal_audits_and_repairs() {
        let mut s = store_node(0x100, 0, StoreConfig { replicas: 2, ..Default::default() });
        s.overlay.learn(KeyedNode::new(Key(0x110), n(1)));
        let d = doc("healme");
        let mut out = Outbox::new();
        s.insert(d.clone(), &mut out);
        // Heal timer: audit goes to the replica target.
        let mut out = Outbox::new();
        s.on_timer(SimTime::from_secs(30), timers::HEAL, &mut out);
        let audits: Vec<NodeIndex> = out
            .sends()
            .iter()
            .filter(|(_, m, _)| matches!(m, StoreMsg::HaveReplica { .. }))
            .map(|(t, _, _)| *t)
            .collect();
        assert_eq!(audits, vec![n(1)]);
        // Negative ack triggers a repair put.
        let mut out = Outbox::new();
        s.handle(
            SimTime::from_secs(31),
            n(1),
            StoreMsg::HaveReplicaAck { guid: d.guid, have: false },
            &mut out,
        );
        assert!(out
            .sends()
            .iter()
            .any(|(t, m, _)| *t == n(1) && matches!(m, StoreMsg::ReplicaPut { .. })));
        // Positive ack does not.
        let mut out = Outbox::new();
        s.handle(
            SimTime::from_secs(32),
            n(1),
            StoreMsg::HaveReplicaAck { guid: d.guid, have: true },
            &mut out,
        );
        assert!(out.sends().is_empty());
    }

    #[test]
    fn have_replica_answers_by_version() {
        let mut s = store_node(0x100, 0, StoreConfig::default());
        let d = doc("audited");
        let mut out = Outbox::new();
        s.handle(SimTime::ZERO, n(5), StoreMsg::ReplicaPut { doc: d.clone() }, &mut out);
        let mut out = Outbox::new();
        s.handle(SimTime::ZERO, n(2), StoreMsg::HaveReplica { guid: d.guid, version: 1 }, &mut out);
        assert!(matches!(out.sends()[0].1, StoreMsg::HaveReplicaAck { have: true, .. }));
        // A newer version elsewhere means we do not "have" it.
        let mut out = Outbox::new();
        s.handle(SimTime::ZERO, n(2), StoreMsg::HaveReplica { guid: d.guid, version: 2 }, &mut out);
        assert!(matches!(out.sends()[0].1, StoreMsg::HaveReplicaAck { have: false, .. }));
    }

    #[test]
    fn fetch_reply_records_outcome_and_caches() {
        let mut s = store_node(0x100, 0, StoreConfig::default());
        let d = doc("fetched");
        let mut out = Outbox::new();
        s.handle(
            SimTime::from_millis(150),
            n(3),
            StoreMsg::FetchReply {
                req_id: 11,
                doc: d.clone(),
                issued_at: SimTime::from_millis(100),
                from_cache: false,
                hops: 3,
            },
            &mut out,
        );
        let o = &s.outcomes[&11];
        assert_eq!(o.latency, SimDuration::from_millis(50));
        assert_eq!(o.hops, 3);
        assert!(s.has_cached(d.guid), "requester caches what it fetched");
    }
}
