//! The self-healing pipeline's support types: fragment manifests and the
//! rate-limited repair scheduler.
//!
//! The paper expects storage that "permits data to be reconstituted from
//! a subset of the servers on which it is stored" (§3). Reconstitution
//! after a *crash* needs two things the read path does not: a durable
//! record of how an object was fragmented (the [`FragmentManifest`],
//! itself stored as a document so it enjoys replica healing), and a
//! governor on how fast the surviving nodes re-create lost copies (the
//! [`RepairScheduler`]) — an ungoverned repair storm after a correlated
//! regional crash would bury exactly the foreground traffic the repairs
//! exist to protect.

use crate::document::{Document, Priority};
use gloss_governor::TokenBucket;
use gloss_sim::{splitmix64, splitmix_unit, NodeIndex, SimDuration, SimTime};
use std::collections::BTreeMap;

/// The durable record of an erasure-coded object: stored under
/// `"{base}#manifest"`, it names the coding parameters and original
/// length, from which every shard name (`"{base}#shard{i}"`) and GUID is
/// derivable. The manifest's primary is the object's repair coordinator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FragmentManifest {
    /// The object's base document name.
    pub base: String,
    /// Data shards (any `m` reconstruct).
    pub m: usize,
    /// Total shards.
    pub n: usize,
    /// Original object length in bytes.
    pub len: usize,
}

/// Suffix distinguishing manifest documents.
pub const MANIFEST_SUFFIX: &str = "#manifest";

impl FragmentManifest {
    /// The manifest document's name.
    pub fn doc_name(base: &str) -> String {
        format!("{base}{MANIFEST_SUFFIX}")
    }

    /// The name of shard `i` of `base`.
    pub fn shard_name(base: &str, i: usize) -> String {
        format!("{base}#shard{i}")
    }

    /// Serialises into a manifest [`Document`] carrying `priority` (the
    /// tier governs the manifest's own replication *and* is inherited by
    /// repaired shards).
    pub fn to_doc(&self, priority: Priority) -> Document {
        let body = format!("m={}\nn={}\nlen={}\nbase={}\n", self.m, self.n, self.len, self.base);
        Document::new(Self::doc_name(&self.base), body.into_bytes()).with_priority(priority)
    }

    /// Parses a manifest document; `None` if it is not one (wrong name
    /// suffix or malformed body — a repair coordinator must never panic
    /// on bytes another node produced).
    pub fn parse(doc: &Document) -> Option<FragmentManifest> {
        doc.name.strip_suffix(MANIFEST_SUFFIX)?;
        let body = std::str::from_utf8(&doc.content).ok()?;
        let mut m = None;
        let mut n = None;
        let mut len = None;
        let mut base = None;
        for line in body.lines() {
            let (k, v) = line.split_once('=')?;
            match k {
                "m" => m = v.parse().ok(),
                "n" => n = v.parse().ok(),
                "len" => len = v.parse().ok(),
                "base" => base = Some(v.to_string()),
                _ => return None,
            }
        }
        let (m, n, len, base) = (m?, n?, len?, base?);
        if m == 0 || n < m || doc.name.as_ref() != Self::doc_name(&base) {
            return None;
        }
        Some(FragmentManifest { base, m, n, len })
    }
}

/// Anti-storm pacing for repair traffic: a [`TokenBucket`] (the same
/// primitive the admission governor rate-limits joins with) bounds the
/// aggregate rate of repair transfers a node initiates, and a per-peer
/// in-flight cap keeps one slow or dead target from absorbing the whole
/// budget. Deferred work is counted, not dropped — the scan that wanted
/// it re-requests on its next tick, offset by a jittered backoff so
/// coordinators that crashed in the same region do not re-synchronise.
#[derive(Debug, Clone)]
pub struct RepairScheduler {
    bucket: TokenBucket,
    inflight: BTreeMap<NodeIndex, usize>,
    max_inflight_per_peer: usize,
    rng: u64,
    /// Repair transfers granted.
    pub granted: u64,
    /// Repair transfers deferred (budget or cap exhausted).
    pub deferred: u64,
}

impl RepairScheduler {
    /// Creates a scheduler: at most `rate_per_sec` sustained repair
    /// transfers (bursting to `burst`), at most `max_inflight_per_peer`
    /// outstanding per target node. `seed` feeds the jitter stream.
    pub fn new(rate_per_sec: f64, burst: f64, max_inflight_per_peer: usize, seed: u64) -> Self {
        let mut s = seed ^ 0x5e1f_4ea1_9e37_79b9;
        splitmix64(&mut s);
        RepairScheduler {
            bucket: TokenBucket::new(burst.max(1.0), rate_per_sec.max(0.0), SimTime::ZERO),
            inflight: BTreeMap::new(),
            max_inflight_per_peer: max_inflight_per_peer.max(1),
            rng: s,
            granted: 0,
            deferred: 0,
        }
    }

    /// Asks to start one repair transfer to `peer` now. A grant charges
    /// the budget and holds an in-flight slot until
    /// [`complete`](Self::complete).
    pub fn try_grant(&mut self, now: SimTime, peer: NodeIndex) -> bool {
        let slots = self.inflight.entry(peer).or_insert(0);
        if *slots >= self.max_inflight_per_peer {
            self.deferred += 1;
            return false;
        }
        if !self.bucket.try_take(now, 1.0) {
            self.deferred += 1;
            return false;
        }
        *slots += 1;
        self.granted += 1;
        true
    }

    /// Releases `peer`'s in-flight slot (its transfer was acknowledged
    /// or its target was declared dead).
    pub fn complete(&mut self, peer: NodeIndex) {
        if let Some(slots) = self.inflight.get_mut(&peer) {
            *slots = slots.saturating_sub(1);
            if *slots == 0 {
                self.inflight.remove(&peer);
            }
        }
    }

    /// Forgets all in-flight state toward `peer` (it crashed; the acks
    /// are never coming).
    pub fn forget_peer(&mut self, peer: NodeIndex) {
        self.inflight.remove(&peer);
    }

    /// A jittered pause (`base` ± 25%) before retrying deferred work,
    /// drawn from this scheduler's private deterministic stream.
    pub fn backoff(&mut self, base: SimDuration) -> SimDuration {
        let unit = splitmix_unit(&mut self.rng);
        let factor = 0.75 + 0.5 * unit;
        SimDuration::from_micros(((base.as_micros() as f64) * factor).round().max(1.0) as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manifest_round_trip() {
        let m = FragmentManifest { base: "photo".into(), m: 3, n: 6, len: 1234 };
        let doc = m.to_doc(Priority::High);
        assert_eq!(doc.name.as_ref(), "photo#manifest");
        assert_eq!(doc.priority, Priority::High);
        assert_eq!(FragmentManifest::parse(&doc), Some(m));
    }

    #[test]
    fn manifest_rejects_garbage() {
        let not_manifest = Document::new("photo", b"m=1\nn=2\nlen=3\nbase=photo\n".to_vec());
        assert_eq!(FragmentManifest::parse(&not_manifest), None);
        let bad_body = Document::new("photo#manifest", b"not a manifest".to_vec());
        assert_eq!(FragmentManifest::parse(&bad_body), None);
        // Name must match the embedded base.
        let wrong_base = Document::new("photo#manifest", b"m=2\nn=3\nlen=9\nbase=other\n".to_vec());
        assert_eq!(FragmentManifest::parse(&wrong_base), None);
        let zero_m = Document::new("x#manifest", b"m=0\nn=3\nlen=9\nbase=x\n".to_vec());
        assert_eq!(FragmentManifest::parse(&zero_m), None);
    }

    #[test]
    fn shard_names_are_stable() {
        assert_eq!(FragmentManifest::shard_name("doc", 0), "doc#shard0");
        assert_eq!(FragmentManifest::shard_name("doc", 11), "doc#shard11");
    }

    #[test]
    fn scheduler_enforces_rate_and_inflight_cap() {
        let mut s = RepairScheduler::new(1.0, 2.0, 1, 7);
        let t0 = SimTime::ZERO;
        let (a, b) = (NodeIndex(1), NodeIndex(2));
        assert!(s.try_grant(t0, a));
        // Per-peer cap: a second transfer to the same peer is deferred
        // even though budget remains.
        assert!(!s.try_grant(t0, a));
        assert!(s.try_grant(t0, b));
        // Budget (burst 2) exhausted for everyone else.
        assert!(!s.try_grant(t0, NodeIndex(3)));
        assert_eq!(s.granted, 2);
        assert_eq!(s.deferred, 2);
        // Completion frees the slot; refill frees the budget.
        s.complete(a);
        assert!(s.try_grant(SimTime::from_secs(1), a));
    }

    #[test]
    fn forget_peer_clears_slots() {
        let mut s = RepairScheduler::new(100.0, 100.0, 1, 7);
        let a = NodeIndex(1);
        assert!(s.try_grant(SimTime::ZERO, a));
        assert!(!s.try_grant(SimTime::ZERO, a));
        s.forget_peer(a);
        assert!(s.try_grant(SimTime::ZERO, a));
    }

    #[test]
    fn backoff_is_jittered_and_deterministic() {
        let base = SimDuration::from_secs(2);
        let mut s1 = RepairScheduler::new(1.0, 1.0, 1, 42);
        let mut s2 = RepairScheduler::new(1.0, 1.0, 1, 42);
        for _ in 0..16 {
            let d1 = s1.backoff(base);
            assert_eq!(d1, s2.backoff(base), "same seed, same stream");
            assert!(d1 >= SimDuration::from_millis(1500) && d1 <= SimDuration::from_millis(2500));
        }
    }
}
