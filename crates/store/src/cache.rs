//! Promiscuous caching: a byte-bounded LRU of documents.
//!
//! "The more sophisticated P2P systems support promiscuous caching where
//! data is free to be cached anywhere at any time. This does not affect
//! the correctness of the system ... and is crucial to the performance of
//! the system if the fetching of remote data at every access is to be
//! avoided." (§3)
//!
//! Recency is an intrusive doubly-linked list threaded through a slab of
//! entries: `get`/`insert` touch in O(1) and eviction pops the list tail in
//! O(1). (The seed implementation stamped entries with a logical clock and
//! ran a full `min_by_key` scan per evicted document — O(n²) under churn.)

use crate::document::Document;
use bytes::Bytes;
use gloss_overlay::Key;
use std::collections::HashMap;

/// Null slot index terminating the recency list.
const NIL: u32 = u32::MAX;

#[derive(Debug, Clone)]
struct Slot {
    doc: Document,
    /// Next more-recently-used slot (towards the head).
    prev: u32,
    /// Next less-recently-used slot (towards the tail).
    next: u32,
}

/// A least-recently-used document cache bounded by total content bytes.
#[derive(Debug, Clone)]
pub struct LruCache {
    capacity_bytes: usize,
    used_bytes: usize,
    /// guid → slot in `slots`.
    index: HashMap<Key, u32>,
    slots: Vec<Slot>,
    /// Reusable slot indices freed by `remove`/eviction.
    free: Vec<u32>,
    /// Most recently used slot (`NIL` when empty).
    head: u32,
    /// Least recently used slot (`NIL` when empty).
    tail: u32,
    /// Cache hits observed.
    pub hits: u64,
    /// Cache misses observed.
    pub misses: u64,
}

impl Default for LruCache {
    /// A zero-capacity cache (the recency-list sentinels must be `NIL`,
    /// not the all-zeroes a derived `Default` would produce).
    fn default() -> Self {
        LruCache::new(0)
    }
}

impl LruCache {
    /// Creates a cache bounded to `capacity_bytes` of document content.
    pub fn new(capacity_bytes: usize) -> Self {
        LruCache {
            capacity_bytes,
            used_bytes: 0,
            index: HashMap::new(),
            slots: Vec::new(),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            hits: 0,
            misses: 0,
        }
    }

    /// Number of cached documents.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Bytes currently cached.
    pub fn used_bytes(&self) -> usize {
        self.used_bytes
    }

    /// Unlinks a slot from the recency list (it stays in the slab).
    fn unlink(&mut self, slot: u32) {
        let (prev, next) = {
            let s = &self.slots[slot as usize];
            (s.prev, s.next)
        };
        if prev == NIL {
            self.head = next;
        } else {
            self.slots[prev as usize].next = next;
        }
        if next == NIL {
            self.tail = prev;
        } else {
            self.slots[next as usize].prev = prev;
        }
    }

    /// Links a slot in as the most recently used.
    fn link_front(&mut self, slot: u32) {
        let old_head = self.head;
        {
            let s = &mut self.slots[slot as usize];
            s.prev = NIL;
            s.next = old_head;
        }
        if old_head != NIL {
            self.slots[old_head as usize].prev = slot;
        }
        self.head = slot;
        if self.tail == NIL {
            self.tail = slot;
        }
    }

    /// Moves a slot to the front of the recency list.
    fn touch(&mut self, slot: u32) {
        if self.head != slot {
            self.unlink(slot);
            self.link_front(slot);
        }
    }

    /// Looks up a document, refreshing its recency and counting hit/miss.
    pub fn get(&mut self, guid: Key) -> Option<Document> {
        match self.index.get(&guid).copied() {
            Some(slot) => {
                self.touch(slot);
                self.hits += 1;
                Some(self.slots[slot as usize].doc.clone())
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Checks presence without counting or refreshing.
    pub fn contains(&self, guid: Key) -> bool {
        self.index.contains_key(&guid)
    }

    /// Inserts a document, evicting least-recently-used entries to fit.
    /// Documents larger than the whole capacity are ignored. Older
    /// versions never replace newer ones; a write-back of the version
    /// already cached refreshes its recency (a hot document re-written at
    /// its current version must not drift to the LRU tail).
    pub fn insert(&mut self, doc: Document) {
        if doc.size() > self.capacity_bytes {
            return;
        }
        if let Some(slot) = self.index.get(&doc.guid).copied() {
            let existing = &self.slots[slot as usize].doc;
            if existing.version > doc.version {
                return;
            }
            if existing.version == doc.version {
                self.touch(slot);
                return;
            }
            // Newer version: replace content in place.
            self.used_bytes -= existing.size();
            self.used_bytes += doc.size();
            self.slots[slot as usize].doc = doc;
            self.touch(slot);
            self.evict_to_fit(0);
            return;
        }
        self.evict_to_fit(doc.size());
        self.used_bytes += doc.size();
        let slot = match self.free.pop() {
            Some(slot) => {
                self.slots[slot as usize] = Slot { doc, prev: NIL, next: NIL };
                slot
            }
            None => {
                self.slots.push(Slot { doc, prev: NIL, next: NIL });
                (self.slots.len() - 1) as u32
            }
        };
        self.index.insert(self.slots[slot as usize].doc.guid, slot);
        self.link_front(slot);
    }

    /// Pops recency-list tails until `extra` more bytes fit.
    fn evict_to_fit(&mut self, extra: usize) {
        while self.used_bytes + extra > self.capacity_bytes {
            let victim = self.tail;
            if victim == NIL {
                break;
            }
            self.unlink(victim);
            let evicted = &self.slots[victim as usize].doc;
            self.used_bytes -= evicted.size();
            let guid = evicted.guid;
            self.index.remove(&guid);
            self.release(victim);
        }
    }

    /// Returns a slot to the free list, releasing its payload (the slab
    /// slot itself is reused by `insert`).
    fn release(&mut self, slot: u32) {
        self.slots[slot as usize].doc.content = Bytes::new();
        self.free.push(slot);
    }

    /// Removes a document (e.g. on explicit invalidation).
    pub fn remove(&mut self, guid: Key) -> Option<Document> {
        let slot = self.index.remove(&guid)?;
        self.unlink(slot);
        let doc = self.slots[slot as usize].doc.clone();
        self.used_bytes -= doc.size();
        self.release(slot);
        Some(doc)
    }

    /// Empties the cache, keeping the hit/miss counters.
    pub fn clear(&mut self) {
        self.index.clear();
        self.slots.clear();
        self.free.clear();
        self.head = NIL;
        self.tail = NIL;
        self.used_bytes = 0;
    }

    /// Hit ratio so far (0 when never queried).
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc(name: &str, bytes: usize) -> Document {
        Document::new(name, vec![0u8; bytes])
    }

    #[test]
    fn hit_and_miss_counting() {
        let mut c = LruCache::new(1000);
        let d = doc("a", 10);
        assert!(c.get(d.guid).is_none());
        c.insert(d.clone());
        assert!(c.get(d.guid).is_some());
        assert_eq!(c.hits, 1);
        assert_eq!(c.misses, 1);
        assert!((c.hit_ratio() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn evicts_least_recently_used() {
        let mut c = LruCache::new(30);
        let (a, b, d) = (doc("a", 10), doc("b", 10), doc("d", 10));
        c.insert(a.clone());
        c.insert(b.clone());
        c.insert(d.clone());
        // Touch a and d; b is now LRU.
        c.get(a.guid);
        c.get(d.guid);
        c.insert(doc("e", 10));
        assert!(c.contains(a.guid));
        assert!(!c.contains(b.guid), "b was least recently used");
        assert!(c.contains(d.guid));
        assert!(c.used_bytes() <= 30);
    }

    #[test]
    fn oversized_documents_ignored() {
        let mut c = LruCache::new(10);
        c.insert(doc("big", 100));
        assert!(c.is_empty());
    }

    #[test]
    fn newer_version_replaces_older_never_reverse() {
        let mut c = LruCache::new(1000);
        let v1 = doc("m", 10);
        let v2 = v1.updated(vec![1u8; 20]);
        c.insert(v2.clone());
        c.insert(v1.clone()); // stale write-back: ignored
        assert_eq!(c.get(v1.guid).unwrap().version, 2);
        let v3 = v2.updated(vec![2u8; 5]);
        c.insert(v3);
        assert_eq!(c.get(v1.guid).unwrap().version, 3);
        assert_eq!(c.used_bytes(), 5);
    }

    #[test]
    fn same_version_writeback_refreshes_recency() {
        // Regression: the seed cache returned early on a same-version
        // re-insert without refreshing recency, so a hot document
        // re-written at its current version drifted to LRU and was
        // evicted prematurely.
        let mut c = LruCache::new(30);
        let (a, b, d) = (doc("a", 10), doc("b", 10), doc("d", 10));
        c.insert(a.clone());
        c.insert(b.clone());
        c.insert(d.clone());
        // Write a back at its current version; b is now the true LRU.
        c.insert(a.clone());
        c.insert(doc("e", 10));
        assert!(c.contains(a.guid), "same-version write-back must refresh recency");
        assert!(!c.contains(b.guid), "b was least recently used");
    }

    #[test]
    fn stale_writeback_does_not_refresh_recency() {
        let mut c = LruCache::new(30);
        let a1 = doc("a", 10);
        let a2 = a1.updated(vec![1u8; 10]);
        let (b, d) = (doc("b", 10), doc("d", 10));
        c.insert(a2.clone());
        c.insert(b.clone());
        c.insert(d.clone());
        // A stale (older-version) write-back is not a use of the cached
        // document: a stays the LRU and is evicted first.
        c.insert(a1);
        c.insert(doc("e", 10));
        assert!(!c.contains(a2.guid), "stale write-back must not refresh recency");
        assert!(c.contains(b.guid));
    }

    #[test]
    fn remove_and_clear() {
        let mut c = LruCache::new(100);
        let d = doc("a", 10);
        c.insert(d.clone());
        assert_eq!(c.remove(d.guid).unwrap().guid, d.guid);
        assert_eq!(c.used_bytes(), 0);
        c.insert(doc("b", 10));
        c.clear();
        assert!(c.is_empty());
    }

    #[test]
    fn eviction_accounts_bytes_exactly() {
        let mut c = LruCache::new(25);
        for i in 0..10 {
            c.insert(doc(&format!("d{i}"), 10));
            assert!(c.used_bytes() <= 25);
            assert_eq!(c.used_bytes(), c.len() * 10, "byte accounting must match entry count");
        }
    }

    #[test]
    fn churn_preserves_exact_accounting_and_lru_order() {
        // Heavy mixed churn over a small cache: byte accounting stays
        // exact, the recency list stays consistent, and the survivors are
        // exactly the most recently touched documents.
        let mut c = LruCache::new(100);
        let docs: Vec<Document> = (0..64).map(|i| doc(&format!("d{i}"), 10)).collect();
        for round in 0..50usize {
            for (i, d) in docs.iter().enumerate() {
                c.insert(d.clone());
                if (i + round) % 3 == 0 {
                    c.get(docs[(i * 7 + round) % docs.len()].guid);
                }
                if (i + round) % 11 == 0 {
                    c.remove(docs[(i * 5 + round) % docs.len()].guid);
                }
                let expected: usize = c.len() * 10;
                assert_eq!(c.used_bytes(), expected);
                assert!(c.used_bytes() <= 100);
            }
        }
        // The last ten inserts (none removed since) are the MRU set.
        for d in docs.iter().rev().take(3) {
            assert!(c.contains(d.guid), "freshly inserted {} must survive", d.name);
        }
    }

    #[test]
    fn version_upgrade_larger_than_remaining_capacity_evicts_others() {
        let mut c = LruCache::new(30);
        let a1 = doc("a", 10);
        let (b, d) = (doc("b", 10), doc("d", 10));
        c.insert(a1.clone());
        c.insert(b.clone());
        c.insert(d.clone());
        // Upgrading a to 25 bytes must evict LRU entries, never a itself.
        let a2 = a1.updated(vec![3u8; 25]);
        c.insert(a2);
        assert_eq!(c.get(a1.guid).unwrap().version, 2);
        assert!(c.used_bytes() <= 30);
        assert_eq!(c.used_bytes(), 25);
    }
}
