//! Promiscuous caching: a byte-bounded LRU of documents.
//!
//! "The more sophisticated P2P systems support promiscuous caching where
//! data is free to be cached anywhere at any time. This does not affect
//! the correctness of the system ... and is crucial to the performance of
//! the system if the fetching of remote data at every access is to be
//! avoided." (§3)

use crate::document::Document;
use gloss_overlay::Key;
use std::collections::HashMap;

/// A least-recently-used document cache bounded by total content bytes.
#[derive(Debug, Clone)]
pub struct LruCache {
    capacity_bytes: usize,
    used_bytes: usize,
    entries: HashMap<Key, (Document, u64)>,
    clock: u64,
    /// Cache hits observed.
    pub hits: u64,
    /// Cache misses observed.
    pub misses: u64,
}

impl LruCache {
    /// Creates a cache bounded to `capacity_bytes` of document content.
    pub fn new(capacity_bytes: usize) -> Self {
        LruCache {
            capacity_bytes,
            used_bytes: 0,
            entries: HashMap::new(),
            clock: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// Number of cached documents.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Bytes currently cached.
    pub fn used_bytes(&self) -> usize {
        self.used_bytes
    }

    /// Looks up a document, refreshing its recency and counting hit/miss.
    pub fn get(&mut self, guid: Key) -> Option<Document> {
        self.clock += 1;
        match self.entries.get_mut(&guid) {
            Some((doc, stamp)) => {
                *stamp = self.clock;
                self.hits += 1;
                Some(doc.clone())
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Checks presence without counting or refreshing.
    pub fn contains(&self, guid: Key) -> bool {
        self.entries.contains_key(&guid)
    }

    /// Inserts a document, evicting least-recently-used entries to fit.
    /// Documents larger than the whole capacity are ignored. Older
    /// versions never replace newer ones.
    pub fn insert(&mut self, doc: Document) {
        if doc.size() > self.capacity_bytes {
            return;
        }
        if let Some((existing, _)) = self.entries.get(&doc.guid) {
            if existing.version >= doc.version {
                return;
            }
            self.used_bytes -= existing.size();
            self.entries.remove(&doc.guid);
        }
        while self.used_bytes + doc.size() > self.capacity_bytes {
            let Some((&lru_key, _)) = self.entries.iter().min_by_key(|(_, (_, stamp))| *stamp)
            else {
                break;
            };
            let (evicted, _) = self.entries.remove(&lru_key).expect("key exists");
            self.used_bytes -= evicted.size();
        }
        self.clock += 1;
        self.used_bytes += doc.size();
        self.entries.insert(doc.guid, (doc, self.clock));
    }

    /// Removes a document (e.g. on explicit invalidation).
    pub fn remove(&mut self, guid: Key) -> Option<Document> {
        self.entries.remove(&guid).map(|(doc, _)| {
            self.used_bytes -= doc.size();
            doc
        })
    }

    /// Empties the cache, keeping the hit/miss counters.
    pub fn clear(&mut self) {
        self.entries.clear();
        self.used_bytes = 0;
    }

    /// Hit ratio so far (0 when never queried).
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc(name: &str, bytes: usize) -> Document {
        Document::new(name, vec![0u8; bytes])
    }

    #[test]
    fn hit_and_miss_counting() {
        let mut c = LruCache::new(1000);
        let d = doc("a", 10);
        assert!(c.get(d.guid).is_none());
        c.insert(d.clone());
        assert!(c.get(d.guid).is_some());
        assert_eq!(c.hits, 1);
        assert_eq!(c.misses, 1);
        assert!((c.hit_ratio() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn evicts_least_recently_used() {
        let mut c = LruCache::new(30);
        let (a, b, d) = (doc("a", 10), doc("b", 10), doc("d", 10));
        c.insert(a.clone());
        c.insert(b.clone());
        c.insert(d.clone());
        // Touch a and d; b is now LRU.
        c.get(a.guid);
        c.get(d.guid);
        c.insert(doc("e", 10));
        assert!(c.contains(a.guid));
        assert!(!c.contains(b.guid), "b was least recently used");
        assert!(c.contains(d.guid));
        assert!(c.used_bytes() <= 30);
    }

    #[test]
    fn oversized_documents_ignored() {
        let mut c = LruCache::new(10);
        c.insert(doc("big", 100));
        assert!(c.is_empty());
    }

    #[test]
    fn newer_version_replaces_older_never_reverse() {
        let mut c = LruCache::new(1000);
        let v1 = doc("m", 10);
        let v2 = v1.updated(vec![1u8; 20]);
        c.insert(v2.clone());
        c.insert(v1.clone()); // stale write-back: ignored
        assert_eq!(c.get(v1.guid).unwrap().version, 2);
        let v3 = v2.updated(vec![2u8; 5]);
        c.insert(v3);
        assert_eq!(c.get(v1.guid).unwrap().version, 3);
        assert_eq!(c.used_bytes(), 5);
    }

    #[test]
    fn remove_and_clear() {
        let mut c = LruCache::new(100);
        let d = doc("a", 10);
        c.insert(d.clone());
        assert_eq!(c.remove(d.guid).unwrap().guid, d.guid);
        assert_eq!(c.used_bytes(), 0);
        c.insert(doc("b", 10));
        c.clear();
        assert!(c.is_empty());
    }

    #[test]
    fn eviction_accounts_bytes_exactly() {
        let mut c = LruCache::new(25);
        for i in 0..10 {
            c.insert(doc(&format!("d{i}"), 10));
            assert!(c.used_bytes() <= 25);
            assert_eq!(c.used_bytes(), c.len() * 10, "byte accounting must match entry count");
        }
    }
}
