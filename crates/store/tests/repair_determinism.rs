//! Repair determinism: a re-encoded shard must be byte-identical to the
//! lost original (systematic Reed–Solomon plus the lowest-`m`-indices
//! surplus rule makes decode a pure function of *which* shards survive,
//! not of arrival order), and a full crash → repair-storm → re-converge
//! scenario must be reproducible — same seed, same final state, at any
//! worker thread count.

use gloss_sim::{NodeIndex, SimDuration};
use gloss_store::{Document, ErasureCode, Priority, StoreConfig, StoreNetwork};
use proptest::prelude::*;

/// Deterministic xorshift byte stream for content generation.
fn fill(seed: u64, len: usize) -> Vec<u8> {
    let mut s = seed ^ 0x9e37_79b9_7f4a_7c15;
    (0..len)
        .map(|_| {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            (s & 0xff) as u8
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    // Losing any subset of shards (leaving at least m) and repairing
    // from the survivors reproduces every lost shard byte-for-byte.
    #[test]
    fn repaired_shards_are_byte_identical_to_originals(
        len in 1usize..2048,
        seed in 1u64..1_000_000,
        m in 1usize..8,
        extra in 1usize..6,
    ) {
        let n = m + extra;
        let content = fill(seed, len);
        let code = ErasureCode::new(m, n).unwrap();
        let shards = code.encode(&content);
        // Drop a seed-derived subset, keeping at least m survivors.
        let mut s = seed.wrapping_mul(0x2545_f491_4f6c_dd1d) | 1;
        let mut survivors: Vec<(usize, Vec<u8>)> =
            (0..n).map(|i| (i, shards[i].clone())).collect();
        while survivors.len() > m {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            if s & 3 == 0 {
                break;
            }
            let k = ((s >> 2) as usize) % survivors.len();
            survivors.remove(k);
        }
        let data = code.decode(&survivors, len).unwrap();
        prop_assert_eq!(&data, &content, "decoded object differs");
        // Re-encoding the decoded object reproduces every original
        // shard — what the repair pipeline re-inserts after a crash is
        // exactly what was lost.
        let reencoded = code.encode(&data);
        for (i, (orig, repaired)) in shards.iter().zip(reencoded.iter()).enumerate() {
            prop_assert_eq!(orig, repaired, "shard {} not byte-identical after repair", i);
        }
    }
}

/// Runs a fixed crash-and-repair storm and digests the final state:
/// repair/lookup counters, per-document redundancy, and shard survival.
fn storm_digest(threads: usize) -> String {
    let cfg = StoreConfig {
        replicas: 2,
        heal_interval: SimDuration::from_secs(10),
        repair_interval: Some(SimDuration::from_secs(10)),
        ..Default::default()
    };
    let mut net = StoreNetwork::build(24, cfg, 4242);
    net.world_mut().set_threads(threads);
    net.settle();
    let docs: Vec<Document> = (0..6)
        .map(|i| {
            Document::new(format!("doc-{i}"), fill(100 + i, 256)).with_priority(match i % 3 {
                0 => Priority::High,
                1 => Priority::Normal,
                _ => Priority::Low,
            })
        })
        .collect();
    for (i, d) in docs.iter().enumerate() {
        net.insert(NodeIndex(i as u32), d.clone());
    }
    net.insert_erasure(NodeIndex(0), "storm-obj", &fill(777, 900), 3, 6).unwrap();
    net.run_for(SimDuration::from_secs(60));
    net.crash_region("us-east");
    net.crash_region("australia");
    net.run_for(SimDuration::from_secs(300));
    let mut out = String::new();
    for d in &docs {
        out.push_str(&format!("{}={}\n", d.name, net.replica_count(d.guid)));
    }
    out.push_str(&format!("shards={}\n", net.shards_alive("storm-obj", 6)));
    for c in [
        "store.repair_puts",
        "store.repair_shards",
        "store.repair_bytes",
        "store.locations_purged",
        "store.lookups_retried",
        "store.lookups_timeout",
        "store.evictions",
        "sim.messages_sent",
    ] {
        out.push_str(&format!("{c}={}\n", net.counter(c)));
    }
    out
}

#[test]
fn repair_storm_is_reproducible() {
    let a = storm_digest(1);
    let b = storm_digest(1);
    assert_eq!(a, b, "same seed, same storm, different outcome");
}

#[test]
fn repair_storm_is_thread_invariant() {
    let one = storm_digest(1);
    assert_eq!(one, storm_digest(2), "2 worker threads diverged");
    assert_eq!(one, storm_digest(4), "4 worker threads diverged");
}
