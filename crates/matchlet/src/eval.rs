//! Expression evaluation and goal solving with unification over the
//! knowledge base.

use crate::ast::{BinOp, Expr, Goal, Pat};
use crate::builtin;
use crate::symbol::Symbol;
use gloss_knowledge::{FactSource, Term};
use gloss_sim::SimTime;
use std::error::Error;
use std::fmt;
use std::ops::Index;

/// Variable bindings accumulated during matching: a flat vector of
/// `(Symbol, Term)` pairs.
///
/// Environments are tiny (a handful of variables), so linear scans beat
/// tree or hash lookups, and cloning is a single allocation instead of a
/// node-per-entry `BTreeMap` rebuild. Keys are interned [`Symbol`]s, so
/// clones never copy variable names.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Bindings {
    entries: Vec<(Symbol, Term)>,
}

impl Bindings {
    /// Creates an empty environment.
    pub fn new() -> Self {
        Bindings::default()
    }

    /// Number of bound variables.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether nothing is bound.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The value bound to `name`, if any.
    pub fn get(&self, name: &str) -> Option<&Term> {
        let sym = Symbol::lookup(name)?;
        self.get_sym(sym)
    }

    /// The value bound to an interned symbol, if any.
    pub fn get_sym(&self, sym: Symbol) -> Option<&Term> {
        self.entries.iter().find(|(s, _)| *s == sym).map(|(_, t)| t)
    }

    /// Whether `name` is bound.
    pub fn contains_key(&self, name: &str) -> bool {
        self.get(name).is_some()
    }

    /// Binds `name` to `value`, replacing any existing binding.
    pub fn insert(&mut self, name: impl Into<Symbol>, value: Term) {
        self.insert_sym(name.into(), value);
    }

    /// Binds an interned symbol to `value`, replacing any existing
    /// binding.
    pub fn insert_sym(&mut self, sym: Symbol, value: Term) {
        match self.entries.iter_mut().find(|(s, _)| *s == sym) {
            Some((_, t)) => *t = value,
            None => self.entries.push((sym, value)),
        }
    }

    /// Iterates over `(symbol, value)` pairs in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (Symbol, &Term)> + '_ {
        self.entries.iter().map(|(s, t)| (*s, t))
    }

    /// Drops all bindings after the first `len` (the solver's
    /// backtracking undo: bindings are append-only within a frame; the
    /// engine's memo replay uses the same discipline).
    pub(crate) fn truncate(&mut self, len: usize) {
        self.entries.truncate(len);
    }

    /// The raw `(symbol, value)` entries in insertion order (the engine's
    /// memo captures the suffix a solve appended beyond its input).
    pub(crate) fn raw_entries(&self) -> &[(Symbol, Term)] {
        &self.entries
    }

    /// Appends an entry the caller knows is not already bound (memo
    /// replay of a captured suffix — suffixes only ever contain symbols
    /// that were unbound in the input environment).
    pub(crate) fn push_raw(&mut self, sym: Symbol, value: Term) {
        debug_assert!(self.get_sym(sym).is_none(), "memo suffix rebinds ?{sym}");
        self.entries.push((sym, value));
    }

    /// Joins two environments: `None` if any shared variable disagrees
    /// (under [`Term::eq_term`]), otherwise a new environment holding
    /// this one's bindings extended with `other`'s. The conflict check
    /// runs before any allocation, and the result is built in a single
    /// exactly-sized allocation.
    pub fn merged(&self, other: &Bindings) -> Option<Bindings> {
        for (k, v) in &other.entries {
            if let Some(existing) = self.get_sym(*k) {
                if !existing.eq_term(v) {
                    return None;
                }
            }
        }
        let mut entries = Vec::with_capacity(self.entries.len() + other.entries.len());
        entries.extend(self.entries.iter().cloned());
        for (k, v) in &other.entries {
            if !entries.iter().any(|(s, _)| s == k) {
                entries.push((*k, v.clone()));
            }
        }
        Some(Bindings { entries })
    }
}

impl Index<&str> for Bindings {
    type Output = Term;

    fn index(&self, name: &str) -> &Term {
        self.get(name).unwrap_or_else(|| panic!("unbound variable ?{name}"))
    }
}

impl FromIterator<(String, Term)> for Bindings {
    fn from_iter<I: IntoIterator<Item = (String, Term)>>(iter: I) -> Self {
        let mut b = Bindings::new();
        for (k, v) in iter {
            b.insert(k, v);
        }
        b
    }
}

impl FromIterator<(Symbol, Term)> for Bindings {
    fn from_iter<I: IntoIterator<Item = (Symbol, Term)>>(iter: I) -> Self {
        let mut b = Bindings::new();
        for (k, v) in iter {
            b.insert_sym(k, v);
        }
        b
    }
}

/// An evaluation failure.
#[derive(Debug, Clone, PartialEq)]
pub enum EvalError {
    /// A variable was referenced before being bound.
    UnboundVariable(String),
    /// No such builtin function.
    UnknownFunction(String),
    /// A builtin rejected its arguments.
    BadArguments {
        /// The function.
        function: String,
        /// What was passed.
        detail: String,
    },
    /// An operator was applied to incompatible operands.
    TypeError {
        /// The operator.
        op: String,
        /// The operands.
        detail: String,
    },
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::UnboundVariable(v) => write!(f, "unbound variable ?{v}"),
            EvalError::UnknownFunction(n) => write!(f, "unknown function `{n}`"),
            EvalError::BadArguments { function, detail } => {
                write!(f, "bad arguments to `{function}`: {detail}")
            }
            EvalError::TypeError { op, detail } => {
                write!(f, "type error applying `{op}`: {detail}")
            }
        }
    }
}

impl Error for EvalError {}

/// Evaluates an expression under `env` at time `now`, reading facts from
/// `kb` (used only by the `fact(...)`-as-boolean form inside `or`).
///
/// # Errors
///
/// Returns [`EvalError`] for unbound variables, unknown functions, or
/// type mismatches.
pub fn eval(
    expr: &Expr,
    env: &Bindings,
    kb: &dyn FactSource,
    now: SimTime,
) -> Result<Term, EvalError> {
    match expr {
        Expr::Lit(t) => Ok(t.clone()),
        Expr::Var(v) => env
            .get_sym(*v)
            .cloned()
            .ok_or_else(|| EvalError::UnboundVariable(v.as_str().to_string())),
        Expr::Not(inner) => {
            let t = eval(inner, env, kb, now)?;
            let b = t
                .as_bool()
                .ok_or_else(|| EvalError::TypeError { op: "not".into(), detail: t.to_string() })?;
            Ok(Term::Bool(!b))
        }
        Expr::Neg(inner) => {
            let t = eval(inner, env, kb, now)?;
            let n = t
                .as_f64()
                .ok_or_else(|| EvalError::TypeError { op: "-".into(), detail: t.to_string() })?;
            Ok(if matches!(t, Term::Int(_)) { Term::Int(-(n as i64)) } else { Term::Float(-n) })
        }
        Expr::Binary(op, l, r) => {
            // Short-circuit logical operators.
            if *op == BinOp::And || *op == BinOp::Or {
                let lv = eval(l, env, kb, now)?;
                let lb = lv.as_bool().ok_or_else(|| EvalError::TypeError {
                    op: op.to_string(),
                    detail: lv.to_string(),
                })?;
                if (*op == BinOp::And && !lb) || (*op == BinOp::Or && lb) {
                    return Ok(Term::Bool(lb));
                }
                let rv = eval(r, env, kb, now)?;
                return rv.as_bool().map(Term::Bool).ok_or_else(|| EvalError::TypeError {
                    op: op.to_string(),
                    detail: rv.to_string(),
                });
            }
            let lv = eval(l, env, kb, now)?;
            let rv = eval(r, env, kb, now)?;
            apply_binop(*op, &lv, &rv)
        }
        Expr::Call(name, args) if name == "fact" && args.len() == 3 => {
            // Boolean form: true iff at least one fact matches (no new
            // bindings escape).
            let subject = eval(&args[0], env, kb, now)?;
            let predicate = eval(&args[1], env, kb, now)?;
            let object = eval(&args[2], env, kb, now)?;
            let (Some(s), Some(p)) = (subject.as_str(), predicate.as_str()) else {
                return Err(EvalError::BadArguments {
                    function: "fact".into(),
                    detail: "subject and predicate must be strings".into(),
                });
            };
            let found = kb.query_at(Some(s), Some(p), now).any(|f| f.object.eq_term(&object));
            Ok(Term::Bool(found))
        }
        Expr::Call(name, args) if args.is_empty() && !env.is_empty() && env.contains_key(name) => {
            // A bare atom that happens to shadow a variable name never
            // occurs in practice; keep atoms as strings.
            Ok(Term::str(name.as_str()))
        }
        Expr::Call(name, args) => {
            if args.is_empty() && !is_builtin(name) {
                // Bare atom.
                return Ok(Term::str(name.as_str()));
            }
            // Builtins take at most three arguments; evaluate into a
            // stack buffer so calls never touch the allocator.
            if args.len() <= 3 {
                let mut buf = [Term::Bool(false), Term::Bool(false), Term::Bool(false)];
                for (i, a) in args.iter().enumerate() {
                    buf[i] = eval(a, env, kb, now)?;
                }
                return builtin::call(name, &buf[..args.len()], now);
            }
            let mut vals = Vec::with_capacity(args.len());
            for a in args {
                vals.push(eval(a, env, kb, now)?);
            }
            builtin::call(name, &vals, now)
        }
    }
}

use builtin::is_builtin;

fn apply_binop(op: BinOp, l: &Term, r: &Term) -> Result<Term, EvalError> {
    use BinOp::*;
    let type_err = || EvalError::TypeError { op: op.to_string(), detail: format!("{l} {op} {r}") };
    match op {
        Eq => Ok(Term::Bool(l.eq_term(r))),
        Ne => Ok(Term::Bool(!l.eq_term(r))),
        Lt | Le | Gt | Ge => {
            let ord = match (l, r) {
                (Term::Str(a), Term::Str(b)) => a.cmp(b),
                _ => {
                    let (a, b) =
                        (l.as_f64().ok_or_else(type_err)?, r.as_f64().ok_or_else(type_err)?);
                    a.partial_cmp(&b).ok_or_else(type_err)?
                }
            };
            let b = match op {
                Lt => ord.is_lt(),
                Le => ord.is_le(),
                Gt => ord.is_gt(),
                _ => ord.is_ge(),
            };
            Ok(Term::Bool(b))
        }
        Add => match (l, r) {
            (Term::Str(a), Term::Str(b)) => Ok(Term::Str(format!("{a}{b}").into())),
            (Term::Int(a), Term::Int(b)) => Ok(Term::Int(a + b)),
            _ => {
                let (a, b) = (l.as_f64().ok_or_else(type_err)?, r.as_f64().ok_or_else(type_err)?);
                Ok(Term::Float(a + b))
            }
        },
        Sub | Mul | Div => {
            if let (Term::Int(a), Term::Int(b)) = (l, r) {
                return Ok(match op {
                    Sub => Term::Int(a - b),
                    Mul => Term::Int(a * b),
                    _ => {
                        if *b == 0 {
                            return Err(type_err());
                        }
                        Term::Int(a / b)
                    }
                });
            }
            let (a, b) = (l.as_f64().ok_or_else(type_err)?, r.as_f64().ok_or_else(type_err)?);
            Ok(Term::Float(match op {
                Sub => a - b,
                Mul => a * b,
                _ => a / b,
            }))
        }
        And | Or => unreachable!("handled with short-circuit"),
    }
}

/// Unifies a pattern against a concrete value, extending `env` on success.
pub fn unify(pat: &Pat, value: &Term, env: &mut Bindings) -> bool {
    match pat {
        Pat::Wild => true,
        Pat::Lit(expected) => expected.eq_term(value),
        Pat::Var(name) => match env.get_sym(*name) {
            Some(bound) => bound.eq_term(value),
            None => {
                env.insert_sym(*name, value.clone());
                true
            }
        },
    }
}

/// Unifies a pattern against a string value without materialising a
/// `Term` unless the pattern actually binds (the fact-subject fast path).
fn unify_str(pat: &Pat, value: &str, env: &mut Bindings) -> bool {
    match pat {
        Pat::Wild => true,
        Pat::Lit(expected) => matches!(expected, Term::Str(s) if s.as_ref() == value),
        Pat::Var(name) => match env.get_sym(*name) {
            Some(bound) => bound.as_str() == Some(value),
            None => {
                env.insert_sym(*name, Term::str(value));
                true
            }
        },
    }
}

/// Solves a conjunction of goals left to right, invoking `on_solution`
/// for every complete solution. `fact` goals backtrack over the knowledge
/// base; condition goals filter.
///
/// Backtracking works by truncating a single scratch environment back to
/// its pre-goal length (bindings are append-only within a frame), so
/// enumerating a fact goal allocates nothing per candidate fact.
///
/// Evaluation errors in conditions prune that branch (treated as
/// non-matches) but are counted by the caller via the returned error
/// count, so misconfigured rules are observable without aborting
/// matching.
pub fn solve(
    goals: &[Goal],
    env: &Bindings,
    kb: &dyn FactSource,
    now: SimTime,
    on_solution: &mut dyn FnMut(&Bindings),
) -> u64 {
    let mut scratch = env.clone();
    solve_mut(goals, &mut scratch, kb, now, on_solution)
}

/// [`solve`] over an owned environment: callers that are done with `env`
/// avoid the defensive clone. `env` is restored to its original length
/// before returning, but intermediate bindings may have been appended
/// and truncated in place.
pub fn solve_mut(
    goals: &[Goal],
    env: &mut Bindings,
    kb: &dyn FactSource,
    now: SimTime,
    on_solution: &mut dyn FnMut(&Bindings),
) -> u64 {
    match goals.split_first() {
        None => {
            on_solution(env);
            0
        }
        Some((Goal::Cond(expr), rest)) => match eval(expr, env, kb, now) {
            Ok(Term::Bool(true)) => solve_mut(rest, env, kb, now, on_solution),
            Ok(_) => 0,
            Err(_) => 1,
        },
        Some((Goal::Fact { subject, predicate, object }, rest)) => {
            // Use any already-bound subject to narrow the query. The hint
            // is an `Arc` clone (a refcount bump) so the fact enumeration
            // does not pin a borrow of the environment we mutate while
            // backtracking.
            let subject_hint: Option<std::sync::Arc<str>> = match subject {
                Pat::Lit(Term::Str(s)) => Some(s.clone()),
                Pat::Var(v) => match env.get_sym(*v) {
                    Some(Term::Str(s)) => Some(s.clone()),
                    _ => None,
                },
                _ => None,
            };
            let mark = env.len();
            let mut errors = 0;
            kb.for_each_at(subject_hint.as_deref(), Some(predicate), now, &mut |fact| {
                if !unify_str(subject, &fact.subject, env) {
                    env.truncate(mark);
                    return;
                }
                if !unify(object, &fact.object, env) {
                    env.truncate(mark);
                    return;
                }
                errors += solve_mut(rest, env, kb, now, on_solution);
                env.truncate(mark);
            });
            errors
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gloss_knowledge::{Fact, InMemoryFacts};

    fn kb() -> InMemoryFacts {
        let mut kb = InMemoryFacts::new();
        kb.add(Fact::new("bob", "likes", Term::str("ice cream")));
        kb.add(Fact::new("bob", "likes", Term::str("golf")));
        kb.add(Fact::new("anna", "likes", Term::str("ice cream")));
        kb.add(Fact::new("bob", "knows", Term::str("anna")));
        kb
    }

    fn env(pairs: &[(&str, Term)]) -> Bindings {
        pairs.iter().map(|(k, v)| (k.to_string(), v.clone())).collect()
    }

    fn eval_ok(e: &Expr, env: &Bindings) -> Term {
        eval(e, env, &kb(), SimTime::ZERO).unwrap()
    }

    #[test]
    fn arithmetic_and_comparison() {
        use crate::parser::parse_rules;
        // Reuse the parser to build expressions concisely.
        let src = r#"rule r { on a: event k(x: ?x) where ?x * 2 + 1 = 7 emit o() }"#;
        let rules = parse_rules(src).unwrap();
        let Goal::Cond(expr) = &rules[0].goals[0] else { panic!() };
        assert_eq!(eval_ok(expr, &env(&[("x", Term::Int(3))])), Term::Bool(true));
        assert_eq!(eval_ok(expr, &env(&[("x", Term::Int(4))])), Term::Bool(false));
    }

    #[test]
    fn unbound_variable_errors() {
        let e = Expr::Var("missing".into());
        assert!(matches!(
            eval(&e, &Bindings::new(), &kb(), SimTime::ZERO),
            Err(EvalError::UnboundVariable(_))
        ));
    }

    #[test]
    fn string_comparison_and_concat() {
        let cat = Expr::Binary(
            BinOp::Add,
            Box::new(Expr::Lit(Term::str("ice "))),
            Box::new(Expr::Lit(Term::str("cream"))),
        );
        assert_eq!(eval_ok(&cat, &Bindings::new()), Term::str("ice cream"));
        let cmp = Expr::Binary(
            BinOp::Lt,
            Box::new(Expr::Lit(Term::str("a"))),
            Box::new(Expr::Lit(Term::str("b"))),
        );
        assert_eq!(eval_ok(&cmp, &Bindings::new()), Term::Bool(true));
    }

    #[test]
    fn division_by_zero_is_error() {
        let e = Expr::Binary(
            BinOp::Div,
            Box::new(Expr::Lit(Term::Int(1))),
            Box::new(Expr::Lit(Term::Int(0))),
        );
        assert!(eval(&e, &Bindings::new(), &kb(), SimTime::ZERO).is_err());
    }

    #[test]
    fn short_circuit_logic() {
        // `false and <error>` must not error.
        let e = Expr::Binary(
            BinOp::And,
            Box::new(Expr::Lit(Term::Bool(false))),
            Box::new(Expr::Var("unbound".into())),
        );
        assert_eq!(eval_ok(&e, &Bindings::new()), Term::Bool(false));
        let e = Expr::Binary(
            BinOp::Or,
            Box::new(Expr::Lit(Term::Bool(true))),
            Box::new(Expr::Var("unbound".into())),
        );
        assert_eq!(eval_ok(&e, &Bindings::new()), Term::Bool(true));
    }

    #[test]
    fn unification_semantics() {
        let mut env = Bindings::new();
        assert!(unify(&Pat::Var("x".into()), &Term::Int(3), &mut env));
        assert_eq!(env["x"], Term::Int(3));
        // Bound variable must agree.
        assert!(unify(&Pat::Var("x".into()), &Term::Float(3.0), &mut env));
        assert!(!unify(&Pat::Var("x".into()), &Term::Int(4), &mut env));
        assert!(unify(&Pat::Wild, &Term::str("anything"), &mut env));
        assert!(unify(&Pat::Lit(Term::str("a")), &Term::str("a"), &mut env));
        assert!(!unify(&Pat::Lit(Term::str("a")), &Term::str("b"), &mut env));
    }

    #[test]
    fn bindings_insert_replaces_and_iterates() {
        let mut b = Bindings::new();
        b.insert("x", Term::Int(1));
        b.insert("y", Term::Int(2));
        b.insert("x", Term::Int(3));
        assert_eq!(b.len(), 2);
        assert_eq!(b["x"], Term::Int(3));
        let syms: Vec<Symbol> = b.iter().map(|(s, _)| s).collect();
        assert_eq!(syms, vec![Symbol::intern("x"), Symbol::intern("y")]);
        assert!(!b.contains_key("z"));
    }

    #[test]
    fn solve_enumerates_and_backtracks() {
        let goals = vec![
            Goal::Fact {
                subject: Pat::Var("who".into()),
                predicate: "likes".into(),
                object: Pat::Lit(Term::str("ice cream")),
            },
            Goal::Fact {
                subject: Pat::Lit(Term::str("bob")),
                predicate: "knows".into(),
                object: Pat::Var("who".into()),
            },
        ];
        let mut solutions = Vec::new();
        let errors = solve(&goals, &Bindings::new(), &kb(), SimTime::ZERO, &mut |env| {
            solutions.push(env["who"].clone());
        });
        assert_eq!(errors, 0);
        // bob and anna like ice cream, but bob only knows anna.
        assert_eq!(solutions, vec![Term::str("anna")]);
    }

    #[test]
    fn solve_uses_subject_hint() {
        // With subject bound, only bob's facts are enumerated.
        let goals = vec![Goal::Fact {
            subject: Pat::Var("u".into()),
            predicate: "likes".into(),
            object: Pat::Var("what".into()),
        }];
        let env0 = env(&[("u", Term::str("bob"))]);
        let mut n = 0;
        solve(&goals, &env0, &kb(), SimTime::ZERO, &mut |_| n += 1);
        assert_eq!(n, 2, "bob likes two things");
    }

    #[test]
    fn condition_errors_are_counted_not_fatal() {
        let goals = vec![
            Goal::Fact {
                subject: Pat::Var("u".into()),
                predicate: "likes".into(),
                object: Pat::Wild,
            },
            Goal::Cond(Expr::Var("never_bound".into())),
        ];
        let mut n = 0;
        let errors = solve(&goals, &Bindings::new(), &kb(), SimTime::ZERO, &mut |_| n += 1);
        assert_eq!(n, 0);
        assert_eq!(errors, 3, "one error per enumerated fact");
    }

    #[test]
    fn fact_as_boolean_inside_expression() {
        let e = Expr::Call(
            "fact".into(),
            vec![
                Expr::Lit(Term::str("bob")),
                Expr::Lit(Term::str("likes")),
                Expr::Lit(Term::str("golf")),
            ],
        );
        assert_eq!(eval_ok(&e, &Bindings::new()), Term::Bool(true));
        let e = Expr::Call(
            "fact".into(),
            vec![
                Expr::Lit(Term::str("bob")),
                Expr::Lit(Term::str("likes")),
                Expr::Lit(Term::str("opera")),
            ],
        );
        assert_eq!(eval_ok(&e, &Bindings::new()), Term::Bool(false));
    }

    #[test]
    fn bare_atoms_evaluate_to_strings() {
        let e = Expr::Call("janettas".into(), vec![]);
        assert_eq!(eval_ok(&e, &Bindings::new()), Term::str("janettas"));
    }
}
