//! The matchlet language abstract syntax.

use crate::symbol::Symbol;
use gloss_knowledge::Term;
use gloss_sim::SimDuration;
use std::fmt;

/// A 1-based source position. `Span::default()` (line 0) means the
/// position is unknown — e.g. a rule built programmatically rather than
/// parsed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Span {
    /// 1-based line; 0 when unknown.
    pub line: usize,
    /// 1-based column; 0 when unknown.
    pub col: usize,
}

impl Span {
    /// True when this span carries a real source position.
    pub fn is_known(&self) -> bool {
        self.line > 0
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// Source positions for the pieces of a [`Rule`], kept out of the AST
/// nodes themselves so structural equality ignores layout.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RuleSpans {
    /// The `rule` keyword.
    pub rule: Span,
    /// One span per event pattern (the `on` keyword).
    pub patterns: Vec<Span>,
    /// One span per flattened goal (the `where` keyword that produced it).
    pub goals: Vec<Span>,
    /// The `emit` keyword.
    pub emit: Span,
}

impl RuleSpans {
    /// Span of pattern `i`, or the rule span when unrecorded.
    pub fn pattern(&self, i: usize) -> Span {
        self.patterns.get(i).copied().unwrap_or(self.rule)
    }

    /// Span of goal `i`, or the rule span when unrecorded.
    pub fn goal(&self, i: usize) -> Span {
        self.goals.get(i).copied().unwrap_or(self.rule)
    }
}

/// A pattern position: a variable to bind, a literal to require, or a
/// wildcard.
#[derive(Debug, Clone, PartialEq)]
pub enum Pat {
    /// `?name` — binds (or unifies with) a variable (interned).
    Var(Symbol),
    /// A literal the value must equal.
    Lit(Term),
    /// `_` — matches anything, binds nothing.
    Wild,
}

impl fmt::Display for Pat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Pat::Var(v) => write!(f, "?{v}"),
            Pat::Lit(t) => write!(f, "{t}"),
            Pat::Wild => write!(f, "_"),
        }
    }
}

/// Binary operators, in increasing precedence groups.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// Logical or.
    Or,
    /// Logical and.
    And,
    /// Equality.
    Eq,
    /// Inequality.
    Ne,
    /// Less than.
    Lt,
    /// At most.
    Le,
    /// Greater than.
    Gt,
    /// At least.
    Ge,
    /// Addition (numeric) / concatenation (strings).
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Division.
    Div,
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BinOp::Or => "or",
            BinOp::And => "and",
            BinOp::Eq => "=",
            BinOp::Ne => "!=",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
        };
        f.write_str(s)
    }
}

/// An expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// A literal value.
    Lit(Term),
    /// A variable reference (`?x`, interned).
    Var(Symbol),
    /// A builtin function call.
    Call(String, Vec<Expr>),
    /// A binary operation.
    Binary(BinOp, Box<Expr>, Box<Expr>),
    /// Logical negation.
    Not(Box<Expr>),
    /// Arithmetic negation.
    Neg(Box<Expr>),
}

/// One step of a `where` clause, solved left to right.
#[derive(Debug, Clone, PartialEq)]
pub enum Goal {
    /// `fact(subject, predicate, object)` — enumerates the knowledge base
    /// with unification; unbound variables in subject/object positions are
    /// bound by each matching fact (backtracking point).
    Fact {
        /// Subject pattern.
        subject: Pat,
        /// Predicate (always a literal name).
        predicate: String,
        /// Object pattern.
        object: Pat,
    },
    /// A boolean condition over bound variables.
    Cond(Expr),
}

/// One `on alias: event kind(field: pat, ...)` clause.
#[derive(Debug, Clone, PartialEq)]
pub struct EventPattern {
    /// The clause alias (usable as documentation; not referenced today).
    pub alias: String,
    /// The event kind to match (e.g. `user.location`).
    pub kind: String,
    /// Field patterns. A key containing `/` or starting with `@` is an
    /// XPath into the XML payload (type projection); otherwise it names a
    /// typed attribute.
    pub fields: Vec<(String, Pat)>,
}

/// The `emit kind(field: expr, ...)` clause.
#[derive(Debug, Clone, PartialEq)]
pub struct EmitSpec {
    /// The synthesised event kind.
    pub kind: String,
    /// Fields computed from the solution bindings.
    pub fields: Vec<(String, Expr)>,
}

/// A complete rule.
#[derive(Debug, Clone, PartialEq)]
pub struct Rule {
    /// The rule name.
    pub name: String,
    /// Event patterns (at least one).
    pub patterns: Vec<EventPattern>,
    /// Where goals (conjunction, solved in order).
    pub goals: Vec<Goal>,
    /// The correlation window: all joined events must lie within it.
    pub window: SimDuration,
    /// What to emit per solution.
    pub emit: EmitSpec,
    /// Source positions of the rule's pieces (all-zero when the rule was
    /// built programmatically).
    pub spans: RuleSpans,
}

impl Rule {
    /// All variables bound by the event patterns.
    pub fn pattern_variables(&self) -> Vec<&str> {
        let mut vars = Vec::new();
        for p in &self.patterns {
            for (_, pat) in &p.fields {
                if let Pat::Var(v) = pat {
                    if !vars.contains(&v.as_str()) {
                        vars.push(v.as_str());
                    }
                }
            }
        }
        vars
    }
}

/// Flattens an expression into goals: top-level `and`s become separate
/// goals so `fact` patterns become backtracking points.
pub fn expr_to_goals(expr: Expr) -> Vec<Goal> {
    match expr {
        Expr::Binary(BinOp::And, l, r) => {
            let mut goals = expr_to_goals(*l);
            goals.extend(expr_to_goals(*r));
            goals
        }
        Expr::Call(name, args) if name == "fact" && args.len() == 3 => {
            let mut it = args.into_iter();
            let subject = expr_to_pat(it.next().expect("3 args"));
            let pred_expr = it.next().expect("3 args");
            let object = expr_to_pat(it.next().expect("3 args"));
            let predicate = match pred_expr {
                Expr::Lit(Term::Str(s)) => s.as_ref().to_owned(),
                // Bare identifiers parse as zero-arg calls ("atoms").
                Expr::Call(name, args) if args.is_empty() => name,
                Expr::Var(v) => {
                    // A variable predicate is not supported; treat as a
                    // literal name for robustness.
                    v.as_str().to_string()
                }
                other => {
                    return vec![Goal::Cond(Expr::Call(
                        "fact".into(),
                        vec![pat_to_expr(subject), other, pat_to_expr(object)],
                    ))]
                }
            };
            vec![Goal::Fact { subject, predicate, object }]
        }
        other => vec![Goal::Cond(other)],
    }
}

fn expr_to_pat(e: Expr) -> Pat {
    match e {
        Expr::Var(v) if v == "_" => Pat::Wild,
        Expr::Var(v) => Pat::Var(v),
        Expr::Lit(t) => Pat::Lit(t),
        // Identifiers in fact positions parse as zero-arg calls; treat
        // their names as string literals ("bare atoms").
        Expr::Call(name, args) if args.is_empty() => Pat::Lit(Term::Str(name.into())),
        _ => Pat::Wild,
    }
}

fn pat_to_expr(p: Pat) -> Expr {
    match p {
        Pat::Var(v) => Expr::Var(v),
        Pat::Lit(t) => Expr::Lit(t),
        Pat::Wild => Expr::Var("_".into()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn and_flattens_to_goal_sequence() {
        let e = Expr::Binary(
            BinOp::And,
            Box::new(Expr::Binary(
                BinOp::And,
                Box::new(Expr::Lit(Term::Bool(true))),
                Box::new(Expr::Lit(Term::Bool(true))),
            )),
            Box::new(Expr::Lit(Term::Bool(false))),
        );
        assert_eq!(expr_to_goals(e).len(), 3);
    }

    #[test]
    fn fact_calls_become_fact_goals() {
        let e = Expr::Call(
            "fact".into(),
            vec![
                Expr::Var("u".into()),
                Expr::Lit(Term::str("likes")),
                Expr::Lit(Term::str("ice cream")),
            ],
        );
        let goals = expr_to_goals(e);
        assert_eq!(goals.len(), 1);
        match &goals[0] {
            Goal::Fact { subject, predicate, object } => {
                assert_eq!(subject, &Pat::Var("u".into()));
                assert_eq!(predicate, "likes");
                assert_eq!(object, &Pat::Lit(Term::str("ice cream")));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn bare_atoms_in_fact_positions_are_strings() {
        let e = Expr::Call(
            "fact".into(),
            vec![
                Expr::Call("janettas".into(), vec![]),
                Expr::Lit(Term::str("sells")),
                Expr::Var("what".into()),
            ],
        );
        match &expr_to_goals(e)[0] {
            Goal::Fact { subject, .. } => {
                assert_eq!(subject, &Pat::Lit(Term::str("janettas")));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn pattern_variables_deduplicate() {
        let rule = Rule {
            name: "r".into(),
            patterns: vec![
                EventPattern {
                    alias: "a".into(),
                    kind: "k".into(),
                    fields: vec![
                        ("x".into(), Pat::Var("u".into())),
                        ("y".into(), Pat::Var("v".into())),
                    ],
                },
                EventPattern {
                    alias: "b".into(),
                    kind: "j".into(),
                    fields: vec![("z".into(), Pat::Var("u".into()))],
                },
            ],
            goals: vec![],
            window: SimDuration::from_secs(60),
            emit: EmitSpec { kind: "out".into(), fields: vec![] },
            spans: RuleSpans::default(),
        };
        assert_eq!(rule.pattern_variables(), vec!["u", "v"]);
    }
}
