//! Canonical goal chains: the shape under which rules share beta state.
//!
//! Two rules share join work exactly when their `where` chains start the
//! same way *up to variable names and condition placement*. This module
//! computes that shape:
//!
//! 1. **Normalisation** ([`normalise_goals`]) hoists each condition to
//!    the earliest position at which every variable it reads is already
//!    available — right after the last *preceding* fact goal that first
//!    introduces one of its variables (or to the front when none does).
//!    Fact goals never move, so solution *enumeration order* is
//!    untouched: only fact goals multiply environments, and a condition
//!    prunes the same environments wherever it runs once its inputs are
//!    bound. A hoisted condition is evaluated once per narrower
//!    environment, so rules that interleave filters with enumeration get
//!    cheaper — and rules that differ only in filter placement become
//!    shareable. (Error *counts* can shrink: a pruned branch is pruned
//!    earlier. The engine applies the same normalised chain on its
//!    non-memoised fallback path, so the two paths stay bit-identical.)
//! 2. **Canonical renaming** maps each rule variable to a numbered slot
//!    in order of first occurrence in the normalised chain, so `?u` in
//!    one rule and `?x` in another canonicalise identically.
//! 3. **Encoding** renders each canonical goal to a byte-exact string —
//!    literals variant- and bit-sensitive, like the engine's memo keys —
//!    which is the identity of a beta-trie node under its parent.

use crate::ast::{Expr, Goal, Pat, Rule};
use crate::symbol::Symbol;
use gloss_knowledge::Term;
use std::fmt::Write as _;

/// Whether an expression reads state a memo cannot see: the clock
/// builtins or a `fact(...)` call *inside* an expression.
pub fn expr_reads_dynamic_state(expr: &Expr) -> bool {
    match expr {
        Expr::Lit(_) | Expr::Var(_) => false,
        Expr::Call(name, args) => {
            crate::builtin::reads_dynamic_state(name) || args.iter().any(expr_reads_dynamic_state)
        }
        Expr::Binary(_, l, r) => expr_reads_dynamic_state(l) || expr_reads_dynamic_state(r),
        Expr::Not(e) | Expr::Neg(e) => expr_reads_dynamic_state(e),
    }
}

/// Collects every variable an expression reads.
pub fn collect_expr_vars(expr: &Expr, vars: &mut Vec<Symbol>) {
    match expr {
        Expr::Lit(_) => {}
        Expr::Var(v) => vars.push(*v),
        Expr::Call(_, args) => args.iter().for_each(|a| collect_expr_vars(a, vars)),
        Expr::Binary(_, l, r) => {
            collect_expr_vars(l, vars);
            collect_expr_vars(r, vars);
        }
        Expr::Not(e) | Expr::Neg(e) => collect_expr_vars(e, vars),
    }
}

/// Hoists conditions to their earliest sound position (see module docs).
/// Fact goals keep their relative order; conditions move only earlier,
/// and conditions landing at the same position keep their written order.
pub fn normalise_goals(goals: &[Goal]) -> Vec<Goal> {
    // Level of a fact goal = its 1-based index among fact goals; level of
    // a condition = the highest level among the *preceding* fact goals
    // that first introduce one of its variables (0 if none). Sorting by
    // (level, facts-before-conds) stably is exactly the hoist.
    let mut intro: Vec<(Symbol, u32)> = Vec::new();
    let mut level = 0u32;
    let mut keyed: Vec<(u32, u8, &Goal)> = Vec::with_capacity(goals.len());
    for goal in goals {
        match goal {
            Goal::Fact { subject, object, .. } => {
                level += 1;
                for pat in [subject, object] {
                    if let Pat::Var(v) = pat {
                        if !intro.iter().any(|(s, _)| s == v) {
                            intro.push((*v, level));
                        }
                    }
                }
                keyed.push((level, 0, goal));
            }
            Goal::Cond(expr) => {
                let mut vars = Vec::new();
                collect_expr_vars(expr, &mut vars);
                let at = vars
                    .iter()
                    .filter_map(|v| intro.iter().find(|(s, _)| s == v).map(|(_, l)| *l))
                    .max()
                    .unwrap_or(0);
                keyed.push((at, 1, goal));
            }
        }
    }
    keyed.sort_by_key(|&(level, cond, _)| (level, cond));
    keyed.into_iter().map(|(_, _, g)| g.clone()).collect()
}

/// A rule's canonical chain: the normalised goals rewritten over
/// numbered slots, their node-identity encodings, and the mapping back
/// to the rule's own variables.
#[derive(Debug, Clone)]
pub struct CanonicalChain {
    /// Normalised goals with every variable replaced by its slot symbol
    /// ([`slot_symbol`]).
    pub goals: Vec<Goal>,
    /// Byte-exact encoding of each canonical goal (beta-node identity
    /// under its parent).
    pub reprs: Vec<String>,
    /// Cumulative slot count after each goal (`slots_after[i]` slots are
    /// in scope once goals `0..=i` have run).
    pub slots_after: Vec<u32>,
    /// The rule's own variable for each slot, in slot order: the
    /// projection of an input environment onto these is the memo key,
    /// and replayed canonical bindings translate back through it.
    pub key_vars: Vec<Symbol>,
    /// Distinct predicates the chain enumerates, in first-use order.
    pub predicates: Vec<String>,
}

/// The canonical chain of a rule's goals, or `None` when the rule must
/// be solved directly every firing: a condition reads dynamic state, or
/// no goal enumerates facts (memoising pure filters is pure overhead).
pub fn canonical_chain(rule: &Rule) -> Option<CanonicalChain> {
    let mut any_fact = false;
    for goal in &rule.goals {
        match goal {
            Goal::Fact { .. } => any_fact = true,
            Goal::Cond(expr) if expr_reads_dynamic_state(expr) => return None,
            Goal::Cond(_) => {}
        }
    }
    if !any_fact {
        return None;
    }
    let normalised = normalise_goals(&rule.goals);
    let mut key_vars: Vec<Symbol> = Vec::new();
    let mut slot_of = |v: Symbol, key_vars: &mut Vec<Symbol>| -> u32 {
        match key_vars.iter().position(|s| *s == v) {
            Some(i) => i as u32,
            None => {
                key_vars.push(v);
                (key_vars.len() - 1) as u32
            }
        }
    };
    let mut goals = Vec::with_capacity(normalised.len());
    let mut reprs = Vec::with_capacity(normalised.len());
    let mut slots_after = Vec::with_capacity(normalised.len());
    let mut predicates: Vec<String> = Vec::new();
    for goal in &normalised {
        let canonical = match goal {
            Goal::Fact { subject, predicate, object } => {
                if !predicates.iter().any(|p| p == predicate) {
                    predicates.push(predicate.clone());
                }
                Goal::Fact {
                    subject: canon_pat(subject, &mut slot_of, &mut key_vars),
                    predicate: predicate.clone(),
                    object: canon_pat(object, &mut slot_of, &mut key_vars),
                }
            }
            Goal::Cond(expr) => Goal::Cond(canon_expr(expr, &mut slot_of, &mut key_vars)),
        };
        reprs.push(encode_goal(&canonical));
        slots_after.push(key_vars.len() as u32);
        goals.push(canonical);
    }
    Some(CanonicalChain { goals, reprs, slots_after, key_vars, predicates })
}

/// The interned symbol for canonical slot `i` (`β0`, `β1`, …). Slot
/// symbols live in their own namespace of environments — canonical
/// bindings never mix with rule bindings — so a user variable happening
/// to share the name is harmless.
pub fn slot_symbol(i: u32) -> Symbol {
    Symbol::intern(&format!("\u{3b2}{i}"))
}

fn canon_pat(
    pat: &Pat,
    slot_of: &mut impl FnMut(Symbol, &mut Vec<Symbol>) -> u32,
    key_vars: &mut Vec<Symbol>,
) -> Pat {
    match pat {
        Pat::Var(v) => Pat::Var(slot_symbol(slot_of(*v, key_vars))),
        other => other.clone(),
    }
}

fn canon_expr(
    expr: &Expr,
    slot_of: &mut impl FnMut(Symbol, &mut Vec<Symbol>) -> u32,
    key_vars: &mut Vec<Symbol>,
) -> Expr {
    match expr {
        Expr::Lit(t) => Expr::Lit(t.clone()),
        Expr::Var(v) => Expr::Var(slot_symbol(slot_of(*v, key_vars))),
        Expr::Call(name, args) => Expr::Call(
            name.clone(),
            args.iter().map(|a| canon_expr(a, slot_of, key_vars)).collect(),
        ),
        Expr::Binary(op, l, r) => Expr::Binary(
            *op,
            Box::new(canon_expr(l, slot_of, key_vars)),
            Box::new(canon_expr(r, slot_of, key_vars)),
        ),
        Expr::Not(e) => Expr::Not(Box::new(canon_expr(e, slot_of, key_vars))),
        Expr::Neg(e) => Expr::Neg(Box::new(canon_expr(e, slot_of, key_vars))),
    }
}

/// Renders a canonical goal to its identity string. Literal terms encode
/// variant- and bit-exactly (floats by bit pattern), mirroring the memo
/// keys: goals that could ever solve differently must encode differently.
fn encode_goal(goal: &Goal) -> String {
    let mut s = String::new();
    match goal {
        Goal::Fact { subject, predicate, object } => {
            s.push('F');
            encode_pat(subject, &mut s);
            let _ = write!(s, "|{}:{predicate}|", predicate.len());
            encode_pat(object, &mut s);
        }
        Goal::Cond(expr) => {
            s.push('C');
            encode_expr(expr, &mut s);
        }
    }
    s
}

fn encode_pat(pat: &Pat, s: &mut String) {
    match pat {
        // Canonical pats only hold slot symbols, whose names are unique
        // per slot.
        Pat::Var(v) => {
            let _ = write!(s, "v{v}");
        }
        Pat::Wild => s.push('w'),
        Pat::Lit(t) => encode_term(t, s),
    }
}

fn encode_term(t: &Term, s: &mut String) {
    match t {
        Term::Str(x) => {
            let _ = write!(s, "s{}:{x}", x.len());
        }
        Term::Int(x) => {
            let _ = write!(s, "i{x}");
        }
        Term::Float(x) => {
            let _ = write!(s, "f{}", x.to_bits());
        }
        Term::Bool(x) => {
            let _ = write!(s, "b{}", *x as u8);
        }
        Term::Geo(g) => {
            let _ = write!(s, "g{},{}", g.lat.to_bits(), g.lon.to_bits());
        }
        Term::Time(x) => {
            let _ = write!(s, "t{}", x.as_micros());
        }
    }
}

fn encode_expr(expr: &Expr, s: &mut String) {
    match expr {
        Expr::Lit(t) => encode_term(t, s),
        Expr::Var(v) => {
            let _ = write!(s, "v{v}");
        }
        Expr::Call(name, args) => {
            let _ = write!(s, "k{}:{name}(", name.len());
            for a in args {
                encode_expr(a, s);
                s.push(',');
            }
            s.push(')');
        }
        Expr::Binary(op, l, r) => {
            let _ = write!(s, "({op:?} ");
            encode_expr(l, s);
            s.push(' ');
            encode_expr(r, s);
            s.push(')');
        }
        Expr::Not(e) => {
            s.push('!');
            encode_expr(e, s);
        }
        Expr::Neg(e) => {
            s.push('-');
            encode_expr(e, s);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_rules;

    fn chain(body: &str) -> CanonicalChain {
        let src = format!("rule r {{ on a: event k(x: ?x) {body} within 1m emit o() }}");
        canonical_chain(&parse_rules(&src).unwrap()[0]).expect("memoisable")
    }

    #[test]
    fn alpha_equivalent_rules_encode_identically() {
        let a = chain("where fact(?u, likes, ?w) and fact(?u, knows, ?k)");
        let b = chain("where fact(?p, likes, ?q) and fact(?p, knows, ?z)");
        assert_eq!(a.reprs, b.reprs);
        assert_eq!(a.slots_after, vec![2, 3]);
    }

    #[test]
    fn repeated_variable_structure_is_preserved() {
        let a = chain("where fact(?u, likes, ?w)");
        let b = chain("where fact(?u, likes, ?u)");
        assert_ne!(a.reprs[0], b.reprs[0], "self-join must not alias a plain enumeration");
    }

    #[test]
    fn conditions_hoist_to_their_introduction_point() {
        let c = chain("where fact(?u, likes, ?w) and fact(?u, knows, ?k) and ?w != \"golf\"");
        // The filter reads ?w (introduced by goal 1): it hoists between
        // the two fact goals.
        assert!(matches!(c.goals[0], Goal::Fact { .. }));
        assert!(matches!(c.goals[1], Goal::Cond(_)));
        assert!(matches!(c.goals[2], Goal::Fact { .. }));
        // ... which makes it share a prefix with the filter-first rule.
        let d = chain("where fact(?a, likes, ?b) and ?b != \"golf\"");
        assert_eq!(c.reprs[..2], d.reprs[..]);
    }

    #[test]
    fn input_only_conditions_hoist_to_the_front() {
        let c = chain("where fact(?u, likes, ?w) and ?x > 2");
        assert!(matches!(c.goals[0], Goal::Cond(_)), "?x comes from the event pattern");
        assert_eq!(c.key_vars[0].as_str(), "x");
    }

    #[test]
    fn facts_never_reorder() {
        let c = chain("where fact(?u, likes, ?w) and fact(?w, sold_at, ?s)");
        let Goal::Fact { predicate, .. } = &c.goals[0] else { panic!() };
        assert_eq!(predicate, "likes");
        let Goal::Fact { predicate, .. } = &c.goals[1] else { panic!() };
        assert_eq!(predicate, "sold_at");
        assert_eq!(c.predicates, vec!["likes".to_string(), "sold_at".to_string()]);
    }

    #[test]
    fn dynamic_and_factless_rules_have_no_chain() {
        let src = r#"
            rule clocky { on a: event k(x: ?x) where fact(?u, closes_at, ?c) and minutes_of_day() < ?c within 1m emit o() }
            rule pure { on a: event k(x: ?x) where ?x > 2 within 1m emit o() }
        "#;
        let rules = parse_rules(src).unwrap();
        assert!(canonical_chain(&rules[0]).is_none());
        assert!(canonical_chain(&rules[1]).is_none());
    }

    #[test]
    fn literal_encodings_are_bit_exact() {
        // The parser narrows `3.0` to Int(3), so drive the encoder on
        // constructed terms: same numeric value, different variant or bit
        // pattern, must never alias a beta node.
        let enc = |t: &Term| {
            let mut s = String::new();
            encode_term(t, &mut s);
            s
        };
        assert_ne!(enc(&Term::Int(3)), enc(&Term::Float(3.0)), "Int(3) vs Float(3.0)");
        assert_ne!(enc(&Term::Float(0.0)), enc(&Term::Float(-0.0)), "float zeros differ by bit");
        assert_ne!(enc(&Term::Bool(true)), enc(&Term::Int(1)), "Bool(true) vs Int(1)");
        // And through the full chain: a fractional literal survives as Float.
        let a = chain("where fact(?u, score, 3)");
        let b = chain("where fact(?u, score, 3.5)");
        assert_ne!(a.reprs[0], b.reprs[0]);
    }
}
