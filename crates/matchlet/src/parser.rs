//! Recursive-descent parser for the matchlet language.

use crate::ast::{expr_to_goals, BinOp, EmitSpec, EventPattern, Expr, Pat, Rule, RuleSpans, Span};
use crate::lexer::{lex, LexError, Token, TokenKind};
use gloss_knowledge::Term;
use gloss_sim::SimDuration;
use std::error::Error;
use std::fmt;

/// A compile failure (lexing or parsing).
#[derive(Debug, Clone, PartialEq)]
pub struct MatchletError {
    /// 1-based line.
    pub line: usize,
    /// 1-based column.
    pub col: usize,
    /// The problem.
    pub message: String,
    /// A rendered source excerpt (the offending line with a caret),
    /// attached by [`MatchletError::with_source`].
    pub snippet: Option<String>,
}

impl MatchletError {
    /// Attaches a source excerpt — the offending line plus a caret under
    /// the error column — so the failure is legible without the file.
    #[must_use]
    pub fn with_source(mut self, src: &str) -> Self {
        if self.line == 0 {
            return self;
        }
        if let Some(text) = src.lines().nth(self.line - 1) {
            let gutter = format!("{:>4} | ", self.line);
            let pad = " ".repeat(gutter.len() - 2 + self.col.saturating_sub(1));
            self.snippet = Some(format!("{gutter}{text}\n{pad}^"));
        }
        self
    }
}

impl fmt::Display for MatchletError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "matchlet error at {}:{}: {}", self.line, self.col, self.message)?;
        if let Some(snippet) = &self.snippet {
            write!(f, "\n{snippet}")?;
        }
        Ok(())
    }
}

impl Error for MatchletError {}

impl From<LexError> for MatchletError {
    fn from(e: LexError) -> Self {
        MatchletError { line: e.line, col: e.col, message: e.message, snippet: None }
    }
}

/// Parses a source file containing zero or more rules.
///
/// # Errors
///
/// Returns [`MatchletError`] with the position of the first problem.
pub fn parse_rules(src: &str) -> Result<Vec<Rule>, MatchletError> {
    parse_rules_inner(src).map_err(|e| e.with_source(src))
}

fn parse_rules_inner(src: &str) -> Result<Vec<Rule>, MatchletError> {
    let tokens = lex(src)?;
    let mut p = Parser { tokens, pos: 0 };
    let mut rules = Vec::new();
    while !p.at_eof() {
        rules.push(p.rule()?);
    }
    Ok(rules)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Token {
        &self.tokens[self.pos.min(self.tokens.len() - 1)]
    }

    fn at_eof(&self) -> bool {
        matches!(self.peek().kind, TokenKind::Eof)
    }

    fn bump(&mut self) -> Token {
        let t = self.tokens[self.pos.min(self.tokens.len() - 1)].clone();
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        t
    }

    fn peek_span(&self) -> Span {
        let t = self.peek();
        Span { line: t.line, col: t.col }
    }

    fn fail(&self, message: impl Into<String>) -> MatchletError {
        let t = self.peek();
        MatchletError { line: t.line, col: t.col, message: message.into(), snippet: None }
    }

    fn expect_punct(&mut self, p: &str) -> Result<(), MatchletError> {
        match &self.peek().kind {
            TokenKind::Punct(q) if *q == p => {
                self.bump();
                Ok(())
            }
            other => Err(self.fail(format!("expected `{p}`, found {other}"))),
        }
    }

    fn eat_punct(&mut self, p: &str) -> bool {
        if matches!(&self.peek().kind, TokenKind::Punct(q) if *q == p) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<(), MatchletError> {
        match &self.peek().kind {
            TokenKind::Ident(s) if s == kw => {
                self.bump();
                Ok(())
            }
            other => Err(self.fail(format!("expected `{kw}`, found {other}"))),
        }
    }

    fn peek_keyword(&self, kw: &str) -> bool {
        matches!(&self.peek().kind, TokenKind::Ident(s) if s == kw)
    }

    fn ident(&mut self) -> Result<String, MatchletError> {
        match self.peek().kind.clone() {
            TokenKind::Ident(s) => {
                self.bump();
                Ok(s)
            }
            other => Err(self.fail(format!("expected identifier, found {other}"))),
        }
    }

    fn rule(&mut self) -> Result<Rule, MatchletError> {
        let mut spans = RuleSpans { rule: self.peek_span(), ..RuleSpans::default() };
        self.expect_keyword("rule")?;
        let name = self.ident()?;
        self.expect_punct("{")?;
        let mut patterns = Vec::new();
        let mut goals = Vec::new();
        let mut window = SimDuration::from_secs(60);
        let mut emit = None;
        loop {
            if self.eat_punct("}") {
                break;
            }
            let clause = self.peek_span();
            if self.peek_keyword("on") {
                self.bump();
                patterns.push(self.event_pattern()?);
                spans.patterns.push(clause);
            } else if self.peek_keyword("where") {
                self.bump();
                let e = self.expr()?;
                let new = expr_to_goals(e);
                spans.goals.extend(std::iter::repeat_n(clause, new.len()));
                goals.extend(new);
            } else if self.peek_keyword("within") {
                self.bump();
                window = self.duration()?;
            } else if self.peek_keyword("emit") {
                self.bump();
                emit = Some(self.emit_spec()?);
                spans.emit = clause;
            } else {
                return Err(self.fail("expected `on`, `where`, `within`, `emit` or `}`"));
            }
        }
        if patterns.is_empty() {
            return Err(self.fail(format!("rule `{name}` has no `on` clause")));
        }
        let emit = emit.ok_or_else(|| self.fail(format!("rule `{name}` has no `emit` clause")))?;
        Ok(Rule { name, patterns, goals, window, emit, spans })
    }

    fn event_pattern(&mut self) -> Result<EventPattern, MatchletError> {
        let alias = self.ident()?;
        self.expect_punct(":")?;
        self.expect_keyword("event")?;
        let kind = self.ident()?;
        self.expect_punct("(")?;
        let mut fields = Vec::new();
        if !self.eat_punct(")") {
            loop {
                let key = match self.peek().kind.clone() {
                    TokenKind::Ident(s) => {
                        self.bump();
                        s
                    }
                    // Quoted keys are XPaths into the payload.
                    TokenKind::Str(s) => {
                        self.bump();
                        s
                    }
                    other => return Err(self.fail(format!("expected field key, found {other}"))),
                };
                self.expect_punct(":")?;
                let pat = self.pattern()?;
                fields.push((key, pat));
                if self.eat_punct(")") {
                    break;
                }
                self.expect_punct(",")?;
            }
        }
        Ok(EventPattern { alias, kind, fields })
    }

    fn pattern(&mut self) -> Result<Pat, MatchletError> {
        match self.peek().kind.clone() {
            TokenKind::Var(v) => {
                self.bump();
                Ok(Pat::Var(v.into()))
            }
            TokenKind::Ident(s) if s == "_" => {
                self.bump();
                Ok(Pat::Wild)
            }
            TokenKind::Ident(s) if s == "true" => {
                self.bump();
                Ok(Pat::Lit(Term::Bool(true)))
            }
            TokenKind::Ident(s) if s == "false" => {
                self.bump();
                Ok(Pat::Lit(Term::Bool(false)))
            }
            TokenKind::Str(s) => {
                self.bump();
                Ok(Pat::Lit(Term::Str(s.into())))
            }
            TokenKind::Num(n) => {
                self.bump();
                Ok(Pat::Lit(num_term(n)))
            }
            TokenKind::Punct("-") => {
                self.bump();
                match self.peek().kind.clone() {
                    TokenKind::Num(n) => {
                        self.bump();
                        Ok(Pat::Lit(num_term(-n)))
                    }
                    other => Err(self.fail(format!("expected number after `-`, found {other}"))),
                }
            }
            other => Err(self.fail(format!("expected pattern, found {other}"))),
        }
    }

    fn duration(&mut self) -> Result<SimDuration, MatchletError> {
        let n = match self.peek().kind.clone() {
            TokenKind::Num(n) if n >= 0.0 => {
                self.bump();
                n
            }
            other => return Err(self.fail(format!("expected duration, found {other}"))),
        };
        let unit = self.ident()?;
        let secs = match unit.as_str() {
            "ms" => n / 1e3,
            "s" => n,
            "m" => n * 60.0,
            "h" => n * 3600.0,
            other => return Err(self.fail(format!("unknown duration unit `{other}`"))),
        };
        Ok(SimDuration::from_secs_f64(secs))
    }

    fn emit_spec(&mut self) -> Result<EmitSpec, MatchletError> {
        let kind = self.ident()?;
        self.expect_punct("(")?;
        let mut fields = Vec::new();
        if !self.eat_punct(")") {
            loop {
                let key = self.ident()?;
                self.expect_punct(":")?;
                let value = self.expr()?;
                fields.push((key, value));
                if self.eat_punct(")") {
                    break;
                }
                self.expect_punct(",")?;
            }
        }
        Ok(EmitSpec { kind, fields })
    }

    // --- expressions, by precedence ---

    fn expr(&mut self) -> Result<Expr, MatchletError> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr, MatchletError> {
        let mut left = self.and_expr()?;
        while self.peek_keyword("or") {
            self.bump();
            let right = self.and_expr()?;
            left = Expr::Binary(BinOp::Or, Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn and_expr(&mut self) -> Result<Expr, MatchletError> {
        let mut left = self.not_expr()?;
        while self.peek_keyword("and") {
            self.bump();
            let right = self.not_expr()?;
            left = Expr::Binary(BinOp::And, Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn not_expr(&mut self) -> Result<Expr, MatchletError> {
        if self.peek_keyword("not") {
            self.bump();
            return Ok(Expr::Not(Box::new(self.not_expr()?)));
        }
        self.comparison()
    }

    fn comparison(&mut self) -> Result<Expr, MatchletError> {
        let left = self.additive()?;
        let op = match &self.peek().kind {
            TokenKind::Punct("=") => Some(BinOp::Eq),
            TokenKind::Punct("!=") => Some(BinOp::Ne),
            TokenKind::Punct("<") => Some(BinOp::Lt),
            TokenKind::Punct("<=") => Some(BinOp::Le),
            TokenKind::Punct(">") => Some(BinOp::Gt),
            TokenKind::Punct(">=") => Some(BinOp::Ge),
            _ => None,
        };
        match op {
            Some(op) => {
                self.bump();
                let right = self.additive()?;
                Ok(Expr::Binary(op, Box::new(left), Box::new(right)))
            }
            None => Ok(left),
        }
    }

    fn additive(&mut self) -> Result<Expr, MatchletError> {
        let mut left = self.multiplicative()?;
        loop {
            let op = match &self.peek().kind {
                TokenKind::Punct("+") => BinOp::Add,
                TokenKind::Punct("-") => BinOp::Sub,
                _ => break,
            };
            self.bump();
            let right = self.multiplicative()?;
            left = Expr::Binary(op, Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn multiplicative(&mut self) -> Result<Expr, MatchletError> {
        let mut left = self.unary()?;
        loop {
            let op = match &self.peek().kind {
                TokenKind::Punct("*") => BinOp::Mul,
                TokenKind::Punct("/") => BinOp::Div,
                _ => break,
            };
            self.bump();
            let right = self.unary()?;
            left = Expr::Binary(op, Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn unary(&mut self) -> Result<Expr, MatchletError> {
        if self.eat_punct("-") {
            return Ok(Expr::Neg(Box::new(self.unary()?)));
        }
        self.primary()
    }

    fn primary(&mut self) -> Result<Expr, MatchletError> {
        match self.peek().kind.clone() {
            TokenKind::Num(n) => {
                self.bump();
                Ok(Expr::Lit(num_term(n)))
            }
            TokenKind::Str(s) => {
                self.bump();
                Ok(Expr::Lit(Term::Str(s.into())))
            }
            TokenKind::Var(v) => {
                self.bump();
                Ok(Expr::Var(v.into()))
            }
            TokenKind::Punct("(") => {
                self.bump();
                let e = self.expr()?;
                self.expect_punct(")")?;
                Ok(e)
            }
            TokenKind::Ident(s) => {
                self.bump();
                match s.as_str() {
                    "true" => return Ok(Expr::Lit(Term::Bool(true))),
                    "false" => return Ok(Expr::Lit(Term::Bool(false))),
                    _ => {}
                }
                if self.eat_punct("(") {
                    let mut args = Vec::new();
                    if !self.eat_punct(")") {
                        loop {
                            args.push(self.expr()?);
                            if self.eat_punct(")") {
                                break;
                            }
                            self.expect_punct(",")?;
                        }
                    }
                    Ok(Expr::Call(s, args))
                } else {
                    // Bare identifier: a zero-argument call (used as an
                    // atom in `fact` positions).
                    Ok(Expr::Call(s, Vec::new()))
                }
            }
            other => Err(self.fail(format!("expected expression, found {other}"))),
        }
    }
}

/// Numbers without a fractional part become integers.
fn num_term(n: f64) -> Term {
    if n.fract() == 0.0 && n.abs() < 9e15 {
        Term::Int(n as i64)
    } else {
        Term::Float(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Goal;

    const ICE_CREAM: &str = r#"
        # The paper's scenario, as a matchlet.
        rule ice_cream_meetup {
            on w: event weather.reading(street: ?street, celsius: ?temp)
            on l: event user.location(user: ?u, lat: ?lat, lon: ?lon)
            where fact(?u, likes, "ice cream") and fact(?u, nationality, ?nat)
            where ?temp >= hot_threshold(?nat)
            within 5m
            emit suggestion(user: ?u, what: "ice cream", degrees: ?temp)
        }
    "#;

    #[test]
    fn parses_the_ice_cream_rule() {
        let rules = parse_rules(ICE_CREAM).unwrap();
        assert_eq!(rules.len(), 1);
        let r = &rules[0];
        assert_eq!(r.name, "ice_cream_meetup");
        assert_eq!(r.patterns.len(), 2);
        assert_eq!(r.patterns[0].kind, "weather.reading");
        assert_eq!(r.patterns[1].fields.len(), 3);
        assert_eq!(r.goals.len(), 3);
        assert_eq!(r.window, SimDuration::from_secs(300));
        assert_eq!(r.emit.kind, "suggestion");
        assert_eq!(r.emit.fields.len(), 3);
    }

    #[test]
    fn goal_splitting_and_fact_patterns() {
        let rules = parse_rules(ICE_CREAM).unwrap();
        let goals = &rules[0].goals;
        assert!(matches!(&goals[0], Goal::Fact { predicate, .. } if predicate == "likes"));
        assert!(matches!(&goals[1], Goal::Fact { predicate, .. } if predicate == "nationality"));
        assert!(matches!(&goals[2], Goal::Cond(_)));
    }

    #[test]
    fn duration_units() {
        for (src, secs) in [("500 ms", 0.5), ("30 s", 30.0), ("5 m", 300.0), ("2 h", 7200.0)] {
            let rule = format!("rule r {{ on a: event k() within {src} emit out() }}");
            let rules = parse_rules(&rule).unwrap();
            assert_eq!(rules[0].window, SimDuration::from_secs_f64(secs), "{src}");
        }
    }

    #[test]
    fn payload_path_field_keys() {
        let src = r#"
            rule r {
                on a: event k("pos/@lat": ?lat, "pos/@lon": ?lon)
                emit out(lat: ?lat)
            }
        "#;
        let rules = parse_rules(src).unwrap();
        assert_eq!(rules[0].patterns[0].fields[0].0, "pos/@lat");
    }

    #[test]
    fn literal_field_patterns() {
        let src = r#"
            rule r {
                on a: event k(mode: "walking", level: 3, ok: true, skip: _)
                emit out()
            }
        "#;
        let fields = &parse_rules(src).unwrap()[0].patterns[0].fields;
        assert_eq!(fields[0].1, Pat::Lit(Term::str("walking")));
        assert_eq!(fields[1].1, Pat::Lit(Term::Int(3)));
        assert_eq!(fields[2].1, Pat::Lit(Term::Bool(true)));
        assert_eq!(fields[3].1, Pat::Wild);
    }

    #[test]
    fn expression_precedence() {
        let src = r#"
            rule r {
                on a: event k(x: ?x)
                where ?x + 2 * 3 >= 10 - 1
                emit out()
            }
        "#;
        let goals = &parse_rules(src).unwrap()[0].goals;
        let Goal::Cond(Expr::Binary(BinOp::Ge, l, r)) = &goals[0] else {
            panic!("expected >=");
        };
        assert!(matches!(**l, Expr::Binary(BinOp::Add, _, _)));
        assert!(matches!(**r, Expr::Binary(BinOp::Sub, _, _)));
    }

    #[test]
    fn or_does_not_split_goals() {
        let src = r#"
            rule r {
                on a: event k(x: ?x)
                where ?x = 1 or ?x = 2
                emit out()
            }
        "#;
        let goals = &parse_rules(src).unwrap()[0].goals;
        assert_eq!(goals.len(), 1);
        assert!(matches!(&goals[0], Goal::Cond(Expr::Binary(BinOp::Or, _, _))));
    }

    #[test]
    fn multiple_rules_in_one_source() {
        let src = r#"
            rule a { on x: event k() emit out1() }
            rule b { on y: event j() emit out2() }
        "#;
        assert_eq!(parse_rules(src).unwrap().len(), 2);
        assert!(parse_rules("").unwrap().is_empty());
    }

    #[test]
    fn parse_errors() {
        assert!(parse_rules("rule {").is_err());
        assert!(parse_rules("rule r { emit out() }").is_err(), "no on clause");
        assert!(parse_rules("rule r { on a: event k() }").is_err(), "no emit clause");
        assert!(parse_rules("rule r { on a event k() emit o() }").is_err());
        assert!(parse_rules("rule r { on a: event k() within 5 parsec emit o() }").is_err());
        let err = parse_rules("rule r {\n  banana\n}").unwrap_err();
        assert_eq!(err.line, 2);
    }

    #[test]
    fn errors_carry_source_snippets() {
        let err = parse_rules("rule r {\n  banana\n}").unwrap_err();
        assert_eq!((err.line, err.col), (2, 3));
        let snippet = err.snippet.as_deref().expect("snippet attached");
        assert!(snippet.contains("banana"), "{snippet}");
        assert!(snippet.lines().nth(1).unwrap().ends_with('^'), "{snippet}");
        // The caret sits under the offending token.
        let text = err.to_string();
        assert!(text.contains("2:3"), "{text}");
        assert!(text.contains("banana"), "{text}");
    }

    #[test]
    fn rules_carry_clause_spans() {
        let src =
            "rule r {\n  on a: event k(x: ?x)\n  where ?x > 1 and ?x < 9\n  emit out(x: ?x)\n}";
        let r = &parse_rules(src).unwrap()[0];
        assert_eq!(r.spans.rule, Span { line: 1, col: 1 });
        assert_eq!(r.spans.pattern(0), Span { line: 2, col: 3 });
        // One `where` producing two goals records the same span twice.
        assert_eq!(r.goals.len(), 2);
        assert_eq!(r.spans.goal(0), Span { line: 3, col: 3 });
        assert_eq!(r.spans.goal(1), Span { line: 3, col: 3 });
        assert_eq!(r.spans.emit, Span { line: 4, col: 3 });
    }

    #[test]
    fn negative_number_patterns_and_exprs() {
        let src = r#"
            rule r {
                on a: event k(lon: -2.8)
                where -1 < 0
                emit out(v: -3)
            }
        "#;
        let r = &parse_rules(src).unwrap()[0];
        assert_eq!(r.patterns[0].fields[0].1, Pat::Lit(Term::Float(-2.8)));
    }
}
