//! Tokeniser for the matchlet language.

use std::fmt;

/// A token with its source position.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// The token kind and payload.
    pub kind: TokenKind,
    /// 1-based line.
    pub line: usize,
    /// 1-based column.
    pub col: usize,
}

/// Token kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// An identifier or keyword, possibly dotted (`user.location`).
    Ident(String),
    /// A `?variable`.
    Var(String),
    /// A quoted string.
    Str(String),
    /// A number (always lexed as f64; integral values are narrowed later).
    Num(f64),
    /// Punctuation / operators.
    Punct(&'static str),
    /// End of input.
    Eof,
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Ident(s) => write!(f, "`{s}`"),
            TokenKind::Var(s) => write!(f, "`?{s}`"),
            TokenKind::Str(s) => write!(f, "\"{s}\""),
            TokenKind::Num(n) => write!(f, "{n}"),
            TokenKind::Punct(p) => write!(f, "`{p}`"),
            TokenKind::Eof => write!(f, "end of input"),
        }
    }
}

/// A lexing failure.
#[derive(Debug, Clone, PartialEq)]
pub struct LexError {
    /// 1-based line.
    pub line: usize,
    /// 1-based column.
    pub col: usize,
    /// The problem.
    pub message: String,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lex error at {}:{}: {}", self.line, self.col, self.message)
    }
}

impl std::error::Error for LexError {}

/// Tokenises matchlet source. Comments run from `#` to end of line.
pub fn lex(src: &str) -> Result<Vec<Token>, LexError> {
    let mut tokens = Vec::new();
    let chars: Vec<char> = src.chars().collect();
    let mut i = 0;
    let mut line = 1;
    let mut col = 1;

    macro_rules! bump {
        () => {{
            if chars[i] == '\n' {
                line += 1;
                col = 1;
            } else {
                col += 1;
            }
            i += 1;
        }};
    }

    while i < chars.len() {
        let c = chars[i];
        let (tline, tcol) = (line, col);
        match c {
            ' ' | '\t' | '\r' | '\n' => bump!(),
            '#' => {
                while i < chars.len() && chars[i] != '\n' {
                    bump!();
                }
            }
            '"' => {
                bump!();
                let mut s = String::new();
                loop {
                    if i >= chars.len() {
                        return Err(LexError {
                            line: tline,
                            col: tcol,
                            message: "unterminated string".into(),
                        });
                    }
                    let c = chars[i];
                    bump!();
                    match c {
                        '"' => break,
                        '\\' => {
                            if i >= chars.len() {
                                return Err(LexError {
                                    line: tline,
                                    col: tcol,
                                    message: "unterminated escape".into(),
                                });
                            }
                            let e = chars[i];
                            bump!();
                            s.push(match e {
                                'n' => '\n',
                                't' => '\t',
                                other => other,
                            });
                        }
                        other => s.push(other),
                    }
                }
                tokens.push(Token { kind: TokenKind::Str(s), line: tline, col: tcol });
            }
            '?' => {
                bump!();
                let mut s = String::new();
                while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                    s.push(chars[i]);
                    bump!();
                }
                if s.is_empty() {
                    return Err(LexError {
                        line: tline,
                        col: tcol,
                        message: "`?` must be followed by a variable name".into(),
                    });
                }
                tokens.push(Token { kind: TokenKind::Var(s), line: tline, col: tcol });
            }
            c if c.is_ascii_digit() => {
                let mut s = String::new();
                while i < chars.len() && (chars[i].is_ascii_digit() || chars[i] == '.') {
                    // Don't swallow a dot that isn't followed by a digit
                    // (e.g. `1..2` never occurs, but `kind.` might).
                    if chars[i] == '.' && !(i + 1 < chars.len() && chars[i + 1].is_ascii_digit()) {
                        break;
                    }
                    s.push(chars[i]);
                    bump!();
                }
                let n: f64 = s.parse().map_err(|_| LexError {
                    line: tline,
                    col: tcol,
                    message: format!("bad number `{s}`"),
                })?;
                tokens.push(Token { kind: TokenKind::Num(n), line: tline, col: tcol });
            }
            c if c.is_alphabetic() || c == '_' => {
                let mut s = String::new();
                while i < chars.len()
                    && (chars[i].is_alphanumeric() || chars[i] == '_' || chars[i] == '.')
                {
                    // A dot is part of a dotted kind name only when
                    // followed by a letter.
                    if chars[i] == '.' && !(i + 1 < chars.len() && chars[i + 1].is_alphabetic()) {
                        break;
                    }
                    s.push(chars[i]);
                    bump!();
                }
                tokens.push(Token { kind: TokenKind::Ident(s), line: tline, col: tcol });
            }
            _ => {
                // Multi-char operators first.
                let two: String = chars[i..chars.len().min(i + 2)].iter().collect();
                let punct = match two.as_str() {
                    "<=" | ">=" | "!=" => {
                        bump!();
                        bump!();
                        match two.as_str() {
                            "<=" => "<=",
                            ">=" => ">=",
                            _ => "!=",
                        }
                    }
                    _ => {
                        let p = match c {
                            '{' => "{",
                            '}' => "}",
                            '(' => "(",
                            ')' => ")",
                            ':' => ":",
                            ',' => ",",
                            '=' => "=",
                            '<' => "<",
                            '>' => ">",
                            '+' => "+",
                            '-' => "-",
                            '*' => "*",
                            '/' => "/",
                            other => {
                                return Err(LexError {
                                    line: tline,
                                    col: tcol,
                                    message: format!("unexpected character `{other}`"),
                                })
                            }
                        };
                        bump!();
                        p
                    }
                };
                tokens.push(Token { kind: TokenKind::Punct(punct), line: tline, col: tcol });
            }
        }
    }
    tokens.push(Token { kind: TokenKind::Eof, line, col });
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn basic_tokens() {
        let ks = kinds(r#"rule r { on w: event user.location(x: ?u) }"#);
        assert!(ks.contains(&TokenKind::Ident("rule".into())));
        assert!(ks.contains(&TokenKind::Ident("user.location".into())));
        assert!(ks.contains(&TokenKind::Var("u".into())));
        assert!(ks.contains(&TokenKind::Punct("{")));
        assert_eq!(*ks.last().unwrap(), TokenKind::Eof);
    }

    #[test]
    fn numbers_and_strings() {
        let ks = kinds(r#"3 2.5 "hi \"there\"\n" 10"#);
        assert_eq!(ks[0], TokenKind::Num(3.0));
        assert_eq!(ks[1], TokenKind::Num(2.5));
        assert_eq!(ks[2], TokenKind::Str("hi \"there\"\n".into()));
        assert_eq!(ks[3], TokenKind::Num(10.0));
    }

    #[test]
    fn comparison_operators() {
        let ks = kinds("a <= b >= c != d < e > f = g");
        let puncts: Vec<&TokenKind> =
            ks.iter().filter(|k| matches!(k, TokenKind::Punct(_))).collect();
        assert_eq!(
            puncts,
            vec![
                &TokenKind::Punct("<="),
                &TokenKind::Punct(">="),
                &TokenKind::Punct("!="),
                &TokenKind::Punct("<"),
                &TokenKind::Punct(">"),
                &TokenKind::Punct("=")
            ]
        );
    }

    #[test]
    fn comments_skipped() {
        let ks = kinds("a # comment with ?vars and \"strings\"\nb");
        assert_eq!(ks.len(), 3); // a, b, eof
    }

    #[test]
    fn dotted_ident_boundaries() {
        // Trailing dot is not swallowed.
        let ks = kinds("weather.reading");
        assert_eq!(ks[0], TokenKind::Ident("weather.reading".into()));
        let ks = kinds("5m");
        assert_eq!(ks[0], TokenKind::Num(5.0));
        assert_eq!(ks[1], TokenKind::Ident("m".into()));
    }

    #[test]
    fn errors_carry_position() {
        let err = lex("abc\n  ~").unwrap_err();
        assert_eq!(err.line, 2);
        assert_eq!(err.col, 3);
        assert!(lex("\"never ends").is_err());
        assert!(lex("? notavar").is_err());
    }
}
