//! The matchlet engine: windowed multi-event joins driving rule firing.
//!
//! The hot path is indexed, allocation-lean, and — when the knowledge
//! plane exposes a change feed — *delta-driven* (Rete-style):
//!
//! - a **kind index** maps event kinds to the `(rule, pattern)` pairs
//!   that listen for them, so an event never touches a rule that cannot
//!   match it (and [`MatchletEngine::handles_kind`] is O(1));
//! - pattern fields are **precompiled** (attribute name vs. parsed XPath
//!   projection), so matching never re-parses keys;
//! - multi-pattern joins use a **hash join** keyed on the variables the
//!   patterns share, falling back to a nested loop only for tiny buffers
//!   or variable-disjoint (cartesian) joins;
//! - bindings are flat `(Symbol, Term)` vectors ([`Bindings`]), so
//!   environments clone in one allocation and compare keys by integer;
//! - **alpha memories** index, per predicate a rule's goals read, the
//!   live facts of that predicate bucketed by an FNV fingerprint of the
//!   subject. They are *repaired* from the knowledge plane's
//!   insert/retract deltas ([`FactDelta`]) instead of rebuilt, and track
//!   the validity-window boundaries of their facts;
//! - a **shared beta network** memoises the solutions of `where`-goal
//!   chains in a trie of join nodes owned by the engine, not by any one
//!   rule. Each rule's goals are normalised and canonically renamed
//!   ([`crate::canonical`]), and rules whose canonical chains share a
//!   prefix share the trie nodes — and therefore the join state — for
//!   that prefix. A node memoises the cumulative solutions of its path
//!   keyed by an exact fingerprint of the input bindings the path reads;
//!   an entry is reused until a delta touches one of the path's
//!   predicates or a fact validity boundary is crossed. A leaf miss
//!   extends the deepest still-valid ancestor entry one goal at a time
//!   instead of re-solving the whole chain, so 10k deployed rules with
//!   overlapping conditions repair each shared prefix **once** per
//!   relevant fact delta, not once per rule — and in the steady state
//!   (facts churning slowly under event traffic, the architecture's
//!   dominant regime) `on_event` probes two hash tables instead of
//!   re-solving joins over the knowledge base.
//!
//! Rules whose conditions read dynamic state the memo cannot see — a
//! `fact(...)` call *inside* an expression, or the clock builtins `now` /
//! `minutes_of_day` — are solved from scratch every firing, exactly as
//! before. Equivalence with from-scratch re-solving is property-tested in
//! `tests/engine_equivalence.rs`.

use crate::ast::{EventPattern, Goal, Pat, Rule};
use crate::canonical::{canonical_chain, CanonicalChain};
use crate::eval::{eval, solve_mut, unify, Bindings};
use crate::parser::{parse_rules, MatchletError};
use crate::symbol::Symbol;
use gloss_event::{AttrValue, Event};
use gloss_knowledge::{Fact, FactDelta, FactSource, FactsVersion, Term};
use gloss_sim::FnvHashMap;
use gloss_sim::SimTime;
use gloss_xml::Path;
use std::collections::VecDeque;
use std::sync::Arc;

/// How one pattern field reads its value from an event, precompiled so
/// the per-event path never inspects or parses field keys.
#[derive(Debug, Clone)]
enum FieldAccess {
    /// A typed attribute, by name.
    Attr(String),
    /// An XPath type projection into the XML payload (§3).
    Payload(Path),
    /// A projection key that failed to parse: matches nothing.
    Invalid,
}

#[derive(Debug, Clone)]
struct CompiledField {
    access: FieldAccess,
    pat: Pat,
}

/// A precompiled event pattern: field accessors plus the variables the
/// pattern binds (sorted, for set intersection during joins).
#[derive(Debug, Clone)]
struct CompiledPattern {
    fields: Vec<CompiledField>,
    vars: Vec<Symbol>,
}

impl CompiledPattern {
    fn new(pattern: &EventPattern) -> Self {
        let fields = pattern
            .fields
            .iter()
            .map(|(key, pat)| {
                let access = if key.contains('/') || key.starts_with('@') {
                    match Path::parse(key) {
                        Ok(path) => FieldAccess::Payload(path),
                        Err(_) => FieldAccess::Invalid,
                    }
                } else {
                    FieldAccess::Attr(key.clone())
                };
                CompiledField { access, pat: pat.clone() }
            })
            .collect::<Vec<_>>();
        let mut vars: Vec<Symbol> = fields
            .iter()
            .filter_map(|f| match f.pat {
                Pat::Var(v) => Some(v),
                _ => None,
            })
            .collect();
        vars.sort_unstable();
        vars.dedup();
        CompiledPattern { fields, vars }
    }
}

// --- alpha memories: the engine-side fact index --------------------------

/// FNV-1a of a string (the subject-bucket fingerprint).
fn fnv_str(s: &str) -> u64 {
    gloss_sim::fnv1a(s.as_bytes())
}

/// The live facts of one predicate, in knowledge-base insertion order
/// (a tombstoned slab, so retractions never reorder survivors), bucketed
/// by subject fingerprint for the solver's subject-hinted probes.
#[derive(Debug, Clone, Default)]
struct AlphaMemory {
    /// Facts in insertion order; `None` = retracted.
    facts: Vec<Option<Fact>>,
    /// Subject fingerprint → slab indices, ascending (insertion order).
    by_subject: FnvHashMap<u64, Vec<u32>>,
    /// Validity-window boundaries (µs) of the indexed facts, sorted. A
    /// retracted fact's boundaries linger until the next compaction —
    /// safe either way: a stale boundary can only force a spurious memo
    /// recompute, never a stale hit.
    boundaries: Vec<u64>,
    /// Engine change stamp of the last mutation (memo invalidation).
    last_change: u64,
    /// Live (non-tombstoned) fact count.
    live: usize,
}

impl AlphaMemory {
    fn add_boundaries(&mut self, fact: &Fact) {
        for b in [fact.valid_from, fact.valid_to].into_iter().flatten() {
            let m = b.as_micros();
            if let Err(pos) = self.boundaries.binary_search(&m) {
                self.boundaries.insert(pos, m);
            }
        }
    }

    fn insert(&mut self, fact: Fact) {
        self.add_boundaries(&fact);
        let id = self.facts.len() as u32;
        self.by_subject.entry(fnv_str(&fact.subject)).or_default().push(id);
        self.facts.push(Some(fact));
        self.live += 1;
    }

    /// Removes the first live fact matching `fact` bit-exactly (among
    /// equal facts the choice is observationally irrelevant). Bit-exact
    /// rather than derived `PartialEq`: a retract delta carries a clone
    /// of the removed fact, and `NaN != NaN` under `==` would leave a
    /// NaN-valued fact stranded in the index forever.
    fn retract(&mut self, fact: &Fact) {
        let Some(ids) = self.by_subject.get(&fnv_str(&fact.subject)) else {
            return;
        };
        for &id in ids {
            let slot = &mut self.facts[id as usize];
            if slot.as_ref().is_some_and(|f| fact_exact_eq(f, fact)) {
                *slot = None;
                self.live -= 1;
                self.maybe_compact();
                return;
            }
        }
    }

    fn maybe_compact(&mut self) {
        if self.facts.len() < 64 || self.live * 2 >= self.facts.len() {
            return;
        }
        let old = std::mem::take(&mut self.facts);
        self.by_subject.clear();
        // Boundaries rebuild from the survivors in the same pass: safe,
        // because every retraction bumps this memory's change stamp, so
        // memo entries that consulted the old boundary set are already
        // condemned before their next probe.
        self.boundaries.clear();
        for fact in old.into_iter().flatten() {
            self.add_boundaries(&fact);
            let id = self.facts.len() as u32;
            self.by_subject.entry(fnv_str(&fact.subject)).or_default().push(id);
            self.facts.push(Some(fact));
        }
    }

    /// Whether no validity boundary lies in `(lo, hi]` (µs): a solution
    /// computed at `lo` is still fact-for-fact identical at `hi`.
    fn quiet_between(&self, lo: u64, hi: u64) -> bool {
        let i = self.boundaries.partition_point(|&x| x <= lo);
        self.boundaries.get(i).is_none_or(|&x| x > hi)
    }

    /// Enumerates facts valid at `t`, mirroring the knowledge base's own
    /// iteration order exactly (insertion order within the predicate).
    fn for_each_at(&self, subject: Option<&str>, t: SimTime, f: &mut dyn FnMut(&Fact)) {
        match subject {
            Some(s) => {
                let Some(ids) = self.by_subject.get(&fnv_str(s)) else {
                    return;
                };
                for &id in ids {
                    if let Some(fact) = &self.facts[id as usize] {
                        if fact.subject == s && fact.valid_at(t) {
                            f(fact);
                        }
                    }
                }
            }
            None => {
                for fact in self.facts.iter().flatten() {
                    if fact.valid_at(t) {
                        f(fact);
                    }
                }
            }
        }
    }
}

/// A [`FactSource`] view over the alpha memories: memo-miss re-solves
/// enumerate facts from here instead of the raw knowledge base. Only ever
/// probed with the static predicates of memoised rules, all of which are
/// indexed.
struct AlphaView<'v> {
    alphas: &'v FnvHashMap<String, AlphaMemory>,
}

impl FactSource for AlphaView<'_> {
    fn query<'a>(
        &'a self,
        subject: Option<&'a str>,
        predicate: Option<&'a str>,
    ) -> Box<dyn Iterator<Item = &'a Fact> + 'a> {
        let Some(mem) = predicate.and_then(|p| self.alphas.get(p)) else {
            return Box::new(std::iter::empty());
        };
        match subject {
            Some(s) => {
                let ids: &[u32] = mem.by_subject.get(&fnv_str(s)).map_or(&[], Vec::as_slice);
                Box::new(
                    ids.iter()
                        .filter_map(|&id| mem.facts[id as usize].as_ref())
                        .filter(move |f| f.subject == s),
                )
            }
            None => Box::new(mem.facts.iter().flatten()),
        }
    }

    fn for_each_at(
        &self,
        subject: Option<&str>,
        predicate: Option<&str>,
        t: SimTime,
        f: &mut dyn FnMut(&Fact),
    ) {
        if let Some(mem) = predicate.and_then(|p| self.alphas.get(p)) {
            mem.for_each_at(subject, t, f);
        }
    }
}

// --- the shared beta network: memoised goal solutions --------------------

/// Hard cap on distinct memo keys per beta node; past it the node's
/// table resets (a backstop against unbounded key cardinality, not a
/// tuning knob).
const MEMO_KEYS_MAX: usize = 1024;

/// How a rule's `where` goals are solved.
#[derive(Debug, Clone)]
enum SolvePlan {
    /// Goals read only static-predicate facts and pure builtins: their
    /// solutions are memoised in the engine's shared beta network.
    Memo {
        /// The (static) predicates the goals enumerate.
        predicates: Vec<String>,
        /// The rule's own variable for each canonical slot, in slot
        /// order: the projection of an input environment onto these is
        /// the memo key, and replayed canonical suffixes translate back
        /// through it.
        key_vars: Vec<Symbol>,
        /// Beta-trie node ids, root to leaf, one per canonical goal.
        path: Vec<u32>,
    },
    /// Goals read dynamic state (`fact(...)` inside an expression, or a
    /// clock builtin) — or read no facts at all, making memoisation pure
    /// overhead: re-solved from scratch every firing.
    Direct,
}

/// One memoised solve at a beta node: the exact path-input projection it
/// was computed for, when, and the *cumulative* binding suffixes each
/// solution of the path's goals appended.
#[derive(Debug, Clone)]
struct BetaEntry {
    /// Values of the path's canonical slots in the input environment
    /// (`None` = unbound), compared *exactly* — variant- and
    /// bit-sensitive, because e.g. `Int(3)` and `Float(3.0)` are
    /// `eq_term`-equal yet divide differently.
    key: Vec<Option<Term>>,
    computed_at: SimTime,
    /// Per solution, the `(slot, value)` bindings the path appended
    /// beyond the input environment, in solve order.
    solutions: Vec<Vec<(u32, Term)>>,
    /// Condition-evaluation errors the path produced for this input
    /// (replayed into the engine stats so memoisation never hides
    /// misconfigured rules).
    solve_errors: u64,
}

/// One join node of the shared beta trie: a canonical goal under a
/// canonical prefix. Every rule whose canonical chain passes through
/// this node shares its memo.
#[derive(Debug, Clone)]
struct BetaNode {
    /// Parent node (`None` for depth-0 nodes).
    parent: Option<u32>,
    /// This node's identity under its parent (the canonical encoding of
    /// `goal`).
    repr: String,
    /// The goal, over canonical slot symbols.
    goal: Goal,
    /// Child encoding → node id.
    children: FnvHashMap<String, u32>,
    /// Distinct predicates the path up to and including this goal
    /// enumerates (invalidation scope).
    predicates: Vec<String>,
    /// Canonical slots in scope once the path up to here has run.
    slots: u32,
    memo: FnvHashMap<u64, Vec<BetaEntry>>,
    /// Alpha change stamp the memo is valid against.
    stamp: u64,
    /// How many hosted rules route through this node.
    refs: u32,
}

/// The engine's shared beta trie.
#[derive(Debug, Clone, Default)]
struct BetaNet {
    /// Node slab; `None` = freed.
    nodes: Vec<Option<BetaNode>>,
    free: Vec<u32>,
    /// Depth-0 encoding → node id.
    roots: FnvHashMap<String, u32>,
    /// Interned slot symbols, `slot_syms[i]` = `βi`.
    slot_syms: Vec<Symbol>,
}

impl BetaNet {
    fn node(&self, id: u32) -> &BetaNode {
        self.nodes[id as usize].as_ref().expect("live beta node")
    }

    fn node_mut(&mut self, id: u32) -> &mut BetaNode {
        self.nodes[id as usize].as_mut().expect("live beta node")
    }

    fn live_nodes(&self) -> usize {
        self.nodes.iter().flatten().count()
    }

    fn shared_nodes(&self) -> usize {
        self.nodes.iter().flatten().filter(|n| n.refs > 1).count()
    }

    /// Interns a rule's canonical chain, creating missing nodes and
    /// taking a reference on every node along the path.
    fn intern_path(&mut self, chain: &CanonicalChain) -> Vec<u32> {
        let total_slots = chain.slots_after.last().copied().unwrap_or(0);
        while (self.slot_syms.len() as u32) < total_slots {
            self.slot_syms.push(crate::canonical::slot_symbol(self.slot_syms.len() as u32));
        }
        let mut path = Vec::with_capacity(chain.goals.len());
        let mut parent: Option<u32> = None;
        for ((goal, repr), slots) in chain.goals.iter().zip(&chain.reprs).zip(&chain.slots_after) {
            let existing = match parent {
                None => self.roots.get(repr).copied(),
                Some(p) => self.node(p).children.get(repr).copied(),
            };
            let id = match existing {
                Some(id) => id,
                None => {
                    let mut predicates =
                        parent.map(|p| self.node(p).predicates.clone()).unwrap_or_default();
                    if let Goal::Fact { predicate, .. } = goal {
                        if !predicates.iter().any(|q| q == predicate) {
                            predicates.push(predicate.clone());
                        }
                    }
                    let node = BetaNode {
                        parent,
                        repr: repr.clone(),
                        goal: goal.clone(),
                        children: FnvHashMap::default(),
                        predicates,
                        slots: *slots,
                        memo: FnvHashMap::default(),
                        stamp: 0,
                        refs: 0,
                    };
                    let id = match self.free.pop() {
                        Some(id) => {
                            self.nodes[id as usize] = Some(node);
                            id
                        }
                        None => {
                            self.nodes.push(Some(node));
                            (self.nodes.len() - 1) as u32
                        }
                    };
                    match parent {
                        None => {
                            self.roots.insert(repr.clone(), id);
                        }
                        Some(p) => {
                            self.node_mut(p).children.insert(repr.clone(), id);
                        }
                    }
                    id
                }
            };
            self.node_mut(id).refs += 1;
            path.push(id);
            parent = Some(id);
        }
        path
    }

    /// Drops one rule's references along its path, freeing nodes no rule
    /// routes through any more (leaf first, so a freed child always
    /// detaches from a still-live parent).
    fn release(&mut self, path: &[u32]) {
        for &id in path.iter().rev() {
            let node = self.node_mut(id);
            node.refs -= 1;
            if node.refs == 0 {
                let parent = node.parent;
                let repr = std::mem::take(&mut node.repr);
                self.nodes[id as usize] = None;
                self.free.push(id);
                match parent {
                    None => {
                        self.roots.remove(&repr);
                    }
                    Some(p) => {
                        self.node_mut(p).children.remove(&repr);
                    }
                }
            }
        }
    }

    /// Condemns memo entries along the path whose predicates saw alpha
    /// deltas since the node's stamp.
    fn refresh(&mut self, path: &[u32], alphas: &FnvHashMap<String, AlphaMemory>) {
        for &id in path {
            let node = self.nodes[id as usize].as_mut().expect("live beta node");
            let newest = node
                .predicates
                .iter()
                .filter_map(|p| alphas.get(p))
                .map(|a| a.last_change)
                .max()
                .unwrap_or(0);
            if newest > node.stamp {
                node.memo.clear();
                node.stamp = newest;
            }
        }
    }

    /// Looks up a still-valid entry at `id` for the projection of `key`
    /// onto the node's slots; returns its bucket hash and index.
    fn find(
        &self,
        id: u32,
        key: &[Option<Term>],
        alphas: &FnvHashMap<String, AlphaMemory>,
        now: SimTime,
    ) -> Option<(u64, usize)> {
        let node = self.node(id);
        let prefix = &key[..node.slots as usize];
        let h = key_fingerprint(prefix);
        let idx = node.memo.get(&h)?.iter().position(|e| {
            keys_exact_eq(&e.key, prefix)
                && boundaries_quiet(alphas, &node.predicates, e.computed_at, now)
        })?;
        Some((h, idx))
    }

    /// Computes (and memoises) the leaf entry for `key` along `path`:
    /// finds the deepest ancestor with a still-valid entry for the same
    /// input, then extends it one goal at a time, memoising at every
    /// node passed so sibling rules hit the shared prefix. Returns the
    /// leaf entry's bucket hash and index; bumps `partial` when an
    /// ancestor entry was reused.
    fn compute(
        &mut self,
        path: &[u32],
        key: &[Option<Term>],
        alphas: &FnvHashMap<String, AlphaMemory>,
        now: SimTime,
        partial: &mut u64,
    ) -> (u64, usize) {
        // The root base case: one solution (the input itself), no errors.
        let mut base: Vec<Vec<(u32, Term)>> = vec![Vec::new()];
        let mut base_errors = 0u64;
        let mut start = 0usize;
        for d in (0..path.len().saturating_sub(1)).rev() {
            if let Some((h, idx)) = self.find(path[d], key, alphas, now) {
                let entry = &self.node(path[d]).memo[&h][idx];
                base = entry.solutions.clone();
                base_errors = entry.solve_errors;
                start = d + 1;
                *partial += 1;
                break;
            }
        }
        let mut leaf_slot = (0u64, 0usize);
        for &id in &path[start..] {
            let (goal, slots) = {
                let node = self.node(id);
                (node.goal.clone(), node.slots as usize)
            };
            let mut next: Vec<Vec<(u32, Term)>> = Vec::new();
            let mut errors = base_errors;
            {
                let slot_syms = &self.slot_syms;
                let view = AlphaView { alphas };
                // Input-bound slots in scope at this node; each base
                // solution's suffix stacks on top and is truncated away.
                let mut env = Bindings::new();
                for (i, v) in key[..slots].iter().enumerate() {
                    if let Some(v) = v {
                        env.push_raw(slot_syms[i], v.clone());
                    }
                }
                let input_len = env.len();
                let goal_slice = std::slice::from_ref(&goal);
                for sol in &base {
                    env.truncate(input_len);
                    for (slot, term) in sol {
                        env.push_raw(slot_syms[*slot as usize], term.clone());
                    }
                    let mark = env.len();
                    errors += solve_mut(goal_slice, &mut env, &view, now, &mut |senv| {
                        let mut cum = sol.clone();
                        for (sym, term) in &senv.raw_entries()[mark..] {
                            let slot = slot_syms
                                .iter()
                                .position(|s| s == sym)
                                .expect("canonical slot symbol")
                                as u32;
                            cum.push((slot, term.clone()));
                        }
                        next.push(cum);
                    });
                }
            }
            let prefix_key = key[..slots].to_vec();
            let h = key_fingerprint(&prefix_key);
            let node = self.nodes[id as usize].as_mut().expect("live beta node");
            if node.memo.len() >= MEMO_KEYS_MAX {
                node.memo.clear();
            }
            let bucket = node.memo.entry(h).or_default();
            // A boundary-stale entry for this key may linger; replace it.
            bucket.retain(|e| !keys_exact_eq(&e.key, &prefix_key));
            bucket.push(BetaEntry {
                key: prefix_key,
                computed_at: now,
                solutions: next.clone(),
                solve_errors: errors,
            });
            leaf_slot = (h, bucket.len() - 1);
            base = next;
            base_errors = errors;
        }
        leaf_slot
    }
}

/// Bit-exact fact equality (the alpha retract match: the delta carries a
/// clone of the removed fact, so every field matches bitwise).
fn fact_exact_eq(a: &Fact, b: &Fact) -> bool {
    a.subject == b.subject
        && a.predicate == b.predicate
        && term_exact_eq(&a.object, &b.object)
        && a.valid_from == b.valid_from
        && a.valid_to == b.valid_to
}

/// Exact (variant- and bit-sensitive) term equality for memo keys.
fn term_exact_eq(a: &Term, b: &Term) -> bool {
    match (a, b) {
        (Term::Str(x), Term::Str(y)) => x == y,
        (Term::Int(x), Term::Int(y)) => x == y,
        (Term::Float(x), Term::Float(y)) => x.to_bits() == y.to_bits(),
        (Term::Bool(x), Term::Bool(y)) => x == y,
        (Term::Geo(x), Term::Geo(y)) => {
            x.lat.to_bits() == y.lat.to_bits() && x.lon.to_bits() == y.lon.to_bits()
        }
        (Term::Time(x), Term::Time(y)) => x == y,
        _ => false,
    }
}

fn keys_exact_eq(a: &[Option<Term>], b: &[Option<Term>]) -> bool {
    a.len() == b.len()
        && a.iter().zip(b).all(|(x, y)| match (x, y) {
            (None, None) => true,
            (Some(x), Some(y)) => term_exact_eq(x, y),
            _ => false,
        })
}

fn key_fingerprint(key: &[Option<Term>]) -> u64 {
    use std::hash::Hasher as _;
    let mut h = gloss_sim::FnvHasher::default();
    for slot in key {
        match slot {
            None => h.write_u8(0),
            Some(Term::Str(s)) => {
                h.write_u8(1);
                h.write(s.as_bytes());
                h.write_u8(0xff);
            }
            Some(Term::Int(i)) => {
                h.write_u8(2);
                h.write_u64(*i as u64);
            }
            Some(Term::Float(f)) => {
                h.write_u8(3);
                h.write_u64(f.to_bits());
            }
            Some(Term::Bool(b)) => {
                h.write_u8(4);
                h.write_u8(*b as u8);
            }
            Some(Term::Geo(g)) => {
                h.write_u8(5);
                h.write_u64(g.lat.to_bits());
                h.write_u64(g.lon.to_bits());
            }
            Some(Term::Time(t)) => {
                h.write_u8(6);
                h.write_u64(t.as_micros());
            }
        }
    }
    h.finish()
}

/// Whether, for every predicate in `predicates`, no validity boundary
/// lies strictly between the two instants (so a solution computed at one
/// is fact-for-fact identical at the other).
fn boundaries_quiet(
    alphas: &FnvHashMap<String, AlphaMemory>,
    predicates: &[String],
    a: SimTime,
    b: SimTime,
) -> bool {
    if a == b {
        return true;
    }
    let (lo, hi) =
        if a < b { (a.as_micros(), b.as_micros()) } else { (b.as_micros(), a.as_micros()) };
    predicates.iter().all(|p| alphas.get(p).is_none_or(|m| m.quiet_between(lo, hi)))
}

/// The memoisation context of one rule while an event fires it: the
/// engine's shared beta trie, the shared alpha memories, and the rule's
/// plan metadata.
struct MemoCtx<'a> {
    beta: &'a mut BetaNet,
    alphas: &'a FnvHashMap<String, AlphaMemory>,
    key_vars: &'a [Symbol],
    path: &'a [u32],
    hits: u64,
    misses: u64,
    partial: u64,
}

/// A rule plus its per-pattern event buffers.
#[derive(Debug, Clone)]
pub struct CompiledRule {
    /// The rule.
    pub rule: Rule,
    /// Precompiled patterns, parallel to `rule.patterns`.
    compiled: Vec<CompiledPattern>,
    /// Per-pattern buffers of `(arrival time, bindings)`.
    buffers: Vec<VecDeque<(SimTime, Bindings)>>,
    /// The emit kind, shared so every synthesised event clones a
    /// refcount instead of the string.
    emit_kind: Arc<str>,
    /// Emit field names, parallel to `rule.emit.fields`, shared the same
    /// way.
    emit_keys: Vec<Arc<str>>,
    /// The goal chain both solve paths run: the canonically normalised
    /// chain for memoisable rules (so the memoised and fallback paths
    /// agree bit-for-bit), the written chain for direct rules.
    goals: Vec<Goal>,
    /// How the goals are solved (memoised vs from scratch).
    plan: SolvePlan,
    /// How many times the rule has fired.
    pub fired: u64,
}

impl CompiledRule {
    fn new(rule: Rule, beta: &mut BetaNet) -> Self {
        let compiled = rule.patterns.iter().map(CompiledPattern::new).collect();
        let buffers = vec![VecDeque::new(); rule.patterns.len()];
        let emit_kind = Arc::from(rule.emit.kind.as_str());
        let emit_keys = rule.emit.fields.iter().map(|(k, _)| Arc::from(k.as_str())).collect();
        let (goals, plan) = match canonical_chain(&rule) {
            Some(chain) => {
                // The normalised chain in the rule's own variables, for
                // the direct fallback (a source without a change feed).
                let goals = crate::canonical::normalise_goals(&rule.goals);
                let path = beta.intern_path(&chain);
                let plan = SolvePlan::Memo {
                    predicates: chain.predicates,
                    key_vars: chain.key_vars,
                    path,
                };
                (goals, plan)
            }
            None => (rule.goals.clone(), SolvePlan::Direct),
        };
        CompiledRule { rule, compiled, buffers, emit_kind, emit_keys, goals, plan, fired: 0 }
    }

    fn evict_before(&mut self, cutoff: SimTime) {
        for buf in &mut self.buffers {
            while buf.front().is_some_and(|(t, _)| *t < cutoff) {
                buf.pop_front();
            }
        }
    }

    /// Total buffered partial matches.
    pub fn buffered(&self) -> usize {
        self.buffers.iter().map(VecDeque::len).sum()
    }
}

/// Aggregate engine statistics — the "distillation" measure of Figure 1:
/// a high volume of input events reduced to few meaningful outputs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EngineStats {
    /// Events offered to the engine.
    pub events_in: u64,
    /// Events synthesised.
    pub events_out: u64,
    /// Where-clause evaluation errors (branches pruned).
    pub eval_errors: u64,
    /// Firings served from a memoised goal solve.
    pub memo_hits: u64,
    /// Firings that had to re-solve their goals (and memoised the result).
    pub memo_misses: u64,
    /// Memo misses that reused a still-valid shared-prefix entry from an
    /// ancestor beta node instead of re-solving the whole chain.
    pub beta_partial_hits: u64,
}

impl EngineStats {
    /// Input events per output event (∞ reported as `f64::INFINITY`).
    pub fn distillation_ratio(&self) -> f64 {
        if self.events_out == 0 {
            f64::INFINITY
        } else {
            self.events_in as f64 / self.events_out as f64
        }
    }
}

/// A matchlet engine hosting compiled rules.
///
/// All hosted rules — however they were deployed — share one alpha
/// index, one change-feed cursor, and one beta trie per engine: a node
/// running many matchlets repairs its fact view once per knowledge
/// update, and rules with overlapping goal prefixes share the join state
/// for the overlap.
///
/// See the [crate docs](crate) for the language and an example.
#[derive(Debug, Clone, Default)]
pub struct MatchletEngine {
    rules: Vec<CompiledRule>,
    /// Event kind → `(rule index, pattern index)` pairs listening for it,
    /// in rule order. Rebuilt on rule addition/removal.
    kind_index: FnvHashMap<String, Vec<(u32, u32)>>,
    /// Predicate → alpha memory, shared by every memoised rule.
    alphas: FnvHashMap<String, AlphaMemory>,
    /// The shared beta trie (prefix-shared join state).
    beta: BetaNet,
    /// The knowledge-base version the alpha memories reflect (`None` =
    /// not synced / source has no change feed).
    synced: Option<FactsVersion>,
    /// Bumped whenever alpha contents change; compared against each
    /// rule's memo stamp for invalidation.
    change_stamp: u64,
    /// Rule set changed since the last sync: alpha coverage must be
    /// re-checked against the rules' plans.
    plans_dirty: bool,
    /// How many hosted rules have a memoisable plan; when zero, the
    /// per-event sync is skipped entirely (direct-only engines pay
    /// nothing for the delta machinery).
    memo_rules: usize,
    /// Engine statistics.
    pub stats: EngineStats,
}

impl MatchletEngine {
    /// Creates an empty engine.
    pub fn new() -> Self {
        MatchletEngine::default()
    }

    /// Compiles source text into a fresh engine.
    ///
    /// # Errors
    ///
    /// Returns [`MatchletError`] on syntax errors.
    pub fn compile(src: &str) -> Result<Self, MatchletError> {
        let mut engine = MatchletEngine::new();
        engine.add_rules(src)?;
        Ok(engine)
    }

    /// Hot-adds rules from source to a running engine (the dynamic
    /// deployment path used by code bundles).
    ///
    /// # Errors
    ///
    /// Returns [`MatchletError`] on syntax errors; existing rules are
    /// untouched.
    pub fn add_rules(&mut self, src: &str) -> Result<(), MatchletError> {
        for rule in parse_rules(src)? {
            self.add_rule(rule);
        }
        Ok(())
    }

    /// Adds one already-parsed rule, threading its canonical goal chain
    /// into the shared beta trie. Any predicate its goals read that is
    /// not yet alpha-indexed gets indexed at the next event.
    pub fn add_rule(&mut self, rule: Rule) {
        let ri = self.rules.len() as u32;
        for (pi, pattern) in rule.patterns.iter().enumerate() {
            self.kind_index.entry(pattern.kind.clone()).or_default().push((ri, pi as u32));
        }
        let compiled = CompiledRule::new(rule, &mut self.beta);
        if matches!(compiled.plan, SolvePlan::Memo { .. }) {
            self.memo_rules += 1;
        }
        self.rules.push(compiled);
        self.plans_dirty = true;
    }

    /// Removes a rule by name; returns whether it existed. Its
    /// references on the beta trie go with it — join state shared with
    /// no surviving rule is freed — and alpha memories no rule reads any
    /// more are dropped (so unrelated fact churn stops costing index
    /// repairs).
    pub fn remove_rule(&mut self, name: &str) -> bool {
        let before = self.rules.len();
        let mut i = 0;
        while i < self.rules.len() {
            if self.rules[i].rule.name == name {
                let gone = self.rules.remove(i);
                if let SolvePlan::Memo { path, .. } = &gone.plan {
                    self.beta.release(path);
                }
            } else {
                i += 1;
            }
        }
        if before == self.rules.len() {
            return false;
        }
        self.rebuild_kind_index();
        let rules = &self.rules;
        self.alphas.retain(|pred, _| {
            rules.iter().any(|r| match &r.plan {
                SolvePlan::Memo { predicates, .. } => predicates.iter().any(|p| p == pred),
                SolvePlan::Direct => false,
            })
        });
        self.memo_rules =
            self.rules.iter().filter(|r| matches!(r.plan, SolvePlan::Memo { .. })).count();
        self.plans_dirty = true;
        true
    }

    fn rebuild_kind_index(&mut self) {
        self.kind_index.clear();
        for (ri, compiled) in self.rules.iter().enumerate() {
            for (pi, pattern) in compiled.rule.patterns.iter().enumerate() {
                self.kind_index
                    .entry(pattern.kind.clone())
                    .or_default()
                    .push((ri as u32, pi as u32));
            }
        }
    }

    /// The hosted rule names.
    pub fn rule_names(&self) -> Vec<&str> {
        self.rules.iter().map(|r| r.rule.name.as_str()).collect()
    }

    /// The hosted rules (with buffer state).
    pub fn rules(&self) -> &[CompiledRule] {
        &self.rules
    }

    /// How many predicates are currently alpha-indexed (rules sharing a
    /// predicate share the memory).
    pub fn indexed_predicates(&self) -> usize {
        self.alphas.len()
    }

    /// How many join nodes the shared beta trie holds. Rules with
    /// alpha-equivalent goal prefixes share nodes, so this is strictly
    /// less than the total goal count when prefixes overlap.
    pub fn beta_nodes(&self) -> usize {
        self.beta.live_nodes()
    }

    /// How many beta nodes more than one hosted rule routes through.
    pub fn beta_shared_nodes(&self) -> usize {
        self.beta.shared_nodes()
    }

    /// Whether any rule listens for the given event kind (one index
    /// lookup; hosting layers call this per event).
    pub fn handles_kind(&self, kind: &str) -> bool {
        self.kind_index.contains_key(kind)
    }

    /// Offers an event to the rules listening for its kind; returns the
    /// synthesised events. Rules without a pattern on the event's kind
    /// are never touched.
    ///
    /// Joining semantics: the new event is fixed at each pattern position
    /// it matches and joined against the *buffered* partial matches of
    /// the other patterns (so an event never joins with itself), then the
    /// event is buffered. All joined events lie within the rule's window
    /// of the new event.
    pub fn on_event(&mut self, now: SimTime, event: &Event, kb: &dyn FactSource) -> Vec<Event> {
        self.stats.events_in += 1;
        let mut out = Vec::new();
        let MatchletEngine {
            rules,
            kind_index,
            alphas,
            beta,
            synced,
            change_stamp,
            plans_dirty,
            memo_rules,
            stats,
        } = self;
        let Some(entries) = kind_index.get(event.kind()) else {
            return out;
        };
        let delta_active =
            *memo_rules > 0 && sync(alphas, synced, change_stamp, plans_dirty, rules, kb);
        // Entries are grouped by rule (rule order, then pattern order).
        let mut i = 0;
        while i < entries.len() {
            let ri = entries[i].0 as usize;
            let mut j = i;
            while j < entries.len() && entries[j].0 as usize == ri {
                j += 1;
            }
            let pattern_entries = &entries[i..j];
            i = j;

            let rule = &mut rules[ri];
            let window = rule.rule.window;
            let cutoff = if now.as_micros() > window.as_micros() {
                SimTime::from_micros(now.as_micros() - window.as_micros())
            } else {
                SimTime::ZERO
            };
            rule.evict_before(cutoff);

            let mut matched: Vec<(usize, Bindings)> = Vec::new();
            for &(_, pi) in pattern_entries {
                let p = pi as usize;
                if let Some(b) = match_compiled(&rule.compiled[p], event) {
                    matched.push((p, b));
                }
            }
            if matched.is_empty() {
                continue;
            }

            // Single-pattern rules have no join partner, so their buffers
            // are never read: fire directly and skip buffering entirely.
            let single = rule.rule.patterns.len() == 1;
            let rule = &rules[ri];
            let mut memoctx = match &rule.plan {
                SolvePlan::Memo { key_vars, path, .. } if delta_active => {
                    // Condemn stale memo entries along the rule's beta
                    // path: any delta that touched a predicate a path
                    // node reads (and only that).
                    beta.refresh(path, alphas);
                    Some(MemoCtx {
                        beta: &mut *beta,
                        alphas,
                        key_vars,
                        path,
                        hits: 0,
                        misses: 0,
                        partial: 0,
                    })
                }
                _ => None,
            };

            let mut fired = 0u64;
            let mut errors = 0u64;
            if single {
                // Drain (moves the bindings): single-pattern rules never
                // buffer, so nothing downstream reads `matched`.
                for (_, bindings) in matched.drain(..) {
                    fire(rule, &mut memoctx, bindings, kb, now, &mut out, &mut fired, &mut errors);
                }
            } else {
                for (p, bindings) in &matched {
                    join_and_fire(
                        rule,
                        *p,
                        bindings.clone(),
                        &mut memoctx,
                        kb,
                        now,
                        &mut out,
                        &mut fired,
                        &mut errors,
                    );
                }
            }
            stats.eval_errors += errors;
            if let Some(ctx) = memoctx.take() {
                stats.memo_hits += ctx.hits;
                stats.memo_misses += ctx.misses;
                stats.beta_partial_hits += ctx.partial;
            }
            let rule = &mut rules[ri];
            rule.fired += fired;
            if !single {
                for (p, bindings) in matched {
                    rule.buffers[p].push_back((now, bindings));
                }
            }
        }
        stats.events_out += out.len() as u64;
        out
    }
}

/// Brings the alpha memories up to date with `kb`'s change feed (a free
/// function over the engine's destructured fields, so `on_event` can
/// hold its kind-index borrow across the call). Returns whether
/// memoisation is usable for this event (`false` when the source has no
/// feed, in which case every rule solves directly).
fn sync(
    alphas: &mut FnvHashMap<String, AlphaMemory>,
    synced: &mut Option<FactsVersion>,
    change_stamp: &mut u64,
    plans_dirty: &mut bool,
    rules: &[CompiledRule],
    kb: &dyn FactSource,
) -> bool {
    let Some(v) = kb.version() else {
        if synced.is_some() {
            // The source cannot tell us what changed: drop the indexes
            // and run direct until a delta-capable source comes back.
            *synced = None;
            alphas.clear();
            *change_stamp += 1;
        }
        return false;
    };
    let up_to_date = match *synced {
        Some(s) if s.source == v.source => {
            if v.epoch == s.epoch {
                true
            } else {
                // Repair the alpha memories from the delta span.
                *change_stamp += 1;
                let stamp = *change_stamp;
                kb.for_each_delta_since(s.epoch, &mut |d| {
                    let (fact, insert) = match d {
                        FactDelta::Insert(f) => (f, true),
                        FactDelta::Retract(f) => (f, false),
                    };
                    if let Some(mem) = alphas.get_mut(fact.predicate.as_str()) {
                        mem.last_change = stamp;
                        if insert {
                            mem.insert(fact.clone());
                        } else {
                            mem.retract(fact);
                        }
                    }
                })
            }
        }
        _ => false,
    };
    if !up_to_date {
        // A different store, or the feed was truncated past our cursor:
        // rebuild from a full read.
        *change_stamp += 1;
        alphas.clear();
        *plans_dirty = true;
    }
    if *plans_dirty {
        let stamp = *change_stamp;
        for rule in rules {
            let SolvePlan::Memo { predicates, .. } = &rule.plan else {
                continue;
            };
            for p in predicates {
                if !alphas.contains_key(p.as_str()) {
                    let mut mem = AlphaMemory { last_change: stamp, ..Default::default() };
                    for fact in kb.query(None, Some(p)) {
                        mem.insert(fact.clone());
                    }
                    alphas.insert(p.clone(), mem);
                }
            }
        }
        *plans_dirty = false;
    }
    *synced = Some(v);
    true
}

/// Matches one precompiled pattern against an event, producing bindings.
/// The kind has already been matched by the engine's kind index.
fn match_compiled(pattern: &CompiledPattern, event: &Event) -> Option<Bindings> {
    let mut env = Bindings::new();
    for field in &pattern.fields {
        let value = match &field.access {
            FieldAccess::Attr(name) => attr_to_term(event.attr(name)?),
            FieldAccess::Payload(path) => {
                let payload = event.payload()?;
                let text = path.select_text_first(payload)?;
                text_to_term(&text)
            }
            FieldAccess::Invalid => return None,
        };
        if !unify(&field.pat, &value, &mut env) {
            return None;
        }
    }
    Some(env)
}

/// Joins below this buffer size use the nested loop: building a hash
/// table costs more than scanning a handful of entries.
const HASH_JOIN_MIN_BUFFER: usize = 8;

/// Joins the fixed bindings against the other patterns' buffers and
/// fires the rule's goals/emit for every complete join environment.
///
/// Patterns sharing variables with the environment are joined through a
/// hash table keyed on a fingerprint of the shared variables' values, so
/// only compatible buffer entries are visited; fingerprint collisions are
/// harmless because `merge` re-verifies every shared binding.
#[allow(clippy::too_many_arguments)]
fn join_and_fire(
    rule: &CompiledRule,
    fixed_pattern: usize,
    fixed_bindings: Bindings,
    memo: &mut Option<MemoCtx<'_>>,
    kb: &dyn FactSource,
    now: SimTime,
    out: &mut Vec<Event>,
    fired: &mut u64,
    errors: &mut u64,
) {
    if rule.compiled.len() == 1 {
        // No join partners: solve straight over the pattern's bindings.
        fire(rule, memo, fixed_bindings, kb, now, out, fired, errors);
        return;
    }
    let mut envs = vec![fixed_bindings];
    // Variables bound so far (sorted): fixed pattern first, then each
    // joined pattern's in turn.
    let mut bound: Vec<Symbol> = rule.compiled[fixed_pattern].vars.clone();
    let stages = rule.compiled.len() - 1;
    let mut stage = 0;
    for (p, cp) in rule.compiled.iter().enumerate() {
        if p == fixed_pattern {
            continue;
        }
        stage += 1;
        let buffer = &rule.buffers[p];
        if buffer.is_empty() {
            return;
        }
        let join_vars: Vec<Symbol> =
            cp.vars.iter().copied().filter(|v| bound.binary_search(v).is_ok()).collect();

        // On the last stage, fire each merged environment directly
        // instead of materialising one more `envs` vector.
        let last = stage == stages;
        let mut next = Vec::with_capacity(if last { 0 } else { envs.len() });
        let mut sink = |child: Bindings, out: &mut Vec<Event>, memo: &mut Option<MemoCtx<'_>>| {
            if last {
                fire(rule, memo, child, kb, now, out, fired, errors);
            } else {
                next.push(child);
            }
        };
        // Try the hash path in one pass over the buffer; `join_key`
        // returns `None` for values whose fingerprint would not be
        // faithful to `eq_term` (non-integral numerics), in which case
        // the whole stage falls back to the nested loop.
        let mut hashed = false;
        if !join_vars.is_empty() && buffer.len() >= HASH_JOIN_MIN_BUFFER {
            let mut table: FnvHashMap<u64, Vec<usize>> =
                FnvHashMap::with_capacity_and_hasher(buffer.len(), Default::default());
            let mut exact = true;
            for (idx, (_, buffered)) in buffer.iter().enumerate() {
                match join_key(buffered, &join_vars) {
                    Some(key) => table.entry(key).or_default().push(idx),
                    None => {
                        exact = false;
                        break;
                    }
                }
            }
            if exact {
                hashed = true;
                for env in &envs {
                    match join_key(env, &join_vars) {
                        Some(key) => {
                            if let Some(bucket) = table.get(&key) {
                                for &idx in bucket {
                                    let (_, buffered) = &buffer[idx];
                                    if let Some(child) = env.merged(buffered) {
                                        sink(child, out, memo);
                                    }
                                }
                            }
                        }
                        // This probe's key is not exactly hashable:
                        // scan the buffer for just this environment.
                        None => {
                            for (_, buffered) in buffer {
                                if let Some(child) = env.merged(buffered) {
                                    sink(child, out, memo);
                                }
                            }
                        }
                    }
                }
            }
        }
        if !hashed {
            for env in &envs {
                for (_, buffered) in buffer {
                    if let Some(child) = env.merged(buffered) {
                        sink(child, out, memo);
                    }
                }
            }
        }
        if last {
            return;
        }
        envs = next;
        if envs.is_empty() {
            return;
        }
        for v in &cp.vars {
            if let Err(pos) = bound.binary_search(v) {
                bound.insert(pos, *v);
            }
        }
    }
}

/// Evaluates the emit spec over one solution and pushes the synthesised
/// event (shared by the fresh-solve and memo-replay paths).
#[inline]
fn emit_one(
    rule: &CompiledRule,
    solution: &Bindings,
    kb: &dyn FactSource,
    now: SimTime,
    out: &mut Vec<Event>,
    fired: &mut u64,
    emit_errors: &mut u64,
) {
    let mut ev = Event::new(rule.emit_kind.clone());
    for (key, (_, expr)) in rule.emit_keys.iter().zip(&rule.rule.emit.fields) {
        match eval(expr, solution, kb, now) {
            Ok(term) => ev.set_attr(key.clone(), term_to_attr(&term)),
            Err(_) => {
                *emit_errors += 1;
                return;
            }
        }
    }
    *fired += 1;
    out.push(ev);
}

/// Solves the rule's where-goals over one join environment and emits one
/// event per solution.
///
/// With a [`MemoCtx`] (delta-driven mode): the goal solve is served from
/// the shared beta trie when the rule's leaf node holds an entry for the
/// same exact goal-input projection and no validity boundary of the
/// path's predicates was crossed since it was computed. On a leaf miss
/// the trie extends the deepest still-valid ancestor entry — join work
/// another rule may already have paid for — goal by goal against the
/// alpha memories, memoising at every node passed. Either way the leaf
/// entry's canonical solution suffixes replay through the rule's own
/// variables. Emit expressions are always evaluated fresh (they may read
/// the clock or the raw knowledge base).
#[allow(clippy::too_many_arguments)]
fn fire(
    rule: &CompiledRule,
    memo: &mut Option<MemoCtx<'_>>,
    mut env: Bindings,
    kb: &dyn FactSource,
    now: SimTime,
    out: &mut Vec<Event>,
    fired: &mut u64,
    errors: &mut u64,
) {
    let Some(ctx) = memo.as_mut() else {
        // Direct path: re-solve from scratch against the knowledge base.
        // `rule.goals` is the same (normalised) chain the beta path
        // runs, so the two paths count errors identically.
        let mut local_fired = 0u64;
        let mut emit_errors = 0u64;
        let solve_errors = solve_mut(&rule.goals, &mut env, kb, now, &mut |solution| {
            emit_one(rule, solution, kb, now, out, &mut local_fired, &mut emit_errors);
        });
        *fired += local_fired;
        *errors += solve_errors + emit_errors;
        return;
    };

    let key: Vec<Option<Term>> = ctx.key_vars.iter().map(|v| env.get_sym(*v).cloned()).collect();
    let leaf = *ctx.path.last().expect("memoised rules have a non-empty beta path");
    let (h, idx) = match ctx.beta.find(leaf, &key, ctx.alphas, now) {
        Some(hit) => {
            ctx.hits += 1;
            hit
        }
        None => {
            ctx.misses += 1;
            ctx.beta.compute(ctx.path, &key, ctx.alphas, now, &mut ctx.partial)
        }
    };
    let entry = &ctx.beta.node(leaf).memo[&h][idx];
    *errors += entry.solve_errors;
    let mark = env.len();
    let mut local_fired = 0u64;
    let mut emit_errors = 0u64;
    for suffix in &entry.solutions {
        for (slot, term) in suffix {
            env.push_raw(ctx.key_vars[*slot as usize], term.clone());
        }
        emit_one(rule, &env, kb, now, out, &mut local_fired, &mut emit_errors);
        env.truncate(mark);
    }
    *fired += local_fired;
    *errors += emit_errors;
}

/// Fingerprints the join variables' values in `env` into a hash key, or
/// `None` when the key cannot be hashed faithfully to
/// [`Term::eq_term`] and the join must use the nested loop instead.
///
/// Numeric terms (`Int`/`Float`/`Time`) hash their `f64` value, so
/// `Int(3)` and `Float(3.0)` land in the same bucket — but only
/// *integral* values within `f64`'s exact range qualify: two integral
/// values within eq_term's 1e-12 epsilon are bitwise equal, while
/// non-integral or huge numerics can compare eq_term-equal with
/// different bits and would make buckets diverge from nested-loop
/// semantics. Unbound variables also yield `None` (cannot happen for a
/// pattern's own buffered bindings). Non-numeric terms compare
/// structurally and always hash faithfully.
fn join_key(env: &Bindings, join_vars: &[Symbol]) -> Option<u64> {
    use std::hash::Hasher as _;
    // IEEE 754 zero has two bit patterns (+0.0 / -0.0) that compare
    // equal; hash them identically.
    fn norm_bits(f: f64) -> u64 {
        (if f == 0.0 { 0.0 } else { f }).to_bits()
    }
    let mut h = gloss_sim::FnvHasher::default();
    for &v in join_vars {
        let term = env.get_sym(v)?;
        if let Some(f) = term.as_f64() {
            if f.fract() != 0.0 || f.abs() >= 9.0e15 {
                return None;
            }
            h.write_u8(1);
            h.write_u64(norm_bits(f));
        } else {
            match term {
                Term::Str(s) => {
                    h.write_u8(2);
                    h.write(s.as_bytes());
                }
                Term::Bool(b) => {
                    h.write_u8(3);
                    h.write_u8(*b as u8);
                }
                Term::Geo(g) => {
                    h.write_u8(4);
                    h.write_u64(norm_bits(g.lat));
                    h.write_u64(norm_bits(g.lon));
                }
                // Int/Float/Time are numeric and handled above.
                _ => h.write_u8(5),
            }
        }
    }
    Some(h.finish())
}

/// Converts an event attribute to a matchlet term.
pub fn attr_to_term(value: &AttrValue) -> Term {
    match value {
        AttrValue::Str(s) => Term::Str(s.clone()),
        AttrValue::Int(i) => Term::Int(*i),
        AttrValue::Float(f) => Term::Float(*f),
        AttrValue::Bool(b) => Term::Bool(*b),
    }
}

/// Converts a matchlet term to an event attribute.
pub fn term_to_attr(term: &Term) -> AttrValue {
    match term {
        Term::Str(s) => AttrValue::Str(s.clone()),
        Term::Int(i) => AttrValue::Int(*i),
        Term::Float(f) => AttrValue::Float(*f),
        Term::Bool(b) => AttrValue::Bool(*b),
        Term::Geo(g) => AttrValue::Str(format!("{},{}", g.lat, g.lon).into()),
        Term::Time(t) => AttrValue::Int(t.as_micros() as i64),
    }
}

/// Parses projected payload text into the most specific term.
fn text_to_term(text: &str) -> Term {
    let t = text.trim();
    if let Ok(i) = t.parse::<i64>() {
        return Term::Int(i);
    }
    if let Ok(f) = t.parse::<f64>() {
        return Term::Float(f);
    }
    match t {
        "true" => Term::Bool(true),
        "false" => Term::Bool(false),
        _ => Term::str(text),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gloss_knowledge::{Fact, InMemoryFacts};
    use gloss_xml::parse;

    fn kb() -> InMemoryFacts {
        let mut kb = InMemoryFacts::new();
        kb.add(Fact::new("bob", "likes", Term::str("ice cream")));
        kb.add(Fact::new("bob", "nationality", Term::str("scottish")));
        kb.add(Fact::new("anna", "nationality", Term::str("australian")));
        kb.add(Fact::new("anna", "likes", Term::str("ice cream")));
        kb
    }

    fn t(secs: u64) -> SimTime {
        SimTime::from_secs(secs)
    }

    #[test]
    fn single_pattern_rule_fires_immediately() {
        let mut e = MatchletEngine::compile(
            r#"rule r { on a: event ping(n: ?n) where ?n > 2 emit pong(n: ?n) }"#,
        )
        .unwrap();
        let out = e.on_event(t(0), &Event::new("ping").with_attr("n", 5i64), &kb());
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].kind(), "pong");
        assert_eq!(out[0].num_attr("n"), Some(5.0));
        let out = e.on_event(t(1), &Event::new("ping").with_attr("n", 1i64), &kb());
        assert!(out.is_empty());
        assert_eq!(e.stats.events_in, 2);
        assert_eq!(e.stats.events_out, 1);
    }

    #[test]
    fn two_pattern_join_within_window() {
        let src = r#"
            rule meet {
                on a: event user.location(user: ?u, place: ?p)
                on b: event user.location(user: ?v, place: ?p)
                where ?u != ?v
                within 1m
                emit co_located(a: ?u, b: ?v, place: ?p)
            }
        "#;
        let mut e = MatchletEngine::compile(src).unwrap();
        let ev = |u: &str, p: &str| {
            Event::new("user.location").with_attr("user", u).with_attr("place", p)
        };
        assert!(e.on_event(t(0), &ev("bob", "market st"), &kb()).is_empty());
        // Different place: no join.
        assert!(e.on_event(t(10), &ev("anna", "north st"), &kb()).is_empty());
        // Same place within window: fires (both pattern orders join).
        let out = e.on_event(t(20), &ev("anna", "market st"), &kb());
        assert_eq!(out.len(), 2, "anna joins bob's buffered event in both roles");
        assert_eq!(out[0].kind(), "co_located");
    }

    #[test]
    fn window_expiry_prevents_stale_joins() {
        let src = r#"
            rule meet {
                on a: event x(u: ?u)
                on b: event y(v: ?v)
                within 30 s
                emit z(u: ?u, v: ?v)
            }
        "#;
        let mut e = MatchletEngine::compile(src).unwrap();
        e.on_event(t(0), &Event::new("x").with_attr("u", "one"), &kb());
        // 60 s later: the x event has expired.
        let out = e.on_event(t(60), &Event::new("y").with_attr("v", "two"), &kb());
        assert!(out.is_empty());
        // Within the window it joins.
        e.on_event(t(70), &Event::new("x").with_attr("u", "three"), &kb());
        let out = e.on_event(t(80), &Event::new("y").with_attr("v", "four"), &kb());
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn event_does_not_join_with_itself() {
        let src = r#"
            rule pair {
                on a: event k(u: ?u)
                on b: event k(v: ?v)
                within 1m
                emit p(u: ?u, v: ?v)
            }
        "#;
        let mut e = MatchletEngine::compile(src).unwrap();
        let out = e.on_event(t(0), &Event::new("k").with_attr("u", "x").with_attr("v", "x"), &kb());
        assert!(out.is_empty(), "first event has nothing buffered to join");
    }

    #[test]
    fn fact_goals_enrich_matches() {
        let src = r#"
            rule hot_for_you {
                on w: event weather(celsius: ?c)
                where fact(?u, likes, "ice cream") and fact(?u, nationality, ?nat)
                where ?c >= hot_threshold(?nat)
                within 1m
                emit suggest(user: ?u, c: ?c)
            }
        "#;
        let mut e = MatchletEngine::compile(src).unwrap();
        // 20C: hot for scottish bob (18), not for australian anna (30).
        let out = e.on_event(t(0), &Event::new("weather").with_attr("celsius", 20.0), &kb());
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].str_attr("user"), Some("bob"));
        // 35C: hot for both.
        let out = e.on_event(t(10), &Event::new("weather").with_attr("celsius", 35.0), &kb());
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn payload_projection_binding() {
        let src = r#"
            rule gps {
                on l: event loc("pos/@lat": ?lat, "pos/@lon": ?lon)
                where ?lat > 56.0
                within 1m
                emit seen(lat: ?lat, lon: ?lon)
            }
        "#;
        let mut e = MatchletEngine::compile(src).unwrap();
        let payload = parse(r#"<fix><pos lat="56.34" lon="-2.80"/></fix>"#).unwrap();
        let out = e.on_event(t(0), &Event::new("loc").with_payload(payload), &kb());
        assert_eq!(out.len(), 1);
        assert!((out[0].num_attr("lat").unwrap() - 56.34).abs() < 1e-9);
        // Event without a payload cannot match a projection pattern.
        let out = e.on_event(t(1), &Event::new("loc"), &kb());
        assert!(out.is_empty());
    }

    #[test]
    fn literal_field_constraints_filter() {
        let src = r#"
            rule walkers {
                on l: event loc(user: ?u, on_foot: true)
                within 1m
                emit walking(user: ?u)
            }
        "#;
        let mut e = MatchletEngine::compile(src).unwrap();
        let walk = Event::new("loc").with_attr("user", "bob").with_attr("on_foot", true);
        let drive = Event::new("loc").with_attr("user", "anna").with_attr("on_foot", false);
        assert_eq!(e.on_event(t(0), &walk, &kb()).len(), 1);
        assert_eq!(e.on_event(t(1), &drive, &kb()).len(), 0);
    }

    #[test]
    fn hot_rule_addition_and_removal() {
        let mut e = MatchletEngine::new();
        assert!(!e.handles_kind("ping"));
        e.add_rules(r#"rule r { on a: event ping() emit pong() }"#).unwrap();
        assert!(e.handles_kind("ping"));
        assert_eq!(e.on_event(t(0), &Event::new("ping"), &kb()).len(), 1);
        assert!(e.remove_rule("r"));
        assert!(!e.remove_rule("r"));
        assert!(!e.handles_kind("ping"));
        assert_eq!(e.on_event(t(1), &Event::new("ping"), &kb()).len(), 0);
    }

    #[test]
    fn kind_index_tracks_rule_indices_after_removal() {
        let mut e = MatchletEngine::new();
        e.add_rules(
            r#"
            rule one { on a: event x() emit ox() }
            rule two { on a: event y() emit oy() }
            rule three { on a: event y() emit oz() }
            "#,
        )
        .unwrap();
        // Removing `one` shifts the indices of `two` and `three`.
        assert!(e.remove_rule("one"));
        assert!(!e.handles_kind("x"));
        let out = e.on_event(t(0), &Event::new("y"), &kb());
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].kind(), "oy");
        assert_eq!(out[1].kind(), "oz");
    }

    #[test]
    fn distillation_ratio() {
        let mut e = MatchletEngine::compile(
            r#"rule r { on a: event tick(n: ?n) where ?n = 0 emit rare() }"#,
        )
        .unwrap();
        for i in 0..100i64 {
            e.on_event(t(i as u64), &Event::new("tick").with_attr("n", i % 50), &kb());
        }
        assert_eq!(e.stats.events_out, 2);
        assert_eq!(e.stats.distillation_ratio(), 50.0);
    }

    #[test]
    fn cross_variable_join_narrows() {
        // The shared ?u across patterns requires the same user.
        let src = r#"
            rule same_user {
                on a: event enter(user: ?u)
                on b: event exit(user: ?u)
                within 1m
                emit visit(user: ?u)
            }
        "#;
        let mut e = MatchletEngine::compile(src).unwrap();
        e.on_event(t(0), &Event::new("enter").with_attr("user", "bob"), &kb());
        let out = e.on_event(t(5), &Event::new("exit").with_attr("user", "anna"), &kb());
        assert!(out.is_empty(), "different users do not join");
        let out = e.on_event(t(6), &Event::new("exit").with_attr("user", "bob"), &kb());
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn hash_join_matches_nested_loop_on_deep_buffers() {
        // Buffer well past HASH_JOIN_MIN_BUFFER so the hash path runs,
        // with only a few compatible entries.
        let src = r#"
            rule same_user {
                on a: event enter(user: ?u, n: ?n)
                on b: event exit(user: ?u)
                within 10m
                emit visit(user: ?u, n: ?n)
            }
        "#;
        let mut e = MatchletEngine::compile(src).unwrap();
        for i in 0..40i64 {
            let user = format!("user{}", i % 10);
            e.on_event(
                t(i as u64),
                &Event::new("enter").with_attr("user", user).with_attr("n", i),
                &kb(),
            );
        }
        // user3 entered 4 times (i = 3, 13, 23, 33).
        let out = e.on_event(t(50), &Event::new("exit").with_attr("user", "user3"), &kb());
        assert_eq!(out.len(), 4);
        let ns: Vec<f64> = out.iter().map(|ev| ev.num_attr("n").unwrap()).collect();
        assert_eq!(ns, vec![3.0, 13.0, 23.0, 33.0], "buffer order is preserved");
    }

    #[test]
    fn numeric_join_keys_cross_int_float() {
        // Int(3) in the buffer must hash-join with Float(3.0) probes,
        // mirroring eq_term's numeric equality.
        let src = r#"
            rule num {
                on a: event ia(v: ?v)
                on b: event fb(v: ?v)
                within 10m
                emit both(v: ?v)
            }
        "#;
        let mut e = MatchletEngine::compile(src).unwrap();
        for i in 0..20i64 {
            e.on_event(t(i as u64), &Event::new("ia").with_attr("v", i), &kb());
        }
        let out = e.on_event(t(30), &Event::new("fb").with_attr("v", 7.0), &kb());
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].num_attr("v"), Some(7.0));
    }

    #[test]
    fn epsilon_equal_floats_join_even_with_deep_buffers() {
        // 0.1 + 0.2 != 0.3 bitwise but eq_term-equal; the join must not
        // lose the pair once the buffer is deep enough for the hash
        // path, so non-integral floats fall back to the nested loop.
        let src = r#"
            rule f {
                on a: event x(v: ?v)
                on b: event y(v: ?v)
                within 10m
                emit z(v: ?v)
            }
        "#;
        let mut e = MatchletEngine::compile(src).unwrap();
        for i in 0..20u64 {
            let v = if i == 5 { 0.1 + 0.2 } else { i as f64 + 0.5 };
            e.on_event(t(i), &Event::new("x").with_attr("v", v), &kb());
        }
        let out = e.on_event(t(30), &Event::new("y").with_attr("v", 0.3), &kb());
        assert_eq!(out.len(), 1, "epsilon-equal pair must join");
    }

    #[test]
    fn negative_zero_joins_with_positive_zero_at_depth() {
        // -0.0 and 0.0 are eq_term-equal with different bit patterns;
        // the hash path must bucket them together.
        let src = r#"
            rule f {
                on a: event x(v: ?v)
                on b: event y(v: ?v)
                within 10m
                emit z(v: ?v)
            }
        "#;
        let mut e = MatchletEngine::compile(src).unwrap();
        for i in 0..20u64 {
            let v = if i == 5 { -0.0 } else { (i as f64) + 1.0 };
            e.on_event(t(i), &Event::new("x").with_attr("v", v), &kb());
        }
        let out = e.on_event(t(30), &Event::new("y").with_attr("v", 0.0), &kb());
        assert_eq!(out.len(), 1, "-0.0 buffered entry must join a +0.0 probe");
    }

    #[test]
    fn emit_errors_counted_and_skipped() {
        let src = r#"rule r { on a: event k() emit out(v: ?never_bound) }"#;
        let mut e = MatchletEngine::compile(src).unwrap();
        let out = e.on_event(t(0), &Event::new("k"), &kb());
        assert!(out.is_empty());
        assert_eq!(e.stats.eval_errors, 1);
    }

    // --- delta-driven matching ------------------------------------------

    const FACT_RULE: &str = r#"
        rule suggest {
            on w: event weather(celsius: ?c)
            where fact(?u, likes, "ice cream") and fact(?u, nationality, ?nat)
            where ?c >= hot_threshold(?nat)
            within 1m
            emit suggest(user: ?u)
        }
    "#;

    #[test]
    fn repeated_events_hit_the_memo() {
        let kb = kb();
        let mut e = MatchletEngine::compile(FACT_RULE).unwrap();
        let ev = Event::new("weather").with_attr("celsius", 20.0);
        for i in 0..10 {
            let out = e.on_event(t(i), &ev, &kb);
            assert_eq!(out.len(), 1, "bob suggested every event");
        }
        assert_eq!(e.stats.memo_misses, 1, "one fresh solve");
        assert_eq!(e.stats.memo_hits, 9, "then replays");
        assert_eq!(e.indexed_predicates(), 2, "likes + nationality");
    }

    #[test]
    fn fact_churn_invalidates_and_repairs_incrementally() {
        let mut kb = kb();
        let mut e = MatchletEngine::compile(FACT_RULE).unwrap();
        let ev = Event::new("weather").with_attr("celsius", 35.0);
        assert_eq!(e.on_event(t(0), &ev, &kb).len(), 2, "bob and anna");
        assert_eq!(e.on_event(t(1), &ev, &kb).len(), 2);
        // Anna stops liking ice cream: the delta must reach the memo.
        assert_eq!(kb.retract("anna", "likes", &Term::str("ice cream")), 1);
        assert_eq!(e.on_event(t(2), &ev, &kb).len(), 1, "only bob now");
        // A new fan appears mid-stream.
        kb.add(Fact::new("zoe", "likes", Term::str("ice cream")));
        kb.add(Fact::new("zoe", "nationality", Term::str("scottish")));
        let out = e.on_event(t(3), &ev, &kb);
        assert_eq!(out.len(), 2, "bob and zoe");
        assert_eq!(out[1].str_attr("user"), Some("zoe"));
        // Steady state again: served from the memo.
        let hits = e.stats.memo_hits;
        e.on_event(t(4), &ev, &kb);
        assert!(e.stats.memo_hits > hits);
    }

    #[test]
    fn unrelated_predicate_churn_keeps_memos_valid() {
        let mut kb = kb();
        let mut e = MatchletEngine::compile(FACT_RULE).unwrap();
        let ev = Event::new("weather").with_attr("celsius", 20.0);
        e.on_event(t(0), &ev, &kb);
        let misses = e.stats.memo_misses;
        // Churn on a predicate the rule never reads.
        for i in 0..5 {
            kb.add(Fact::new("bob", "visited", Term::Int(i)));
            e.on_event(t(1 + i as u64), &ev, &kb);
        }
        assert_eq!(e.stats.memo_misses, misses, "no re-solve for unrelated churn");
    }

    #[test]
    fn validity_windows_expire_out_of_the_memories() {
        let mut kb = InMemoryFacts::new();
        kb.add(
            Fact::new("shop", "open", Term::Bool(true))
                .valid_between(SimTime::from_secs(100), SimTime::from_secs(200)),
        );
        let src = r#"
            rule visit {
                on p: event ping()
                where fact(?s, open, true)
                within 1m
                emit go(shop: ?s)
            }
        "#;
        let mut e = MatchletEngine::compile(src).unwrap();
        let ping = Event::new("ping");
        assert!(e.on_event(t(50), &ping, &kb).is_empty(), "not open yet");
        assert_eq!(e.on_event(t(150), &ping, &kb).len(), 1, "open");
        assert_eq!(e.on_event(t(160), &ping, &kb).len(), 1, "memo hit inside window");
        assert!(e.on_event(t(250), &ping, &kb).is_empty(), "expired out of the memo");
        assert!(e.stats.memo_hits >= 1);
    }

    #[test]
    fn rule_churn_invalidation_is_clean() {
        let mut kb = kb();
        let mut e = MatchletEngine::compile(FACT_RULE).unwrap();
        let ev = Event::new("weather").with_attr("celsius", 20.0);
        assert_eq!(e.on_event(t(0), &ev, &kb).len(), 1);
        // A second rule sharing one predicate: the alpha memory is shared.
        e.add_rules(
            r#"rule fans { on q: event query() where fact(?u, likes, "ice cream") emit fan(user: ?u) }"#,
        )
        .unwrap();
        assert_eq!(e.on_event(t(1), &Event::new("query"), &kb).len(), 2);
        assert_eq!(e.indexed_predicates(), 2, "likes shared, nationality");
        // Removing the first rule drops its predicate when unused.
        assert!(e.remove_rule("suggest"));
        assert_eq!(e.indexed_predicates(), 1, "nationality dropped, likes kept");
        kb.add(Fact::new("zoe", "likes", Term::str("ice cream")));
        assert_eq!(e.on_event(t(2), &Event::new("query"), &kb).len(), 3);
        assert!(e.remove_rule("fans"));
        assert_eq!(e.indexed_predicates(), 0);
    }

    #[test]
    fn clock_reading_rules_stay_on_the_direct_path() {
        let mut kb = InMemoryFacts::new();
        kb.add(Fact::new("shop", "closes_at", Term::Int(17 * 60)));
        let src = r#"
            rule open_now {
                on p: event ping()
                where fact(?s, closes_at, ?c)
                where minutes_of_day() < ?c
                within 1m
                emit go(shop: ?s)
            }
        "#;
        let mut e = MatchletEngine::compile(src).unwrap();
        // 10:00: open. 18:00: closed. Memoisation must not freeze the
        // clock — the rule reads `minutes_of_day()`.
        assert_eq!(e.on_event(SimTime::from_secs(10 * 3600), &Event::new("ping"), &kb).len(), 1);
        assert_eq!(
            e.on_event(SimTime::from_secs(10 * 3600 + 1), &Event::new("ping"), &kb).len(),
            1
        );
        assert!(e.on_event(SimTime::from_secs(18 * 3600), &Event::new("ping"), &kb).is_empty());
        assert_eq!(e.stats.memo_hits + e.stats.memo_misses, 0, "never memoised");
    }

    #[test]
    fn sources_without_a_change_feed_disable_memoisation() {
        /// A [`FactSource`] that hides its change feed.
        struct Opaque<'a>(&'a InMemoryFacts);
        impl FactSource for Opaque<'_> {
            fn query<'b>(
                &'b self,
                subject: Option<&'b str>,
                predicate: Option<&'b str>,
            ) -> Box<dyn Iterator<Item = &'b Fact> + 'b> {
                self.0.query(subject, predicate)
            }
        }
        let kb = kb();
        let mut e = MatchletEngine::compile(FACT_RULE).unwrap();
        let ev = Event::new("weather").with_attr("celsius", 20.0);
        assert_eq!(e.on_event(t(0), &ev, &Opaque(&kb)).len(), 1);
        assert_eq!(e.on_event(t(1), &ev, &Opaque(&kb)).len(), 1);
        assert_eq!(e.stats.memo_hits + e.stats.memo_misses, 0);
        assert_eq!(e.indexed_predicates(), 0);
        // Handing it a delta-capable source switches memoisation on.
        assert_eq!(e.on_event(t(2), &ev, &kb).len(), 1);
        assert_eq!(e.stats.memo_misses, 1);
    }

    #[test]
    fn memo_respects_join_provided_bindings() {
        // The goal reads ?u which arrives bound from the event: distinct
        // users must not share a memo entry.
        let src = r#"
            rule likes_what {
                on l: event seen(user: ?u)
                where fact(?u, likes, ?what)
                within 1m
                emit pref(user: ?u, what: ?what)
            }
        "#;
        let kb = kb();
        let mut e = MatchletEngine::compile(src).unwrap();
        let see = |u: &str| Event::new("seen").with_attr("user", u);
        assert_eq!(e.on_event(t(0), &see("bob"), &kb).len(), 1);
        assert_eq!(e.on_event(t(1), &see("anna"), &kb).len(), 1);
        let out = e.on_event(t(2), &see("bob"), &kb);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].str_attr("user"), Some("bob"));
        assert_eq!(e.stats.memo_misses, 2, "one per distinct user");
        assert_eq!(e.stats.memo_hits, 1);
    }

    #[test]
    fn nan_objects_retract_cleanly_from_the_alpha_index() {
        // NaN != NaN under PartialEq; the alpha retract must match the
        // delta's fact bit-exactly or the index diverges from the kb.
        let mut kb = InMemoryFacts::new();
        kb.add(Fact::new("s", "score", Term::Float(f64::NAN)));
        let src = r#"rule r { on p: event ping() where fact(?u, score, ?v) emit out(u: ?u) }"#;
        let mut e = MatchletEngine::compile(src).unwrap();
        assert_eq!(e.on_event(t(0), &Event::new("ping"), &kb).len(), 1);
        kb.remove_subject("s");
        assert!(
            e.on_event(t(1), &Event::new("ping"), &kb).is_empty(),
            "retracted NaN fact must leave the alpha index"
        );
    }

    #[test]
    fn alpha_compaction_prunes_tombstones_and_stale_boundaries() {
        let mut mem = AlphaMemory::default();
        let windowed = |i: u64| {
            Fact::new(format!("s{i}"), "p", Term::Int(i as i64))
                .valid_between(SimTime::from_secs(i), SimTime::from_secs(i + 1000))
        };
        for i in 0..100 {
            mem.insert(windowed(i));
        }
        assert_eq!(mem.boundaries.len(), 200);
        for i in 0..80 {
            mem.retract(&windowed(i));
        }
        assert_eq!(mem.live, 20);
        // Compaction fired once, at the half-tombstone threshold (100
        // slots, 49 live): the slab shrank and the 51 retracted facts'
        // boundaries went with it. Below the 64-slot floor the remaining
        // tombstones stay, by design.
        assert_eq!(mem.facts.len(), 49, "slab compacted at the threshold");
        assert_eq!(mem.boundaries.len(), 98, "compaction pruned stale boundaries");
        // Survivors still enumerate, in insertion order, by subject.
        let mut seen = Vec::new();
        mem.for_each_at(None, SimTime::from_secs(999), &mut |f| seen.push(f.subject.clone()));
        assert_eq!(seen.len(), 20);
        assert_eq!(seen[0], "s80");
        let mut hit = 0;
        mem.for_each_at(Some("s90"), SimTime::from_secs(999), &mut |_| hit += 1);
        assert_eq!(hit, 1);
    }

    #[test]
    fn memo_does_not_conflate_int_and_float_keys() {
        // Int(4) and Float(4.0) are eq_term-equal but divide differently;
        // the memo key must keep them apart.
        let src = r#"
            rule halve {
                on k: event k(v: ?v)
                where fact(ok, is, true)
                where ?v / 2 > 1
                within 1m
                emit h(half: ?v / 2)
            }
        "#;
        let mut kb = InMemoryFacts::new();
        kb.add(Fact::new("ok", "is", Term::Bool(true)));
        let mut e = MatchletEngine::compile(src).unwrap();
        let out = e.on_event(t(0), &Event::new("k").with_attr("v", 5i64), &kb);
        assert_eq!(out[0].num_attr("half"), Some(2.0), "integer division");
        let out = e.on_event(t(1), &Event::new("k").with_attr("v", 5.0), &kb);
        assert_eq!(out[0].num_attr("half"), Some(2.5), "float division");
    }

    // --- shared beta network --------------------------------------------

    #[test]
    fn shared_prefix_rules_share_beta_nodes() {
        // 10 rules, each `likes ∧ nationality ∧ <own filter over ?nat>`:
        // the two fact goals intern once, only the filter leaves differ.
        // (A filter over an event variable would hoist to the *front* —
        // before any enumeration — and become a per-rule root instead.)
        let mut src = String::new();
        for i in 0..10 {
            src.push_str(&format!(
                r#"rule r{i} {{
                    on w: event weather(celsius: ?c)
                    where fact(?u, likes, "ice cream") and fact(?u, nationality, ?nat)
                    where ?nat != "x{i}"
                    within 1m
                    emit s{i}(user: ?u)
                }}"#
            ));
        }
        let e = MatchletEngine::compile(&src).unwrap();
        assert_eq!(e.beta_nodes(), 2 + 10, "two shared fact nodes + ten filter leaves");
        assert_eq!(e.beta_shared_nodes(), 2, "the fact prefix is shared by all ten");
    }

    #[test]
    fn shared_prefix_computed_once_feeds_sibling_rules() {
        let src = r#"
            rule fans {
                on q: event query()
                where fact(?u, likes, "ice cream")
                emit fan(user: ?u)
            }
            rule natl_fans {
                on q: event query()
                where fact(?u, likes, "ice cream") and fact(?u, nationality, ?nat)
                emit natl(user: ?u, nat: ?nat)
            }
        "#;
        let kb = kb();
        let mut e = MatchletEngine::compile(src).unwrap();
        assert_eq!(e.beta_shared_nodes(), 1, "the likes node hosts both rules");
        let out = e.on_event(t(0), &Event::new("query"), &kb);
        assert_eq!(out.len(), 4, "2 fans + 2 national fans");
        // Whichever rule ran second extended the first rule's leaf entry
        // instead of re-enumerating `likes` from the alpha memory.
        assert_eq!(e.stats.beta_partial_hits, 1, "prefix reused across rules");
        assert_eq!(e.stats.memo_misses, 2);
        // Steady state: both leaves replay.
        e.on_event(t(1), &Event::new("query"), &kb);
        assert_eq!(e.stats.memo_hits, 2);
    }

    #[test]
    fn beta_nodes_free_when_the_last_hosted_rule_leaves() {
        let src = r#"
            rule a {
                on q: event query()
                where fact(?u, likes, "ice cream") and fact(?u, nationality, ?nat)
                emit a(user: ?u)
            }
            rule b {
                on q: event query()
                where fact(?u, likes, "ice cream") and fact(?u, visited, ?p)
                emit b(user: ?u)
            }
        "#;
        let mut kb = kb();
        kb.add(Fact::new("bob", "visited", Term::str("market st")));
        let mut e = MatchletEngine::compile(src).unwrap();
        assert_eq!(e.beta_nodes(), 3, "shared likes + two suffix leaves");
        assert!(e.remove_rule("a"));
        assert_eq!(e.beta_nodes(), 2, "a's nationality leaf freed, prefix kept");
        assert_eq!(e.beta_shared_nodes(), 0);
        // The surviving rule still fires through the retained nodes.
        assert_eq!(e.on_event(t(0), &Event::new("query"), &kb).len(), 1);
        assert!(e.remove_rule("b"));
        assert_eq!(e.beta_nodes(), 0, "empty net once no rule routes through it");
    }

    #[test]
    fn hoisted_filters_share_prefixes_across_placements() {
        // Rule a writes the filter *after* the second fact goal; rule b
        // writes it in hoisted position. Normalisation makes the chains
        // identical, so the whole 3-node path is shared — and firings
        // still reflect the filter.
        let src = r#"
            rule a {
                on q: event query()
                where fact(?u, likes, ?w) and fact(?u, nationality, ?n) and ?w != "golf"
                emit a(user: ?u)
            }
            rule b {
                on q: event query()
                where fact(?p, likes, ?q) and ?q != "golf" and fact(?p, nationality, ?m)
                emit b(user: ?p)
            }
        "#;
        let mut kb = kb();
        kb.add(Fact::new("zoe", "likes", Term::str("golf")));
        kb.add(Fact::new("zoe", "nationality", Term::str("scottish")));
        let mut e = MatchletEngine::compile(src).unwrap();
        assert_eq!(e.beta_nodes(), 3, "one fully shared chain");
        assert_eq!(e.beta_shared_nodes(), 3);
        let out = e.on_event(t(0), &Event::new("query"), &kb);
        assert_eq!(out.len(), 4, "bob+anna for each rule; zoe filtered in both");
        assert!(out.iter().all(|ev| ev.str_attr("user") != Some("zoe")));
        assert_eq!(e.stats.memo_misses, 1, "second rule replays the first's leaf");
        assert_eq!(e.stats.memo_hits, 1);
    }
}
