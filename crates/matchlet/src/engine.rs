//! The matchlet engine: windowed multi-event joins driving rule firing.
//!
//! The hot path is indexed and allocation-lean:
//!
//! - a **kind index** maps event kinds to the `(rule, pattern)` pairs
//!   that listen for them, so an event never touches a rule that cannot
//!   match it (and [`MatchletEngine::handles_kind`] is O(1));
//! - pattern fields are **precompiled** (attribute name vs. parsed XPath
//!   projection), so matching never re-parses keys;
//! - multi-pattern joins use a **hash join** keyed on the variables the
//!   patterns share, falling back to a nested loop only for tiny buffers
//!   or variable-disjoint (cartesian) joins;
//! - bindings are flat `(Symbol, Term)` vectors ([`Bindings`]), so
//!   environments clone in one allocation and compare keys by integer.

use crate::ast::{EventPattern, Pat, Rule};
use crate::eval::{eval, solve_mut, unify, Bindings};
use crate::parser::{parse_rules, MatchletError};
use crate::symbol::Symbol;
use gloss_event::{AttrValue, Event};
use gloss_knowledge::{FactSource, Term};
use gloss_sim::FnvHashMap;
use gloss_sim::SimTime;
use gloss_xml::Path;
use std::collections::VecDeque;
use std::sync::Arc;

/// How one pattern field reads its value from an event, precompiled so
/// the per-event path never inspects or parses field keys.
#[derive(Debug, Clone)]
enum FieldAccess {
    /// A typed attribute, by name.
    Attr(String),
    /// An XPath type projection into the XML payload (§3).
    Payload(Path),
    /// A projection key that failed to parse: matches nothing.
    Invalid,
}

#[derive(Debug, Clone)]
struct CompiledField {
    access: FieldAccess,
    pat: Pat,
}

/// A precompiled event pattern: field accessors plus the variables the
/// pattern binds (sorted, for set intersection during joins).
#[derive(Debug, Clone)]
struct CompiledPattern {
    fields: Vec<CompiledField>,
    vars: Vec<Symbol>,
}

impl CompiledPattern {
    fn new(pattern: &EventPattern) -> Self {
        let fields = pattern
            .fields
            .iter()
            .map(|(key, pat)| {
                let access = if key.contains('/') || key.starts_with('@') {
                    match Path::parse(key) {
                        Ok(path) => FieldAccess::Payload(path),
                        Err(_) => FieldAccess::Invalid,
                    }
                } else {
                    FieldAccess::Attr(key.clone())
                };
                CompiledField { access, pat: pat.clone() }
            })
            .collect::<Vec<_>>();
        let mut vars: Vec<Symbol> = fields
            .iter()
            .filter_map(|f| match f.pat {
                Pat::Var(v) => Some(v),
                _ => None,
            })
            .collect();
        vars.sort_unstable();
        vars.dedup();
        CompiledPattern { fields, vars }
    }
}

/// A rule plus its per-pattern event buffers.
#[derive(Debug, Clone)]
pub struct CompiledRule {
    /// The rule.
    pub rule: Rule,
    /// Precompiled patterns, parallel to `rule.patterns`.
    compiled: Vec<CompiledPattern>,
    /// Per-pattern buffers of `(arrival time, bindings)`.
    buffers: Vec<VecDeque<(SimTime, Bindings)>>,
    /// The emit kind, shared so every synthesised event clones a
    /// refcount instead of the string.
    emit_kind: Arc<str>,
    /// Emit field names, parallel to `rule.emit.fields`, shared the same
    /// way.
    emit_keys: Vec<Arc<str>>,
    /// How many times the rule has fired.
    pub fired: u64,
}

impl CompiledRule {
    fn new(rule: Rule) -> Self {
        let compiled = rule.patterns.iter().map(CompiledPattern::new).collect();
        let buffers = vec![VecDeque::new(); rule.patterns.len()];
        let emit_kind = Arc::from(rule.emit.kind.as_str());
        let emit_keys = rule.emit.fields.iter().map(|(k, _)| Arc::from(k.as_str())).collect();
        CompiledRule { rule, compiled, buffers, emit_kind, emit_keys, fired: 0 }
    }

    fn evict_before(&mut self, cutoff: SimTime) {
        for buf in &mut self.buffers {
            while buf.front().is_some_and(|(t, _)| *t < cutoff) {
                buf.pop_front();
            }
        }
    }

    /// Total buffered partial matches.
    pub fn buffered(&self) -> usize {
        self.buffers.iter().map(VecDeque::len).sum()
    }
}

/// Aggregate engine statistics — the "distillation" measure of Figure 1:
/// a high volume of input events reduced to few meaningful outputs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EngineStats {
    /// Events offered to the engine.
    pub events_in: u64,
    /// Events synthesised.
    pub events_out: u64,
    /// Where-clause evaluation errors (branches pruned).
    pub eval_errors: u64,
}

impl EngineStats {
    /// Input events per output event (∞ reported as `f64::INFINITY`).
    pub fn distillation_ratio(&self) -> f64 {
        if self.events_out == 0 {
            f64::INFINITY
        } else {
            self.events_in as f64 / self.events_out as f64
        }
    }
}

/// A matchlet engine hosting compiled rules.
///
/// See the [crate docs](crate) for the language and an example.
#[derive(Debug, Clone, Default)]
pub struct MatchletEngine {
    rules: Vec<CompiledRule>,
    /// Event kind → `(rule index, pattern index)` pairs listening for it,
    /// in rule order. Rebuilt on rule addition/removal.
    kind_index: FnvHashMap<String, Vec<(u32, u32)>>,
    /// Engine statistics.
    pub stats: EngineStats,
}

impl MatchletEngine {
    /// Creates an empty engine.
    pub fn new() -> Self {
        MatchletEngine::default()
    }

    /// Compiles source text into a fresh engine.
    ///
    /// # Errors
    ///
    /// Returns [`MatchletError`] on syntax errors.
    pub fn compile(src: &str) -> Result<Self, MatchletError> {
        let mut engine = MatchletEngine::new();
        engine.add_rules(src)?;
        Ok(engine)
    }

    /// Hot-adds rules from source to a running engine (the dynamic
    /// deployment path used by code bundles).
    ///
    /// # Errors
    ///
    /// Returns [`MatchletError`] on syntax errors; existing rules are
    /// untouched.
    pub fn add_rules(&mut self, src: &str) -> Result<(), MatchletError> {
        for rule in parse_rules(src)? {
            self.add_rule(rule);
        }
        Ok(())
    }

    /// Adds one already-parsed rule.
    pub fn add_rule(&mut self, rule: Rule) {
        let ri = self.rules.len() as u32;
        for (pi, pattern) in rule.patterns.iter().enumerate() {
            self.kind_index.entry(pattern.kind.clone()).or_default().push((ri, pi as u32));
        }
        self.rules.push(CompiledRule::new(rule));
    }

    /// Removes a rule by name; returns whether it existed.
    pub fn remove_rule(&mut self, name: &str) -> bool {
        let before = self.rules.len();
        self.rules.retain(|r| r.rule.name != name);
        if before == self.rules.len() {
            return false;
        }
        self.rebuild_kind_index();
        true
    }

    fn rebuild_kind_index(&mut self) {
        self.kind_index.clear();
        for (ri, compiled) in self.rules.iter().enumerate() {
            for (pi, pattern) in compiled.rule.patterns.iter().enumerate() {
                self.kind_index
                    .entry(pattern.kind.clone())
                    .or_default()
                    .push((ri as u32, pi as u32));
            }
        }
    }

    /// The hosted rule names.
    pub fn rule_names(&self) -> Vec<&str> {
        self.rules.iter().map(|r| r.rule.name.as_str()).collect()
    }

    /// The hosted rules (with buffer state).
    pub fn rules(&self) -> &[CompiledRule] {
        &self.rules
    }

    /// Whether any rule listens for the given event kind (one index
    /// lookup; hosting layers call this per event).
    pub fn handles_kind(&self, kind: &str) -> bool {
        self.kind_index.contains_key(kind)
    }

    /// Offers an event to the rules listening for its kind; returns the
    /// synthesised events. Rules without a pattern on the event's kind
    /// are never touched.
    ///
    /// Joining semantics: the new event is fixed at each pattern position
    /// it matches and joined against the *buffered* partial matches of
    /// the other patterns (so an event never joins with itself), then the
    /// event is buffered. All joined events lie within the rule's window
    /// of the new event.
    pub fn on_event(&mut self, now: SimTime, event: &Event, kb: &dyn FactSource) -> Vec<Event> {
        self.stats.events_in += 1;
        let mut out = Vec::new();
        let Some(entries) = self.kind_index.get(event.kind()) else {
            return out;
        };
        // Entries are grouped by rule (rule order, then pattern order).
        let mut i = 0;
        while i < entries.len() {
            let ri = entries[i].0 as usize;
            let mut j = i;
            while j < entries.len() && entries[j].0 as usize == ri {
                j += 1;
            }
            let pattern_entries = &entries[i..j];
            i = j;

            let rule = &mut self.rules[ri];
            let window = rule.rule.window;
            let cutoff = if now.as_micros() > window.as_micros() {
                SimTime::from_micros(now.as_micros() - window.as_micros())
            } else {
                SimTime::ZERO
            };
            rule.evict_before(cutoff);

            let mut matched: Vec<(usize, Bindings)> = Vec::new();
            for &(_, pi) in pattern_entries {
                let p = pi as usize;
                if let Some(b) = match_compiled(&rule.compiled[p], event) {
                    matched.push((p, b));
                }
            }
            if matched.is_empty() {
                continue;
            }

            // Single-pattern rules have no join partner, so their buffers
            // are never read: fire directly and skip buffering entirely.
            let single = self.rules[ri].rule.patterns.len() == 1;
            let rule = &self.rules[ri];
            let mut fired = 0u64;
            let mut errors = 0u64;
            if single {
                for (p, bindings) in matched {
                    join_and_fire(rule, p, bindings, now, kb, &mut out, &mut fired, &mut errors);
                }
                self.stats.eval_errors += errors;
                self.rules[ri].fired += fired;
            } else {
                for (p, bindings) in &matched {
                    join_and_fire(
                        rule,
                        *p,
                        bindings.clone(),
                        now,
                        kb,
                        &mut out,
                        &mut fired,
                        &mut errors,
                    );
                }
                self.stats.eval_errors += errors;
                let rule = &mut self.rules[ri];
                rule.fired += fired;
                for (p, bindings) in matched {
                    rule.buffers[p].push_back((now, bindings));
                }
            }
        }
        self.stats.events_out += out.len() as u64;
        out
    }
}

/// Matches one precompiled pattern against an event, producing bindings.
/// The kind has already been matched by the engine's kind index.
fn match_compiled(pattern: &CompiledPattern, event: &Event) -> Option<Bindings> {
    let mut env = Bindings::new();
    for field in &pattern.fields {
        let value = match &field.access {
            FieldAccess::Attr(name) => attr_to_term(event.attr(name)?),
            FieldAccess::Payload(path) => {
                let payload = event.payload()?;
                let text = path.select_text_first(payload)?;
                text_to_term(&text)
            }
            FieldAccess::Invalid => return None,
        };
        if !unify(&field.pat, &value, &mut env) {
            return None;
        }
    }
    Some(env)
}

/// Joins below this buffer size use the nested loop: building a hash
/// table costs more than scanning a handful of entries.
const HASH_JOIN_MIN_BUFFER: usize = 8;

/// Joins the fixed bindings against the other patterns' buffers and
/// fires the rule's goals/emit for every complete join environment.
///
/// Patterns sharing variables with the environment are joined through a
/// hash table keyed on a fingerprint of the shared variables' values, so
/// only compatible buffer entries are visited; fingerprint collisions are
/// harmless because `merge` re-verifies every shared binding.
#[allow(clippy::too_many_arguments)]
fn join_and_fire(
    rule: &CompiledRule,
    fixed_pattern: usize,
    fixed_bindings: Bindings,
    now: SimTime,
    kb: &dyn FactSource,
    out: &mut Vec<Event>,
    fired: &mut u64,
    errors: &mut u64,
) {
    if rule.compiled.len() == 1 {
        // No join partners: solve straight over the pattern's bindings.
        fire(rule, fixed_bindings, kb, now, out, fired, errors);
        return;
    }
    let mut envs = vec![fixed_bindings];
    // Variables bound so far (sorted): fixed pattern first, then each
    // joined pattern's in turn.
    let mut bound: Vec<Symbol> = rule.compiled[fixed_pattern].vars.clone();
    let stages = rule.compiled.len() - 1;
    let mut stage = 0;
    for (p, cp) in rule.compiled.iter().enumerate() {
        if p == fixed_pattern {
            continue;
        }
        stage += 1;
        let buffer = &rule.buffers[p];
        if buffer.is_empty() {
            return;
        }
        let join_vars: Vec<Symbol> =
            cp.vars.iter().copied().filter(|v| bound.binary_search(v).is_ok()).collect();

        // On the last stage, fire each merged environment directly
        // instead of materialising one more `envs` vector.
        let last = stage == stages;
        let mut next = Vec::with_capacity(if last { 0 } else { envs.len() });
        let mut sink = |child: Bindings, out: &mut Vec<Event>| {
            if last {
                fire(rule, child, kb, now, out, fired, errors);
            } else {
                next.push(child);
            }
        };
        // Try the hash path in one pass over the buffer; `join_key`
        // returns `None` for values whose fingerprint would not be
        // faithful to `eq_term` (non-integral numerics), in which case
        // the whole stage falls back to the nested loop.
        let mut hashed = false;
        if !join_vars.is_empty() && buffer.len() >= HASH_JOIN_MIN_BUFFER {
            let mut table: FnvHashMap<u64, Vec<usize>> =
                FnvHashMap::with_capacity_and_hasher(buffer.len(), Default::default());
            let mut exact = true;
            for (idx, (_, buffered)) in buffer.iter().enumerate() {
                match join_key(buffered, &join_vars) {
                    Some(key) => table.entry(key).or_default().push(idx),
                    None => {
                        exact = false;
                        break;
                    }
                }
            }
            if exact {
                hashed = true;
                for env in &envs {
                    match join_key(env, &join_vars) {
                        Some(key) => {
                            if let Some(bucket) = table.get(&key) {
                                for &idx in bucket {
                                    let (_, buffered) = &buffer[idx];
                                    if let Some(child) = env.merged(buffered) {
                                        sink(child, out);
                                    }
                                }
                            }
                        }
                        // This probe's key is not exactly hashable:
                        // scan the buffer for just this environment.
                        None => {
                            for (_, buffered) in buffer {
                                if let Some(child) = env.merged(buffered) {
                                    sink(child, out);
                                }
                            }
                        }
                    }
                }
            }
        }
        if !hashed {
            for env in &envs {
                for (_, buffered) in buffer {
                    if let Some(child) = env.merged(buffered) {
                        sink(child, out);
                    }
                }
            }
        }
        if last {
            return;
        }
        envs = next;
        if envs.is_empty() {
            return;
        }
        for v in &cp.vars {
            if let Err(pos) = bound.binary_search(v) {
                bound.insert(pos, *v);
            }
        }
    }
}

/// Solves the rule's where-goals over one join environment and emits one
/// event per solution, directly from the solution callback (no cloning
/// of goals, emit, solutions, or the environment itself).
fn fire(
    rule: &CompiledRule,
    mut env: Bindings,
    kb: &dyn FactSource,
    now: SimTime,
    out: &mut Vec<Event>,
    fired: &mut u64,
    errors: &mut u64,
) {
    let mut local_fired = 0u64;
    let mut emit_errors = 0u64;
    let solve_errors = solve_mut(&rule.rule.goals, &mut env, kb, now, &mut |solution| {
        let mut ev = Event::new(rule.emit_kind.clone());
        for (key, (_, expr)) in rule.emit_keys.iter().zip(&rule.rule.emit.fields) {
            match eval(expr, solution, kb, now) {
                Ok(term) => ev.set_attr(key.clone(), term_to_attr(&term)),
                Err(_) => {
                    emit_errors += 1;
                    return;
                }
            }
        }
        local_fired += 1;
        out.push(ev);
    });
    *fired += local_fired;
    *errors += solve_errors + emit_errors;
}

/// Fingerprints the join variables' values in `env` into a hash key, or
/// `None` when the key cannot be hashed faithfully to
/// [`Term::eq_term`] and the join must use the nested loop instead.
///
/// Numeric terms (`Int`/`Float`/`Time`) hash their `f64` value, so
/// `Int(3)` and `Float(3.0)` land in the same bucket — but only
/// *integral* values within `f64`'s exact range qualify: two integral
/// values within eq_term's 1e-12 epsilon are bitwise equal, while
/// non-integral or huge numerics can compare eq_term-equal with
/// different bits and would make buckets diverge from nested-loop
/// semantics. Unbound variables also yield `None` (cannot happen for a
/// pattern's own buffered bindings). Non-numeric terms compare
/// structurally and always hash faithfully.
fn join_key(env: &Bindings, join_vars: &[Symbol]) -> Option<u64> {
    use std::hash::Hasher as _;
    // IEEE 754 zero has two bit patterns (+0.0 / -0.0) that compare
    // equal; hash them identically.
    fn norm_bits(f: f64) -> u64 {
        (if f == 0.0 { 0.0 } else { f }).to_bits()
    }
    let mut h = gloss_sim::FnvHasher::default();
    for &v in join_vars {
        let term = env.get_sym(v)?;
        if let Some(f) = term.as_f64() {
            if f.fract() != 0.0 || f.abs() >= 9.0e15 {
                return None;
            }
            h.write_u8(1);
            h.write_u64(norm_bits(f));
        } else {
            match term {
                Term::Str(s) => {
                    h.write_u8(2);
                    h.write(s.as_bytes());
                }
                Term::Bool(b) => {
                    h.write_u8(3);
                    h.write_u8(*b as u8);
                }
                Term::Geo(g) => {
                    h.write_u8(4);
                    h.write_u64(norm_bits(g.lat));
                    h.write_u64(norm_bits(g.lon));
                }
                // Int/Float/Time are numeric and handled above.
                _ => h.write_u8(5),
            }
        }
    }
    Some(h.finish())
}

/// Converts an event attribute to a matchlet term.
pub fn attr_to_term(value: &AttrValue) -> Term {
    match value {
        AttrValue::Str(s) => Term::Str(s.clone()),
        AttrValue::Int(i) => Term::Int(*i),
        AttrValue::Float(f) => Term::Float(*f),
        AttrValue::Bool(b) => Term::Bool(*b),
    }
}

/// Converts a matchlet term to an event attribute.
pub fn term_to_attr(term: &Term) -> AttrValue {
    match term {
        Term::Str(s) => AttrValue::Str(s.clone()),
        Term::Int(i) => AttrValue::Int(*i),
        Term::Float(f) => AttrValue::Float(*f),
        Term::Bool(b) => AttrValue::Bool(*b),
        Term::Geo(g) => AttrValue::Str(format!("{},{}", g.lat, g.lon).into()),
        Term::Time(t) => AttrValue::Int(t.as_micros() as i64),
    }
}

/// Parses projected payload text into the most specific term.
fn text_to_term(text: &str) -> Term {
    let t = text.trim();
    if let Ok(i) = t.parse::<i64>() {
        return Term::Int(i);
    }
    if let Ok(f) = t.parse::<f64>() {
        return Term::Float(f);
    }
    match t {
        "true" => Term::Bool(true),
        "false" => Term::Bool(false),
        _ => Term::str(text),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gloss_knowledge::{Fact, InMemoryFacts};
    use gloss_xml::parse;

    fn kb() -> InMemoryFacts {
        let mut kb = InMemoryFacts::new();
        kb.add(Fact::new("bob", "likes", Term::str("ice cream")));
        kb.add(Fact::new("bob", "nationality", Term::str("scottish")));
        kb.add(Fact::new("anna", "nationality", Term::str("australian")));
        kb.add(Fact::new("anna", "likes", Term::str("ice cream")));
        kb
    }

    fn t(secs: u64) -> SimTime {
        SimTime::from_secs(secs)
    }

    #[test]
    fn single_pattern_rule_fires_immediately() {
        let mut e = MatchletEngine::compile(
            r#"rule r { on a: event ping(n: ?n) where ?n > 2 emit pong(n: ?n) }"#,
        )
        .unwrap();
        let out = e.on_event(t(0), &Event::new("ping").with_attr("n", 5i64), &kb());
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].kind(), "pong");
        assert_eq!(out[0].num_attr("n"), Some(5.0));
        let out = e.on_event(t(1), &Event::new("ping").with_attr("n", 1i64), &kb());
        assert!(out.is_empty());
        assert_eq!(e.stats.events_in, 2);
        assert_eq!(e.stats.events_out, 1);
    }

    #[test]
    fn two_pattern_join_within_window() {
        let src = r#"
            rule meet {
                on a: event user.location(user: ?u, place: ?p)
                on b: event user.location(user: ?v, place: ?p)
                where ?u != ?v
                within 1m
                emit co_located(a: ?u, b: ?v, place: ?p)
            }
        "#;
        let mut e = MatchletEngine::compile(src).unwrap();
        let ev = |u: &str, p: &str| {
            Event::new("user.location").with_attr("user", u).with_attr("place", p)
        };
        assert!(e.on_event(t(0), &ev("bob", "market st"), &kb()).is_empty());
        // Different place: no join.
        assert!(e.on_event(t(10), &ev("anna", "north st"), &kb()).is_empty());
        // Same place within window: fires (both pattern orders join).
        let out = e.on_event(t(20), &ev("anna", "market st"), &kb());
        assert_eq!(out.len(), 2, "anna joins bob's buffered event in both roles");
        assert_eq!(out[0].kind(), "co_located");
    }

    #[test]
    fn window_expiry_prevents_stale_joins() {
        let src = r#"
            rule meet {
                on a: event x(u: ?u)
                on b: event y(v: ?v)
                within 30 s
                emit z(u: ?u, v: ?v)
            }
        "#;
        let mut e = MatchletEngine::compile(src).unwrap();
        e.on_event(t(0), &Event::new("x").with_attr("u", "one"), &kb());
        // 60 s later: the x event has expired.
        let out = e.on_event(t(60), &Event::new("y").with_attr("v", "two"), &kb());
        assert!(out.is_empty());
        // Within the window it joins.
        e.on_event(t(70), &Event::new("x").with_attr("u", "three"), &kb());
        let out = e.on_event(t(80), &Event::new("y").with_attr("v", "four"), &kb());
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn event_does_not_join_with_itself() {
        let src = r#"
            rule pair {
                on a: event k(u: ?u)
                on b: event k(v: ?v)
                within 1m
                emit p(u: ?u, v: ?v)
            }
        "#;
        let mut e = MatchletEngine::compile(src).unwrap();
        let out = e.on_event(t(0), &Event::new("k").with_attr("u", "x").with_attr("v", "x"), &kb());
        assert!(out.is_empty(), "first event has nothing buffered to join");
    }

    #[test]
    fn fact_goals_enrich_matches() {
        let src = r#"
            rule hot_for_you {
                on w: event weather(celsius: ?c)
                where fact(?u, likes, "ice cream") and fact(?u, nationality, ?nat)
                where ?c >= hot_threshold(?nat)
                within 1m
                emit suggest(user: ?u, c: ?c)
            }
        "#;
        let mut e = MatchletEngine::compile(src).unwrap();
        // 20C: hot for scottish bob (18), not for australian anna (30).
        let out = e.on_event(t(0), &Event::new("weather").with_attr("celsius", 20.0), &kb());
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].str_attr("user"), Some("bob"));
        // 35C: hot for both.
        let out = e.on_event(t(10), &Event::new("weather").with_attr("celsius", 35.0), &kb());
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn payload_projection_binding() {
        let src = r#"
            rule gps {
                on l: event loc("pos/@lat": ?lat, "pos/@lon": ?lon)
                where ?lat > 56.0
                within 1m
                emit seen(lat: ?lat, lon: ?lon)
            }
        "#;
        let mut e = MatchletEngine::compile(src).unwrap();
        let payload = parse(r#"<fix><pos lat="56.34" lon="-2.80"/></fix>"#).unwrap();
        let out = e.on_event(t(0), &Event::new("loc").with_payload(payload), &kb());
        assert_eq!(out.len(), 1);
        assert!((out[0].num_attr("lat").unwrap() - 56.34).abs() < 1e-9);
        // Event without a payload cannot match a projection pattern.
        let out = e.on_event(t(1), &Event::new("loc"), &kb());
        assert!(out.is_empty());
    }

    #[test]
    fn literal_field_constraints_filter() {
        let src = r#"
            rule walkers {
                on l: event loc(user: ?u, on_foot: true)
                within 1m
                emit walking(user: ?u)
            }
        "#;
        let mut e = MatchletEngine::compile(src).unwrap();
        let walk = Event::new("loc").with_attr("user", "bob").with_attr("on_foot", true);
        let drive = Event::new("loc").with_attr("user", "anna").with_attr("on_foot", false);
        assert_eq!(e.on_event(t(0), &walk, &kb()).len(), 1);
        assert_eq!(e.on_event(t(1), &drive, &kb()).len(), 0);
    }

    #[test]
    fn hot_rule_addition_and_removal() {
        let mut e = MatchletEngine::new();
        assert!(!e.handles_kind("ping"));
        e.add_rules(r#"rule r { on a: event ping() emit pong() }"#).unwrap();
        assert!(e.handles_kind("ping"));
        assert_eq!(e.on_event(t(0), &Event::new("ping"), &kb()).len(), 1);
        assert!(e.remove_rule("r"));
        assert!(!e.remove_rule("r"));
        assert!(!e.handles_kind("ping"));
        assert_eq!(e.on_event(t(1), &Event::new("ping"), &kb()).len(), 0);
    }

    #[test]
    fn kind_index_tracks_rule_indices_after_removal() {
        let mut e = MatchletEngine::new();
        e.add_rules(
            r#"
            rule one { on a: event x() emit ox() }
            rule two { on a: event y() emit oy() }
            rule three { on a: event y() emit oz() }
            "#,
        )
        .unwrap();
        // Removing `one` shifts the indices of `two` and `three`.
        assert!(e.remove_rule("one"));
        assert!(!e.handles_kind("x"));
        let out = e.on_event(t(0), &Event::new("y"), &kb());
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].kind(), "oy");
        assert_eq!(out[1].kind(), "oz");
    }

    #[test]
    fn distillation_ratio() {
        let mut e = MatchletEngine::compile(
            r#"rule r { on a: event tick(n: ?n) where ?n = 0 emit rare() }"#,
        )
        .unwrap();
        for i in 0..100i64 {
            e.on_event(t(i as u64), &Event::new("tick").with_attr("n", i % 50), &kb());
        }
        assert_eq!(e.stats.events_out, 2);
        assert_eq!(e.stats.distillation_ratio(), 50.0);
    }

    #[test]
    fn cross_variable_join_narrows() {
        // The shared ?u across patterns requires the same user.
        let src = r#"
            rule same_user {
                on a: event enter(user: ?u)
                on b: event exit(user: ?u)
                within 1m
                emit visit(user: ?u)
            }
        "#;
        let mut e = MatchletEngine::compile(src).unwrap();
        e.on_event(t(0), &Event::new("enter").with_attr("user", "bob"), &kb());
        let out = e.on_event(t(5), &Event::new("exit").with_attr("user", "anna"), &kb());
        assert!(out.is_empty(), "different users do not join");
        let out = e.on_event(t(6), &Event::new("exit").with_attr("user", "bob"), &kb());
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn hash_join_matches_nested_loop_on_deep_buffers() {
        // Buffer well past HASH_JOIN_MIN_BUFFER so the hash path runs,
        // with only a few compatible entries.
        let src = r#"
            rule same_user {
                on a: event enter(user: ?u, n: ?n)
                on b: event exit(user: ?u)
                within 10m
                emit visit(user: ?u, n: ?n)
            }
        "#;
        let mut e = MatchletEngine::compile(src).unwrap();
        for i in 0..40i64 {
            let user = format!("user{}", i % 10);
            e.on_event(
                t(i as u64),
                &Event::new("enter").with_attr("user", user).with_attr("n", i),
                &kb(),
            );
        }
        // user3 entered 4 times (i = 3, 13, 23, 33).
        let out = e.on_event(t(50), &Event::new("exit").with_attr("user", "user3"), &kb());
        assert_eq!(out.len(), 4);
        let ns: Vec<f64> = out.iter().map(|ev| ev.num_attr("n").unwrap()).collect();
        assert_eq!(ns, vec![3.0, 13.0, 23.0, 33.0], "buffer order is preserved");
    }

    #[test]
    fn numeric_join_keys_cross_int_float() {
        // Int(3) in the buffer must hash-join with Float(3.0) probes,
        // mirroring eq_term's numeric equality.
        let src = r#"
            rule num {
                on a: event ia(v: ?v)
                on b: event fb(v: ?v)
                within 10m
                emit both(v: ?v)
            }
        "#;
        let mut e = MatchletEngine::compile(src).unwrap();
        for i in 0..20i64 {
            e.on_event(t(i as u64), &Event::new("ia").with_attr("v", i), &kb());
        }
        let out = e.on_event(t(30), &Event::new("fb").with_attr("v", 7.0), &kb());
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].num_attr("v"), Some(7.0));
    }

    #[test]
    fn epsilon_equal_floats_join_even_with_deep_buffers() {
        // 0.1 + 0.2 != 0.3 bitwise but eq_term-equal; the join must not
        // lose the pair once the buffer is deep enough for the hash
        // path, so non-integral floats fall back to the nested loop.
        let src = r#"
            rule f {
                on a: event x(v: ?v)
                on b: event y(v: ?v)
                within 10m
                emit z(v: ?v)
            }
        "#;
        let mut e = MatchletEngine::compile(src).unwrap();
        for i in 0..20u64 {
            let v = if i == 5 { 0.1 + 0.2 } else { i as f64 + 0.5 };
            e.on_event(t(i), &Event::new("x").with_attr("v", v), &kb());
        }
        let out = e.on_event(t(30), &Event::new("y").with_attr("v", 0.3), &kb());
        assert_eq!(out.len(), 1, "epsilon-equal pair must join");
    }

    #[test]
    fn negative_zero_joins_with_positive_zero_at_depth() {
        // -0.0 and 0.0 are eq_term-equal with different bit patterns;
        // the hash path must bucket them together.
        let src = r#"
            rule f {
                on a: event x(v: ?v)
                on b: event y(v: ?v)
                within 10m
                emit z(v: ?v)
            }
        "#;
        let mut e = MatchletEngine::compile(src).unwrap();
        for i in 0..20u64 {
            let v = if i == 5 { -0.0 } else { (i as f64) + 1.0 };
            e.on_event(t(i), &Event::new("x").with_attr("v", v), &kb());
        }
        let out = e.on_event(t(30), &Event::new("y").with_attr("v", 0.0), &kb());
        assert_eq!(out.len(), 1, "-0.0 buffered entry must join a +0.0 probe");
    }

    #[test]
    fn emit_errors_counted_and_skipped() {
        let src = r#"rule r { on a: event k() emit out(v: ?never_bound) }"#;
        let mut e = MatchletEngine::compile(src).unwrap();
        let out = e.on_event(t(0), &Event::new("k"), &kb());
        assert!(out.is_empty());
        assert_eq!(e.stats.eval_errors, 1);
    }
}
