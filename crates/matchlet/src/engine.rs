//! The matchlet engine: windowed multi-event joins driving rule firing.

use crate::ast::Rule;
use crate::eval::{eval, solve, unify, Bindings};
use crate::parser::{parse_rules, MatchletError};
use gloss_event::{AttrValue, Event};
use gloss_knowledge::{FactSource, Term};
use gloss_sim::SimTime;
use gloss_xml::Path;
use std::collections::VecDeque;

/// A rule plus its per-pattern event buffers.
#[derive(Debug, Clone)]
pub struct CompiledRule {
    /// The rule.
    pub rule: Rule,
    /// Per-pattern buffers of `(arrival time, bindings)`.
    buffers: Vec<VecDeque<(SimTime, Bindings)>>,
    /// How many times the rule has fired.
    pub fired: u64,
}

impl CompiledRule {
    fn new(rule: Rule) -> Self {
        let buffers = vec![VecDeque::new(); rule.patterns.len()];
        CompiledRule { rule, buffers, fired: 0 }
    }

    fn evict_before(&mut self, cutoff: SimTime) {
        for buf in &mut self.buffers {
            while buf.front().is_some_and(|(t, _)| *t < cutoff) {
                buf.pop_front();
            }
        }
    }

    /// Total buffered partial matches.
    pub fn buffered(&self) -> usize {
        self.buffers.iter().map(VecDeque::len).sum()
    }
}

/// Aggregate engine statistics — the "distillation" measure of Figure 1:
/// a high volume of input events reduced to few meaningful outputs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EngineStats {
    /// Events offered to the engine.
    pub events_in: u64,
    /// Events synthesised.
    pub events_out: u64,
    /// Where-clause evaluation errors (branches pruned).
    pub eval_errors: u64,
}

impl EngineStats {
    /// Input events per output event (∞ reported as `f64::INFINITY`).
    pub fn distillation_ratio(&self) -> f64 {
        if self.events_out == 0 {
            f64::INFINITY
        } else {
            self.events_in as f64 / self.events_out as f64
        }
    }
}

/// A matchlet engine hosting compiled rules.
///
/// See the [crate docs](crate) for the language and an example.
#[derive(Debug, Clone, Default)]
pub struct MatchletEngine {
    rules: Vec<CompiledRule>,
    /// Engine statistics.
    pub stats: EngineStats,
    emit_seq: u64,
}

impl MatchletEngine {
    /// Creates an empty engine.
    pub fn new() -> Self {
        MatchletEngine::default()
    }

    /// Compiles source text into a fresh engine.
    ///
    /// # Errors
    ///
    /// Returns [`MatchletError`] on syntax errors.
    pub fn compile(src: &str) -> Result<Self, MatchletError> {
        let mut engine = MatchletEngine::new();
        engine.add_rules(src)?;
        Ok(engine)
    }

    /// Hot-adds rules from source to a running engine (the dynamic
    /// deployment path used by code bundles).
    ///
    /// # Errors
    ///
    /// Returns [`MatchletError`] on syntax errors; existing rules are
    /// untouched.
    pub fn add_rules(&mut self, src: &str) -> Result<(), MatchletError> {
        for rule in parse_rules(src)? {
            self.add_rule(rule);
        }
        Ok(())
    }

    /// Adds one already-parsed rule.
    pub fn add_rule(&mut self, rule: Rule) {
        self.rules.push(CompiledRule::new(rule));
    }

    /// Removes a rule by name; returns whether it existed.
    pub fn remove_rule(&mut self, name: &str) -> bool {
        let before = self.rules.len();
        self.rules.retain(|r| r.rule.name != name);
        before != self.rules.len()
    }

    /// The hosted rule names.
    pub fn rule_names(&self) -> Vec<&str> {
        self.rules.iter().map(|r| r.rule.name.as_str()).collect()
    }

    /// The hosted rules (with buffer state).
    pub fn rules(&self) -> &[CompiledRule] {
        &self.rules
    }

    /// Whether any rule listens for the given event kind.
    pub fn handles_kind(&self, kind: &str) -> bool {
        self.rules.iter().any(|r| r.rule.patterns.iter().any(|p| p.kind == kind))
    }

    /// Offers an event to every rule; returns the synthesised events.
    ///
    /// Joining semantics: the new event is fixed at each pattern position
    /// it matches and joined against the *buffered* partial matches of
    /// the other patterns (so an event never joins with itself), then the
    /// event is buffered. All joined events lie within the rule's window
    /// of the new event.
    pub fn on_event(&mut self, now: SimTime, event: &Event, kb: &dyn FactSource) -> Vec<Event> {
        self.stats.events_in += 1;
        let mut out = Vec::new();
        for rule_idx in 0..self.rules.len() {
            let window = self.rules[rule_idx].rule.window;
            let cutoff = if now.as_micros() > window.as_micros() {
                SimTime::from_micros(now.as_micros() - window.as_micros())
            } else {
                SimTime::ZERO
            };
            self.rules[rule_idx].evict_before(cutoff);

            let pattern_count = self.rules[rule_idx].rule.patterns.len();
            let mut matched: Vec<(usize, Bindings)> = Vec::new();
            for p in 0..pattern_count {
                if let Some(b) = Self::match_pattern(&self.rules[rule_idx].rule.patterns[p], event)
                {
                    matched.push((p, b));
                }
            }
            for (p, bindings) in &matched {
                self.join_and_fire(rule_idx, *p, bindings.clone(), now, kb, &mut out);
            }
            for (p, bindings) in matched {
                self.rules[rule_idx].buffers[p].push_back((now, bindings));
            }
        }
        self.stats.events_out += out.len() as u64;
        out
    }

    /// Matches one pattern against an event, producing bindings.
    fn match_pattern(pattern: &crate::ast::EventPattern, event: &Event) -> Option<Bindings> {
        if pattern.kind != event.kind() {
            return None;
        }
        let mut env = Bindings::new();
        for (key, pat) in &pattern.fields {
            let value = if key.contains('/') || key.starts_with('@') {
                // Type projection into the XML payload (§3).
                let payload = event.payload()?;
                let path = Path::parse(key).ok()?;
                let text = path.select_text_first(payload)?;
                text_to_term(&text)
            } else {
                attr_to_term(event.attr(key)?)
            };
            if !unify(pat, &value, &mut env) {
                return None;
            }
        }
        Some(env)
    }

    fn join_and_fire(
        &mut self,
        rule_idx: usize,
        fixed_pattern: usize,
        fixed_bindings: Bindings,
        now: SimTime,
        kb: &dyn FactSource,
        out: &mut Vec<Event>,
    ) {
        // Collect join environments across the other patterns' buffers.
        let pattern_count = self.rules[rule_idx].rule.patterns.len();
        let mut envs = vec![fixed_bindings];
        for p in 0..pattern_count {
            if p == fixed_pattern {
                continue;
            }
            let mut next = Vec::new();
            for env in &envs {
                for (_, buffered) in &self.rules[rule_idx].buffers[p] {
                    // Unify the buffered bindings into the environment.
                    let mut child = env.clone();
                    let mut compatible = true;
                    for (k, v) in buffered {
                        match child.get(k) {
                            Some(existing) if !existing.eq_term(v) => {
                                compatible = false;
                                break;
                            }
                            Some(_) => {}
                            None => {
                                child.insert(k.clone(), v.clone());
                            }
                        }
                    }
                    if compatible {
                        next.push(child);
                    }
                }
            }
            envs = next;
            if envs.is_empty() {
                return;
            }
        }

        // Solve the where-goals for every join environment and emit.
        let goals = self.rules[rule_idx].rule.goals.clone();
        let emit = self.rules[rule_idx].rule.emit.clone();
        let mut fired = 0u64;
        let mut errors = 0u64;
        for env in envs {
            let mut solutions: Vec<Bindings> = Vec::new();
            errors += solve(&goals, &env, kb, now, &mut |solution| {
                solutions.push(solution.clone());
            });
            for solution in solutions {
                let mut ev = Event::new(&emit.kind);
                let mut ok = true;
                for (field, expr) in &emit.fields {
                    match eval(expr, &solution, kb, now) {
                        Ok(term) => ev.set_attr(field, term_to_attr(&term)),
                        Err(_) => {
                            errors += 1;
                            ok = false;
                            break;
                        }
                    }
                }
                if ok {
                    self.emit_seq += 1;
                    fired += 1;
                    out.push(ev);
                }
            }
        }
        self.rules[rule_idx].fired += fired;
        self.stats.eval_errors += errors;
    }
}

/// Converts an event attribute to a matchlet term.
pub fn attr_to_term(value: &AttrValue) -> Term {
    match value {
        AttrValue::Str(s) => Term::Str(s.clone()),
        AttrValue::Int(i) => Term::Int(*i),
        AttrValue::Float(f) => Term::Float(*f),
        AttrValue::Bool(b) => Term::Bool(*b),
    }
}

/// Converts a matchlet term to an event attribute.
pub fn term_to_attr(term: &Term) -> AttrValue {
    match term {
        Term::Str(s) => AttrValue::Str(s.clone()),
        Term::Int(i) => AttrValue::Int(*i),
        Term::Float(f) => AttrValue::Float(*f),
        Term::Bool(b) => AttrValue::Bool(*b),
        Term::Geo(g) => AttrValue::Str(format!("{},{}", g.lat, g.lon)),
        Term::Time(t) => AttrValue::Int(t.as_micros() as i64),
    }
}

/// Parses projected payload text into the most specific term.
fn text_to_term(text: &str) -> Term {
    let t = text.trim();
    if let Ok(i) = t.parse::<i64>() {
        return Term::Int(i);
    }
    if let Ok(f) = t.parse::<f64>() {
        return Term::Float(f);
    }
    match t {
        "true" => Term::Bool(true),
        "false" => Term::Bool(false),
        _ => Term::Str(text.to_string()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gloss_knowledge::{Fact, InMemoryFacts};
    use gloss_xml::parse;

    fn kb() -> InMemoryFacts {
        let mut kb = InMemoryFacts::new();
        kb.add(Fact::new("bob", "likes", Term::str("ice cream")));
        kb.add(Fact::new("bob", "nationality", Term::str("scottish")));
        kb.add(Fact::new("anna", "nationality", Term::str("australian")));
        kb.add(Fact::new("anna", "likes", Term::str("ice cream")));
        kb
    }

    fn t(secs: u64) -> SimTime {
        SimTime::from_secs(secs)
    }

    #[test]
    fn single_pattern_rule_fires_immediately() {
        let mut e = MatchletEngine::compile(
            r#"rule r { on a: event ping(n: ?n) where ?n > 2 emit pong(n: ?n) }"#,
        )
        .unwrap();
        let out = e.on_event(t(0), &Event::new("ping").with_attr("n", 5i64), &kb());
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].kind(), "pong");
        assert_eq!(out[0].num_attr("n"), Some(5.0));
        let out = e.on_event(t(1), &Event::new("ping").with_attr("n", 1i64), &kb());
        assert!(out.is_empty());
        assert_eq!(e.stats.events_in, 2);
        assert_eq!(e.stats.events_out, 1);
    }

    #[test]
    fn two_pattern_join_within_window() {
        let src = r#"
            rule meet {
                on a: event user.location(user: ?u, place: ?p)
                on b: event user.location(user: ?v, place: ?p)
                where ?u != ?v
                within 1m
                emit co_located(a: ?u, b: ?v, place: ?p)
            }
        "#;
        let mut e = MatchletEngine::compile(src).unwrap();
        let ev = |u: &str, p: &str| {
            Event::new("user.location").with_attr("user", u).with_attr("place", p)
        };
        assert!(e.on_event(t(0), &ev("bob", "market st"), &kb()).is_empty());
        // Different place: no join.
        assert!(e.on_event(t(10), &ev("anna", "north st"), &kb()).is_empty());
        // Same place within window: fires (both pattern orders join).
        let out = e.on_event(t(20), &ev("anna", "market st"), &kb());
        assert_eq!(out.len(), 2, "anna joins bob's buffered event in both roles");
        assert_eq!(out[0].kind(), "co_located");
    }

    #[test]
    fn window_expiry_prevents_stale_joins() {
        let src = r#"
            rule meet {
                on a: event x(u: ?u)
                on b: event y(v: ?v)
                within 30 s
                emit z(u: ?u, v: ?v)
            }
        "#;
        let mut e = MatchletEngine::compile(src).unwrap();
        e.on_event(t(0), &Event::new("x").with_attr("u", "one"), &kb());
        // 60 s later: the x event has expired.
        let out = e.on_event(t(60), &Event::new("y").with_attr("v", "two"), &kb());
        assert!(out.is_empty());
        // Within the window it joins.
        e.on_event(t(70), &Event::new("x").with_attr("u", "three"), &kb());
        let out = e.on_event(t(80), &Event::new("y").with_attr("v", "four"), &kb());
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn event_does_not_join_with_itself() {
        let src = r#"
            rule pair {
                on a: event k(u: ?u)
                on b: event k(v: ?v)
                within 1m
                emit p(u: ?u, v: ?v)
            }
        "#;
        let mut e = MatchletEngine::compile(src).unwrap();
        let out = e.on_event(t(0), &Event::new("k").with_attr("u", "x").with_attr("v", "x"), &kb());
        assert!(out.is_empty(), "first event has nothing buffered to join");
    }

    #[test]
    fn fact_goals_enrich_matches() {
        let src = r#"
            rule hot_for_you {
                on w: event weather(celsius: ?c)
                where fact(?u, likes, "ice cream") and fact(?u, nationality, ?nat)
                where ?c >= hot_threshold(?nat)
                within 1m
                emit suggest(user: ?u, c: ?c)
            }
        "#;
        let mut e = MatchletEngine::compile(src).unwrap();
        // 20C: hot for scottish bob (18), not for australian anna (30).
        let out = e.on_event(t(0), &Event::new("weather").with_attr("celsius", 20.0), &kb());
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].str_attr("user"), Some("bob"));
        // 35C: hot for both.
        let out = e.on_event(t(10), &Event::new("weather").with_attr("celsius", 35.0), &kb());
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn payload_projection_binding() {
        let src = r#"
            rule gps {
                on l: event loc("pos/@lat": ?lat, "pos/@lon": ?lon)
                where ?lat > 56.0
                within 1m
                emit seen(lat: ?lat, lon: ?lon)
            }
        "#;
        let mut e = MatchletEngine::compile(src).unwrap();
        let payload = parse(r#"<fix><pos lat="56.34" lon="-2.80"/></fix>"#).unwrap();
        let out = e.on_event(t(0), &Event::new("loc").with_payload(payload), &kb());
        assert_eq!(out.len(), 1);
        assert!((out[0].num_attr("lat").unwrap() - 56.34).abs() < 1e-9);
        // Event without a payload cannot match a projection pattern.
        let out = e.on_event(t(1), &Event::new("loc"), &kb());
        assert!(out.is_empty());
    }

    #[test]
    fn literal_field_constraints_filter() {
        let src = r#"
            rule walkers {
                on l: event loc(user: ?u, on_foot: true)
                within 1m
                emit walking(user: ?u)
            }
        "#;
        let mut e = MatchletEngine::compile(src).unwrap();
        let walk = Event::new("loc").with_attr("user", "bob").with_attr("on_foot", true);
        let drive = Event::new("loc").with_attr("user", "anna").with_attr("on_foot", false);
        assert_eq!(e.on_event(t(0), &walk, &kb()).len(), 1);
        assert_eq!(e.on_event(t(1), &drive, &kb()).len(), 0);
    }

    #[test]
    fn hot_rule_addition_and_removal() {
        let mut e = MatchletEngine::new();
        assert!(!e.handles_kind("ping"));
        e.add_rules(r#"rule r { on a: event ping() emit pong() }"#).unwrap();
        assert!(e.handles_kind("ping"));
        assert_eq!(e.on_event(t(0), &Event::new("ping"), &kb()).len(), 1);
        assert!(e.remove_rule("r"));
        assert!(!e.remove_rule("r"));
        assert_eq!(e.on_event(t(1), &Event::new("ping"), &kb()).len(), 0);
    }

    #[test]
    fn distillation_ratio() {
        let mut e = MatchletEngine::compile(
            r#"rule r { on a: event tick(n: ?n) where ?n = 0 emit rare() }"#,
        )
        .unwrap();
        for i in 0..100i64 {
            e.on_event(t(i as u64), &Event::new("tick").with_attr("n", i % 50), &kb());
        }
        assert_eq!(e.stats.events_out, 2);
        assert_eq!(e.stats.distillation_ratio(), 50.0);
    }

    #[test]
    fn cross_variable_join_narrows() {
        // The shared ?u across patterns requires the same user.
        let src = r#"
            rule same_user {
                on a: event enter(user: ?u)
                on b: event exit(user: ?u)
                within 1m
                emit visit(user: ?u)
            }
        "#;
        let mut e = MatchletEngine::compile(src).unwrap();
        e.on_event(t(0), &Event::new("enter").with_attr("user", "bob"), &kb());
        let out = e.on_event(t(5), &Event::new("exit").with_attr("user", "anna"), &kb());
        assert!(out.is_empty(), "different users do not join");
        let out = e.on_event(t(6), &Event::new("exit").with_attr("user", "bob"), &kb());
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn emit_errors_counted_and_skipped() {
        let src = r#"rule r { on a: event k() emit out(v: ?never_bound) }"#;
        let mut e = MatchletEngine::compile(src).unwrap();
        let out = e.on_event(t(0), &Event::new("k"), &kb());
        assert!(out.is_empty());
        assert_eq!(e.stats.eval_errors, 1);
    }
}
