//! Interned symbols for matchlet variable names.
//!
//! Variable names appear in every binding set the engine materialises
//! while joining, so they are interned once (at parse time) into a
//! process-wide table and carried as a copyable [`Symbol`] afterwards.
//! This turns binding keys from heap `String`s into `u32`s: cloning an
//! environment no longer clones names, and key comparison is an integer
//! compare instead of a string compare.

use std::collections::HashMap;
use std::fmt;
use std::sync::{Mutex, OnceLock};

/// An interned name: a dense index into the process-wide symbol table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Symbol(u32);

struct Interner {
    /// Leaked so [`Symbol::as_str`] can hand out `&'static str` without
    /// holding the lock. Bounded by the number of distinct names ever
    /// parsed, which is bounded by rule source text.
    names: Vec<&'static str>,
    by_name: HashMap<&'static str, u32>,
}

fn interner() -> &'static Mutex<Interner> {
    static INTERNER: OnceLock<Mutex<Interner>> = OnceLock::new();
    INTERNER.get_or_init(|| Mutex::new(Interner { names: Vec::new(), by_name: HashMap::new() }))
}

impl Symbol {
    /// Interns `name`, returning its symbol (allocating a table entry on
    /// first sight).
    pub fn intern(name: &str) -> Symbol {
        let mut table = interner().lock().expect("symbol table poisoned");
        if let Some(&i) = table.by_name.get(name) {
            return Symbol(i);
        }
        let i = u32::try_from(table.names.len()).expect("symbol table overflow");
        let leaked: &'static str = Box::leak(name.to_owned().into_boxed_str());
        table.names.push(leaked);
        table.by_name.insert(leaked, i);
        Symbol(i)
    }

    /// Looks `name` up without interning it; `None` if it was never
    /// interned (and therefore cannot be bound anywhere).
    pub fn lookup(name: &str) -> Option<Symbol> {
        interner().lock().expect("symbol table poisoned").by_name.get(name).copied().map(Symbol)
    }

    /// The interned text.
    pub fn as_str(self) -> &'static str {
        interner().lock().expect("symbol table poisoned").names[self.0 as usize]
    }
}

impl fmt::Display for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl From<&str> for Symbol {
    fn from(name: &str) -> Symbol {
        Symbol::intern(name)
    }
}

impl From<String> for Symbol {
    fn from(name: String) -> Symbol {
        Symbol::intern(&name)
    }
}

impl PartialEq<str> for Symbol {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == other
    }
}

impl PartialEq<&str> for Symbol {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == *other
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        let a = Symbol::intern("alpha");
        let b = Symbol::intern("alpha");
        assert_eq!(a, b);
        assert_eq!(a.as_str(), "alpha");
        assert_ne!(Symbol::intern("beta"), a);
    }

    #[test]
    fn lookup_does_not_intern() {
        assert_eq!(Symbol::lookup("never-seen-name-xyzzy"), None);
        let s = Symbol::intern("seen-once");
        assert_eq!(Symbol::lookup("seen-once"), Some(s));
    }

    #[test]
    fn string_comparison() {
        let s = Symbol::intern("gamma");
        assert!(s == *"gamma");
        assert!(s == "gamma");
        assert_eq!(s.to_string(), "gamma");
    }
}
