//! Builtin functions of the matchlet language: the spatial, temporal and
//! contextual primitives the paper's correlations need ("the detection of
//! spatial, temporal and logical relationships", §1.1).

use crate::eval::EvalError;
use gloss_knowledge::{profile, Term};
use gloss_sim::{GeoPoint, SimTime};

/// Whether a call to `name` can read state outside its arguments — the
/// clock (`now`, zero-argument `minutes_of_day`) or the knowledge base
/// (the `fact` boolean form handled in `eval`). The engine refuses to
/// memoise any rule whose conditions call one of these; keep this list
/// in sync with [`call`] below when adding a builtin.
pub fn reads_dynamic_state(name: &str) -> bool {
    matches!(name, "fact" | "now" | "minutes_of_day")
}

/// Whether `name` is a builtin function (a bare identifier that is not a
/// builtin evaluates to itself as a string "atom"). Keep in sync with
/// [`call`].
pub fn is_builtin(name: &str) -> bool {
    matches!(
        name,
        "geo"
            | "distance_km"
            | "lat"
            | "lon"
            | "walk_minutes"
            | "now"
            | "minutes_of_day"
            | "seconds_between"
            | "hot_threshold"
            | "lower"
            | "contains"
            | "concat"
            | "abs"
            | "min"
            | "max"
    )
}

/// Evaluates builtin `name` on `args` at time `now`.
///
/// # Errors
///
/// Returns [`EvalError::UnknownFunction`] or [`EvalError::BadArguments`].
pub fn call(name: &str, args: &[Term], now: SimTime) -> Result<Term, EvalError> {
    let bad =
        || EvalError::BadArguments { function: name.to_string(), detail: format!("{args:?}") };
    match name {
        // --- spatial ---
        "geo" => match args {
            [a, b] => {
                let (lat, lon) = (a.as_f64().ok_or_else(bad)?, b.as_f64().ok_or_else(bad)?);
                Ok(Term::Geo(GeoPoint::new(lat, lon)))
            }
            _ => Err(bad()),
        },
        "distance_km" => match args {
            [a, b] => {
                let (x, y) = (a.as_geo().ok_or_else(bad)?, b.as_geo().ok_or_else(bad)?);
                Ok(Term::Float(x.distance_km(y)))
            }
            _ => Err(bad()),
        },
        "lat" => match args {
            [a] => Ok(Term::Float(a.as_geo().ok_or_else(bad)?.lat)),
            _ => Err(bad()),
        },
        "lon" => match args {
            [a] => Ok(Term::Float(a.as_geo().ok_or_else(bad)?.lon)),
            _ => Err(bad()),
        },
        // Walking time in minutes at 5 km/h.
        "walk_minutes" => match args {
            [a, b] => {
                let (x, y) = (a.as_geo().ok_or_else(bad)?, b.as_geo().ok_or_else(bad)?);
                Ok(Term::Float(x.distance_km(y) / 5.0 * 60.0))
            }
            _ => Err(bad()),
        },
        // --- temporal ---
        "now" => match args {
            [] => Ok(Term::Time(now)),
            _ => Err(bad()),
        },
        // Minutes since (simulated) midnight; the sim day is 24 h long.
        "minutes_of_day" => match args {
            [a] => {
                let t = a.as_time().ok_or_else(bad)?;
                Ok(Term::Int(((t.as_micros() / 60_000_000) % (24 * 60)) as i64))
            }
            [] => Ok(Term::Int(((now.as_micros() / 60_000_000) % (24 * 60)) as i64)),
            _ => Err(bad()),
        },
        "seconds_between" => match args {
            [a, b] => {
                let (x, y) = (a.as_time().ok_or_else(bad)?, b.as_time().ok_or_else(bad)?);
                let d = if x > y { x.since(y) } else { y.since(x) };
                Ok(Term::Float(d.as_secs_f64()))
            }
            _ => Err(bad()),
        },
        // --- contextual ---
        "hot_threshold" => match args {
            [a] => Ok(Term::Float(profile::hot_threshold_celsius(a.as_str()))),
            _ => Err(bad()),
        },
        // --- strings ---
        "lower" => match args {
            [Term::Str(s)] => Ok(Term::Str(s.to_lowercase().into())),
            _ => Err(bad()),
        },
        "contains" => match args {
            [Term::Str(h), Term::Str(n)] => Ok(Term::Bool(h.contains(n.as_ref() as &str))),
            _ => Err(bad()),
        },
        "concat" => match args {
            [Term::Str(a), Term::Str(b)] => Ok(Term::Str(format!("{a}{b}").into())),
            _ => Err(bad()),
        },
        // --- numeric ---
        "abs" => match args {
            [a] => Ok(Term::Float(a.as_f64().ok_or_else(bad)?.abs())),
            _ => Err(bad()),
        },
        "min" => match args {
            [a, b] => Ok(Term::Float(a.as_f64().ok_or_else(bad)?.min(b.as_f64().ok_or_else(bad)?))),
            _ => Err(bad()),
        },
        "max" => match args {
            [a, b] => Ok(Term::Float(a.as_f64().ok_or_else(bad)?.max(b.as_f64().ok_or_else(bad)?))),
            _ => Err(bad()),
        },
        other => Err(EvalError::UnknownFunction(other.to_string())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t0() -> SimTime {
        SimTime::ZERO
    }

    #[test]
    fn spatial_builtins() {
        let g = call("geo", &[Term::Float(56.34), Term::Float(-2.80)], t0()).unwrap();
        assert!(g.as_geo().is_some());
        let h = call("geo", &[Term::Float(56.35), Term::Float(-2.80)], t0()).unwrap();
        let d = call("distance_km", &[g.clone(), h], t0()).unwrap();
        let km = d.as_f64().unwrap();
        assert!(km > 0.9 && km < 1.4, "1 degree lat ~ 1.1 km here: {km}");
        assert!(
            (call("lat", std::slice::from_ref(&g), t0()).unwrap().as_f64().unwrap() - 56.34).abs()
                < 1e-9
        );
        let w = call("walk_minutes", &[g.clone(), g], t0()).unwrap();
        assert_eq!(w.as_f64(), Some(0.0));
    }

    #[test]
    fn temporal_builtins() {
        let now = SimTime::from_secs(10 * 3600 + 30 * 60); // 10:30
        assert_eq!(call("now", &[], now).unwrap(), Term::Time(now));
        assert_eq!(call("minutes_of_day", &[], now).unwrap(), Term::Int(10 * 60 + 30));
        let d = call(
            "seconds_between",
            &[Term::Time(SimTime::from_secs(5)), Term::Time(SimTime::from_secs(12))],
            now,
        )
        .unwrap();
        assert_eq!(d.as_f64(), Some(7.0));
    }

    #[test]
    fn hot_threshold_builtin() {
        let scot = call("hot_threshold", &[Term::str("scottish")], t0()).unwrap();
        let aus = call("hot_threshold", &[Term::str("australian")], t0()).unwrap();
        assert!(scot.as_f64() < aus.as_f64());
    }

    #[test]
    fn string_builtins() {
        assert_eq!(
            call("lower", &[Term::str("Market Street")], t0()).unwrap(),
            Term::str("market street")
        );
        assert_eq!(
            call("contains", &[Term::str("market street"), Term::str("street")], t0()).unwrap(),
            Term::Bool(true)
        );
        assert_eq!(
            call("concat", &[Term::str("a"), Term::str("b")], t0()).unwrap(),
            Term::str("ab")
        );
    }

    #[test]
    fn numeric_builtins() {
        assert_eq!(call("abs", &[Term::Float(-2.5)], t0()).unwrap(), Term::Float(2.5));
        assert_eq!(call("min", &[Term::Int(3), Term::Int(5)], t0()).unwrap(), Term::Float(3.0));
        assert_eq!(call("max", &[Term::Int(3), Term::Int(5)], t0()).unwrap(), Term::Float(5.0));
    }

    #[test]
    fn errors() {
        assert!(matches!(call("warp_speed", &[], t0()), Err(EvalError::UnknownFunction(_))));
        assert!(matches!(
            call("geo", &[Term::str("x")], t0()),
            Err(EvalError::BadArguments { .. })
        ));
        assert!(matches!(
            call("distance_km", &[Term::Int(1), Term::Int(2)], t0()),
            Err(EvalError::BadArguments { .. })
        ));
    }
}
