//! Matchlets: the contextual matching language and engine (§4.2, §5).
//!
//! "A matching service can be considered to be an entity that, triggered
//! by the reception of events from multiple sources, synthesises a stream
//! of new events. Typically, the output events will be higher-level (more
//! semantically meaningful) than the input events." Matchlets are the
//! units of that computation: "pipeline code that accepts events from the
//! event distribution mechanism and performs matching on them. Each
//! matchlet writes its results onto the event bus."
//!
//! A matchlet is written in a small declarative rule language (so that
//! matching code can travel inside Cingal code bundles and be *hot
//! deployed* onto running nodes — the substitution for dynamic code
//! loading described in DESIGN.md):
//!
//! ```text
//! rule ice_cream_meetup {
//!     on w: event weather.reading(street: ?street, celsius: ?temp)
//!     on l: event user.location(user: ?u, lat: ?lat, lon: ?lon)
//!     where fact(?u, likes, "ice cream") and fact(?u, nationality, ?nat)
//!     where ?temp >= hot_threshold(?nat)
//!     where fact(?shop, sells, "ice cream") and fact(?shop, located_at, ?g)
//!     where distance_km(geo(?lat, ?lon), ?g) < 0.5
//!     within 5m
//!     emit suggestion(user: ?u, shop: ?shop)
//! }
//! ```
//!
//! Semantics: each `on` clause buffers matching events for the `within`
//! window; every newly arrived event joins against the buffers of the
//! other patterns by variable unification; `where` clauses are solved
//! left-to-right with backtracking over the knowledge base (`fact`
//! patterns enumerate and bind); `emit` synthesises the higher-level
//! event, once per solution.
//!
//! Event fields bind from typed attributes, or — when the field key is a
//! quoted path such as `"pos/@lat"` — from the XML payload via type
//! projection (§3).
//!
//! # Example
//!
//! ```
//! use gloss_matchlet::MatchletEngine;
//! use gloss_knowledge::{Fact, InMemoryFacts, Term};
//! use gloss_event::Event;
//! use gloss_sim::SimTime;
//!
//! let src = r#"
//!     rule hot_alert {
//!         on w: event weather.reading(celsius: ?t)
//!         where ?t >= 18.0
//!         within 1m
//!         emit alert(level: "hot", celsius: ?t)
//!     }
//! "#;
//! let mut engine = MatchletEngine::compile(src)?;
//! let kb = InMemoryFacts::new();
//! let out = engine.on_event(
//!     SimTime::ZERO,
//!     &Event::new("weather.reading").with_attr("celsius", 20.0),
//!     &kb,
//! );
//! assert_eq!(out.len(), 1);
//! assert_eq!(out[0].kind(), "alert");
//! # Ok::<(), gloss_matchlet::MatchletError>(())
//! ```

pub mod ast;
pub mod builtin;
pub mod canonical;
pub mod engine;
pub mod eval;
pub mod lexer;
pub mod parser;
pub mod symbol;

pub use ast::{BinOp, EmitSpec, EventPattern, Expr, Goal, Pat, Rule, RuleSpans, Span};
pub use engine::{CompiledRule, EngineStats, MatchletEngine};
pub use eval::{Bindings, EvalError};
pub use parser::{parse_rules, MatchletError};
pub use symbol::Symbol;
