//! Property test: the indexed, hash-joining engine is
//! semantics-preserving.
//!
//! A reference engine below transcribes the seed implementation's
//! algorithm — scan every rule for every event, evict every buffer every
//! event, join buffers with a clone-first nested loop — on top of the
//! shared `unify`/`solve`/`eval` primitives. Random rule sets and event
//! streams must produce identical outputs (kind + attributes,
//! order-insensitive), identical per-rule fire behaviour, and identical
//! error counts from both engines.

use gloss_event::Event;
use gloss_knowledge::{Fact, FactSource, InMemoryFacts, Term};
use gloss_matchlet::engine::{attr_to_term, term_to_attr};
use gloss_matchlet::eval::{eval, solve, unify, Bindings};
use gloss_matchlet::{parse_rules, EventPattern, MatchletEngine, Rule};
use gloss_sim::SimTime;
use proptest::prelude::*;
use std::collections::VecDeque;

/// A direct transcription of the seed engine: no kind index, no
/// precompiled patterns, no hash join, eviction on every event.
type Buffers = Vec<VecDeque<(SimTime, Bindings)>>;

struct ReferenceEngine {
    rules: Vec<(Rule, Buffers)>,
    eval_errors: u64,
}

impl ReferenceEngine {
    fn new(rules: Vec<Rule>) -> Self {
        let rules = rules
            .into_iter()
            .map(|r| (r.clone(), vec![VecDeque::new(); r.patterns.len()]))
            .collect();
        ReferenceEngine { rules, eval_errors: 0 }
    }

    fn match_pattern(pattern: &EventPattern, event: &Event) -> Option<Bindings> {
        if pattern.kind != event.kind() {
            return None;
        }
        let mut env = Bindings::new();
        for (key, pat) in &pattern.fields {
            // Generated rules only use plain attribute keys (no payload
            // projections), matching the seed's attribute path.
            let value = attr_to_term(event.attr(key)?);
            if !unify(pat, &value, &mut env) {
                return None;
            }
        }
        Some(env)
    }

    fn on_event(&mut self, now: SimTime, event: &Event, kb: &dyn FactSource) -> Vec<Event> {
        let mut out = Vec::new();
        for (rule, buffers) in &mut self.rules {
            let window = rule.window;
            let cutoff = if now.as_micros() > window.as_micros() {
                SimTime::from_micros(now.as_micros() - window.as_micros())
            } else {
                SimTime::ZERO
            };
            for buf in buffers.iter_mut() {
                while buf.front().is_some_and(|(t, _)| *t < cutoff) {
                    buf.pop_front();
                }
            }

            let mut matched: Vec<(usize, Bindings)> = Vec::new();
            for (p, pattern) in rule.patterns.iter().enumerate() {
                if let Some(b) = Self::match_pattern(pattern, event) {
                    matched.push((p, b));
                }
            }
            for (fixed, bindings) in &matched {
                // Clone-first nested-loop join, exactly as seeded.
                let mut envs = vec![bindings.clone()];
                for (p, buffer) in buffers.iter().enumerate() {
                    if p == *fixed {
                        continue;
                    }
                    let mut next = Vec::new();
                    for env in &envs {
                        for (_, buffered) in buffer {
                            let mut child = env.clone();
                            let mut compatible = true;
                            for (k, v) in buffered.iter() {
                                match child.get_sym(k) {
                                    Some(existing) if !existing.eq_term(v) => {
                                        compatible = false;
                                        break;
                                    }
                                    Some(_) => {}
                                    None => child.insert_sym(k, v.clone()),
                                }
                            }
                            if compatible {
                                next.push(child);
                            }
                        }
                    }
                    envs = next;
                    if envs.is_empty() {
                        break;
                    }
                }
                for env in envs {
                    let mut solutions: Vec<Bindings> = Vec::new();
                    self.eval_errors += solve(&rule.goals, &env, kb, now, &mut |s| {
                        solutions.push(s.clone());
                    });
                    for solution in solutions {
                        let mut ev = Event::new(rule.emit.kind.as_str());
                        let mut ok = true;
                        for (field, expr) in &rule.emit.fields {
                            match eval(expr, &solution, kb, now) {
                                Ok(term) => ev.set_attr(field.as_str(), term_to_attr(&term)),
                                Err(_) => {
                                    self.eval_errors += 1;
                                    ok = false;
                                    break;
                                }
                            }
                        }
                        if ok {
                            out.push(ev);
                        }
                    }
                }
            }
            for (p, bindings) in matched {
                buffers[p].push_back((now, bindings));
            }
        }
        out
    }
}

fn kb() -> InMemoryFacts {
    let mut kb = InMemoryFacts::new();
    kb.add(Fact::new("ua", "likes", Term::str("ice")));
    kb.add(Fact::new("ub", "likes", Term::str("ice")));
    kb.add(Fact::new("ub", "likes", Term::str("tea")));
    kb.add(Fact::new("ua", "knows", Term::str("ub")));
    kb
}

/// Renders events into an order-insensitive, comparable form (attribute
/// maps iterate in name order, so the rendering is canonical).
fn canonical(events: &[Event]) -> Vec<String> {
    let mut rendered: Vec<String> = events
        .iter()
        .map(|e| {
            let attrs: Vec<String> = e.attrs().map(|(k, v)| format!("{k}={v:?}")).collect();
            format!("{}({})", e.kind(), attrs.join(","))
        })
        .collect();
    rendered.sort();
    rendered
}

// --- generators ----------------------------------------------------------

fn arb_pat() -> impl Strategy<Value = String> {
    prop_oneof![
        (0usize..3).prop_map(|v| format!("?v{v}")),
        (0i64..3).prop_map(|n| n.to_string()),
        Just("_".to_string()),
        prop_oneof![Just("ua"), Just("ub"), Just("ice")].prop_map(|s| format!("\"{s}\"")),
    ]
}

fn arb_field() -> impl Strategy<Value = String> {
    ((0usize..3), arb_pat()).prop_map(|(f, p)| format!("f{f}: {p}"))
}

fn arb_pattern() -> impl Strategy<Value = String> {
    ((0usize..3), proptest::collection::vec(arb_field(), 0..3))
        .prop_map(|(k, fields)| format!("on a: event k{k}({})", fields.join(", ")))
}

fn arb_where() -> impl Strategy<Value = String> {
    prop_oneof![
        Just(String::new()),
        Just("where ?v0 > 0".to_string()),
        Just("where ?v0 != ?v1".to_string()),
        Just("where fact(?v0, likes, ?v2)".to_string()),
        Just("where fact(?v0, likes, \"ice\") and fact(?v0, knows, ?v1)".to_string()),
    ]
}

fn arb_emit() -> impl Strategy<Value = String> {
    prop_oneof![
        Just("emit out()".to_string()),
        Just("emit out(x: ?v0)".to_string()),
        Just("emit out(x: ?v0, y: ?v1)".to_string()),
        Just("emit out(x: ?v0 + 1)".to_string()),
    ]
}

fn arb_rule(idx: usize) -> impl Strategy<Value = String> {
    (proptest::collection::vec(arb_pattern(), 1..3), arb_where(), (5u64..40), arb_emit()).prop_map(
        move |(patterns, cond, window, emit)| {
            format!("rule r{idx} {{ {} {cond} within {window} s {emit} }}", patterns.join(" "))
        },
    )
}

fn arb_rules() -> impl Strategy<Value = String> {
    (arb_rule(0), arb_rule(1), arb_rule(2)).prop_map(|(a, b, c)| format!("{a}\n{b}\n{c}"))
}

fn arb_attr_value() -> impl Strategy<Value = Term> {
    prop_oneof![
        (0i64..3).prop_map(Term::Int),
        // Non-integral floats route joins through the nested-loop
        // fallback (hash fingerprints are not epsilon-faithful for them).
        (0i64..5).prop_map(|i| Term::Float(i as f64 / 2.0)),
        prop_oneof![Just("ua"), Just("ub"), Just("ice")].prop_map(Term::str),
    ]
}

fn arb_event() -> impl Strategy<Value = (u64, Event)> {
    ((0usize..3), proptest::collection::vec(((0usize..3), arb_attr_value()), 0..3), (0u64..10))
        .prop_map(|(k, fields, dt)| {
            let mut ev = Event::new(format!("k{k}"));
            for (f, value) in fields {
                ev.set_attr(format!("f{f}"), term_to_attr(&value));
            }
            (dt, ev)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn indexed_engine_matches_reference(
        src in arb_rules(),
        events in proptest::collection::vec(arb_event(), 1..30),
    ) {
        let rules = parse_rules(&src).expect("generated rules parse");
        let mut reference = ReferenceEngine::new(rules.clone());
        let mut engine = MatchletEngine::new();
        for rule in rules {
            engine.add_rule(rule);
        }
        let kb = kb();
        let mut now = SimTime::ZERO;
        for (dt, ev) in &events {
            now += gloss_sim::SimDuration::from_secs(*dt);
            let expected = reference.on_event(now, ev, &kb);
            let got = engine.on_event(now, ev, &kb);
            prop_assert_eq!(
                canonical(&got),
                canonical(&expected),
                "rules:\n{}\nevent: {} at {}",
                src,
                ev,
                now
            );
        }
        prop_assert_eq!(engine.stats.eval_errors, reference.eval_errors);
        let fired: u64 = engine.rules().iter().map(|r| r.fired).sum();
        prop_assert_eq!(engine.stats.events_out, fired);
    }
}
