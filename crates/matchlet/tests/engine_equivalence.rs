//! Property tests: the indexed, hash-joining, delta-memoising engine is
//! semantics-preserving.
//!
//! Two references:
//!
//! 1. A transcription of the seed implementation's algorithm — scan every
//!    rule for every event, evict every buffer every event, join buffers
//!    with a clone-first nested loop — on top of the shared
//!    `unify`/`solve`/`eval` primitives. Random rule sets and event
//!    streams must produce identical outputs (kind + attributes,
//!    order-insensitive), identical per-rule fire behaviour, and
//!    identical error counts.
//!
//! 2. The engine *itself*, fed through an opaque `FactSource` wrapper
//!    that hides the change feed — which forces a from-scratch re-solve
//!    of every firing. Under random interleavings of fact inserts,
//!    retracts, rule additions/removals, and events (including facts with
//!    validity windows), the incremental engine's firings must be
//!    **byte-identical in order** to the from-scratch twin's, and the
//!    error/fire counters must agree exactly.

use gloss_event::Event;
use gloss_knowledge::{Fact, FactSource, InMemoryFacts, Term};
use gloss_matchlet::engine::{attr_to_term, term_to_attr};
use gloss_matchlet::eval::{eval, solve, unify, Bindings};
use gloss_matchlet::{parse_rules, EventPattern, MatchletEngine, Rule};
use gloss_sim::SimTime;
use proptest::prelude::*;
use std::collections::VecDeque;

/// A direct transcription of the seed engine: no kind index, no
/// precompiled patterns, no hash join, eviction on every event.
type Buffers = Vec<VecDeque<(SimTime, Bindings)>>;

struct ReferenceEngine {
    rules: Vec<(Rule, Buffers)>,
    eval_errors: u64,
}

impl ReferenceEngine {
    fn new(rules: Vec<Rule>) -> Self {
        let rules = rules
            .into_iter()
            .map(|r| (r.clone(), vec![VecDeque::new(); r.patterns.len()]))
            .collect();
        ReferenceEngine { rules, eval_errors: 0 }
    }

    fn match_pattern(pattern: &EventPattern, event: &Event) -> Option<Bindings> {
        if pattern.kind != event.kind() {
            return None;
        }
        let mut env = Bindings::new();
        for (key, pat) in &pattern.fields {
            // Generated rules only use plain attribute keys (no payload
            // projections), matching the seed's attribute path.
            let value = attr_to_term(event.attr(key)?);
            if !unify(pat, &value, &mut env) {
                return None;
            }
        }
        Some(env)
    }

    fn on_event(&mut self, now: SimTime, event: &Event, kb: &dyn FactSource) -> Vec<Event> {
        let mut out = Vec::new();
        for (rule, buffers) in &mut self.rules {
            let window = rule.window;
            let cutoff = if now.as_micros() > window.as_micros() {
                SimTime::from_micros(now.as_micros() - window.as_micros())
            } else {
                SimTime::ZERO
            };
            for buf in buffers.iter_mut() {
                while buf.front().is_some_and(|(t, _)| *t < cutoff) {
                    buf.pop_front();
                }
            }

            let mut matched: Vec<(usize, Bindings)> = Vec::new();
            for (p, pattern) in rule.patterns.iter().enumerate() {
                if let Some(b) = Self::match_pattern(pattern, event) {
                    matched.push((p, b));
                }
            }
            for (fixed, bindings) in &matched {
                // Clone-first nested-loop join, exactly as seeded.
                let mut envs = vec![bindings.clone()];
                for (p, buffer) in buffers.iter().enumerate() {
                    if p == *fixed {
                        continue;
                    }
                    let mut next = Vec::new();
                    for env in &envs {
                        for (_, buffered) in buffer {
                            let mut child = env.clone();
                            let mut compatible = true;
                            for (k, v) in buffered.iter() {
                                match child.get_sym(k) {
                                    Some(existing) if !existing.eq_term(v) => {
                                        compatible = false;
                                        break;
                                    }
                                    Some(_) => {}
                                    None => child.insert_sym(k, v.clone()),
                                }
                            }
                            if compatible {
                                next.push(child);
                            }
                        }
                    }
                    envs = next;
                    if envs.is_empty() {
                        break;
                    }
                }
                for env in envs {
                    let mut solutions: Vec<Bindings> = Vec::new();
                    self.eval_errors += solve(&rule.goals, &env, kb, now, &mut |s| {
                        solutions.push(s.clone());
                    });
                    for solution in solutions {
                        let mut ev = Event::new(rule.emit.kind.as_str());
                        let mut ok = true;
                        for (field, expr) in &rule.emit.fields {
                            match eval(expr, &solution, kb, now) {
                                Ok(term) => ev.set_attr(field.as_str(), term_to_attr(&term)),
                                Err(_) => {
                                    self.eval_errors += 1;
                                    ok = false;
                                    break;
                                }
                            }
                        }
                        if ok {
                            out.push(ev);
                        }
                    }
                }
            }
            for (p, bindings) in matched {
                buffers[p].push_back((now, bindings));
            }
        }
        out
    }
}

fn kb() -> InMemoryFacts {
    let mut kb = InMemoryFacts::new();
    kb.add(Fact::new("ua", "likes", Term::str("ice")));
    kb.add(Fact::new("ub", "likes", Term::str("ice")));
    kb.add(Fact::new("ub", "likes", Term::str("tea")));
    kb.add(Fact::new("ua", "knows", Term::str("ub")));
    kb
}

/// Renders events into an order-insensitive, comparable form (attribute
/// maps iterate in name order, so the rendering is canonical).
fn canonical(events: &[Event]) -> Vec<String> {
    let mut rendered: Vec<String> = events
        .iter()
        .map(|e| {
            let attrs: Vec<String> = e.attrs().map(|(k, v)| format!("{k}={v:?}")).collect();
            format!("{}({})", e.kind(), attrs.join(","))
        })
        .collect();
    rendered.sort();
    rendered
}

// --- generators ----------------------------------------------------------

fn arb_pat() -> impl Strategy<Value = String> {
    prop_oneof![
        (0usize..3).prop_map(|v| format!("?v{v}")),
        (0i64..3).prop_map(|n| n.to_string()),
        Just("_".to_string()),
        prop_oneof![Just("ua"), Just("ub"), Just("ice")].prop_map(|s| format!("\"{s}\"")),
    ]
}

fn arb_field() -> impl Strategy<Value = String> {
    ((0usize..3), arb_pat()).prop_map(|(f, p)| format!("f{f}: {p}"))
}

fn arb_pattern() -> impl Strategy<Value = String> {
    ((0usize..3), proptest::collection::vec(arb_field(), 0..3))
        .prop_map(|(k, fields)| format!("on a: event k{k}({})", fields.join(", ")))
}

fn arb_where() -> impl Strategy<Value = String> {
    prop_oneof![
        Just(String::new()),
        Just("where ?v0 > 0".to_string()),
        Just("where ?v0 != ?v1".to_string()),
        Just("where fact(?v0, likes, ?v2)".to_string()),
        Just("where fact(?v0, likes, \"ice\") and fact(?v0, knows, ?v1)".to_string()),
    ]
}

fn arb_emit() -> impl Strategy<Value = String> {
    prop_oneof![
        Just("emit out()".to_string()),
        Just("emit out(x: ?v0)".to_string()),
        Just("emit out(x: ?v0, y: ?v1)".to_string()),
        Just("emit out(x: ?v0 + 1)".to_string()),
    ]
}

fn arb_rule(idx: usize) -> impl Strategy<Value = String> {
    (proptest::collection::vec(arb_pattern(), 1..3), arb_where(), (5u64..40), arb_emit()).prop_map(
        move |(patterns, cond, window, emit)| {
            format!("rule r{idx} {{ {} {cond} within {window} s {emit} }}", patterns.join(" "))
        },
    )
}

fn arb_rules() -> impl Strategy<Value = String> {
    (arb_rule(0), arb_rule(1), arb_rule(2)).prop_map(|(a, b, c)| format!("{a}\n{b}\n{c}"))
}

fn arb_attr_value() -> impl Strategy<Value = Term> {
    prop_oneof![
        (0i64..3).prop_map(Term::Int),
        // Non-integral floats route joins through the nested-loop
        // fallback (hash fingerprints are not epsilon-faithful for them).
        (0i64..5).prop_map(|i| Term::Float(i as f64 / 2.0)),
        prop_oneof![Just("ua"), Just("ub"), Just("ice")].prop_map(Term::str),
    ]
}

fn arb_event() -> impl Strategy<Value = (u64, Event)> {
    ((0usize..3), proptest::collection::vec(((0usize..3), arb_attr_value()), 0..3), (0u64..10))
        .prop_map(|(k, fields, dt)| {
            let mut ev = Event::new(format!("k{k}"));
            for (f, value) in fields {
                ev.set_attr(format!("f{f}"), term_to_attr(&value));
            }
            (dt, ev)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn indexed_engine_matches_reference(
        src in arb_rules(),
        events in proptest::collection::vec(arb_event(), 1..30),
    ) {
        let rules = parse_rules(&src).expect("generated rules parse");
        let mut reference = ReferenceEngine::new(rules.clone());
        let mut engine = MatchletEngine::new();
        for rule in rules {
            engine.add_rule(rule);
        }
        let kb = kb();
        let mut now = SimTime::ZERO;
        for (dt, ev) in &events {
            now += gloss_sim::SimDuration::from_secs(*dt);
            let expected = reference.on_event(now, ev, &kb);
            let got = engine.on_event(now, ev, &kb);
            prop_assert_eq!(
                canonical(&got),
                canonical(&expected),
                "rules:\n{}\nevent: {} at {}",
                src,
                ev,
                now
            );
        }
        prop_assert_eq!(engine.stats.eval_errors, reference.eval_errors);
        let fired: u64 = engine.rules().iter().map(|r| r.fired).sum();
        prop_assert_eq!(engine.stats.events_out, fired);
    }
}

// --- incremental engine vs from-scratch re-solve -------------------------

/// Hides a store's change feed: an engine fed through this wrapper can
/// never memoise and re-solves every firing from scratch — the exact
/// "from-scratch re-solve" semantics the incremental path must preserve.
struct Opaque<'a>(&'a InMemoryFacts);

impl FactSource for Opaque<'_> {
    fn query<'b>(
        &'b self,
        subject: Option<&'b str>,
        predicate: Option<&'b str>,
    ) -> Box<dyn Iterator<Item = &'b Fact> + 'b> {
        self.0.query(subject, predicate)
    }

    fn for_each_at(
        &self,
        subject: Option<&str>,
        predicate: Option<&str>,
        t: SimTime,
        f: &mut dyn FnMut(&Fact),
    ) {
        self.0.for_each_at(subject, predicate, t, f)
    }
}

/// Renders events order-sensitively (attribute maps iterate in name
/// order, so each rendering is canonical; the *sequence* is compared).
fn rendered(events: &[Event]) -> Vec<String> {
    events
        .iter()
        .map(|e| {
            let attrs: Vec<String> = e.attrs().map(|(k, v)| format!("{k}={v:?}")).collect();
            format!("{}({})", e.kind(), attrs.join(","))
        })
        .collect()
}

/// One step of a random knowledge/rule/event interleaving.
#[derive(Debug, Clone)]
enum ChurnOp {
    /// Advance time and offer an event.
    Event(u64, Event),
    /// Insert a fact, optionally with a validity window starting at the
    /// current time plus the first offset and ending plus the second.
    Insert { subject: String, object: Term, windowed: Option<(u64, u64)> },
    /// Retract every fact matching `(subject, likes, object)`.
    Retract { subject: String, object: Term },
    /// Remove all facts about a subject.
    RemoveSubject(String),
    /// Hot-add one rule from source.
    AddRule(String),
    /// Remove a rule by name.
    RemoveRule(usize),
}

fn arb_subject() -> impl Strategy<Value = String> {
    prop_oneof![Just("ua"), Just("ub"), Just("uc")].prop_map(String::from)
}

fn arb_object() -> impl Strategy<Value = Term> {
    prop_oneof![
        prop_oneof![Just("ice"), Just("tea")].prop_map(Term::str),
        (0i64..3).prop_map(Term::Int),
    ]
}

/// Rule bodies over the churned predicates: fact enumerations with bound
/// and unbound subjects, multi-goal chains, and a windowed two-pattern
/// event join on top (wrapped in `rule aN { ... }` at apply time).
fn arb_churn_rule_body() -> impl Strategy<Value = String> {
    let bodies = prop_oneof![
        Just("on a: event k0(f0: ?v0) where fact(?v0, likes, ?v2)".to_string()),
        Just("on a: event k1() where fact(?v0, likes, \"ice\")".to_string()),
        Just("on a: event k0(f0: ?v0) where fact(?v0, likes, ?v2) and fact(?v0, knows, ?v1)".to_string()),
        Just("on a: event k1(f1: ?v1) on b: event k2(f1: ?v1) where fact(?v0, likes, ?v2) and ?v1 != 1".to_string()),
        Just("on a: event k2(f0: ?v0, f1: ?v1) where fact(?v0, rank, ?v1)".to_string()),
    ];
    (bodies, 10u64..40).prop_map(|(body, win)| format!("{body} within {win} s emit out(u: ?v0)"))
}

fn arb_op() -> impl Strategy<Value = ChurnOp> {
    let event = || arb_event().prop_map(|(dt, ev)| ChurnOp::Event(dt, ev));
    let insert = || {
        (arb_subject(), arb_object(), (0u64..4), (0u64..10), (10u64..30)).prop_map(
            |(subject, object, w, from, to)| ChurnOp::Insert {
                subject,
                object,
                windowed: (w == 0).then_some((from, to)),
            },
        )
    };
    // The vendored proptest has no weighted `prop_oneof!`; duplicate
    // entries weight events and inserts over the rarer churn ops.
    prop_oneof![
        event(),
        event(),
        event(),
        event(),
        event(),
        insert(),
        insert(),
        (arb_subject(), arb_object())
            .prop_map(|(subject, object)| ChurnOp::Retract { subject, object }),
        arb_subject().prop_map(ChurnOp::RemoveSubject),
        arb_churn_rule_body().prop_map(ChurnOp::AddRule),
        (0usize..4).prop_map(ChurnOp::RemoveRule),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn incremental_engine_matches_from_scratch_resolve(
        base_rules in arb_rules(),
        ops in proptest::collection::vec(arb_op(), 1..48),
    ) {
        let rules = parse_rules(&base_rules).expect("generated rules parse");
        let mut incremental = MatchletEngine::new();
        let mut scratch = MatchletEngine::new();
        for rule in rules {
            incremental.add_rule(rule.clone());
            scratch.add_rule(rule);
        }
        let mut kb = kb();
        kb.add(Fact::new("ua", "rank", Term::Int(1)));
        kb.add(Fact::new("ub", "rank", Term::Int(2)));
        let mut now = SimTime::ZERO;
        let mut added = 0usize;
        for op in &ops {
            match op {
                ChurnOp::Event(dt, ev) => {
                    now += gloss_sim::SimDuration::from_secs(*dt);
                    let got = incremental.on_event(now, ev, &kb);
                    let expected = scratch.on_event(now, ev, &Opaque(&kb));
                    prop_assert_eq!(
                        rendered(&got),
                        rendered(&expected),
                        "diverged on event {} at {}",
                        ev,
                        now
                    );
                }
                ChurnOp::Insert { subject, object, windowed } => {
                    let mut fact = Fact::new(subject.clone(), "likes", object.clone());
                    if let Some((from, to)) = windowed {
                        fact = fact.valid_between(
                            now + gloss_sim::SimDuration::from_secs(*from),
                            now + gloss_sim::SimDuration::from_secs(*to),
                        );
                    }
                    kb.add(fact);
                }
                ChurnOp::Retract { subject, object } => {
                    kb.retract(subject, "likes", object);
                }
                ChurnOp::RemoveSubject(subject) => {
                    kb.remove_subject(subject);
                }
                ChurnOp::AddRule(body) => {
                    // Names cycle over a0..a3 so RemoveRule ops land on
                    // real rules often (same-name rules are fine: removal
                    // takes all of them, identically in both engines).
                    let src = format!("rule a{} {{ {body} }}", added % 4);
                    let parsed = parse_rules(&src).expect("churn rule parses");
                    added += 1;
                    for r in parsed {
                        incremental.add_rule(r.clone());
                        scratch.add_rule(r);
                    }
                }
                ChurnOp::RemoveRule(i) => {
                    let name = format!("a{i}");
                    prop_assert_eq!(incremental.remove_rule(&name), scratch.remove_rule(&name));
                }
            }
        }
        prop_assert_eq!(incremental.stats.eval_errors, scratch.stats.eval_errors);
        prop_assert_eq!(incremental.stats.events_out, scratch.stats.events_out);
        let fired_inc: Vec<u64> = incremental.rules().iter().map(|r| r.fired).collect();
        let fired_scr: Vec<u64> = scratch.rules().iter().map(|r| r.fired).collect();
        prop_assert_eq!(fired_inc, fired_scr);
    }
}

/// Validity windows must expire out of the alpha/beta memories: a memo
/// computed while a windowed fact held must not replay once it lapses,
/// and one computed before the window opens must not mask the opening.
#[test]
fn validity_windows_expire_out_of_alpha_and_beta_memories() {
    let mut kb = InMemoryFacts::new();
    kb.add(Fact::new("ua", "likes", Term::str("ice")));
    kb.add(
        Fact::new("ub", "likes", Term::str("ice"))
            .valid_between(SimTime::from_secs(100), SimTime::from_secs(200)),
    );
    let src = r#"rule fans { on q: event k1() where fact(?v0, likes, "ice") emit out(u: ?v0) }"#;
    let mut incremental = MatchletEngine::compile(src).unwrap();
    let mut scratch = MatchletEngine::compile(src).unwrap();
    let ev = Event::new("k1");
    for secs in [0u64, 50, 99, 100, 150, 199, 200, 250, 150, 50] {
        // (The last two go backwards: replay probes must handle any
        // computed_at/now ordering.)
        let now = SimTime::from_secs(secs);
        let got = rendered(&incremental.on_event(now, &ev, &kb));
        let expected = rendered(&scratch.on_event(now, &ev, &Opaque(&kb)));
        assert_eq!(got, expected, "at t={secs}");
        let inside = (100..200).contains(&secs);
        assert_eq!(got.len(), if inside { 2 } else { 1 }, "ub only inside the window (t={secs})");
    }
    assert!(incremental.stats.memo_hits > 0, "steady spans were memoised");
}
