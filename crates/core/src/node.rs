//! The integrated architecture node: broker + storelet + thin server +
//! matchlets, with the coordinator engines on node 0.

use crate::service::ServiceSpec;
use gloss_bundle::{AuthKey, Bundle, Capability, ThinServer};
use gloss_deploy::{EvolutionEngine, MonitorEngine, NodeResources};
use gloss_event::{Broker, BrokerMsg, Event, EventId, Filter, Subscription};
use gloss_knowledge::{
    reconcile, DeltaAction, DeltaBatch, DistributedKnowledge, FactDelta, InMemoryFacts,
};
use gloss_overlay::Key;
use gloss_sim::{Batch, Input, Node, NodeIndex, Outbox, SimDuration, SimTime};
use gloss_store::{Document, StoreMsg, StoreNode};
use gloss_xml::Element;
use std::collections::{BTreeMap, BTreeSet};

/// Messages of the integrated architecture.
#[derive(Debug, Clone, PartialEq)]
pub enum GlossMsg {
    /// Event-plane traffic (Siena brokers).
    PubSub(BrokerMsg),
    /// Storage-plane traffic (overlay + storage).
    Store(StoreMsg),
    /// A locally sensed event (device wrappers / workload injection).
    Sensor(Event),
    /// A UI client subscription on this node.
    UiSubscribe(Filter),
    /// Prefetch the knowledge-base document for a subject into this node.
    PrefetchSubject(String),
    /// Pull the latest delta batch for a subject (repairs incrementally
    /// when it extends the held state; falls back to the full document
    /// otherwise).
    PrefetchDeltas(String),
    /// A sealed code bundle shipped by the evolution engine or discovery.
    Bundle {
        /// Instance id (evolution bookkeeping; empty for discovery).
        instance: String,
        /// The XML packet.
        packet: String,
    },
    /// Install confirmation back to the coordinator.
    Installed {
        /// Instance id.
        instance: String,
    },
    /// A node saw an event kind no local matchlet handles (discovery, §5).
    UnknownKind {
        /// The unhandled kind.
        kind: String,
    },
}

/// Timer tags owned by the integration layer (store/overlay tags pass
/// through to the storelet).
mod timers {
    /// Worker resource heartbeat.
    pub const HEARTBEAT: u64 = 0x40;
    /// Coordinator sweep (monitor + reconcile).
    pub const SWEEP: u64 = 0x41;
}

/// Coordinator-only state (node 0).
#[derive(Debug)]
pub struct CoordinatorState {
    /// The monitoring engine.
    pub monitor: MonitorEngine,
    /// The evolution engine.
    pub evolution: EvolutionEngine,
    /// Registered services by name.
    pub services: BTreeMap<String, ServiceSpec>,
    /// Kinds currently being discovered → reporting nodes.
    discovery_pending: BTreeMap<String, BTreeSet<NodeIndex>>,
    /// Outstanding handler-code fetches: store request id → kind.
    handler_reqs: BTreeMap<u64, String>,
    next_req: u64,
    /// Kinds successfully discovered and deployed.
    pub discovered: Vec<String>,
}

impl CoordinatorState {
    fn new(monitor_deadline: SimDuration) -> Self {
        CoordinatorState {
            monitor: MonitorEngine::new(monitor_deadline),
            evolution: EvolutionEngine::new(Vec::new()),
            services: BTreeMap::new(),
            discovery_pending: BTreeMap::new(),
            handler_reqs: BTreeMap::new(),
            next_req: 0,
            discovered: Vec::new(),
        }
    }
}

/// One node of the active architecture.
#[derive(Debug)]
pub struct GlossNode {
    me: NodeIndex,
    /// The event broker.
    pub broker: Broker,
    /// The storelet (overlay + storage + caches).
    pub store: StoreNode,
    /// The thin server hosting matchlets.
    pub server: ThinServer,
    /// The node-local fact store (fed by `kb/…` documents).
    pub kb: InMemoryFacts,
    resources: NodeResources,
    coordinator: NodeIndex,
    heartbeat: SimDuration,
    sweep_every: SimDuration,
    key: AuthKey,
    sub_seq: u64,
    pub_seq: u64,
    subscribed_kinds: BTreeSet<String>,
    reported_unknown: BTreeSet<String>,
    /// UI-style subscriptions delivered to [`ui_received`](Self::ui_received).
    pub ui_filters: Vec<Filter>,
    /// Events delivered to this node's UI subscriptions.
    pub ui_received: Vec<Event>,
    /// Events synthesised by local matchlets.
    pub emitted: u64,
    /// Coordinator engines (node 0 only).
    pub coordinator_state: Option<CoordinatorState>,
    /// Subjects whose kb documents have been ingested locally.
    pub known_subjects: BTreeSet<String>,
    /// Ingested kb document version per subject: re-deliveries of an
    /// unchanged document (cache pushes, replica re-sends) are skipped
    /// so they do not churn the fact store's delta feed — and with it
    /// the matching engine's memoised solutions — for nothing.
    kb_doc_versions: BTreeMap<String, u64>,
    /// Authority `(source, epoch)` each locally held subject is anchored
    /// at, set by versioned snapshots and advanced by applied delta
    /// batches. Subjects ingested from legacy (unversioned) snapshots
    /// have no entry and fall back to snapshot fetches on any delta.
    kb_sub_versions: BTreeMap<String, (u64, u64)>,
    /// Highest `kbdelta/<subject>` *document* version ingested, per
    /// subject. Delta prefetches demand strictly newer copies so a
    /// stale promiscuously-cached batch can't short-circuit the pull.
    kb_delta_doc_versions: BTreeMap<String, u64>,
}

impl GlossNode {
    /// Creates an integrated node.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        me: NodeIndex,
        broker: Broker,
        store: StoreNode,
        resources: NodeResources,
        coordinator: NodeIndex,
        key: AuthKey,
        heartbeat: SimDuration,
        monitor_deadline: SimDuration,
    ) -> Self {
        let mut server = ThinServer::new(format!("gloss-{me}"));
        server.trust(key.clone());
        server.grant(key.issuer(), Capability::DeployMatchlet);
        server.grant(key.issuer(), Capability::DeployComponent);
        server.grant(key.issuer(), Capability::StoreAccess);
        let coordinator_state =
            (me == coordinator).then(|| CoordinatorState::new(monitor_deadline));
        GlossNode {
            me,
            broker,
            store,
            server,
            kb: InMemoryFacts::new(),
            resources,
            coordinator,
            heartbeat,
            sweep_every: SimDuration::from_secs(10),
            key,
            sub_seq: 0,
            pub_seq: 0,
            subscribed_kinds: BTreeSet::new(),
            reported_unknown: BTreeSet::new(),
            ui_filters: Vec::new(),
            ui_received: Vec::new(),
            emitted: 0,
            coordinator_state,
            known_subjects: BTreeSet::new(),
            kb_doc_versions: BTreeMap::new(),
            kb_sub_versions: BTreeMap::new(),
            kb_delta_doc_versions: BTreeMap::new(),
        }
    }

    /// This node's index.
    pub fn index(&self) -> NodeIndex {
        self.me
    }

    /// Whether this node is the coordinator.
    pub fn is_coordinator(&self) -> bool {
        self.coordinator_state.is_some()
    }

    fn broker_do(
        &mut self,
        now: SimTime,
        from: NodeIndex,
        msg: BrokerMsg,
        out: &mut Outbox<GlossMsg>,
    ) {
        let mut bout = Outbox::new();
        self.broker.handle(now, from, msg, &mut bout);
        bout.transfer_into(out, GlossMsg::PubSub);
    }

    fn subscribe_filter(&mut self, now: SimTime, filter: Filter, out: &mut Outbox<GlossMsg>) {
        self.sub_seq += 1;
        let id = ((self.me.0 as u64) << 32) | self.sub_seq;
        let me = self.me;
        self.broker_do(now, me, BrokerMsg::Subscribe(Subscription { id, filter }), out);
    }

    fn subscribe_kind(&mut self, now: SimTime, kind: &str, out: &mut Outbox<GlossMsg>) {
        if self.subscribed_kinds.insert(kind.to_string()) {
            self.subscribe_filter(now, Filter::for_kind(kind), out);
        }
    }

    /// Publishes an event onto the bus from this node.
    fn publish(&mut self, now: SimTime, mut event: Event, out: &mut Outbox<GlossMsg>) {
        self.pub_seq += 1;
        event.stamp(EventId { origin: self.me, seq: self.pub_seq }, now);
        let me = self.me;
        self.broker_do(now, me, BrokerMsg::Publish(event), out);
    }

    /// Client-side delivery: UI logging, matchlet matching, coordinator
    /// engines.
    fn deliver_to_client(&mut self, now: SimTime, event: Event, out: &mut Outbox<GlossMsg>) {
        if self.ui_filters.iter().any(|f| f.matches(&event)) {
            out.count("gloss.ui_delivered", 1.0);
            self.ui_received.push(event.clone());
        }
        // Coordinator engines consume resource events from the bus.
        if event.kind().starts_with("resource.") {
            if let Some(cs) = self.coordinator_state.as_mut() {
                cs.monitor.on_event(now, &event);
                let actions = cs.evolution.on_event(now, &event);
                self.dispatch_actions(now, actions, out);
            }
            return;
        }
        // Matchlets. All bundles installed on this node share the
        // server's one engine, so its alpha/beta indexes are repaired
        // once per knowledge update however many matchlets are deployed;
        // memo hits are surfaced as a world metric.
        let memo_before = self.server.engine().stats.memo_hits;
        let outputs = self.server.match_event(now, &event, &self.kb);
        let memo_hits = self.server.engine().stats.memo_hits - memo_before;
        if memo_hits > 0 {
            out.count("gloss.match_memo_hits", memo_hits as f64);
        }
        for synthesized in outputs {
            self.emitted += 1;
            out.count("gloss.synthesized", 1.0);
            out.trace("synthesize", format!("{synthesized}"));
            self.publish(now, synthesized, out);
        }
    }

    fn dispatch_actions(
        &mut self,
        now: SimTime,
        actions: Vec<(String, gloss_deploy::Action)>,
        out: &mut Outbox<GlossMsg>,
    ) {
        let _ = now;
        for (instance, action) in actions {
            if let gloss_deploy::Action::Deploy { kind, node } = action {
                let cs = self.coordinator_state.as_ref().expect("only coordinator dispatches");
                let bundle = match kind.strip_prefix("matchlet:") {
                    Some(service_name) => match cs.services.get(service_name) {
                        Some(spec) => Bundle::matchlet(instance.clone(), &spec.rules_source)
                            .issued_by(self.key.issuer()),
                        None => continue,
                    },
                    None => Bundle::component(instance.clone(), kind, Element::new("cfg"))
                        .issued_by(self.key.issuer()),
                };
                let packet = bundle.to_packet(&self.key);
                out.count("gloss.bundles_sent", 1.0);
                out.send(node, GlossMsg::Bundle { instance, packet });
            }
        }
    }

    /// Feeds a store-plane message to the storelet, then runs the
    /// knowledge/discovery ingestion hooks.
    fn store_do(
        &mut self,
        now: SimTime,
        from: NodeIndex,
        msg: StoreMsg,
        out: &mut Outbox<GlossMsg>,
    ) {
        let landed_doc: Option<Document> = match &msg {
            StoreMsg::ReplicaPut { doc } | StoreMsg::CachePush { doc } => Some(doc.clone()),
            StoreMsg::FetchReply { doc, .. } => Some(doc.clone()),
            _ => None,
        };
        let concluded_req: Option<u64> = match &msg {
            StoreMsg::FetchReply { req_id, .. } | StoreMsg::NotFound { req_id, .. } => {
                Some(*req_id)
            }
            _ => None,
        };
        let mut sout = Outbox::new();
        self.store.handle(now, from, msg, &mut sout);
        sout.transfer_into(out, GlossMsg::Store);
        if let Some(doc) = landed_doc {
            self.ingest_document(now, &doc, out);
        }
        if let Some(req) = concluded_req {
            self.conclude_discovery_fetch(now, req, out);
        }
    }

    /// Knowledge documents ingest into the local fact store wherever
    /// they land — the knowledge analogue of promiscuous caching.
    /// `kb/<subject>` documents are full snapshots;
    /// `kbdelta/<subject>@<from..to>` documents are epoch-tagged delta
    /// batches repairing the held state incrementally.
    fn ingest_document(&mut self, now: SimTime, doc: &Document, out: &mut Outbox<GlossMsg>) {
        if doc.name.starts_with("kbdelta/") {
            self.ingest_delta_document(now, doc, out);
            return;
        }
        let Some(subject) = doc.name.strip_prefix("kb/") else {
            return;
        };
        // A version we already hold is a no-op re-delivery (the version
        // is the document's content identity at the storage layer):
        // re-ingesting it would only spray retract+insert deltas that
        // invalidate the matching engine's memos for nothing.
        if self.kb_doc_versions.get(subject).is_some_and(|v| *v >= doc.version) {
            out.count("gloss.kb_reingest_skipped", 1.0);
            return;
        }
        let Ok(text) = std::str::from_utf8(&doc.content) else {
            return;
        };
        let Ok(el) = gloss_xml::parse(text) else {
            return;
        };
        let snap_version = DistributedKnowledge::snapshot_version(&el);
        if let (Some((source, epoch)), Some(&(tracked_source, tracked_epoch))) =
            (snap_version, self.kb_sub_versions.get(subject))
        {
            // Deltas may have advanced us past the snapshot in flight:
            // rebuilding from it would roll those deltas back.
            if source == tracked_source && tracked_epoch >= epoch {
                out.count("gloss.kb_snapshot_stale", 1.0);
                return;
            }
        }
        let facts = DistributedKnowledge::facts_from_xml(&el);
        self.kb.remove_subject(subject);
        self.kb.extend(facts);
        self.known_subjects.insert(subject.to_string());
        self.kb_doc_versions.insert(subject.to_string(), doc.version);
        match snap_version {
            Some(v) => {
                self.kb_sub_versions.insert(subject.to_string(), v);
            }
            // A legacy snapshot breaks the anchor: epochs applied on top
            // of unanchored state would be fiction.
            None => {
                self.kb_sub_versions.remove(subject);
            }
        }
        out.count("gloss.kb_ingested", 1.0);
        out.count("gloss.kb_snapshot_bytes", doc.size() as f64);
    }

    /// Applies a `kbdelta/…` batch, or falls back to a full snapshot
    /// fetch when it cannot extend the held state ([`reconcile`]).
    fn ingest_delta_document(&mut self, now: SimTime, doc: &Document, out: &mut Outbox<GlossMsg>) {
        let Some(batch) = std::str::from_utf8(&doc.content)
            .ok()
            .and_then(|text| gloss_xml::parse(text).ok())
            .and_then(|el| DeltaBatch::from_xml(&el))
        else {
            return;
        };
        let subject = batch.subject.clone();
        let seen = self.kb_delta_doc_versions.entry(subject.clone()).or_insert(0);
        *seen = (*seen).max(doc.version);
        match reconcile(self.kb_sub_versions.get(&subject).copied(), &batch) {
            DeltaAction::Apply { skip } => {
                out.count("gloss.kb_delta_applied", 1.0);
                out.count("gloss.kb_delta_facts", (batch.deltas.len() - skip) as f64);
                out.count("gloss.kb_delta_bytes", doc.size() as f64);
                for d in &batch.deltas[skip..] {
                    match d {
                        FactDelta::Insert(f) => self.kb.add(f.clone()),
                        FactDelta::Retract(f) => {
                            self.kb.retract(&f.subject, &f.predicate, &f.object);
                        }
                    }
                }
                self.known_subjects.insert(subject.clone());
                self.kb_sub_versions.insert(subject, (batch.source, batch.to));
            }
            DeltaAction::Stale => out.count("gloss.kb_delta_stale", 1.0),
            DeltaAction::Snapshot(_) => {
                // Unanchored, writer changed identity, or epochs are
                // missing (e.g. the writer's bounded log truncated):
                // repair by fetching the full document.
                out.count("gloss.kb_delta_fallback", 1.0);
                self.prefetch_subject(now, &subject, out);
            }
        }
    }

    /// Completes a discovery fetch: deploy handler code to the reporters.
    fn conclude_discovery_fetch(&mut self, now: SimTime, req: u64, out: &mut Outbox<GlossMsg>) {
        let Some(cs) = self.coordinator_state.as_mut() else {
            return;
        };
        if !cs.handler_reqs.contains_key(&req) {
            return;
        }
        // Only conclude once the storage layer has an outcome (the fetch
        // may still be in flight when this is probed optimistically).
        let Some(outcome) = self.store.outcomes.get(&req).cloned() else {
            return;
        };
        let kind = cs.handler_reqs.remove(&req).expect("checked above");
        let reporters = cs.discovery_pending.remove(&kind).unwrap_or_default();
        match outcome.doc {
            Some(doc) => {
                let Ok(source) = String::from_utf8(doc.content.to_vec()) else {
                    return;
                };
                cs.discovered.push(kind.clone());
                out.count("gloss.discovered_kinds", 1.0);
                let bundle = Bundle::matchlet(format!("discovered:{kind}"), &source)
                    .issued_by(self.key.issuer());
                let packet = bundle.to_packet(&self.key);
                for node in reporters {
                    if node == self.me {
                        // Install locally.
                        if self.server.receive_packet(&packet).is_ok() {
                            let kinds: Vec<String> = self
                                .server
                                .engine()
                                .rules()
                                .iter()
                                .flat_map(|r| r.rule.patterns.iter().map(|p| p.kind.clone()))
                                .collect();
                            for k in kinds {
                                self.subscribe_kind(now, &k, out);
                            }
                        }
                    } else {
                        out.send(
                            node,
                            GlossMsg::Bundle { instance: String::new(), packet: packet.clone() },
                        );
                    }
                }
            }
            None => {
                out.count("gloss.discovery_misses", 1.0);
            }
        }
    }

    fn handle_sensor(&mut self, now: SimTime, event: Event, out: &mut Outbox<GlossMsg>) {
        out.count("gloss.sensor_events", 1.0);
        // Local delivery first (devices feed the local pipeline), then the
        // global event service.
        self.deliver_to_client(now, event.clone(), out);
        // Discovery: no local matchlet handles this kind.
        if !event.kind().starts_with("resource.")
            && !self.server.engine().handles_kind(event.kind())
            && self.reported_unknown.insert(event.kind().to_string())
        {
            out.send(self.coordinator, GlossMsg::UnknownKind { kind: event.kind().to_string() });
        }
        self.publish(now, event, out);
    }

    fn on_start(&mut self, now: SimTime, out: &mut Outbox<GlossMsg>) {
        // Attach to our own broker as the local client.
        let me = self.me;
        self.broker_do(now, me, BrokerMsg::Attach, out);
        // Storage/overlay stack.
        let mut sout = Outbox::new();
        self.store.on_start(&mut sout);
        sout.transfer_into(out, GlossMsg::Store);
        if self.is_coordinator() {
            self.subscribe_kind(now, gloss_deploy::resource::kinds::ADVERTISE, out);
            self.subscribe_kind(now, gloss_deploy::resource::kinds::WITHDRAW, out);
            out.timer(self.sweep_every, timers::SWEEP);
        } else {
            let advert = self.resources.to_event();
            self.publish(now, advert, out);
            out.timer(self.heartbeat, timers::HEARTBEAT);
        }
    }

    fn on_timer(&mut self, now: SimTime, tag: u64, out: &mut Outbox<GlossMsg>) {
        match tag {
            timers::HEARTBEAT => {
                let advert = self.resources.to_event();
                self.publish(now, advert, out);
                out.timer(self.heartbeat, timers::HEARTBEAT);
            }
            timers::SWEEP => {
                if let Some(cs) = self.coordinator_state.as_mut() {
                    let mut actions = Vec::new();
                    for failure in cs.monitor.sweep(now) {
                        out.count("gloss.failures_detected", 1.0);
                        actions.extend(cs.evolution.on_event(now, &failure));
                    }
                    actions.extend(cs.evolution.reconcile(now));
                    self.dispatch_actions(now, actions, out);
                }
                out.timer(self.sweep_every, timers::SWEEP);
            }
            other => {
                let mut sout = Outbox::new();
                self.store.on_timer(now, other, &mut sout);
                sout.transfer_into(out, GlossMsg::Store);
            }
        }
    }

    /// Issues a storage lookup for a subject's kb document (the reply
    /// auto-ingests).
    fn prefetch_subject(&mut self, now: SimTime, subject: &str, out: &mut Outbox<GlossMsg>) {
        let guid = Key::hash_of_str(&DistributedKnowledge::doc_name(subject));
        self.sub_seq += 1;
        let req = (1 << 48) | ((self.me.0 as u64) << 20) | self.sub_seq;
        // Versions at or below the one already ingested are no-ops, so
        // don't let a stale cached copy answer for the authoritative
        // one; the responsible node still serves whatever it holds.
        let floor = self.kb_doc_versions.get(subject).map_or(0, |v| v.saturating_add(1));
        let mut sout = Outbox::new();
        self.store.lookup_min_version(guid, floor, req, now, &mut sout);
        sout.transfer_into(out, GlossMsg::Store);
        // A locally held copy concludes synchronously with no FetchReply
        // message, so the ingest hook must run here.
        if let Some(doc) = self.store.outcomes.get(&req).and_then(|o| o.doc.clone()) {
            self.ingest_document(now, &doc, out);
        }
    }

    /// Issues a storage lookup for a subject's latest delta batch (the
    /// reply auto-ingests through [`reconcile`], falling back to a full
    /// fetch when the batch cannot extend the held state).
    fn prefetch_deltas(&mut self, now: SimTime, subject: &str, out: &mut Outbox<GlossMsg>) {
        let guid = Key::hash_of_str(&format!("kbdelta/{subject}"));
        self.sub_seq += 1;
        let req = (1 << 48) | ((self.me.0 as u64) << 20) | self.sub_seq;
        // Demand a batch newer than the last one ingested: any cached
        // copy we (or an en-route node) already hold is stale by
        // definition, and serving it would end the pull early.
        let floor = self.kb_delta_doc_versions.get(subject).map_or(0, |v| v.saturating_add(1));
        let mut sout = Outbox::new();
        self.store.lookup_min_version(guid, floor, req, now, &mut sout);
        sout.transfer_into(out, GlossMsg::Store);
        if let Some(doc) = self.store.outcomes.get(&req).and_then(|o| o.doc.clone()) {
            self.ingest_document(now, &doc, out);
        }
    }
}

impl Node for GlossNode {
    type Msg = GlossMsg;

    fn handle(&mut self, now: SimTime, input: Input<GlossMsg>, out: &mut Outbox<GlossMsg>) {
        match input {
            Input::Start => self.on_start(now, out),
            Input::Timer { tag } => self.on_timer(now, tag, out),
            Input::Msg { from, msg } => self.on_msg(now, from, msg, out),
        }
    }

    /// Batched delivery: broker fan-out and matchlet-bound event streams
    /// arriving at one instant dispatch in one call (the enclosing world
    /// applies their effects as a single activation).
    fn on_batch(
        &mut self,
        now: SimTime,
        batch: &mut Batch<'_, GlossMsg>,
        out: &mut Outbox<GlossMsg>,
    ) {
        if batch.len() > 1 {
            out.count("gloss.batched_events", batch.len() as f64);
        }
        for (from, msg) in batch {
            self.on_msg(now, from, msg, out);
        }
    }
}

impl GlossNode {
    fn on_msg(&mut self, now: SimTime, from: NodeIndex, msg: GlossMsg, out: &mut Outbox<GlossMsg>) {
        match msg {
            GlossMsg::PubSub(bmsg) => {
                // A Notify from ourselves is the broker delivering to
                // its local client (this node); everything else is
                // broker-plane traffic.
                match bmsg {
                    BrokerMsg::Notify(event) if from == self.me => {
                        self.deliver_to_client(now, event, out)
                    }
                    other => self.broker_do(now, from, other, out),
                }
            }
            GlossMsg::Store(smsg) => self.store_do(now, from, smsg, out),
            GlossMsg::Sensor(event) => self.handle_sensor(now, event, out),
            GlossMsg::UiSubscribe(filter) => {
                // Deploy-time satisfiability gate: a filter proven to
                // match nothing would only bloat the routing tables.
                if gloss_analysis::unsatisfiable(&filter).is_some() {
                    out.count("gloss.subs_rejected", 1.0);
                    return;
                }
                self.ui_filters.push(filter.clone());
                self.subscribe_filter(now, filter, out);
            }
            GlossMsg::PrefetchSubject(subject) => self.prefetch_subject(now, &subject, out),
            GlossMsg::PrefetchDeltas(subject) => self.prefetch_deltas(now, &subject, out),
            GlossMsg::Bundle { instance, packet } => match self.server.receive_packet(&packet) {
                Ok(report) => {
                    out.count("gloss.installs", 1.0);
                    if report.lint_warnings > 0 {
                        out.count("gloss.lint_warnings", report.lint_warnings as f64);
                    }
                    let kinds: Vec<String> = self
                        .server
                        .engine()
                        .rules()
                        .iter()
                        .flat_map(|r| r.rule.patterns.iter().map(|p| p.kind.clone()))
                        .collect();
                    for k in kinds {
                        self.subscribe_kind(now, &k, out);
                    }
                    if !instance.is_empty() {
                        out.send(from, GlossMsg::Installed { instance });
                    }
                }
                Err(gloss_bundle::BundleError::RejectedByAnalysis(_)) => {
                    out.count("gloss.lint_rejected", 1.0);
                    out.count("gloss.install_failures", 1.0);
                }
                Err(_) => out.count("gloss.install_failures", 1.0),
            },
            GlossMsg::Installed { instance } => {
                if let Some(cs) = self.coordinator_state.as_mut() {
                    cs.evolution.confirm_deploy(now, &instance);
                    if cs.evolution.violations().is_empty() {
                        if let Some(&(v_at, r_at)) = cs.evolution.repair_episodes.last() {
                            out.observe("gloss.repair_ms", r_at.since(v_at).as_secs_f64() * 1e3);
                        }
                    }
                }
            }
            GlossMsg::UnknownKind { kind } => {
                let me = self.me;
                let mut fetch: Option<(u64, Key)> = None;
                if let Some(cs) = self.coordinator_state.as_mut() {
                    // Skip kinds already covered by a registered service.
                    let covered =
                        cs.services.values().any(|s| s.input_kinds.iter().any(|k| k == &kind));
                    let entry = cs.discovery_pending.entry(kind.clone()).or_default();
                    let first_report = entry.is_empty();
                    entry.insert(from);
                    if !covered && first_report {
                        cs.next_req += 1;
                        let req = (1 << 52) | cs.next_req;
                        cs.handler_reqs.insert(req, kind.clone());
                        let guid = Key::hash_of_str(&format!("code/{kind}"));
                        fetch = Some((req, guid));
                    }
                }
                let _ = me;
                if let Some((req, guid)) = fetch {
                    out.count("gloss.discovery_lookups", 1.0);
                    let mut sout = Outbox::new();
                    self.store.lookup(guid, req, now, &mut sout);
                    sout.transfer_into(out, GlossMsg::Store);
                    // A locally satisfied lookup concludes immediately.
                    self.conclude_discovery_fetch(now, req, out);
                }
            }
        }
    }
}
