//! Canned scenarios and workload generators: the paper's §1.1 examples as
//! runnable artefacts, plus the population workloads behind experiments
//! E1 and C7.

use crate::architecture::{ActiveArchitecture, ArchConfig};
use crate::service::ServiceSpec;
use gloss_event::{Event, Filter};
use gloss_knowledge::{Fact, PlaceDirectory, Term, UserProfile};
use gloss_sim::{GeoPoint, NodeIndex, SimDuration, SimRng, SimTime};

/// The paper's worked example: within a five-minute interval, correlate
/// Bob's preferences, nationality, location, the weather, Janetta's
/// opening hours, and Anna's proximity — and suggest an ice cream.
///
/// "If, within the time interval 16.45–16.50, all these items could be
/// correlated, a pervasive contextual service could suggest to both Bob
/// and Anna via some appropriate user interface mechanism that they might
/// wish to meet for an ice cream at Janetta's at 16.55."
#[derive(Debug)]
pub struct IceCreamScenario {
    /// The architecture the scenario runs on.
    pub arch: ActiveArchitecture,
    /// Where Bob's and Anna's UI clients live.
    pub ui_node: NodeIndex,
}

/// The matchlet realising the correlation (spatial, temporal and logical
/// relationships per §1.1).
pub const ICE_CREAM_RULES: &str = include_str!("matchlets/ice_cream.matchlet");

impl IceCreamScenario {
    /// Builds the architecture, seeds the knowledge base (Bob, Anna,
    /// Janetta's and the rest of St Andrews), deploys the service, and
    /// settles.
    pub fn setup(seed: u64) -> Self {
        let mut arch =
            ActiveArchitecture::build(ArchConfig { nodes: 8, seed, ..Default::default() });
        arch.settle();

        // Knowledge: profiles and the GIS directory.
        let (_, bob_facts) = UserProfile::paper_bob(
            SimTime::ZERO,
            SimTime::from_secs(7 * 24 * 3600), // on holiday all week
        );
        arch.seed_knowledge(NodeIndex(1), "bob", &bob_facts);
        let anna_facts = UserProfile::paper_anna().to_facts();
        arch.seed_knowledge(NodeIndex(2), "anna", &anna_facts);
        let directory = PlaceDirectory::st_andrews();
        for place in directory.iter() {
            arch.seed_knowledge(NodeIndex(3), &place.name, &place.to_facts());
        }
        arch.run_for(SimDuration::from_secs(30));

        // The service, constrained to run near the users (Scotland) with
        // a spare instance elsewhere.
        let spec = ServiceSpec::new(
            "ice_cream",
            ICE_CREAM_RULES,
            vec![(Some("scotland".into()), 1), (None, 2)],
        )
        .expect("scenario rules compile");
        arch.deploy_service(spec);
        arch.run_for(SimDuration::from_secs(60));

        // Matchlet hosts need the relevant knowledge locally; in the full
        // architecture this is driven by the caching policies (§4.5) — we
        // prefetch the subjects the service touches.
        for subject in ["bob", "anna"] {
            arch.prefetch_subject_everywhere(subject);
        }
        for place in directory.iter() {
            arch.prefetch_subject_everywhere(&place.name);
        }
        arch.run_for(SimDuration::from_secs(30));

        let ui_node = NodeIndex(1);
        let mut s = IceCreamScenario { arch, ui_node };
        s.arch.subscribe_ui(ui_node, Filter::for_kind("suggestion"));
        s.arch.run_for(SimDuration::from_secs(10));
        s
    }

    /// Plays the §1.1 event sequence: warm weather in South Street, Bob
    /// walking along North Street, Anna nearby — all within the window.
    pub fn play_events(&mut self) {
        let base = self.arch.now();
        // 16:45-equivalent: the correlation window opens.
        self.arch.publish_at(
            base + SimDuration::from_secs(10),
            NodeIndex(4),
            Event::new("weather.reading")
                .with_attr("street", "South Street")
                .with_attr("celsius", 20.0),
        );
        // Bob is in North Street, on foot (near Janetta's).
        self.arch.publish_at(
            base + SimDuration::from_secs(40),
            NodeIndex(5),
            Event::new("user.location")
                .with_attr("user", "bob")
                .with_attr("lat", 56.3417)
                .with_attr("lon", -2.7956)
                .with_attr("on_foot", true),
        );
        // Anna is at the paper's exact coordinate 56.3397, -2.80753.
        self.arch.publish_at(
            base + SimDuration::from_secs(70),
            NodeIndex(6),
            Event::new("user.location")
                .with_attr("user", "anna")
                .with_attr("lat", 56.3397)
                .with_attr("lon", -2.80753)
                .with_attr("on_foot", true),
        );
    }

    /// The suggestions delivered to the UI so far.
    pub fn suggestions(&self) -> Vec<&Event> {
        self.arch.node(self.ui_node).ui_received.iter().collect()
    }
}

/// A population workload: `users` wandering around St Andrews reporting
/// locations, street thermometers reporting temperature, and unrelated
/// background noise — the "very high volume of globally distributed items
/// of information" of Figure 1.
#[derive(Debug)]
pub struct PopulationWorkload {
    /// Number of simulated users.
    pub users: usize,
    /// Location report period per user.
    pub report_every: SimDuration,
    /// Weather report period per street.
    pub weather_every: SimDuration,
    /// Background noise events per second (population-wide).
    pub noise_rate: f64,
    /// Workload duration.
    pub duration: SimDuration,
}

impl Default for PopulationWorkload {
    fn default() -> Self {
        PopulationWorkload {
            users: 20,
            report_every: SimDuration::from_secs(30),
            weather_every: SimDuration::from_secs(60),
            noise_rate: 2.0,
            duration: SimDuration::from_secs(300),
        }
    }
}

impl PopulationWorkload {
    /// Injects the whole workload into `arch` starting now; returns the
    /// number of events scheduled.
    pub fn inject(&self, arch: &mut ActiveArchitecture, seed: u64) -> usize {
        let mut rng = SimRng::new(seed).fork("population");
        let n = arch.len() as u32;
        let base = arch.now();
        let mut scheduled = 0;

        // Users: random-walk positions around the town centre.
        let centre = GeoPoint::new(56.3404, -2.7955);
        for u in 0..self.users {
            let name = format!("user{u}");
            let mut pos = GeoPoint::new(
                centre.lat + rng.float_range(-0.03, 0.03),
                centre.lon + rng.float_range(-0.05, 0.05),
            );
            let node = NodeIndex(rng.range(0, n as u64) as u32);
            let mut t = base + SimDuration::from_millis(rng.range(0, 10_000));
            while t < base + self.duration {
                pos = GeoPoint::new(
                    pos.lat + rng.float_range(-0.0006, 0.0006),
                    pos.lon + rng.float_range(-0.001, 0.001),
                );
                arch.publish_at(
                    t,
                    node,
                    Event::new("user.location")
                        .with_attr("user", name.as_str())
                        .with_attr("lat", pos.lat)
                        .with_attr("lon", pos.lon)
                        .with_attr("on_foot", true),
                );
                scheduled += 1;
                t += self.report_every;
            }
        }

        // Weather per street.
        for (i, street) in ["South Street", "Market Street", "North Street"].iter().enumerate() {
            let node = NodeIndex((i as u32 + 1) % n);
            let mut t = base + SimDuration::from_millis(rng.range(0, 5_000));
            while t < base + self.duration {
                let c = 12.0 + rng.float_range(0.0, 7.0);
                arch.publish_at(
                    t,
                    node,
                    Event::new("weather.reading")
                        .with_attr("street", *street)
                        .with_attr("celsius", c),
                );
                scheduled += 1;
                t += self.weather_every;
            }
        }

        // Background noise: events no service cares about.
        let noise_events = (self.noise_rate * self.duration.as_secs_f64()) as usize;
        for _ in 0..noise_events {
            let node = NodeIndex(rng.range(0, n as u64) as u32);
            let t = base
                + SimDuration::from_secs_f64(rng.float_range(0.0, self.duration.as_secs_f64()));
            arch.publish_at(
                t,
                node,
                Event::new("telemetry.noise").with_attr("v", rng.range(0, 1_000) as i64),
            );
            scheduled += 1;
        }
        scheduled
    }

    /// Seeds profile facts for the population: everyone likes ice cream
    /// with a mixed set of nationalities, plus a ring of acquaintances.
    pub fn seed_population_knowledge(&self, arch: &mut ActiveArchitecture, seed: u64) {
        let mut rng = SimRng::new(seed).fork("population-kb");
        let nationalities = ["scottish", "australian", "brazilian", "german"];
        for u in 0..self.users {
            let name = format!("user{u}");
            let friend = format!("user{}", (u + 1) % self.users);
            let mut facts = vec![
                Fact::new(
                    &name,
                    "nationality",
                    Term::str(*rng.choose(&nationalities).expect("non-empty")),
                ),
                Fact::new(&name, "knows", Term::str(friend.as_str())),
            ];
            // A third of the population shares Bob's taste.
            if u % 3 == 0 {
                facts.push(Fact::new(&name, "likes", Term::str("ice cream")));
            }
            arch.seed_knowledge(NodeIndex((u % arch.len()) as u32), &name, &facts);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ice_cream_scenario_produces_the_papers_suggestion() {
        let mut s = IceCreamScenario::setup(42);
        s.play_events();
        // The correlation window is five minutes; run it out.
        s.arch.run_for(SimDuration::from_secs(360));
        let suggestions = s.suggestions();
        assert!(!suggestions.is_empty(), "the scenario must produce at least one suggestion");
        let sg = suggestions[0];
        assert_eq!(sg.str_attr("user"), Some("bob"));
        assert_eq!(sg.str_attr("friend"), Some("anna"));
        assert_eq!(sg.str_attr("shop"), Some("Janetta's"));
    }

    #[test]
    fn no_suggestion_in_cold_weather() {
        let mut s = IceCreamScenario::setup(43);
        let base = s.arch.now();
        // 8 °C: not hot even for Bob.
        s.arch.publish_at(
            base + SimDuration::from_secs(10),
            NodeIndex(4),
            Event::new("weather.reading")
                .with_attr("street", "South Street")
                .with_attr("celsius", 8.0),
        );
        s.arch.publish_at(
            base + SimDuration::from_secs(40),
            NodeIndex(5),
            Event::new("user.location")
                .with_attr("user", "bob")
                .with_attr("lat", 56.3417)
                .with_attr("lon", -2.7956)
                .with_attr("on_foot", true),
        );
        s.arch.publish_at(
            base + SimDuration::from_secs(70),
            NodeIndex(6),
            Event::new("user.location")
                .with_attr("user", "anna")
                .with_attr("lat", 56.3397)
                .with_attr("lon", -2.80753)
                .with_attr("on_foot", true),
        );
        s.arch.run_for(SimDuration::from_secs(360));
        assert!(s.suggestions().is_empty());
    }

    #[test]
    fn events_outside_the_window_do_not_correlate() {
        let mut s = IceCreamScenario::setup(44);
        let base = s.arch.now();
        s.arch.publish_at(
            base + SimDuration::from_secs(10),
            NodeIndex(4),
            Event::new("weather.reading")
                .with_attr("street", "South Street")
                .with_attr("celsius", 20.0),
        );
        // Bob appears 10 minutes later: the weather reading has expired.
        s.arch.publish_at(
            base + SimDuration::from_secs(610),
            NodeIndex(5),
            Event::new("user.location")
                .with_attr("user", "bob")
                .with_attr("lat", 56.3417)
                .with_attr("lon", -2.7956)
                .with_attr("on_foot", true),
        );
        s.arch.publish_at(
            base + SimDuration::from_secs(640),
            NodeIndex(6),
            Event::new("user.location")
                .with_attr("user", "anna")
                .with_attr("lat", 56.3397)
                .with_attr("lon", -2.80753)
                .with_attr("on_foot", true),
        );
        s.arch.run_for(SimDuration::from_secs(900));
        assert!(s.suggestions().is_empty());
    }

    #[test]
    fn population_workload_schedules_the_expected_volume() {
        let mut arch =
            ActiveArchitecture::build(ArchConfig { nodes: 6, seed: 9, ..Default::default() });
        arch.settle();
        let w = PopulationWorkload {
            users: 5,
            duration: SimDuration::from_secs(120),
            ..Default::default()
        };
        let scheduled = w.inject(&mut arch, 9);
        assert!(scheduled > 20, "scheduled {scheduled}");
        arch.run_for(SimDuration::from_secs(180));
        assert_eq!(arch.total_sensed(), scheduled as u64);
    }
}
