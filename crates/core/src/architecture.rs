//! The [`ActiveArchitecture`] harness: builds the full stack on a
//! simulated wide-area topology and exposes the operations the examples,
//! tests, and benchmarks drive.

use crate::node::{GlossMsg, GlossNode};
use crate::service::ServiceSpec;
use gloss_bundle::AuthKey;
use gloss_deploy::NodeResources;
use gloss_event::{Broker, BrokerTopology, Event, Filter};
use gloss_knowledge::{DistributedKnowledge, Fact, InMemoryFacts, KnowledgeAuthority, Shipment};
use gloss_overlay::OverlayMsg;
use gloss_overlay::{Key, OverlayNode};
use gloss_sim::{NodeIndex, SimDuration, SimRng, SimTime, Topology, World};
use gloss_store::placement::NodeSite;
use gloss_store::{Document, StoreConfig, StoreMsg, StoreNode, StorePayload};

/// Configuration for an [`ActiveArchitecture`].
#[derive(Debug, Clone)]
pub struct ArchConfig {
    /// Number of nodes (node 0 is the coordinator).
    pub nodes: usize,
    /// Root seed.
    pub seed: u64,
    /// Storage configuration (replication, caching, healing).
    pub store: StoreConfig,
    /// Worker heartbeat period.
    pub heartbeat: SimDuration,
    /// Monitor silence deadline.
    pub monitor_deadline: SimDuration,
    /// Region names the topology spans.
    pub regions: Vec<String>,
}

impl Default for ArchConfig {
    fn default() -> Self {
        ArchConfig {
            nodes: 8,
            seed: 1,
            store: StoreConfig::default(),
            heartbeat: SimDuration::from_secs(10),
            monitor_deadline: SimDuration::from_secs(30),
            regions: vec!["scotland".into(), "england".into(), "europe".into(), "australia".into()],
        }
    }
}

/// The assembled architecture: one [`GlossNode`] per physical node.
///
/// # Example
///
/// ```
/// use gloss_core::{ActiveArchitecture, ArchConfig};
/// let mut arch = ActiveArchitecture::build(ArchConfig { nodes: 4, ..Default::default() });
/// arch.settle();
/// assert!(arch.world().metrics().counter("sim.messages_delivered") > 0.0);
/// ```
#[derive(Debug)]
pub struct ActiveArchitecture {
    world: World<GlossNode>,
    next_store_req: u64,
    kb_versions: std::collections::BTreeMap<String, u64>,
    /// Authoritative per-subject fact stores feeding delta propagation:
    /// mutate via [`knowledge_mut`](Self::knowledge_mut), ship via
    /// [`update_knowledge`](Self::update_knowledge).
    authority: KnowledgeAuthority,
    kb_delta_versions: std::collections::BTreeMap<String, u64>,
}

impl ActiveArchitecture {
    /// Builds the stack per `cfg`.
    pub fn build(cfg: ArchConfig) -> Self {
        let regions: Vec<&str> = cfg.regions.iter().map(String::as_str).collect();
        let topology = Topology::random(cfg.nodes, &regions, cfg.seed);
        let mut rng = SimRng::new(cfg.seed).fork("gloss-arch");
        let key = AuthKey::new("evolution", b"gloss-architecture-key");

        // Broker graph: an acyclic peer star centred on the coordinator.
        // A worker crash then never partitions the event plane (the
        // brokers themselves have no topology-repair protocol — see
        // DESIGN.md; the general tree/graph topologies are exercised by
        // `gloss-event`'s own networks in experiment C1).
        let mut neighbors: Vec<Vec<NodeIndex>> = vec![Vec::new(); cfg.nodes];
        for i in 1..cfg.nodes {
            neighbors[i].push(NodeIndex(0));
            neighbors[0].push(NodeIndex(i as u32));
        }

        let directory: Vec<NodeSite> = topology
            .iter()
            .map(|info| NodeSite::new(info.index, info.geo, info.region.clone()))
            .collect();

        let mut nodes = Vec::with_capacity(cfg.nodes);
        for info in topology.iter() {
            let i = info.index.as_usize();
            let broker =
                Broker::new(info.index, BrokerTopology::Peer { neighbors: neighbors[i].clone() });
            let overlay_key = Key::hash_of(format!("gloss-node-{i}-{}", cfg.seed).as_bytes());
            let (bootstrap, delay) = if i == 0 {
                (None, SimDuration::ZERO)
            } else {
                (Some(NodeIndex(rng.index(i) as u32)), SimDuration::from_millis(200) * i as u64)
            };
            let overlay: OverlayNode<StorePayload> =
                OverlayNode::new(overlay_key, info.index, bootstrap, delay)
                    .with_probe_interval(SimDuration::from_secs(5))
                    .with_governor(
                        gloss_overlay::GovernorConfig::default(),
                        cfg.seed ^ ((i as u64) << 17),
                    );
            let store = StoreNode::new(info.index, overlay, cfg.store.clone(), directory.clone());
            let resources = NodeResources {
                node: info.index,
                region: info.region.clone(),
                geo: info.geo,
                cpu: info.cpu,
                storage: info.storage,
            };
            nodes.push(GlossNode::new(
                info.index,
                broker,
                store,
                resources,
                NodeIndex(0),
                key.clone(),
                cfg.heartbeat,
                cfg.monitor_deadline,
            ));
        }
        let world = World::new(topology, cfg.seed, nodes);
        ActiveArchitecture {
            world,
            next_store_req: 0,
            kb_versions: Default::default(),
            authority: KnowledgeAuthority::new(),
            kb_delta_versions: Default::default(),
        }
    }

    /// Runs long enough for overlay joins, broker subscriptions, and
    /// initial heartbeats to complete.
    pub fn settle(&mut self) {
        let n = self.world.topology().len() as u64;
        self.world.run_for(SimDuration::from_millis(200) * n + SimDuration::from_secs(90));
    }

    /// Advances the simulation.
    pub fn run_for(&mut self, d: SimDuration) {
        self.world.run_for(d);
    }

    /// Runs until an absolute simulated time.
    pub fn run_until(&mut self, t: SimTime) {
        self.world.run_until(t);
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.world.now()
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.world.topology().len()
    }

    /// Whether the architecture has no nodes.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The underlying world.
    pub fn world(&self) -> &World<GlossNode> {
        &self.world
    }

    /// Mutable world access (failure injection).
    pub fn world_mut(&mut self) -> &mut World<GlossNode> {
        &mut self.world
    }

    /// A node's state.
    pub fn node(&self, i: NodeIndex) -> &GlossNode {
        self.world.node(i)
    }

    /// Registers a contextual service: its constraints feed the evolution
    /// engine, which deploys matchlet bundles at the next sweep.
    pub fn deploy_service(&mut self, spec: ServiceSpec) {
        let cs = self
            .world
            .node_mut(NodeIndex(0))
            .coordinator_state
            .as_mut()
            .expect("node 0 is the coordinator");
        for c in spec.constraints() {
            cs.evolution.add_constraint(c);
        }
        cs.services.insert(spec.name.clone(), spec);
    }

    /// Publishes a sensed event at `node` now.
    pub fn publish(&mut self, node: NodeIndex, event: Event) {
        self.world.inject(node, node, GlossMsg::Sensor(event));
    }

    /// Publishes a sensed event at `node` at an absolute future time.
    pub fn publish_at(&mut self, at: SimTime, node: NodeIndex, event: Event) {
        self.world.inject_at(at, node, node, GlossMsg::Sensor(event));
    }

    /// Subscribes a UI client at `node`; matching events land in
    /// [`GlossNode::ui_received`].
    pub fn subscribe_ui(&mut self, node: NodeIndex, filter: Filter) {
        self.world.inject(node, node, GlossMsg::UiSubscribe(filter));
    }

    /// Writes facts about one subject into the distributed knowledge base
    /// (stored under `kb/<subject>` in the P2P store).
    ///
    /// The facts also become the authority state for the subject, so
    /// later [`knowledge_mut`](Self::knowledge_mut) +
    /// [`update_knowledge`](Self::update_knowledge) rounds ship only the
    /// changed tail as delta batches.
    pub fn seed_knowledge(&mut self, via: NodeIndex, subject: &str, facts: &[Fact]) {
        let store = self.authority.facts_mut(subject);
        store.remove_subject(subject);
        store.extend(facts.iter().cloned());
        let shipment = self.authority.snapshot(subject).expect("subject store just created");
        self.ship_knowledge(via, subject, shipment);
    }

    /// The authoritative fact store for `subject` (created on first
    /// use). Mutate it freely — inserts and retracts are logged — then
    /// call [`update_knowledge`](Self::update_knowledge) to ship the
    /// changes as an epoch-tagged delta batch.
    pub fn knowledge_mut(&mut self, subject: &str) -> &mut InMemoryFacts {
        self.authority.facts_mut(subject)
    }

    /// Ships everything that changed in `subject`'s authority store
    /// since the last shipment: a `kbdelta/<subject>@<from..to>` batch,
    /// or a full versioned `kb/<subject>` snapshot when the authority's
    /// bounded delta log truncated past the last shipment (receivers of
    /// older epochs then rebuild rather than miss deltas silently).
    pub fn update_knowledge(&mut self, via: NodeIndex, subject: &str) {
        if let Some(shipment) = self.authority.flush(subject) {
            self.ship_knowledge(via, subject, shipment);
        }
    }

    fn ship_knowledge(&mut self, via: NodeIndex, subject: &str, shipment: Shipment) {
        let doc = match shipment {
            Shipment::Snapshot { source, epoch, facts } => {
                let refs: Vec<&Fact> = facts.iter().collect();
                let xml =
                    DistributedKnowledge::facts_to_xml_versioned(subject, &refs, source, epoch)
                        .to_xml();
                let mut doc =
                    Document::new(DistributedKnowledge::doc_name(subject), xml.into_bytes());
                // Re-seeding a subject writes a newer version, so
                // replicas and caches converge on the update.
                let version = self.kb_versions.entry(subject.to_string()).or_insert(0);
                *version += 1;
                doc.version = *version;
                doc
            }
            Shipment::Delta(batch) => {
                let xml = batch.to_xml().to_xml();
                let mut doc = Document::new(batch.doc_name(), xml.into_bytes());
                // Every batch for a subject lives under ONE guid (the
                // epoch range travels in the name only), so successive
                // batches land on the same replica/cache set and
                // version-skipping drops stale re-deliveries.
                doc.guid = Key::hash_of_str(&format!("kbdelta/{subject}"));
                let version = self.kb_delta_versions.entry(subject.to_string()).or_insert(0);
                *version += 1;
                doc.version = *version;
                doc
            }
        };
        self.insert_document(via, doc);
    }

    /// Publishes matchlet handler code for an event kind into the storage
    /// architecture (`code/<kind>`), where discovery matchlets find it.
    pub fn register_handler_code(&mut self, via: NodeIndex, kind: &str, source: &str) {
        let doc = Document::new(format!("code/{kind}"), source.as_bytes().to_vec());
        self.insert_document(via, doc);
    }

    /// Inserts a raw document into the P2P store from `via`.
    pub fn insert_document(&mut self, via: NodeIndex, mut doc: Document) {
        doc.stamp(self.world.now());
        let guid = doc.guid;
        self.world.inject(
            via,
            via,
            GlossMsg::Store(StoreMsg::Overlay(OverlayMsg::Route {
                target: guid,
                payload: StorePayload::Insert { doc },
                origin: via,
                hops: 0,
            })),
        );
        self.next_store_req += 1;
    }

    /// Pulls the kb document for `subject` into `node`'s local fact store
    /// (through a real storage lookup; the reply auto-ingests).
    pub fn prefetch_subject(&mut self, node: NodeIndex, subject: &str) {
        self.world.inject(node, node, GlossMsg::PrefetchSubject(subject.to_string()));
    }

    /// Pulls a subject into every node (population-wide knowledge sync).
    pub fn prefetch_subject_everywhere(&mut self, subject: &str) {
        for i in 0..self.len() as u32 {
            self.prefetch_subject(NodeIndex(i), subject);
        }
    }

    /// Pulls the latest delta batch for `subject` into `node` — the
    /// incremental counterpart of [`prefetch_subject`](Self::prefetch_subject):
    /// a node whose held state the batch extends repairs in place; one
    /// it cannot extend falls back to a full fetch automatically.
    pub fn prefetch_deltas(&mut self, node: NodeIndex, subject: &str) {
        self.world.inject(node, node, GlossMsg::PrefetchDeltas(subject.to_string()));
    }

    /// Pulls a subject's latest delta batch into every node.
    pub fn prefetch_deltas_everywhere(&mut self, subject: &str) {
        for i in 0..self.len() as u32 {
            self.prefetch_deltas(NodeIndex(i), subject);
        }
    }

    /// Total events synthesised by matchlets across all nodes.
    pub fn total_synthesized(&self) -> u64 {
        self.world.nodes().map(|n| n.emitted).sum()
    }

    /// Total sensor events injected.
    pub fn total_sensed(&self) -> u64 {
        self.world.metrics().counter("gloss.sensor_events") as u64
    }

    /// The coordinator's evolution-engine satisfaction (1.0 = all
    /// placement constraints met).
    pub fn satisfaction(&self) -> f64 {
        self.world
            .node(NodeIndex(0))
            .coordinator_state
            .as_ref()
            .map(|cs| cs.evolution.satisfaction())
            .unwrap_or(1.0)
    }

    /// Nodes currently hosting an installed bundle whose name starts with
    /// the given prefix.
    pub fn hosts_of(&self, bundle_prefix: &str) -> Vec<NodeIndex> {
        (0..self.len() as u32)
            .map(NodeIndex)
            .filter(|&i| self.world.is_alive(i))
            .filter(|&i| {
                self.world
                    .node(i)
                    .server
                    .installed_names()
                    .iter()
                    .any(|n| n.starts_with(bundle_prefix))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gloss_knowledge::{FactSource, Term};

    fn arch(nodes: usize, seed: u64) -> ActiveArchitecture {
        let mut a = ActiveArchitecture::build(ArchConfig { nodes, seed, ..Default::default() });
        a.settle();
        a
    }

    #[test]
    fn coordinator_sees_worker_heartbeats() {
        let a = arch(6, 11);
        let cs = a.node(NodeIndex(0)).coordinator_state.as_ref().unwrap();
        // All five workers advertise over pub/sub.
        assert_eq!(cs.monitor.alive_count(), 5);
        assert_eq!(cs.evolution.resources().len(), 5);
    }

    #[test]
    fn service_deployment_installs_and_subscribes() {
        let mut a = arch(6, 12);
        let spec = ServiceSpec::new(
            "hot",
            r#"rule hot { on w: event weather.reading(celsius: ?c) where ?c >= 18.0 emit alert(celsius: ?c) }"#,
            vec![(None, 2)],
        )
        .unwrap();
        a.deploy_service(spec);
        a.run_for(SimDuration::from_secs(60));
        assert_eq!(a.satisfaction(), 1.0);
        let hosts = a.hosts_of("matchlet:hot");
        assert_eq!(hosts.len(), 2);
        // The full loop: a sensor event on some node reaches the hosted
        // matchlets through pub/sub and comes back as an alert.
        a.subscribe_ui(NodeIndex(1), Filter::for_kind("alert"));
        a.run_for(SimDuration::from_secs(30));
        a.publish(NodeIndex(5), Event::new("weather.reading").with_attr("celsius", 21.0));
        a.run_for(SimDuration::from_secs(30));
        assert!(a.total_synthesized() >= 1, "matchlet fired");
        assert!(
            !a.node(NodeIndex(1)).ui_received.is_empty(),
            "alert delivered to the UI subscriber"
        );
    }

    #[test]
    fn knowledge_seeding_and_prefetch() {
        let mut a = arch(6, 13);
        let facts = vec![
            Fact::new("bob", "likes", Term::str("ice cream")),
            Fact::new("bob", "nationality", Term::str("scottish")),
        ];
        a.seed_knowledge(NodeIndex(2), "bob", &facts);
        a.run_for(SimDuration::from_secs(30));
        a.prefetch_subject(NodeIndex(4), "bob");
        a.run_for(SimDuration::from_secs(30));
        let node = a.node(NodeIndex(4));
        assert!(node.known_subjects.contains("bob"));
        assert_eq!(node.kb.query(Some("bob"), None).count(), 2);
    }

    #[test]
    fn knowledge_updates_flow_through_the_delta_matching_path() {
        let mut a = arch(6, 16);
        let spec = ServiceSpec::new(
            "fans",
            r#"rule fans { on w: event weather.reading(celsius: ?c) where fact(?u, likes, "ice cream") and ?c >= 18.0 emit fan_alert(user: ?u) }"#,
            vec![(None, 2)],
        )
        .unwrap();
        a.deploy_service(spec);
        a.run_for(SimDuration::from_secs(60));
        a.seed_knowledge(
            NodeIndex(2),
            "bob",
            &[Fact::new("bob", "likes", gloss_knowledge::Term::str("ice cream"))],
        );
        a.run_for(SimDuration::from_secs(30));
        a.prefetch_subject_everywhere("bob");
        a.run_for(SimDuration::from_secs(30));
        a.subscribe_ui(NodeIndex(1), Filter::for_kind("fan_alert"));
        a.run_for(SimDuration::from_secs(10));
        for _ in 0..3 {
            a.publish(NodeIndex(5), Event::new("weather.reading").with_attr("celsius", 21.0));
            a.run_for(SimDuration::from_secs(20));
        }
        assert!(!a.node(NodeIndex(1)).ui_received.is_empty(), "bob suggested");
        // Both deployed instances share their node's one engine; repeat
        // events are served from the memoised goal solve, observable in
        // the per-node stats and the world metric.
        let hosts = a.hosts_of("matchlet:fans");
        assert!(
            hosts.iter().any(|&h| a.node(h).server.engine().stats.memo_hits > 0),
            "repeat events hit the shared index"
        );
        assert!(a.world().metrics().counter("gloss.match_memo_hits") > 0.0);
        // Re-seeding bob's profile flows retract+insert deltas through
        // ingest; the memoised result must not go stale.
        a.seed_knowledge(
            NodeIndex(2),
            "bob",
            &[Fact::new("bob", "likes", gloss_knowledge::Term::str("tea"))],
        );
        a.run_for(SimDuration::from_secs(30));
        a.prefetch_subject_everywhere("bob");
        a.run_for(SimDuration::from_secs(30));
        let alerts_before = a.node(NodeIndex(1)).ui_received.len();
        a.publish(NodeIndex(5), Event::new("weather.reading").with_attr("celsius", 21.0));
        a.run_for(SimDuration::from_secs(30));
        assert_eq!(
            a.node(NodeIndex(1)).ui_received.len(),
            alerts_before,
            "updated facts stop the suggestion"
        );
    }

    #[test]
    fn delta_batches_repair_replicas_incrementally() {
        let mut a = arch(6, 17);
        a.seed_knowledge(
            NodeIndex(2),
            "bob",
            &[
                Fact::new("bob", "likes", Term::str("ice cream")),
                Fact::new("bob", "at", Term::str("home")),
            ],
        );
        a.run_for(SimDuration::from_secs(30));
        a.prefetch_subject_everywhere("bob");
        a.run_for(SimDuration::from_secs(30));
        // Context churn: bob moves. Only the changed pair ships.
        a.knowledge_mut("bob").retract("bob", "at", &Term::str("home"));
        a.knowledge_mut("bob").add(Fact::new("bob", "at", Term::str("market st")));
        a.update_knowledge(NodeIndex(2), "bob");
        a.run_for(SimDuration::from_secs(30));
        a.prefetch_deltas_everywhere("bob");
        a.run_for(SimDuration::from_secs(30));
        for i in 0..6u32 {
            let node = a.node(NodeIndex(i));
            let at: Vec<_> = node.kb.query(Some("bob"), Some("at")).collect();
            assert_eq!(at.len(), 1, "node {i} holds exactly one location");
            assert_eq!(at[0].object.as_str(), Some("market st"), "node {i} repaired");
            assert_eq!(node.kb.query(Some("bob"), None).count(), 2, "node {i} full state");
        }
        let m = a.world().metrics();
        assert!(m.counter("gloss.kb_delta_applied") > 0.0, "batches applied incrementally");
        // Replica landings + six explicit prefetches of the same batch:
        // the re-deliveries past the first are recognised as stale, not
        // re-applied (which would retract a live fact).
        assert!(m.counter("gloss.kb_delta_stale") > 0.0, "re-deliveries recognised as stale");
        assert_eq!(m.counter("gloss.kb_delta_fallback"), 0.0, "no node needed a full fetch");
    }

    #[test]
    fn truncated_delta_log_falls_back_to_snapshot_shipping() {
        let mut a = arch(6, 18);
        a.seed_knowledge(NodeIndex(2), "bob", &[Fact::new("bob", "seq", Term::Int(-1))]);
        a.run_for(SimDuration::from_secs(30));
        a.prefetch_subject_everywhere("bob");
        a.run_for(SimDuration::from_secs(30));
        // More unshipped churn than the authority's bounded delta log
        // holds: the update MUST ship as a full snapshot (a delta batch
        // would silently miss the truncated prefix).
        for i in 0..2500i64 {
            a.knowledge_mut("bob").retract("bob", "seq", &Term::Int(i - 1));
            a.knowledge_mut("bob").add(Fact::new("bob", "seq", Term::Int(i)));
        }
        assert_eq!(a.knowledge_mut("bob").delta_log_truncations(), 0);
        a.update_knowledge(NodeIndex(2), "bob");
        assert_eq!(a.knowledge_mut("bob").delta_log_truncations(), 1, "wrap observed, counted");
        a.run_for(SimDuration::from_secs(30));
        a.prefetch_subject_everywhere("bob");
        a.run_for(SimDuration::from_secs(30));
        for i in 0..6u32 {
            let seq: Vec<_> = a.node(NodeIndex(i)).kb.query(Some("bob"), Some("seq")).collect();
            assert_eq!(seq.len(), 1, "node {i} rebuilt from the snapshot");
            assert_eq!(seq[0].object, Term::Int(2499));
        }
        // The post-truncation snapshot re-anchors: subsequent churn
        // ships as deltas again and applies on top.
        a.knowledge_mut("bob").add(Fact::new("bob", "extra", Term::Int(1)));
        a.update_knowledge(NodeIndex(2), "bob");
        a.run_for(SimDuration::from_secs(30));
        a.prefetch_deltas_everywhere("bob");
        a.run_for(SimDuration::from_secs(30));
        assert!(a.world().metrics().counter("gloss.kb_delta_applied") > 0.0);
        assert_eq!(a.node(NodeIndex(4)).kb.query(Some("bob"), None).count(), 2);
    }

    #[test]
    fn gap_batches_force_a_full_fetch_that_converges() {
        use gloss_knowledge::{DeltaBatch, FactDelta};
        let mut a = arch(6, 19);
        a.seed_knowledge(NodeIndex(2), "bob", &[Fact::new("bob", "likes", Term::str("tea"))]);
        a.run_for(SimDuration::from_secs(30));
        a.prefetch_subject_everywhere("bob");
        a.run_for(SimDuration::from_secs(30));
        // A hand-crafted batch starting past every receiver's epoch (as
        // if intervening batches were lost): nobody can apply it, and
        // applying it anyway would corrupt the fact set.
        let source = a.knowledge_mut("bob").version().unwrap().source;
        let batch = DeltaBatch {
            subject: "bob".into(),
            source,
            from: 40,
            to: 41,
            deltas: vec![FactDelta::Insert(Fact::new("bob", "bogus", Term::Int(1)))],
        };
        let mut doc = Document::new(batch.doc_name(), batch.to_xml().to_xml().into_bytes());
        doc.guid = Key::hash_of_str("kbdelta/bob");
        a.insert_document(NodeIndex(2), doc);
        a.run_for(SimDuration::from_secs(30));
        a.prefetch_deltas_everywhere("bob");
        a.run_for(SimDuration::from_secs(60));
        let m = a.world().metrics();
        assert!(m.counter("gloss.kb_delta_fallback") > 0.0, "gap detected, full fetch issued");
        assert_eq!(m.counter("gloss.kb_delta_applied"), 0.0, "the gap batch never applied");
        for i in 0..6u32 {
            let node = a.node(NodeIndex(i));
            assert_eq!(node.kb.query(Some("bob"), Some("bogus")).count(), 0, "node {i} clean");
            assert_eq!(node.kb.query(Some("bob"), None).count(), 1, "node {i} converged");
        }
    }

    #[test]
    fn node_failure_repairs_service_placement() {
        let mut a = arch(7, 14);
        let spec = ServiceSpec::new(
            "svc",
            r#"rule r { on a: event ping() emit pong() }"#,
            vec![(None, 2)],
        )
        .unwrap();
        a.deploy_service(spec);
        a.run_for(SimDuration::from_secs(60));
        let hosts = a.hosts_of("matchlet:svc");
        assert_eq!(hosts.len(), 2);
        a.world_mut().crash(hosts[0]);
        // Heartbeats stop; monitor deadline 30 s; sweep 10 s; redeploy.
        a.run_for(SimDuration::from_secs(150));
        assert_eq!(a.satisfaction(), 1.0, "constraint repaired after crash");
        let new_hosts = a.hosts_of("matchlet:svc");
        assert!(new_hosts.iter().all(|h| *h != hosts[0]));
        assert!(new_hosts.len() >= 2);
    }

    #[test]
    fn discovery_deploys_handler_for_unknown_kind() {
        let mut a = arch(6, 15);
        // Handler code lives in the storage architecture.
        a.register_handler_code(
            NodeIndex(1),
            "pollen.reading",
            r#"rule pollen { on p: event pollen.reading(level: ?l) where ?l > 5 emit pollen_alert(level: ?l) }"#,
        );
        a.run_for(SimDuration::from_secs(30));
        a.subscribe_ui(NodeIndex(2), Filter::for_kind("pollen_alert"));
        a.run_for(SimDuration::from_secs(10));
        // An unknown kind arrives at node 3: nothing handles it yet.
        a.publish(NodeIndex(3), Event::new("pollen.reading").with_attr("level", 8i64));
        a.run_for(SimDuration::from_secs(60));
        let cs = a.node(NodeIndex(0)).coordinator_state.as_ref().unwrap();
        assert!(cs.discovered.contains(&"pollen.reading".to_string()));
        assert!(!a.hosts_of("discovered:pollen.reading").is_empty());
        // Subsequent events are matched by the discovered matchlet.
        a.publish(NodeIndex(3), Event::new("pollen.reading").with_attr("level", 9i64));
        a.run_for(SimDuration::from_secs(30));
        assert!(
            !a.node(NodeIndex(2)).ui_received.is_empty(),
            "post-discovery events produce alerts"
        );
    }

    #[test]
    fn unsatisfiable_ui_subscriptions_are_dropped() {
        use gloss_event::Op;
        let mut a = arch(4, 21);
        // `x < 5 and x > 9` can never match: the node drops it instead
        // of spreading it through the routing tables.
        let bad = Filter::for_kind("alert").with_constraint("x", Op::Lt, 5i64).with_constraint(
            "x",
            Op::Gt,
            9i64,
        );
        a.subscribe_ui(NodeIndex(1), bad);
        a.run_for(SimDuration::from_secs(5));
        assert_eq!(a.world().metrics().counter("gloss.subs_rejected"), 1.0);
        assert!(a.node(NodeIndex(1)).ui_filters.is_empty());
        // A satisfiable filter on the same attribute registers normally.
        let good = Filter::for_kind("alert").with_constraint("x", Op::Gt, 5i64);
        a.subscribe_ui(NodeIndex(1), good);
        a.run_for(SimDuration::from_secs(5));
        assert_eq!(a.node(NodeIndex(1)).ui_filters.len(), 1);
    }
}
