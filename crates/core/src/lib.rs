//! The paper's contribution, assembled: an **active architecture for
//! pervasive contextual services**.
//!
//! "The overall system architecture consists of several P2P systems
//! overlaid on each other in order to implement and support the global
//! matching engine. An event system delivers events from users and
//! sensors. ... The caching and replication of data is handled by a
//! Plaxton based storage architecture supported by promiscuous caching
//! mechanisms. When new computational or storage resources are detected
//! by the matching engine, computations are pushed onto them as code
//! bundles ... Once installed, these computations can offer additional
//! computational resources for the matching engine (matchlets) or provide
//! storage capacity for the storage architecture (storelets)." (§5)
//!
//! Every node of an [`ActiveArchitecture`] hosts the full stack:
//!
//! * a Siena-like event **broker** (acyclic peer topology) — the generic
//!   global event service (§4.1),
//! * a **storelet**: Plaxton overlay + PAST storage + promiscuous caches
//!   (§4.5), which also carries the knowledge base (facts ingest
//!   automatically into the node-local fact store whenever a `kb/…`
//!   document lands on a node),
//! * a Cingal **thin server** hosting hot-deployed **matchlets**; on
//!   install, a node subscribes to the event kinds its rules consume and
//!   publishes every synthesised event back onto the bus (§4.2, §4.3),
//! * node 0 additionally runs the **monitoring** and **evolution**
//!   engines: workers advertise resources *as pub/sub events*;
//!   constraint violations are repaired by shipping code bundles (§4.4),
//!   and **discovery matchlets** fetch handler code for unknown event
//!   kinds from the storage architecture (§5).
//!
//! Start with [`ActiveArchitecture`] or run the `quickstart` example.

pub mod architecture;
pub mod node;
pub mod scenario;
pub mod service;

pub use architecture::{ActiveArchitecture, ArchConfig};
pub use node::{CoordinatorState, GlossMsg, GlossNode};
pub use scenario::{IceCreamScenario, PopulationWorkload};
pub use service::{parse_service, ServiceError, ServiceSpec};
