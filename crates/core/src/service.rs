//! Contextual service definitions and the declarative deployment notation
//! (§4.8, §4.9).
//!
//! "Our approach here is to develop declarative notations to describe the
//! placement of computation and data, allowing the developer to write
//! constraints that feed into the deployment evolution engine." A service
//! is matching rules plus placement constraints:
//!
//! ```text
//! service ice_cream {
//!     deploy at least 2 in "scotland"
//!     deploy at least 1
//!     rules {
//!         rule suggest { on w: event weather.reading(celsius: ?t) ... }
//!     }
//! }
//! ```

use gloss_deploy::Constraint;
use gloss_matchlet::parse_rules;
use std::error::Error;
use std::fmt;

/// A deployable contextual service.
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceSpec {
    /// The service name.
    pub name: String,
    /// The matchlet rule source deployed to hosting nodes.
    pub rules_source: String,
    /// Placement requirements: `(region or None, minimum instances)`.
    pub placements: Vec<(Option<String>, usize)>,
    /// The event kinds the rules consume (derived; hosting nodes
    /// subscribe to these).
    pub input_kinds: Vec<String>,
}

impl ServiceSpec {
    /// Creates a service from a name, rule source and placements.
    ///
    /// # Errors
    ///
    /// Returns [`ServiceError`] if the rules do not compile.
    pub fn new(
        name: impl Into<String>,
        rules_source: impl Into<String>,
        placements: Vec<(Option<String>, usize)>,
    ) -> Result<Self, ServiceError> {
        let name = name.into();
        let rules_source = rules_source.into();
        let rules = parse_rules(&rules_source)
            .map_err(|e| ServiceError { message: format!("service `{name}`: {e}") })?;
        if rules.is_empty() {
            return Err(ServiceError { message: format!("service `{name}` has no rules") });
        }
        let mut input_kinds = Vec::new();
        for r in &rules {
            for p in &r.patterns {
                if !input_kinds.contains(&p.kind) {
                    input_kinds.push(p.kind.clone());
                }
            }
        }
        Ok(ServiceSpec { name, rules_source, placements, input_kinds })
    }

    /// The component kind the evolution engine uses for this service.
    pub fn component_kind(&self) -> String {
        format!("matchlet:{}", self.name)
    }

    /// The placement constraints feeding the evolution engine.
    pub fn constraints(&self) -> Vec<Constraint> {
        let kind = self.component_kind();
        self.placements
            .iter()
            .map(|(region, min)| Constraint::count(&kind, region.as_deref(), *min))
            .collect()
    }
}

/// A service definition error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServiceError {
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl Error for ServiceError {}

/// Parses the declarative service notation (see the module docs).
///
/// # Errors
///
/// Returns [`ServiceError`] on malformed notation or rules.
pub fn parse_service(src: &str) -> Result<ServiceSpec, ServiceError> {
    let fail = |m: &str| ServiceError { message: m.to_string() };
    let src = src.trim();
    let rest = src
        .strip_prefix("service")
        .ok_or_else(|| fail("expected `service <name> { ... }`"))?
        .trim_start();
    let brace = rest.find('{').ok_or_else(|| fail("expected `{` after service name"))?;
    let name = rest[..brace].trim().to_string();
    if name.is_empty() || !name.chars().all(|c| c.is_alphanumeric() || c == '_' || c == '-') {
        return Err(fail("bad service name"));
    }
    let body = balanced_block(&rest[brace..]).ok_or_else(|| fail("unbalanced braces"))?;

    let mut placements = Vec::new();
    let mut rules_source = None;
    let mut cursor = body;
    while let Some(idx) = cursor.find("deploy").or_else(|| cursor.find("rules")) {
        let clause = &cursor[idx..];
        if let Some(rest) = clause.strip_prefix("deploy") {
            // deploy at least N [in "region"]
            let tail = rest.trim_start();
            let tail = tail
                .strip_prefix("at least")
                .ok_or_else(|| fail("expected `deploy at least <n> [in \"region\"]`"))?
                .trim_start();
            let num_end = tail.find(|c: char| !c.is_ascii_digit()).unwrap_or(tail.len());
            let min: usize = tail[..num_end].parse().map_err(|_| fail("bad instance count"))?;
            let after = tail[num_end..].trim_start();
            let region = if let Some(r) = after.strip_prefix("in") {
                let r = r.trim_start();
                let r = r.strip_prefix('"').ok_or_else(|| fail("region must be quoted"))?;
                let end = r.find('"').ok_or_else(|| fail("unterminated region"))?;
                Some(r[..end].to_string())
            } else {
                None
            };
            placements.push((region, min));
            cursor = &clause["deploy".len()..];
        } else {
            // rules { ... }
            let after = clause["rules".len()..].trim_start();
            if !after.starts_with('{') {
                return Err(fail("expected `{` after `rules`"));
            }
            let inner = balanced_block(after).ok_or_else(|| fail("unbalanced rules block"))?;
            rules_source = Some(inner.to_string());
            break;
        }
    }
    let rules_source = rules_source.ok_or_else(|| fail("service has no rules block"))?;
    if placements.is_empty() {
        placements.push((None, 1));
    }
    ServiceSpec::new(name, rules_source, placements)
}

/// Returns the contents of the `{...}` block that `s` starts with.
fn balanced_block(s: &str) -> Option<&str> {
    let mut depth = 0usize;
    let bytes = s.as_bytes();
    if bytes.first() != Some(&b'{') {
        return None;
    }
    let mut in_string = false;
    for (i, &b) in bytes.iter().enumerate() {
        match b {
            b'"' => in_string = !in_string,
            b'{' if !in_string => depth += 1,
            b'}' if !in_string => {
                depth -= 1;
                if depth == 0 {
                    return Some(&s[1..i]);
                }
            }
            _ => {}
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC: &str = r#"
        service ice_cream {
            deploy at least 2 in "scotland"
            deploy at least 1
            rules {
                rule suggest {
                    on w: event weather.reading(celsius: ?t)
                    on l: event user.location(user: ?u)
                    where ?t >= 18.0
                    within 5 m
                    emit suggestion(user: ?u)
                }
            }
        }
    "#;

    #[test]
    fn parses_full_service() {
        let s = parse_service(SRC).unwrap();
        assert_eq!(s.name, "ice_cream");
        assert_eq!(s.placements, vec![(Some("scotland".to_string()), 2), (None, 1)]);
        assert_eq!(s.input_kinds, vec!["weather.reading", "user.location"]);
        assert_eq!(s.component_kind(), "matchlet:ice_cream");
        assert_eq!(s.constraints().len(), 2);
    }

    #[test]
    fn default_placement_when_unspecified() {
        let src = r#"service s { rules { rule r { on a: event k() emit o() } } }"#;
        let s = parse_service(src).unwrap();
        assert_eq!(s.placements, vec![(None, 1)]);
    }

    #[test]
    fn rejects_malformed_notation() {
        assert!(parse_service("nonsense").is_err());
        assert!(parse_service("service x {").is_err());
        assert!(parse_service("service x { deploy at most 3 rules {} }").is_err());
        assert!(parse_service("service x { rules { } }").is_err(), "no rules inside");
        assert!(
            parse_service(r#"service x { rules { rule r { broken } } }"#).is_err(),
            "rules must compile"
        );
        assert!(parse_service(r#"service bad name { rules {} }"#).is_err());
    }

    #[test]
    fn braces_inside_rule_strings_do_not_confuse_the_parser() {
        let src = r#"service s { rules { rule r { on a: event k(x: "{") emit o() } } }"#;
        let s = parse_service(src).unwrap();
        assert!(s.rules_source.contains("rule r"));
    }

    #[test]
    fn spec_constraints_name_regions() {
        let s = parse_service(SRC).unwrap();
        let c = &s.constraints()[0];
        assert!(c.to_string().contains("scotland"), "{c}");
        assert!(c.to_string().contains("matchlet:ice_cream"), "{c}");
    }
}
