//! The evolution engine: constraint-driven deployment repair.

use crate::constraint::{Constraint, Deployment, Violation};
use crate::resource::NodeResources;
use crate::solver::plan_repairs;
use gloss_event::Event;
use gloss_sim::{NodeIndex, SimTime};
use std::collections::BTreeMap;

/// An action the evolution engine wants executed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Action {
    /// Deploy a component of `kind` onto `node` (ship a code bundle).
    Deploy {
        /// The component kind.
        kind: String,
        /// The target node.
        node: NodeIndex,
    },
    /// Remove an instance.
    Remove {
        /// The instance id.
        instance: String,
    },
}

/// The evolution engine: holds the constraint set, the resource view
/// (from advertisement events), and the believed deployment; emits repair
/// actions when constraints are violated.
#[derive(Debug, Clone)]
pub struct EvolutionEngine {
    constraints: Vec<Constraint>,
    resources: BTreeMap<NodeIndex, NodeResources>,
    deployment: Deployment,
    /// Pending deploys: instance id → (kind, node), not yet confirmed.
    pending: BTreeMap<String, (String, NodeIndex)>,
    next_instance: u64,
    /// When the system first became violated (for repair-latency metrics);
    /// `None` while satisfied.
    violated_since: Option<SimTime>,
    /// Completed repair episodes: (violated_at, repaired_at).
    pub repair_episodes: Vec<(SimTime, SimTime)>,
    /// Actions issued over the engine's lifetime.
    pub actions_issued: u64,
}

impl EvolutionEngine {
    /// Creates an engine for the given constraint set.
    pub fn new(constraints: Vec<Constraint>) -> Self {
        EvolutionEngine {
            constraints,
            resources: BTreeMap::new(),
            deployment: Deployment::new(),
            pending: BTreeMap::new(),
            next_instance: 0,
            violated_since: None,
            repair_episodes: Vec::new(),
            actions_issued: 0,
        }
    }

    /// The constraint set.
    pub fn constraints(&self) -> &[Constraint] {
        &self.constraints
    }

    /// Adds a constraint at runtime (policies "evolve in response to such
    /// changes").
    pub fn add_constraint(&mut self, c: Constraint) {
        self.constraints.push(c);
    }

    /// The believed deployment.
    pub fn deployment(&self) -> &Deployment {
        &self.deployment
    }

    /// The current resource view.
    pub fn resources(&self) -> &BTreeMap<NodeIndex, NodeResources> {
        &self.resources
    }

    /// Current violations.
    pub fn violations(&self) -> Vec<Violation> {
        self.constraints
            .iter()
            .filter_map(|c| c.violation(&self.deployment, &self.resources))
            .collect()
    }

    /// Fraction of constraints currently satisfied (1.0 = all).
    pub fn satisfaction(&self) -> f64 {
        if self.constraints.is_empty() {
            return 1.0;
        }
        let violated = self.violations().len();
        1.0 - violated as f64 / self.constraints.len() as f64
    }

    /// Feeds a resource event (advertise / withdraw / failed); returns
    /// repair actions to execute.
    pub fn on_event(&mut self, now: SimTime, ev: &Event) -> Vec<(String, Action)> {
        if let Some(r) = NodeResources::from_event(ev) {
            self.resources.insert(r.node, r);
        } else if let Some(node) = NodeResources::departed_node(ev) {
            self.resources.remove(&node);
            self.deployment.remove_node(node);
            self.pending.retain(|_, (_, n)| *n != node);
        } else {
            return Vec::new();
        }
        self.reconcile(now)
    }

    /// Periodic reconciliation (also catches lost install confirmations).
    pub fn reconcile(&mut self, now: SimTime) -> Vec<(String, Action)> {
        // Measure episodes: satisfied -> violated -> satisfied.
        let violated = !self.violations().is_empty();
        match (self.violated_since, violated) {
            (None, true) => self.violated_since = Some(now),
            (Some(_since), false) => {
                // Repair completes when confirmations arrive (see
                // `confirm_deploy`), handled there.
            }
            _ => {}
        }
        // Plan against deployment ∪ pending so we do not double-deploy
        // while installs are in flight.
        let mut projected = self.deployment.clone();
        for (instance, (kind, node)) in &self.pending {
            projected.place(instance.clone(), kind.clone(), *node);
        }
        let actions = plan_repairs(&self.constraints, &projected, &self.resources);
        let mut out = Vec::new();
        for action in actions {
            match &action {
                Action::Deploy { kind, node } => {
                    self.next_instance += 1;
                    let instance = format!("{kind}@{}#{}", node, self.next_instance);
                    self.pending.insert(instance.clone(), (kind.clone(), *node));
                    self.actions_issued += 1;
                    out.push((instance, action));
                }
                Action::Remove { instance } => {
                    self.deployment.remove(instance);
                    self.actions_issued += 1;
                    out.push((instance.clone(), action));
                }
            }
        }
        out
    }

    /// Confirms that a deploy action completed (the bundle installed).
    pub fn confirm_deploy(&mut self, now: SimTime, instance: &str) {
        if let Some((kind, node)) = self.pending.remove(instance) {
            self.deployment.place(instance, kind, node);
        }
        if self.violations().is_empty() {
            if let Some(since) = self.violated_since.take() {
                self.repair_episodes.push((since, now));
            }
        }
    }

    /// A deploy failed (node died mid-install); forget it so the next
    /// reconcile can re-plan.
    pub fn abandon_deploy(&mut self, instance: &str) {
        self.pending.remove(instance);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gloss_sim::GeoPoint;

    fn advert(node: u32, region: &str) -> Event {
        NodeResources {
            node: NodeIndex(node),
            region: region.into(),
            geo: GeoPoint::new(0.0, 0.0),
            cpu: 1.0,
            storage: 0,
        }
        .to_event()
    }

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn deploys_when_resources_arrive() {
        let mut e = EvolutionEngine::new(vec![Constraint::count("repl", None, 2)]);
        assert!(e.on_event(t(0), &advert(0, "scotland")).len() <= 2);
        let actions = e.on_event(t(1), &advert(1, "scotland"));
        // By now two nodes exist; across both events two deploys total.
        let total = e.actions_issued;
        assert_eq!(total, 2, "two instances requested, got {actions:?}");
        assert_eq!(e.satisfaction(), 0.0, "not yet confirmed");
    }

    #[test]
    fn confirmation_completes_the_repair_episode() {
        let mut e = EvolutionEngine::new(vec![Constraint::count("repl", None, 1)]);
        let actions = e.on_event(t(5), &advert(0, "scotland"));
        assert_eq!(actions.len(), 1);
        let (instance, _) = &actions[0];
        e.confirm_deploy(t(8), instance);
        assert_eq!(e.satisfaction(), 1.0);
        assert_eq!(e.repair_episodes.len(), 1);
        let (from, to) = e.repair_episodes[0];
        assert_eq!(from, t(5));
        assert_eq!(to, t(8));
    }

    #[test]
    fn no_double_deploy_while_pending() {
        let mut e = EvolutionEngine::new(vec![Constraint::count("repl", None, 1)]);
        let first = e.on_event(t(0), &advert(0, "scotland"));
        assert_eq!(first.len(), 1);
        // Reconcile again before confirmation: nothing new planned.
        let second = e.reconcile(t(1));
        assert!(second.is_empty(), "pending deploy must suppress re-planning");
    }

    #[test]
    fn node_failure_triggers_replacement() {
        let mut e = EvolutionEngine::new(vec![Constraint::count("repl", None, 1)]);
        let mut actions = e.on_event(t(0), &advert(0, "scotland"));
        actions.extend(e.on_event(t(0), &advert(1, "scotland")));
        actions.extend(e.reconcile(t(1)));
        let confirmed: Vec<String> = actions.iter().map(|(i, _)| i.clone()).collect();
        for i in &confirmed {
            e.confirm_deploy(t(2), i);
        }
        assert_eq!(e.satisfaction(), 1.0);
        // The hosting node dies.
        let hosting: NodeIndex = e.deployment.instances_of("repl").next().unwrap().1;
        let repairs = e.on_event(t(10), &NodeResources::failed_event(hosting));
        assert_eq!(repairs.len(), 1, "replacement planned immediately");
        let (instance, Action::Deploy { node, .. }) = &repairs[0] else {
            panic!("expected deploy");
        };
        assert_ne!(*node, hosting, "replacement goes to a surviving node");
        e.confirm_deploy(t(12), instance);
        assert_eq!(e.satisfaction(), 1.0);
        assert_eq!(e.repair_episodes.len(), 2);
    }

    #[test]
    fn abandon_allows_replanning() {
        let mut e = EvolutionEngine::new(vec![Constraint::count("repl", None, 1)]);
        let actions = e.on_event(t(0), &advert(0, "scotland"));
        let (instance, _) = &actions[0];
        e.abandon_deploy(instance);
        let retry = e.reconcile(t(5));
        assert_eq!(retry.len(), 1, "abandoned deploy is re-planned");
    }

    #[test]
    fn satisfaction_with_no_constraints_is_full() {
        let e = EvolutionEngine::new(vec![]);
        assert_eq!(e.satisfaction(), 1.0);
    }

    #[test]
    fn runtime_constraint_addition() {
        let mut e = EvolutionEngine::new(vec![]);
        e.on_event(t(0), &advert(0, "scotland"));
        assert!(e.reconcile(t(1)).is_empty());
        e.add_constraint(Constraint::count("cache", None, 1));
        assert_eq!(e.reconcile(t(2)).len(), 1);
    }
}
