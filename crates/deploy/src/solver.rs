//! Greedy placement planning: choose nodes to repair violated constraints.

use crate::constraint::{Constraint, Deployment};
use crate::evolution::Action;
use crate::resource::NodeResources;
use gloss_sim::NodeIndex;
use std::collections::BTreeMap;

/// Plans deploy actions that would repair the current violations.
///
/// Strategy (greedy, load-balancing): for each violated `Count`
/// constraint, pick the least-loaded eligible nodes in the target region;
/// for each violated `Spread`, pick one node in each uncovered region.
/// `Capacity` constraints restrict candidate nodes rather than generating
/// actions of their own.
pub fn plan_repairs(
    constraints: &[Constraint],
    deployment: &Deployment,
    resources: &BTreeMap<NodeIndex, NodeResources>,
) -> Vec<Action> {
    let per_node_cap = constraints
        .iter()
        .filter_map(|c| match c {
            Constraint::Capacity { max } => Some(*max),
            _ => None,
        })
        .min();
    let mut actions: Vec<Action> = Vec::new();
    // Track load as if planned actions were already applied.
    let mut load: BTreeMap<NodeIndex, usize> =
        resources.keys().map(|n| (*n, deployment.count_on(*n))).collect();

    let eligible = |load: &BTreeMap<NodeIndex, usize>, region: Option<&str>| -> Vec<NodeIndex> {
        let mut nodes: Vec<NodeIndex> = resources
            .values()
            .filter(|r| region.is_none_or(|want| r.region == want))
            .map(|r| r.node)
            .filter(|n| per_node_cap.is_none_or(|cap| load.get(n).copied().unwrap_or(0) < cap))
            .collect();
        nodes.sort_by_key(|n| (load.get(n).copied().unwrap_or(0), n.0));
        nodes
    };

    for c in constraints {
        match c {
            Constraint::Count { component, region, .. } => {
                let Some(v) = c.violation(deployment, resources) else {
                    continue;
                };
                // Avoid double-placing the same kind on one node when
                // alternatives exist.
                let holding: Vec<NodeIndex> =
                    deployment.instances_of(component).map(|(_, n)| n).collect();
                let candidates = eligible(&load, region.as_deref());
                let fresh: Vec<NodeIndex> =
                    candidates.iter().copied().filter(|n| !holding.contains(n)).collect();
                let pool = if fresh.len() >= v.deficit { fresh } else { candidates };
                for node in pool.into_iter().take(v.deficit) {
                    *load.entry(node).or_insert(0) += 1;
                    actions.push(Action::Deploy { kind: component.clone(), node });
                }
            }
            Constraint::Spread { component, .. } => {
                let Some(v) = c.violation(deployment, resources) else {
                    continue;
                };
                let covered: std::collections::BTreeSet<String> = deployment
                    .instances_of(component)
                    .filter_map(|(_, n)| resources.get(&n).map(|r| r.region.clone()))
                    .collect();
                let mut picked = 0;
                let mut regions_seen = covered.clone();
                for node in eligible(&load, None) {
                    if picked >= v.deficit {
                        break;
                    }
                    let region = &resources[&node].region;
                    if regions_seen.contains(region) {
                        continue;
                    }
                    regions_seen.insert(region.clone());
                    *load.entry(node).or_insert(0) += 1;
                    actions.push(Action::Deploy { kind: component.clone(), node });
                    picked += 1;
                }
            }
            Constraint::Capacity { .. } => {}
        }
    }
    actions
}

#[cfg(test)]
mod tests {
    use super::*;
    use gloss_sim::GeoPoint;

    fn resources(specs: &[(u32, &str)]) -> BTreeMap<NodeIndex, NodeResources> {
        specs
            .iter()
            .map(|&(i, region)| {
                (
                    NodeIndex(i),
                    NodeResources {
                        node: NodeIndex(i),
                        region: region.into(),
                        geo: GeoPoint::new(0.0, 0.0),
                        cpu: 1.0,
                        storage: 0,
                    },
                )
            })
            .collect()
    }

    #[test]
    fn repairs_count_deficit_on_least_loaded_nodes() {
        let res = resources(&[(0, "scotland"), (1, "scotland"), (2, "scotland")]);
        let constraints = vec![Constraint::count("repl", Some("scotland"), 2)];
        let mut d = Deployment::new();
        d.place("x", "other", NodeIndex(0)); // pre-existing load on node 0
        let actions = plan_repairs(&constraints, &d, &res);
        assert_eq!(actions.len(), 2);
        let nodes: Vec<NodeIndex> = actions
            .iter()
            .map(|a| match a {
                Action::Deploy { node, .. } => *node,
                other => panic!("unexpected {other:?}"),
            })
            .collect();
        assert!(nodes.contains(&NodeIndex(1)), "least loaded first");
        assert!(nodes.contains(&NodeIndex(2)));
    }

    #[test]
    fn satisfied_constraints_produce_no_actions() {
        let res = resources(&[(0, "scotland")]);
        let constraints = vec![Constraint::count("repl", None, 1)];
        let mut d = Deployment::new();
        d.place("i", "repl", NodeIndex(0));
        assert!(plan_repairs(&constraints, &d, &res).is_empty());
    }

    #[test]
    fn region_restriction_respected() {
        let res = resources(&[(0, "england"), (1, "scotland")]);
        let constraints = vec![Constraint::count("repl", Some("scotland"), 1)];
        let actions = plan_repairs(&constraints, &Deployment::new(), &res);
        assert_eq!(actions, vec![Action::Deploy { kind: "repl".into(), node: NodeIndex(1) }]);
    }

    #[test]
    fn capacity_limits_candidates() {
        let res = resources(&[(0, "scotland"), (1, "scotland")]);
        let constraints = vec![Constraint::Capacity { max: 1 }, Constraint::count("repl", None, 3)];
        let mut d = Deployment::new();
        d.place("busy", "other", NodeIndex(0));
        let actions = plan_repairs(&constraints, &d, &res);
        // Node 0 is full; only node 1 can take one instance.
        assert_eq!(actions.len(), 1);
        assert_eq!(actions[0], Action::Deploy { kind: "repl".into(), node: NodeIndex(1) });
    }

    #[test]
    fn spread_targets_uncovered_regions() {
        let res = resources(&[(0, "scotland"), (1, "scotland"), (2, "australia")]);
        let constraints = vec![Constraint::Spread { component: "m".into(), regions: 2 }];
        let mut d = Deployment::new();
        d.place("i1", "m", NodeIndex(0));
        let actions = plan_repairs(&constraints, &d, &res);
        assert_eq!(actions, vec![Action::Deploy { kind: "m".into(), node: NodeIndex(2) }]);
    }

    #[test]
    fn prefers_nodes_not_already_holding_the_kind() {
        let res = resources(&[(0, "scotland"), (1, "scotland")]);
        let constraints = vec![Constraint::count("repl", None, 2)];
        let mut d = Deployment::new();
        d.place("i1", "repl", NodeIndex(0));
        let actions = plan_repairs(&constraints, &d, &res);
        assert_eq!(actions, vec![Action::Deploy { kind: "repl".into(), node: NodeIndex(1) }]);
    }

    #[test]
    fn no_resources_no_actions() {
        let constraints = vec![Constraint::count("repl", None, 2)];
        assert!(plan_repairs(&constraints, &Deployment::new(), &BTreeMap::new()).is_empty());
    }
}
