//! The monitoring engine: liveness tracking from resource advertisements.
//!
//! "Nodes may disappear from the network either gracefully, in which case
//! they will publish events warning of their imminent withdrawal, or
//! without warning, in which case the loss may eventually be detected by
//! other monitoring components, which will publish events on their
//! behalf." (§4.4)
//!
//! Detection is graduated rather than binary: a node silent for half the
//! deadline is *suspected* first (`resource.suspected`, published once per
//! episode), and only declared failed (`resource.failed`) when the full
//! deadline passes. A heartbeat arriving during the suspicion window
//! refutes it (`resource.refuted`), so the deployment plane can
//! distinguish slow links from dead nodes instead of thrashing
//! redeployments.

use crate::resource::NodeResources;
use gloss_event::Event;
use gloss_sim::{NodeIndex, SimDuration, SimTime};
use std::collections::{BTreeMap, BTreeSet};

/// Tracks heartbeats (advertisements) and detects silent failures.
#[derive(Debug, Clone)]
pub struct MonitorEngine {
    deadline: SimDuration,
    /// Silence length at which a node becomes suspected (deadline / 2).
    suspect_after: SimDuration,
    last_seen: BTreeMap<NodeIndex, SimTime>,
    /// Nodes currently in a suspicion episode.
    suspected: BTreeSet<NodeIndex>,
    /// Failures detected so far.
    pub failures_detected: u64,
    /// Suspicion episodes started so far.
    pub suspicions: u64,
    /// Suspicion episodes refuted by a late heartbeat.
    pub refutations: u64,
}

impl MonitorEngine {
    /// Creates a monitor declaring nodes dead after `deadline` without an
    /// advertisement (and suspected after half of it).
    pub fn new(deadline: SimDuration) -> Self {
        MonitorEngine {
            deadline,
            suspect_after: deadline / 2,
            last_seen: BTreeMap::new(),
            suspected: BTreeSet::new(),
            failures_detected: 0,
            suspicions: 0,
            refutations: 0,
        }
    }

    /// Number of nodes currently believed alive.
    pub fn alive_count(&self) -> usize {
        self.last_seen.len()
    }

    /// Whether `node` is currently believed alive.
    pub fn is_alive(&self, node: NodeIndex) -> bool {
        self.last_seen.contains_key(&node)
    }

    /// Whether `node` is in a suspicion episode.
    pub fn is_suspected(&self, node: NodeIndex) -> bool {
        self.suspected.contains(&node)
    }

    /// Feeds an observed event (advertisement refreshes liveness;
    /// withdrawal removes the node immediately). Returns the
    /// `resource.refuted` event when the advertisement ends a suspicion
    /// episode.
    pub fn on_event(&mut self, now: SimTime, ev: &Event) -> Option<Event> {
        if let Some(r) = NodeResources::from_event(ev) {
            self.last_seen.insert(r.node, now);
            if self.suspected.remove(&r.node) {
                self.refutations += 1;
                return Some(NodeResources::refuted_event(r.node));
            }
        } else if ev.kind() == crate::resource::kinds::WITHDRAW {
            if let Some(node) = NodeResources::departed_node(ev) {
                self.last_seen.remove(&node);
                self.suspected.remove(&node);
            }
        }
        None
    }

    /// Periodic sweep: returns `resource.suspected` events for nodes that
    /// crossed the suspicion window this sweep, and `resource.failed`
    /// events for nodes whose silence exhausted the deadline (published
    /// "on their behalf").
    pub fn sweep(&mut self, now: SimTime) -> Vec<Event> {
        let mut events = Vec::new();
        let mut dead: Vec<NodeIndex> = Vec::new();
        for (&node, &t) in &self.last_seen {
            let silence = now.since(t);
            if silence > self.deadline {
                dead.push(node);
            } else if silence > self.suspect_after && self.suspected.insert(node) {
                self.suspicions += 1;
                events.push(NodeResources::suspected_event(node));
            }
        }
        for node in dead {
            self.last_seen.remove(&node);
            self.suspected.remove(&node);
            self.failures_detected += 1;
            events.push(NodeResources::failed_event(node));
        }
        events
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resource::kinds;
    use gloss_sim::GeoPoint;

    fn advert(node: u32) -> Event {
        NodeResources {
            node: NodeIndex(node),
            region: "scotland".into(),
            geo: GeoPoint::new(56.3, -3.0),
            cpu: 1.0,
            storage: 0,
        }
        .to_event()
    }

    #[test]
    fn heartbeats_keep_nodes_alive() {
        let mut m = MonitorEngine::new(SimDuration::from_secs(30));
        m.on_event(SimTime::from_secs(0), &advert(1));
        m.on_event(SimTime::from_secs(20), &advert(1));
        // 20 s of silence at t=40: suspected (> 15 s) but not failed.
        let evs = m.sweep(SimTime::from_secs(40));
        assert!(evs.iter().all(|e| e.kind() != kinds::FAILED), "refreshed at t=20");
        assert!(m.is_alive(NodeIndex(1)));
    }

    #[test]
    fn silent_nodes_are_declared_failed() {
        let mut m = MonitorEngine::new(SimDuration::from_secs(30));
        m.on_event(SimTime::from_secs(0), &advert(1));
        m.on_event(SimTime::from_secs(0), &advert(2));
        m.on_event(SimTime::from_secs(50), &advert(2));
        let evs = m.sweep(SimTime::from_secs(60));
        let failed: Vec<&Event> = evs.iter().filter(|e| e.kind() == kinds::FAILED).collect();
        assert_eq!(failed.len(), 1);
        assert_eq!(NodeResources::departed_node(failed[0]), Some(NodeIndex(1)));
        assert_eq!(m.failures_detected, 1);
        assert!(!m.is_alive(NodeIndex(1)));
        assert!(m.is_alive(NodeIndex(2)));
        // A failure is reported once.
        let again = m.sweep(SimTime::from_secs(90));
        assert!(again.iter().filter(|e| e.kind() == kinds::FAILED).count() <= 1);
    }

    #[test]
    fn graceful_withdrawal_needs_no_detection() {
        let mut m = MonitorEngine::new(SimDuration::from_secs(30));
        m.on_event(SimTime::from_secs(0), &advert(1));
        m.on_event(SimTime::from_secs(5), &NodeResources::withdraw_event(NodeIndex(1)));
        assert!(!m.is_alive(NodeIndex(1)));
        assert!(m.sweep(SimTime::from_secs(100)).is_empty());
        assert_eq!(m.failures_detected, 0, "withdrawals are not failures");
    }

    #[test]
    fn suspicion_precedes_failure_and_is_published_once() {
        let mut m = MonitorEngine::new(SimDuration::from_secs(30));
        m.on_event(SimTime::from_secs(0), &advert(1));
        // Past the suspicion window, before the deadline.
        let evs = m.sweep(SimTime::from_secs(20));
        assert_eq!(evs.len(), 1);
        assert_eq!(evs[0].kind(), kinds::SUSPECTED);
        assert!(m.is_suspected(NodeIndex(1)));
        assert!(m.is_alive(NodeIndex(1)), "suspected is not dead");
        // Re-sweeping inside the window does not repeat the event.
        assert!(m.sweep(SimTime::from_secs(25)).is_empty());
        // Past the deadline: failed, episode over.
        let evs = m.sweep(SimTime::from_secs(31));
        assert_eq!(evs.len(), 1);
        assert_eq!(evs[0].kind(), kinds::FAILED);
        assert!(!m.is_suspected(NodeIndex(1)));
        assert_eq!(m.suspicions, 1);
        assert_eq!(m.failures_detected, 1);
    }

    #[test]
    fn late_heartbeat_refutes_suspicion() {
        let mut m = MonitorEngine::new(SimDuration::from_secs(30));
        m.on_event(SimTime::from_secs(0), &advert(1));
        m.sweep(SimTime::from_secs(20));
        assert!(m.is_suspected(NodeIndex(1)));
        let refutation = m.on_event(SimTime::from_secs(25), &advert(1));
        assert_eq!(refutation.map(|e| e.kind().to_string()).as_deref(), Some(kinds::REFUTED));
        assert!(!m.is_suspected(NodeIndex(1)));
        assert_eq!(m.refutations, 1);
        // And the node survives the original deadline.
        assert!(m.sweep(SimTime::from_secs(31)).iter().all(|e| e.kind() != kinds::FAILED));
        assert_eq!(m.failures_detected, 0);
    }
}
