//! The monitoring engine: liveness tracking from resource advertisements.
//!
//! "Nodes may disappear from the network either gracefully, in which case
//! they will publish events warning of their imminent withdrawal, or
//! without warning, in which case the loss may eventually be detected by
//! other monitoring components, which will publish events on their
//! behalf." (§4.4)

use crate::resource::NodeResources;
use gloss_event::Event;
use gloss_sim::{NodeIndex, SimDuration, SimTime};
use std::collections::BTreeMap;

/// Tracks heartbeats (advertisements) and detects silent failures.
#[derive(Debug, Clone)]
pub struct MonitorEngine {
    deadline: SimDuration,
    last_seen: BTreeMap<NodeIndex, SimTime>,
    /// Failures detected so far.
    pub failures_detected: u64,
}

impl MonitorEngine {
    /// Creates a monitor declaring nodes dead after `deadline` without an
    /// advertisement.
    pub fn new(deadline: SimDuration) -> Self {
        MonitorEngine { deadline, last_seen: BTreeMap::new(), failures_detected: 0 }
    }

    /// Number of nodes currently believed alive.
    pub fn alive_count(&self) -> usize {
        self.last_seen.len()
    }

    /// Whether `node` is currently believed alive.
    pub fn is_alive(&self, node: NodeIndex) -> bool {
        self.last_seen.contains_key(&node)
    }

    /// Feeds an observed event (advertisement refreshes liveness;
    /// withdrawal removes the node immediately).
    pub fn on_event(&mut self, now: SimTime, ev: &Event) {
        if let Some(r) = NodeResources::from_event(ev) {
            self.last_seen.insert(r.node, now);
        } else if ev.kind() == crate::resource::kinds::WITHDRAW {
            if let Some(node) = NodeResources::departed_node(ev) {
                self.last_seen.remove(&node);
            }
        }
    }

    /// Periodic sweep: returns `resource.failed` events for nodes whose
    /// advertisements stopped (published "on their behalf").
    pub fn sweep(&mut self, now: SimTime) -> Vec<Event> {
        let dead: Vec<NodeIndex> = self
            .last_seen
            .iter()
            .filter(|(_, &t)| now.since(t) > self.deadline)
            .map(|(&n, _)| n)
            .collect();
        let mut events = Vec::new();
        for node in dead {
            self.last_seen.remove(&node);
            self.failures_detected += 1;
            events.push(NodeResources::failed_event(node));
        }
        events
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gloss_sim::GeoPoint;

    fn advert(node: u32) -> Event {
        NodeResources {
            node: NodeIndex(node),
            region: "scotland".into(),
            geo: GeoPoint::new(56.3, -3.0),
            cpu: 1.0,
            storage: 0,
        }
        .to_event()
    }

    #[test]
    fn heartbeats_keep_nodes_alive() {
        let mut m = MonitorEngine::new(SimDuration::from_secs(30));
        m.on_event(SimTime::from_secs(0), &advert(1));
        m.on_event(SimTime::from_secs(20), &advert(1));
        assert!(m.sweep(SimTime::from_secs(40)).is_empty(), "refreshed at t=20");
        assert!(m.is_alive(NodeIndex(1)));
    }

    #[test]
    fn silent_nodes_are_declared_failed() {
        let mut m = MonitorEngine::new(SimDuration::from_secs(30));
        m.on_event(SimTime::from_secs(0), &advert(1));
        m.on_event(SimTime::from_secs(0), &advert(2));
        m.on_event(SimTime::from_secs(50), &advert(2));
        let failed = m.sweep(SimTime::from_secs(60));
        assert_eq!(failed.len(), 1);
        assert_eq!(NodeResources::departed_node(&failed[0]), Some(NodeIndex(1)));
        assert_eq!(m.failures_detected, 1);
        assert!(!m.is_alive(NodeIndex(1)));
        assert!(m.is_alive(NodeIndex(2)));
        // A failure is reported once.
        assert!(m.sweep(SimTime::from_secs(90)).len() <= 1);
    }

    #[test]
    fn graceful_withdrawal_needs_no_detection() {
        let mut m = MonitorEngine::new(SimDuration::from_secs(30));
        m.on_event(SimTime::from_secs(0), &advert(1));
        m.on_event(SimTime::from_secs(5), &NodeResources::withdraw_event(NodeIndex(1)));
        assert!(!m.is_alive(NodeIndex(1)));
        assert!(m.sweep(SimTime::from_secs(100)).is_empty());
        assert_eq!(m.failures_detected, 0, "withdrawals are not failures");
    }
}
