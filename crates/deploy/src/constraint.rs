//! Placement constraints (the active-pipes model) and the deployment
//! state they constrain.

use crate::resource::NodeResources;
use gloss_sim::NodeIndex;
use std::collections::BTreeMap;
use std::fmt;

/// The current component placements: instance id → (kind, node).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Deployment {
    placements: BTreeMap<String, (String, NodeIndex)>,
}

impl Deployment {
    /// Creates an empty deployment.
    pub fn new() -> Self {
        Deployment::default()
    }

    /// Records an instance.
    pub fn place(&mut self, instance: impl Into<String>, kind: impl Into<String>, node: NodeIndex) {
        self.placements.insert(instance.into(), (kind.into(), node));
    }

    /// Removes an instance; returns whether it existed.
    pub fn remove(&mut self, instance: &str) -> bool {
        self.placements.remove(instance).is_some()
    }

    /// Drops every instance on `node` (the node died); returns how many.
    pub fn remove_node(&mut self, node: NodeIndex) -> usize {
        let before = self.placements.len();
        self.placements.retain(|_, (_, n)| *n != node);
        before - self.placements.len()
    }

    /// Instances of a kind, as `(instance, node)`.
    pub fn instances_of<'a>(
        &'a self,
        kind: &'a str,
    ) -> impl Iterator<Item = (&'a str, NodeIndex)> + 'a {
        self.placements
            .iter()
            .filter(move |(_, (k, _))| k == kind)
            .map(|(i, (_, n))| (i.as_str(), *n))
    }

    /// Number of component instances on `node`.
    pub fn count_on(&self, node: NodeIndex) -> usize {
        self.placements.values().filter(|(_, n)| *n == node).count()
    }

    /// Total instances.
    pub fn len(&self) -> usize {
        self.placements.len()
    }

    /// Whether nothing is deployed.
    pub fn is_empty(&self) -> bool {
        self.placements.is_empty()
    }

    /// All instances: `(instance, kind, node)`.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &str, NodeIndex)> {
        self.placements.iter().map(|(i, (k, n))| (i.as_str(), k.as_str(), *n))
    }
}

/// A placement constraint.
#[derive(Debug, Clone, PartialEq)]
pub enum Constraint {
    /// At least `min` instances of `component`, optionally restricted to
    /// a region — the paper's worked example ("at least 5 pipeline
    /// components providing a data replication service ... within a given
    /// geographical region").
    Count {
        /// The component kind.
        component: String,
        /// The region, or `None` for anywhere.
        region: Option<String>,
        /// The minimum instance count.
        min: usize,
    },
    /// Instances of `component` must span at least `regions` distinct
    /// regions (resilience to regional failure).
    Spread {
        /// The component kind.
        component: String,
        /// Minimum number of distinct regions.
        regions: usize,
    },
    /// No node may host more than `max` component instances (capacity).
    Capacity {
        /// The per-node ceiling.
        max: usize,
    },
}

impl Constraint {
    /// Convenience constructor for [`Constraint::Count`].
    pub fn count(component: &str, region: Option<&str>, min: usize) -> Constraint {
        Constraint::Count {
            component: component.to_string(),
            region: region.map(str::to_string),
            min,
        }
    }

    /// Checks the constraint; `None` when satisfied.
    pub fn violation(
        &self,
        deployment: &Deployment,
        resources: &BTreeMap<NodeIndex, NodeResources>,
    ) -> Option<Violation> {
        match self {
            Constraint::Count { component, region, min } => {
                let have = deployment
                    .instances_of(component)
                    .filter(|(_, node)| {
                        resources
                            .get(node)
                            .is_some_and(|r| region.as_deref().is_none_or(|want| r.region == want))
                    })
                    .count();
                (have < *min).then(|| Violation {
                    constraint: self.clone(),
                    detail: format!(
                        "{have}/{min} instances of {component}{}",
                        region.as_deref().map(|r| format!(" in {r}")).unwrap_or_default()
                    ),
                    deficit: min - have,
                })
            }
            Constraint::Spread { component, regions } => {
                let mut seen = std::collections::BTreeSet::new();
                for (_, node) in deployment.instances_of(component) {
                    if let Some(r) = resources.get(&node) {
                        seen.insert(r.region.clone());
                    }
                }
                (seen.len() < *regions).then(|| Violation {
                    constraint: self.clone(),
                    detail: format!("{component} spans {}/{} regions", seen.len(), regions),
                    deficit: regions - seen.len(),
                })
            }
            Constraint::Capacity { max } => {
                let worst = resources.keys().map(|n| deployment.count_on(*n)).max().unwrap_or(0);
                (worst > *max).then(|| Violation {
                    constraint: self.clone(),
                    detail: format!("a node hosts {worst} > {max} components"),
                    deficit: worst - max,
                })
            }
        }
    }
}

impl fmt::Display for Constraint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Constraint::Count { component, region, min } => match region {
                Some(r) => write!(f, "count({component}) >= {min} in {r}"),
                None => write!(f, "count({component}) >= {min}"),
            },
            Constraint::Spread { component, regions } => {
                write!(f, "spread({component}) >= {regions} regions")
            }
            Constraint::Capacity { max } => write!(f, "per-node load <= {max}"),
        }
    }
}

/// A detected constraint violation.
#[derive(Debug, Clone, PartialEq)]
pub struct Violation {
    /// The violated constraint.
    pub constraint: Constraint,
    /// Human-readable description.
    pub detail: String,
    /// How many placements are missing (or excess, for capacity).
    pub deficit: usize,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "violated: {} ({})", self.constraint, self.detail)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gloss_sim::GeoPoint;

    fn resources() -> BTreeMap<NodeIndex, NodeResources> {
        let mut m = BTreeMap::new();
        for (i, region) in [(0u32, "scotland"), (1, "scotland"), (2, "england"), (3, "australia")] {
            m.insert(
                NodeIndex(i),
                NodeResources {
                    node: NodeIndex(i),
                    region: region.into(),
                    geo: GeoPoint::new(0.0, 0.0),
                    cpu: 1.0,
                    storage: 0,
                },
            );
        }
        m
    }

    #[test]
    fn count_constraint_regional() {
        let c = Constraint::count("repl", Some("scotland"), 2);
        let res = resources();
        let mut d = Deployment::new();
        d.place("i1", "repl", NodeIndex(0));
        let v = c.violation(&d, &res).unwrap();
        assert_eq!(v.deficit, 1);
        d.place("i2", "repl", NodeIndex(1));
        assert!(c.violation(&d, &res).is_none());
        // An instance in England does not count toward Scotland.
        let mut d2 = Deployment::new();
        d2.place("i1", "repl", NodeIndex(0));
        d2.place("i2", "repl", NodeIndex(2));
        assert!(c.violation(&d2, &res).is_some());
    }

    #[test]
    fn count_on_dead_node_does_not_count() {
        let c = Constraint::count("repl", None, 1);
        let mut res = resources();
        let mut d = Deployment::new();
        d.place("i1", "repl", NodeIndex(0));
        assert!(c.violation(&d, &res).is_none());
        // Node 0 disappears from the resource view.
        res.remove(&NodeIndex(0));
        assert!(c.violation(&d, &res).is_some());
    }

    #[test]
    fn spread_constraint() {
        let c = Constraint::Spread { component: "match".into(), regions: 2 };
        let res = resources();
        let mut d = Deployment::new();
        d.place("i1", "match", NodeIndex(0));
        d.place("i2", "match", NodeIndex(1));
        assert!(c.violation(&d, &res).is_some(), "both in scotland");
        d.place("i3", "match", NodeIndex(3));
        assert!(c.violation(&d, &res).is_none());
    }

    #[test]
    fn capacity_constraint() {
        let c = Constraint::Capacity { max: 1 };
        let res = resources();
        let mut d = Deployment::new();
        d.place("i1", "a", NodeIndex(0));
        assert!(c.violation(&d, &res).is_none());
        d.place("i2", "b", NodeIndex(0));
        let v = c.violation(&d, &res).unwrap();
        assert_eq!(v.deficit, 1);
    }

    #[test]
    fn deployment_bookkeeping() {
        let mut d = Deployment::new();
        d.place("i1", "a", NodeIndex(0));
        d.place("i2", "a", NodeIndex(1));
        d.place("i3", "b", NodeIndex(0));
        assert_eq!(d.len(), 3);
        assert_eq!(d.instances_of("a").count(), 2);
        assert_eq!(d.count_on(NodeIndex(0)), 2);
        assert_eq!(d.remove_node(NodeIndex(0)), 2);
        assert_eq!(d.len(), 1);
        assert!(d.remove("i2"));
        assert!(!d.remove("i2"));
        assert!(d.is_empty());
    }

    #[test]
    fn display_forms() {
        assert_eq!(
            Constraint::count("repl", Some("fife"), 5).to_string(),
            "count(repl) >= 5 in fife"
        );
        assert!(Constraint::Capacity { max: 3 }.to_string().contains("<= 3"));
    }
}
