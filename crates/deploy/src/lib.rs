//! Component deployment policies, monitoring, and the evolution engine
//! (§4.4, §4.6).
//!
//! "Policies take the form of constraints over the placement of
//! processing steps. For example, a constraint might specify that at
//! least 5 pipeline components providing a data replication service must
//! be deployed in parallel within a given geographical region. ... All
//! constraints will feed into an evolution engine, itself a distributed
//! computation, that will dynamically evolve the contextual matching
//! engine by manipulating the pipelines. As events arise that cause a
//! given constraint to be violated (such as the sudden unavailability of
//! a particular node), it is the role of the monitoring engine to make
//! appropriate adjustments to satisfy the constraint again."
//!
//! * [`NodeResources`] — resource advertisements, carried as events
//!   (nodes "advertise their resource availability, physical and logical
//!   connectivity, geographic location etc. via publish events"),
//! * [`Constraint`] — active-pipes-style placement constraints,
//! * [`solver`] — greedy repair planning for violated constraints,
//! * [`MonitorEngine`] — heartbeat tracking; silent failures are detected
//!   and published "on their behalf",
//! * [`EvolutionEngine`] — consumes resource events, detects violations,
//!   plans repairs, and tracks the deployment as installs are confirmed,
//! * [`DeploymentPlane`] — a simulation harness measuring
//!   violation-to-repair latency under churn (experiment **C4**).
//!
//! # Example
//!
//! ```
//! use gloss_deploy::{Constraint, DeploymentPlane};
//! use gloss_sim::SimDuration;
//!
//! let constraints = vec![Constraint::count("replicator", Some("scotland"), 3)];
//! let mut plane = DeploymentPlane::build(9, constraints, 42);
//! plane.run_for(SimDuration::from_secs(120));
//! assert!(plane.evolution().satisfaction() >= 1.0);
//! ```

pub mod constraint;
pub mod evolution;
pub mod monitor;
pub mod plane;
pub mod resource;
pub mod solver;

pub use constraint::{Constraint, Deployment, Violation};
pub use evolution::{Action, EvolutionEngine};
pub use monitor::MonitorEngine;
pub use plane::{DeployMsg, DeploymentPlane};
pub use resource::NodeResources;
