//! The deployment plane harness: worker nodes with thin servers
//! advertising resources; one coordinator node hosting the monitoring and
//! evolution engines; bundles shipped to repair violations (experiment
//! **C4**).

use crate::constraint::Constraint;
use crate::evolution::{Action, EvolutionEngine};
use crate::monitor::MonitorEngine;
use crate::resource::NodeResources;
use gloss_bundle::{AuthKey, Bundle, Capability, ThinServer};
use gloss_sim::{Input, Node, NodeIndex, Outbox, SimDuration, SimTime, Topology, World};
use gloss_xml::Element;

/// Messages on the deployment plane. (In the full architecture these ride
/// the pub/sub event system; the plane harness sends them directly so the
/// deployment logic can be measured in isolation — `gloss-core` wires the
/// real pub/sub path.)
#[derive(Debug, Clone, PartialEq)]
pub enum DeployMsg {
    /// A resource advertisement (periodic heartbeat), as an event.
    Advertise(String),
    /// A sealed code bundle packet, with the instance id it realises.
    Bundle {
        /// The instance id assigned by the evolution engine.
        instance: String,
        /// The XML bundle packet.
        packet: String,
    },
    /// Install confirmation.
    Installed {
        /// The instance id.
        instance: String,
    },
}

const HEARTBEAT_TIMER: u64 = 0x40;
const SWEEP_TIMER: u64 = 0x41;

/// A node on the deployment plane.
#[derive(Debug)]
pub enum PlaneNode {
    /// A worker: thin server + periodic resource advertisements.
    Worker {
        /// The thin server hosting deployed bundles.
        server: Box<ThinServer>,
        /// What this node advertises.
        resources: NodeResources,
        /// The coordinator to advertise to.
        coordinator: NodeIndex,
        /// Advertisement period.
        heartbeat: SimDuration,
    },
    /// The coordinator: monitoring + evolution engines.
    Coordinator {
        /// The monitoring engine.
        monitor: MonitorEngine,
        /// The evolution engine.
        evolution: Box<EvolutionEngine>,
        /// Key used to seal bundles.
        key: AuthKey,
        /// Sweep/reconcile period.
        sweep_every: SimDuration,
    },
}

impl Node for PlaneNode {
    type Msg = DeployMsg;

    fn handle(&mut self, now: SimTime, input: Input<DeployMsg>, out: &mut Outbox<DeployMsg>) {
        match self {
            PlaneNode::Worker { server, resources, coordinator, heartbeat } => match input {
                Input::Start => {
                    out.send(
                        *coordinator,
                        DeployMsg::Advertise(resources.to_event().to_xml().to_xml()),
                    );
                    out.timer(*heartbeat, HEARTBEAT_TIMER);
                }
                Input::Timer { tag: HEARTBEAT_TIMER } => {
                    out.send(
                        *coordinator,
                        DeployMsg::Advertise(resources.to_event().to_xml().to_xml()),
                    );
                    out.timer(*heartbeat, HEARTBEAT_TIMER);
                }
                Input::Timer { .. } => {}
                Input::Msg { from, msg: DeployMsg::Bundle { instance, packet } } => {
                    match server.receive_packet(&packet) {
                        Ok(report) => {
                            out.count("deploy.installs", 1.0);
                            if report.lint_warnings > 0 {
                                out.count("deploy.lint_warnings", report.lint_warnings as f64);
                            }
                            out.send(from, DeployMsg::Installed { instance });
                        }
                        Err(gloss_bundle::BundleError::RejectedByAnalysis(_)) => {
                            out.count("deploy.lint_rejected", 1.0);
                            out.count("deploy.install_failures", 1.0);
                        }
                        Err(_) => out.count("deploy.install_failures", 1.0),
                    }
                }
                Input::Msg { .. } => {}
            },
            PlaneNode::Coordinator { monitor, evolution, key, sweep_every } => {
                let mut actions = Vec::new();
                match input {
                    Input::Start => out.timer(*sweep_every, SWEEP_TIMER),
                    Input::Timer { tag: SWEEP_TIMER } => {
                        for ev in monitor.sweep(now) {
                            if ev.kind() == crate::resource::kinds::SUSPECTED {
                                // Graduated warning: not yet a failure, so
                                // no redeploy is triggered.
                                out.count("deploy.suspected", 1.0);
                            } else {
                                out.count("deploy.failures_detected", 1.0);
                                out.count("deploy.evicted", 1.0);
                                actions.extend(evolution.on_event(now, &ev));
                            }
                        }
                        actions.extend(evolution.reconcile(now));
                        out.timer(*sweep_every, SWEEP_TIMER);
                    }
                    Input::Timer { .. } => {}
                    Input::Msg { msg: DeployMsg::Advertise(xml), .. } => {
                        if let Ok(ev) = gloss_event::Event::from_xml_text(&xml) {
                            if monitor.on_event(now, &ev).is_some() {
                                out.count("deploy.refuted", 1.0);
                            }
                            actions.extend(evolution.on_event(now, &ev));
                        }
                    }
                    Input::Msg { msg: DeployMsg::Installed { instance }, .. } => {
                        evolution.confirm_deploy(now, &instance);
                        if evolution.violations().is_empty() {
                            if let Some(&(from, to)) = evolution.repair_episodes.last() {
                                // Record the latest episode duration once.
                                let ms = to.since(from).as_secs_f64() * 1e3;
                                out.observe("deploy.repair_ms", ms);
                            }
                        }
                    }
                    Input::Msg { .. } => {}
                }
                for (instance, action) in actions {
                    if let Action::Deploy { kind, node } = action {
                        let bundle = Bundle::component(instance.clone(), kind, Element::new("cfg"))
                            .issued_by(key.issuer());
                        let packet = bundle.to_packet(key);
                        out.count("deploy.bundles_sent", 1.0);
                        out.send(node, DeployMsg::Bundle { instance, packet });
                    }
                }
            }
        }
    }
}

/// The deployment plane: one coordinator (node 0) plus workers.
#[derive(Debug)]
pub struct DeploymentPlane {
    world: World<PlaneNode>,
}

impl DeploymentPlane {
    /// Builds a plane with `workers` worker nodes and the given
    /// constraints.
    pub fn build(workers: usize, constraints: Vec<Constraint>, seed: u64) -> Self {
        let topology = Topology::random(workers + 1, &["scotland", "england", "europe"], seed);
        let key = AuthKey::new("evolution", b"deploy-plane-secret");
        let mut nodes: Vec<PlaneNode> = Vec::with_capacity(workers + 1);
        nodes.push(PlaneNode::Coordinator {
            monitor: MonitorEngine::new(SimDuration::from_secs(30)),
            evolution: Box::new(EvolutionEngine::new(constraints)),
            key: key.clone(),
            sweep_every: SimDuration::from_secs(10),
        });
        for info in topology.iter().skip(1) {
            let mut server = ThinServer::new(format!("worker-{}", info.index));
            server.trust(key.clone());
            server.grant("evolution", Capability::DeployComponent);
            server.grant("evolution", Capability::DeployMatchlet);
            server.grant("evolution", Capability::StoreAccess);
            nodes.push(PlaneNode::Worker {
                server: Box::new(server),
                resources: NodeResources {
                    node: info.index,
                    region: info.region.clone(),
                    geo: info.geo,
                    cpu: info.cpu,
                    storage: info.storage,
                },
                coordinator: NodeIndex(0),
                heartbeat: SimDuration::from_secs(10),
            });
        }
        DeploymentPlane { world: World::new(topology, seed, nodes) }
    }

    /// Advances the simulation.
    pub fn run_for(&mut self, d: SimDuration) {
        self.world.run_for(d);
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.world.now()
    }

    /// The evolution engine's state.
    ///
    /// # Panics
    ///
    /// Never in practice (node 0 is always the coordinator).
    pub fn evolution(&self) -> &EvolutionEngine {
        match self.world.node(NodeIndex(0)) {
            PlaneNode::Coordinator { evolution, .. } => evolution,
            PlaneNode::Worker { .. } => unreachable!("node 0 is the coordinator"),
        }
    }

    /// The monitoring engine's state.
    pub fn monitor(&self) -> &MonitorEngine {
        match self.world.node(NodeIndex(0)) {
            PlaneNode::Coordinator { monitor, .. } => monitor,
            PlaneNode::Worker { .. } => unreachable!("node 0 is the coordinator"),
        }
    }

    /// Crashes a worker node.
    pub fn crash(&mut self, node: NodeIndex) {
        self.world.crash(node);
    }

    /// Recovers a worker node.
    pub fn recover(&mut self, node: NodeIndex) {
        self.world.recover(node);
    }

    /// The underlying world (metrics).
    pub fn world(&self) -> &World<PlaneNode> {
        &self.world
    }

    /// Installed bundle count on a worker.
    pub fn installed_on(&self, node: NodeIndex) -> usize {
        match self.world.node(node) {
            PlaneNode::Worker { server, .. } => server.installed_names().len(),
            PlaneNode::Coordinator { .. } => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn initial_deployment_satisfies_constraints() {
        let constraints = vec![
            Constraint::count("replicator", Some("scotland"), 2),
            Constraint::count("matcher", None, 3),
        ];
        let mut plane = DeploymentPlane::build(9, constraints, 1);
        plane.run_for(SimDuration::from_secs(120));
        assert_eq!(plane.evolution().satisfaction(), 1.0);
        assert_eq!(plane.evolution().deployment().instances_of("matcher").count(), 3);
        // Bundles really installed on thin servers.
        let total_installed: usize = (1..10).map(|i| plane.installed_on(NodeIndex(i))).sum();
        assert_eq!(total_installed, 5);
    }

    #[test]
    fn crash_is_detected_and_repaired() {
        let constraints = vec![Constraint::count("replicator", None, 3)];
        let mut plane = DeploymentPlane::build(8, constraints, 2);
        plane.run_for(SimDuration::from_secs(120));
        assert_eq!(plane.evolution().satisfaction(), 1.0);
        let victim = plane.evolution().deployment().instances_of("replicator").next().unwrap().1;
        plane.crash(victim);
        // Heartbeat stops; monitor deadline 30 s + sweep 10 s + bundle RTT.
        plane.run_for(SimDuration::from_secs(120));
        assert_eq!(plane.evolution().satisfaction(), 1.0, "constraint repaired");
        assert!(plane.monitor().failures_detected >= 1);
        // The failure was graduated: a suspicion episode preceded the
        // eviction.
        assert!(plane.monitor().suspicions >= 1);
        assert!(plane.world().metrics().counter("deploy.suspected") >= 1.0);
        assert!(plane.world().metrics().counter("deploy.evicted") >= 1.0);
        assert!(
            plane.evolution().deployment().instances_of("replicator").all(|(_, n)| n != victim),
            "replacement avoids the dead node"
        );
        let repair = plane.world().metrics().summary("deploy.repair_ms");
        assert!(repair.count >= 1, "repair episode measured");
    }

    #[test]
    fn recovered_node_rejoins_the_pool() {
        let constraints = vec![Constraint::count("matcher", None, 2)];
        let mut plane = DeploymentPlane::build(3, constraints, 3);
        plane.run_for(SimDuration::from_secs(60));
        plane.crash(NodeIndex(1));
        plane.run_for(SimDuration::from_secs(90));
        plane.recover(NodeIndex(1));
        plane.run_for(SimDuration::from_secs(60));
        // The recovered node advertises again and is usable.
        assert!(plane.monitor().is_alive(NodeIndex(1)));
        assert_eq!(plane.evolution().satisfaction(), 1.0);
    }

    #[test]
    fn impossible_constraints_stay_violated_without_thrash() {
        // Demand more regional instances than the region has nodes (with
        // a capacity cap preventing stacking).
        let constraints =
            vec![Constraint::Capacity { max: 1 }, Constraint::count("big", Some("scotland"), 50)];
        let mut plane = DeploymentPlane::build(6, constraints, 4);
        plane.run_for(SimDuration::from_secs(120));
        assert!(plane.evolution().satisfaction() < 1.0);
        // Every scotland worker hosts exactly one instance (no stacking).
        for i in 1..7 {
            assert!(plane.installed_on(NodeIndex(i)) <= 1);
        }
    }

    #[test]
    fn analysis_gate_rejects_defective_matchlet_bundles() {
        use gloss_sim::GeoPoint;

        let key = AuthKey::new("evolution", b"deploy-plane-secret");
        let mut server = ThinServer::new("worker-1");
        server.trust(key.clone());
        server.grant("evolution", Capability::DeployMatchlet);
        let mut worker = PlaneNode::Worker {
            server: Box::new(server),
            resources: NodeResources {
                node: NodeIndex(1),
                region: "scotland".into(),
                geo: GeoPoint { lat: 56.34, lon: -2.79 },
                cpu: 1.0,
                storage: 1 << 20,
            },
            coordinator: NodeIndex(0),
            heartbeat: SimDuration::from_secs(10),
        };
        let deliver = |worker: &mut PlaneNode, name: &str, source: &str| {
            let packet = Bundle::matchlet(name, source).issued_by("evolution").to_packet(&key);
            let mut out = Outbox::new();
            worker.handle(
                SimTime::ZERO,
                Input::Msg {
                    from: NodeIndex(0),
                    msg: DeployMsg::Bundle { instance: name.into(), packet },
                },
                &mut out,
            );
            out
        };

        // A matchlet whose emit reads an unbound variable: parses, but
        // the analysis gate must reject it before installation.
        let out = deliver(
            &mut worker,
            "ghost",
            r#"rule ghost { on w: event weather(c: ?c) emit alert(c: ?c, x: ?ghost) }"#,
        );
        assert!(out.sends().is_empty(), "no install confirmation for a rejected bundle");
        let counters: Vec<&str> = out.counts().iter().map(|(n, _)| n.as_ref()).collect();
        assert!(counters.contains(&"deploy.lint_rejected"), "{counters:?}");
        assert!(counters.contains(&"deploy.install_failures"), "{counters:?}");

        // The clean twin deploys, confirms, and reports no warnings.
        let out = deliver(
            &mut worker,
            "hot",
            r#"rule hot { on w: event weather(c: ?c) where ?c > 18.0 emit alert(c: ?c) }"#,
        );
        assert!(matches!(out.sends(), [(NodeIndex(0), DeployMsg::Installed { .. }, _)]));
        let counters: Vec<&str> = out.counts().iter().map(|(n, _)| n.as_ref()).collect();
        assert_eq!(counters, vec!["deploy.installs"]);

        match &worker {
            PlaneNode::Worker { server, .. } => {
                assert_eq!(server.installed_names(), vec!["hot"]);
                assert_eq!(server.engine().rule_names(), vec!["hot"]);
            }
            PlaneNode::Coordinator { .. } => unreachable!(),
        }
    }
}
