//! Resource advertisements: what a node offers, carried as events.

use gloss_event::Event;
use gloss_sim::{GeoPoint, NodeIndex};

/// One node's advertised resources.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeResources {
    /// The node.
    pub node: NodeIndex,
    /// Its region.
    pub region: String,
    /// Its location.
    pub geo: GeoPoint,
    /// Relative compute capacity.
    pub cpu: f64,
    /// Storage bytes offered.
    pub storage: u64,
}

/// Event kinds used on the deployment plane.
pub mod kinds {
    /// Periodic capability/liveness advertisement.
    pub const ADVERTISE: &str = "resource.advertise";
    /// Graceful imminent-withdrawal warning.
    pub const WITHDRAW: &str = "resource.withdraw";
    /// Published by the monitoring engine on behalf of a silent node.
    pub const FAILED: &str = "resource.failed";
    /// Monitor-published: a node is half a deadline silent (graduated
    /// pre-failure warning).
    pub const SUSPECTED: &str = "resource.suspected";
    /// Monitor-published: a suspected node's heartbeat resumed.
    pub const REFUTED: &str = "resource.refuted";
}

impl NodeResources {
    /// Encodes the advertisement as an event.
    pub fn to_event(&self) -> Event {
        Event::new(kinds::ADVERTISE)
            .with_attr("node", self.node.0 as i64)
            .with_attr("region", self.region.as_str())
            .with_attr("lat", self.geo.lat)
            .with_attr("lon", self.geo.lon)
            .with_attr("cpu", self.cpu)
            .with_attr("storage", self.storage as i64)
    }

    /// Decodes an advertisement event.
    pub fn from_event(ev: &Event) -> Option<NodeResources> {
        if ev.kind() != kinds::ADVERTISE {
            return None;
        }
        Some(NodeResources {
            node: NodeIndex(ev.num_attr("node")? as u32),
            region: ev.str_attr("region")?.to_string(),
            geo: GeoPoint::new(ev.num_attr("lat")?, ev.num_attr("lon")?),
            cpu: ev.num_attr("cpu")?,
            storage: ev.num_attr("storage")? as u64,
        })
    }

    /// A withdrawal event for this node.
    pub fn withdraw_event(node: NodeIndex) -> Event {
        Event::new(kinds::WITHDRAW).with_attr("node", node.0 as i64)
    }

    /// A failure event for a silent node (monitor-published).
    pub fn failed_event(node: NodeIndex) -> Event {
        Event::new(kinds::FAILED).with_attr("node", node.0 as i64)
    }

    /// A suspicion event for a half-deadline-silent node.
    pub fn suspected_event(node: NodeIndex) -> Event {
        Event::new(kinds::SUSPECTED).with_attr("node", node.0 as i64)
    }

    /// A refutation event for a suspected node that resumed heartbeats.
    pub fn refuted_event(node: NodeIndex) -> Event {
        Event::new(kinds::REFUTED).with_attr("node", node.0 as i64)
    }

    /// Extracts the node from a withdraw/failed event.
    pub fn departed_node(ev: &Event) -> Option<NodeIndex> {
        if ev.kind() != kinds::WITHDRAW && ev.kind() != kinds::FAILED {
            return None;
        }
        Some(NodeIndex(ev.num_attr("node")? as u32))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> NodeResources {
        NodeResources {
            node: NodeIndex(4),
            region: "scotland".into(),
            geo: GeoPoint::new(56.3, -3.0),
            cpu: 1.5,
            storage: 1 << 30,
        }
    }

    #[test]
    fn advertise_round_trip() {
        let r = sample();
        let back = NodeResources::from_event(&r.to_event()).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn from_event_rejects_other_kinds() {
        assert!(NodeResources::from_event(&Event::new("weather")).is_none());
        let incomplete = Event::new(kinds::ADVERTISE).with_attr("node", 1i64);
        assert!(NodeResources::from_event(&incomplete).is_none());
    }

    #[test]
    fn departure_events() {
        let w = NodeResources::withdraw_event(NodeIndex(7));
        let f = NodeResources::failed_event(NodeIndex(8));
        assert_eq!(NodeResources::departed_node(&w), Some(NodeIndex(7)));
        assert_eq!(NodeResources::departed_node(&f), Some(NodeIndex(8)));
        assert_eq!(NodeResources::departed_node(&Event::new("x")), None);
    }
}
