//! A deterministic token bucket, the rate-limiting primitive shared by
//! the admission plane (join stampede control) and the storage plane's
//! repair pipeline (anti-storm pacing of re-replication traffic).
//!
//! State advances only on calls carrying simulated time, so identical
//! call sequences yield identical verdicts at any thread count.

use gloss_sim::SimTime;

/// A token bucket: `capacity` tokens of burst, refilled continuously at
/// `refill_per_sec`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TokenBucket {
    capacity: f64,
    refill_per_sec: f64,
    tokens: f64,
    refilled_at: SimTime,
}

impl TokenBucket {
    /// Creates a full bucket whose refill clock starts at `now`.
    pub fn new(capacity: f64, refill_per_sec: f64, now: SimTime) -> Self {
        TokenBucket { capacity, refill_per_sec, tokens: capacity, refilled_at: now }
    }

    /// Advances the refill clock to `now`.
    pub fn refill(&mut self, now: SimTime) {
        let dt = now.since(self.refilled_at).as_secs_f64();
        self.tokens = (self.tokens + dt * self.refill_per_sec).min(self.capacity);
        self.refilled_at = now;
    }

    /// Tokens available after refilling to `now`.
    pub fn available(&mut self, now: SimTime) -> f64 {
        self.refill(now);
        self.tokens
    }

    /// Takes `cost` tokens if available; returns whether the take
    /// succeeded. A failed take consumes nothing.
    pub fn try_take(&mut self, now: SimTime, cost: f64) -> bool {
        self.refill(now);
        if self.tokens >= cost {
            self.tokens -= cost;
            true
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gloss_sim::SimDuration;

    #[test]
    fn burst_then_refill() {
        let mut b = TokenBucket::new(3.0, 1.0, SimTime::ZERO);
        assert!(b.try_take(SimTime::ZERO, 1.0));
        assert!(b.try_take(SimTime::ZERO, 1.0));
        assert!(b.try_take(SimTime::ZERO, 1.0));
        assert!(!b.try_take(SimTime::ZERO, 1.0));
        // One second refills one token.
        let t = SimTime::ZERO + SimDuration::from_secs(1);
        assert!(b.try_take(t, 1.0));
        assert!(!b.try_take(t, 1.0));
    }

    #[test]
    fn refill_caps_at_capacity() {
        let mut b = TokenBucket::new(2.0, 10.0, SimTime::ZERO);
        assert!((b.available(SimTime::from_secs(100)) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn failed_take_consumes_nothing() {
        let mut b = TokenBucket::new(1.0, 0.0, SimTime::ZERO);
        assert!(!b.try_take(SimTime::ZERO, 2.0));
        assert!(b.try_take(SimTime::ZERO, 1.0));
    }

    #[test]
    fn fractional_costs() {
        let mut b = TokenBucket::new(1.0, 0.5, SimTime::ZERO);
        assert!(b.try_take(SimTime::ZERO, 0.75));
        assert!(!b.try_take(SimTime::ZERO, 0.75));
        // 1 second refills 0.5: 0.25 + 0.5 = 0.75.
        assert!(b.try_take(SimTime::from_secs(1), 0.75));
    }
}
