//! Per-peer suspicion scoring with a circuit breaker.
//!
//! Replaces binary three-strikes failure detection with a phi-accrual
//! style score: suspicion grows with both the number of missed probes and
//! the time elapsed relative to the peer's observed contact inter-arrival,
//! and *decays* on contact instead of resetting — so a flapping link
//! hovers at low suspicion (hysteresis) while a dead peer crosses the
//! threshold in a few probe intervals.
//!
//! Liveness is not the only failure mode: a byzantine peer can answer
//! probes while silently dropping forwarded traffic ("ack-then-drop").
//! The tracker therefore keeps two evidence channels per peer:
//!
//! * **liveness** — probe timeouts raise it, any probe contact decays it;
//! * **conduct** — unacknowledged forwards raise it, acknowledged
//!   forwards decay it. Probe contact does *not* refute conduct
//!   suspicion, so acking probes cannot whitewash dropped traffic.
//!
//! Either channel crossing its threshold opens the peer's circuit:
//!
//! ```text
//!            phi ≥ threshold            cooldown elapsed
//!  CLOSED ───────────────────▶ OPEN ──────────────────▶ HALF-OPEN
//!    ▲                                                     │ │
//!    │            contact / acked forward (refutation)     │ │
//!    └─────────────────────────────────────────────────────┘ │
//!                 trial failures ≥ evict_failures ──▶ EVICTED (banned)
//! ```
//!
//! While OPEN the peer is skipped by routing, replica placement, and
//! regular probing (only the half-open trial probes go out). EVICTED is
//! terminal: the peer is banned so gossip cannot re-introduce it.

use gloss_sim::{FnvHashMap, NodeIndex, SimDuration, SimTime};

/// Suspicion policy knobs.
#[derive(Debug, Clone)]
pub struct SuspicionConfig {
    /// Expected probe cadence; scales the phi elapsed-time ratio.
    pub probe_interval: SimDuration,
    /// Liveness phi at which the circuit opens (≈ missed² at steady
    /// cadence, so 6.0 opens on the third consecutive miss).
    pub suspect_threshold: f64,
    /// Unacked-forward score at which the circuit opens.
    pub conduct_threshold: f64,
    /// Multiplier applied to the missed-probe score on contact (< 1;
    /// hysteresis — flapping decays instead of resetting).
    pub contact_decay: f64,
    /// Multiplier applied to the conduct score on an acked forward.
    pub conduct_decay: f64,
    /// How long an opened circuit rests before half-open trials.
    pub open_cooldown: SimDuration,
    /// Failed half-open trials before the peer is evicted outright.
    pub evict_failures: u32,
}

impl Default for SuspicionConfig {
    fn default() -> Self {
        SuspicionConfig {
            probe_interval: SimDuration::from_secs(5),
            suspect_threshold: 6.0,
            conduct_threshold: 4.0,
            contact_decay: 0.35,
            conduct_decay: 0.5,
            open_cooldown: SimDuration::from_secs(10),
            evict_failures: 2,
        }
    }
}

/// Circuit breaker state of one peer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CircuitState {
    /// Healthy: routed to, probed, eligible for replica placement.
    Closed,
    /// Suspected: skipped by routing and placement; probing paused until
    /// the cooldown elapses.
    Open,
    /// Trial period: probed and routable again; failures evict, contact
    /// refutes.
    HalfOpen,
}

/// What a new piece of evidence did to a peer's circuit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SuspicionVerdict {
    /// Nothing changed.
    None,
    /// The circuit just opened (peer newly suspected).
    Opened,
    /// The peer survived suspicion (circuit re-closed).
    Refuted,
    /// Half-open trials exhausted: the caller should remove the peer from
    /// its routing state and call [`SuspicionTracker::evict`].
    Evict,
}

/// Whether the probe loop should contact a peer this round.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProbeDecision {
    /// Send a probe.
    Probe,
    /// Circuit open and cooling down: skip.
    Skip,
}

#[derive(Debug, Clone, Copy)]
struct Peer {
    last_contact: SimTime,
    /// EWMA of contact inter-arrival (µs).
    mean_gap_us: f64,
    /// Missed-probe score (decays on contact).
    missed: f64,
    /// Unacked-forward score (decays on acked forwards only).
    conduct: f64,
    state: CircuitState,
    half_open_at: SimTime,
    trial_failures: u32,
}

/// Phi-accrual-style suspicion scores and circuit breakers for a node's
/// peers. Purely deterministic: state advances only through the feed
/// methods, all of which carry simulated time.
#[derive(Debug, Clone)]
pub struct SuspicionTracker {
    cfg: SuspicionConfig,
    peers: FnvHashMap<u32, Peer>,
    banned: FnvHashMap<u32, ()>,
    /// Circuits opened so far.
    pub opened: u64,
    /// Suspicions refuted (peer came back) so far.
    pub refuted: u64,
    /// Peers evicted so far.
    pub evicted: u64,
}

impl SuspicionTracker {
    /// Creates a tracker with the given policy.
    pub fn new(cfg: SuspicionConfig) -> Self {
        SuspicionTracker {
            cfg,
            peers: FnvHashMap::default(),
            banned: FnvHashMap::default(),
            opened: 0,
            refuted: 0,
            evicted: 0,
        }
    }

    fn entry(&mut self, now: SimTime, peer: NodeIndex) -> &mut Peer {
        let interval = self.cfg.probe_interval.as_micros() as f64;
        self.peers.entry(peer.0).or_insert(Peer {
            last_contact: now,
            mean_gap_us: interval,
            missed: 0.0,
            conduct: 0.0,
            state: CircuitState::Closed,
            half_open_at: SimTime::ZERO,
            trial_failures: 0,
        })
    }

    /// Ensures a peer is tracked (call when a peer is first learned, so
    /// phi has a baseline even if the peer never makes contact).
    pub fn observe(&mut self, now: SimTime, peer: NodeIndex) {
        self.entry(now, peer);
    }

    /// Feeds probe-layer contact (an ack or an incoming probe). Refutes
    /// liveness suspicion; does **not** touch the conduct channel.
    pub fn on_contact(&mut self, now: SimTime, peer: NodeIndex) -> SuspicionVerdict {
        let decay = self.cfg.contact_decay;
        let lo = self.cfg.probe_interval.as_micros() as f64 * 0.5;
        let hi = self.cfg.probe_interval.as_micros() as f64 * 10.0;
        let conduct_open = |p: &Peer, cfg: &SuspicionConfig| p.conduct >= cfg.conduct_threshold;
        let cfg = self.cfg.clone();
        let p = self.entry(now, peer);
        let gap = (now.since(p.last_contact).as_micros() as f64).clamp(lo, hi);
        p.mean_gap_us = 0.8 * p.mean_gap_us + 0.2 * gap;
        p.last_contact = now;
        p.missed *= decay;
        if p.state != CircuitState::Closed && !conduct_open(p, &cfg) {
            // Liveness-only suspicion: contact is a refutation. A circuit
            // held open by conduct evidence needs an acked forward.
            p.state = CircuitState::Closed;
            p.trial_failures = 0;
            self.refuted += 1;
            return SuspicionVerdict::Refuted;
        }
        SuspicionVerdict::None
    }

    /// Feeds a probe round that ended without contact from `peer`.
    pub fn on_probe_timeout(&mut self, now: SimTime, peer: NodeIndex) -> SuspicionVerdict {
        let threshold = self.cfg.suspect_threshold;
        let cooldown = self.cfg.open_cooldown;
        let evict_failures = self.cfg.evict_failures;
        let phi = self.phi(now, peer);
        let p = self.entry(now, peer);
        p.missed += 1.0;
        match p.state {
            CircuitState::Closed if phi >= threshold => {
                p.state = CircuitState::Open;
                p.half_open_at = now + cooldown;
                self.opened += 1;
                SuspicionVerdict::Opened
            }
            CircuitState::HalfOpen => {
                p.trial_failures += 1;
                if p.trial_failures >= evict_failures {
                    SuspicionVerdict::Evict
                } else {
                    SuspicionVerdict::None
                }
            }
            _ => SuspicionVerdict::None,
        }
    }

    /// Feeds routing-conduct evidence: a forward to `peer` went
    /// unacknowledged past its deadline.
    pub fn on_forward_unacked(&mut self, now: SimTime, peer: NodeIndex) -> SuspicionVerdict {
        let threshold = self.cfg.conduct_threshold;
        let cooldown = self.cfg.open_cooldown;
        let evict_failures = self.cfg.evict_failures;
        let p = self.entry(now, peer);
        p.conduct += 1.0;
        match p.state {
            CircuitState::Closed if p.conduct >= threshold => {
                p.state = CircuitState::Open;
                p.half_open_at = now + cooldown;
                self.opened += 1;
                SuspicionVerdict::Opened
            }
            CircuitState::HalfOpen => {
                p.trial_failures += 1;
                if p.trial_failures >= evict_failures {
                    SuspicionVerdict::Evict
                } else {
                    SuspicionVerdict::None
                }
            }
            _ => SuspicionVerdict::None,
        }
    }

    /// Feeds routing-conduct evidence: a forward to `peer` was
    /// acknowledged. Decays conduct suspicion and can refute a half-open
    /// circuit that conduct evidence opened.
    pub fn on_forward_acked(&mut self, now: SimTime, peer: NodeIndex) -> SuspicionVerdict {
        let decay = self.cfg.conduct_decay;
        let p = self.entry(now, peer);
        p.conduct *= decay;
        if p.state == CircuitState::HalfOpen {
            p.state = CircuitState::Closed;
            p.trial_failures = 0;
            self.refuted += 1;
            return SuspicionVerdict::Refuted;
        }
        SuspicionVerdict::None
    }

    /// The probe loop's gate for one peer this round; transitions an open
    /// circuit to half-open once its cooldown elapses.
    pub fn probe_decision(&mut self, now: SimTime, peer: NodeIndex) -> ProbeDecision {
        let p = self.entry(now, peer);
        match p.state {
            CircuitState::Open if now >= p.half_open_at => {
                p.state = CircuitState::HalfOpen;
                p.trial_failures = 0;
                ProbeDecision::Probe
            }
            CircuitState::Open => ProbeDecision::Skip,
            _ => ProbeDecision::Probe,
        }
    }

    /// The liveness phi score: missed-probe score scaled by elapsed time
    /// relative to the peer's expected contact gap.
    pub fn phi(&self, now: SimTime, peer: NodeIndex) -> f64 {
        let Some(p) = self.peers.get(&peer.0) else {
            return 0.0;
        };
        let expected = p.mean_gap_us.max(self.cfg.probe_interval.as_micros() as f64);
        let elapsed = now.since(p.last_contact).as_micros() as f64;
        p.missed * (elapsed / expected)
    }

    /// Current circuit state (unknown peers are closed).
    pub fn state(&self, peer: NodeIndex) -> CircuitState {
        self.peers.get(&peer.0).map_or(CircuitState::Closed, |p| p.state)
    }

    /// Whether routing may use this peer (closed or half-open trial).
    pub fn allows_routing(&self, peer: NodeIndex) -> bool {
        !self.banned.contains_key(&peer.0) && self.state(peer) != CircuitState::Open
    }

    /// Whether replica placement may use this peer (closed only).
    pub fn allows_placement(&self, peer: NodeIndex) -> bool {
        !self.banned.contains_key(&peer.0) && self.state(peer) == CircuitState::Closed
    }

    /// Permanently bans a peer (gossip cannot re-introduce it) and drops
    /// its score state.
    pub fn evict(&mut self, peer: NodeIndex) {
        self.peers.remove(&peer.0);
        self.banned.insert(peer.0, ());
        self.evicted += 1;
    }

    /// Whether `peer` has been evicted.
    pub fn is_banned(&self, peer: NodeIndex) -> bool {
        self.banned.contains_key(&peer.0)
    }

    /// Drops all state for `peer` without banning it (e.g. the peer
    /// gracefully withdrew).
    pub fn forget(&mut self, peer: NodeIndex) {
        self.peers.remove(&peer.0);
    }

    /// Lifts a ban and clears score state: the peer re-joined through an
    /// admission-controlled path, i.e. it is a new incarnation. A no-op
    /// beyond `forget` for un-banned peers.
    pub fn readmit(&mut self, peer: NodeIndex) {
        self.banned.remove(&peer.0);
        self.peers.remove(&peer.0);
    }

    /// Number of peers currently tracked.
    pub fn tracked(&self) -> usize {
        self.peers.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(secs: u64) -> SimTime {
        SimTime::from_secs(secs)
    }

    fn tracker() -> SuspicionTracker {
        SuspicionTracker::new(SuspicionConfig::default())
    }

    const PEER: NodeIndex = NodeIndex(1);

    /// Runs `rounds` probe rounds (5 s apart, starting at `from`) without
    /// contact, returning the verdicts.
    fn silent_rounds(tr: &mut SuspicionTracker, from: u64, rounds: u64) -> Vec<SuspicionVerdict> {
        (0..rounds)
            .filter(|k| tr.probe_decision(t(from + k * 5), PEER) == ProbeDecision::Probe)
            .collect::<Vec<_>>()
            .into_iter()
            .map(|k| tr.on_probe_timeout(t(from + k * 5), PEER))
            .collect()
    }

    #[test]
    fn dead_peer_opens_in_a_few_rounds() {
        let mut tr = tracker();
        tr.observe(t(0), PEER);
        let verdicts = silent_rounds(&mut tr, 5, 4);
        assert!(verdicts.contains(&SuspicionVerdict::Opened), "{verdicts:?}");
        assert_eq!(tr.state(PEER), CircuitState::Open);
        assert!(!tr.allows_routing(PEER));
        assert!(!tr.allows_placement(PEER));
    }

    #[test]
    fn steady_contact_stays_closed() {
        let mut tr = tracker();
        tr.observe(t(0), PEER);
        for k in 1..50 {
            assert_eq!(tr.on_contact(t(k * 5), PEER), SuspicionVerdict::None);
        }
        assert_eq!(tr.state(PEER), CircuitState::Closed);
        assert!(tr.phi(t(250), PEER) < 1.0);
    }

    #[test]
    fn flapping_link_does_not_open() {
        // Contact every other round: suspicion hovers, never crosses.
        let mut tr = tracker();
        tr.observe(t(0), PEER);
        for k in 1..40 {
            let now = t(k * 5);
            if k % 2 == 0 {
                tr.on_contact(now, PEER);
            } else {
                let v = tr.on_probe_timeout(now, PEER);
                assert_eq!(v, SuspicionVerdict::None, "flapping opened the circuit at {k}");
            }
        }
        assert_eq!(tr.state(PEER), CircuitState::Closed);
    }

    #[test]
    fn open_cools_down_then_half_open_then_evicts() {
        let mut tr = tracker();
        tr.observe(t(0), PEER);
        // Silence until open.
        let mut now = 5;
        while tr.state(PEER) != CircuitState::Open {
            tr.on_probe_timeout(t(now), PEER);
            now += 5;
        }
        // During the cooldown, probes are skipped.
        assert_eq!(tr.probe_decision(t(now), PEER), ProbeDecision::Skip);
        // After the cooldown (10 s), the circuit half-opens.
        now += 10;
        assert_eq!(tr.probe_decision(t(now), PEER), ProbeDecision::Probe);
        assert_eq!(tr.state(PEER), CircuitState::HalfOpen);
        // Two failed trials evict.
        assert_eq!(tr.on_probe_timeout(t(now + 5), PEER), SuspicionVerdict::None);
        assert_eq!(tr.on_probe_timeout(t(now + 10), PEER), SuspicionVerdict::Evict);
        tr.evict(PEER);
        assert!(tr.is_banned(PEER));
        assert!(!tr.allows_routing(PEER));
        assert_eq!(tr.evicted, 1);
    }

    #[test]
    fn contact_refutes_liveness_suspicion() {
        let mut tr = tracker();
        tr.observe(t(0), PEER);
        let mut now = 5;
        while tr.state(PEER) != CircuitState::Open {
            tr.on_probe_timeout(t(now), PEER);
            now += 5;
        }
        assert_eq!(tr.on_contact(t(now), PEER), SuspicionVerdict::Refuted);
        assert_eq!(tr.state(PEER), CircuitState::Closed);
        assert_eq!(tr.refuted, 1);
        assert!(tr.allows_routing(PEER));
    }

    #[test]
    fn probe_contact_does_not_whitewash_conduct() {
        // Ack-then-drop: probes ack every round, forwards vanish.
        let mut tr = tracker();
        tr.observe(t(0), PEER);
        let mut opened = false;
        for k in 1..10 {
            let now = t(k * 5);
            tr.on_contact(now, PEER);
            if tr.on_forward_unacked(now, PEER) == SuspicionVerdict::Opened {
                opened = true;
                break;
            }
        }
        assert!(opened, "conduct evidence never opened the circuit");
        assert_eq!(tr.state(PEER), CircuitState::Open);
        // Probe contact alone does not re-close a conduct-opened circuit.
        assert_eq!(tr.on_contact(t(60), PEER), SuspicionVerdict::None);
        assert_eq!(tr.state(PEER), CircuitState::Open);
        // An acked forward during the half-open trial does.
        let _ = tr.probe_decision(t(70), PEER); // cooldown elapsed -> HalfOpen
        assert_eq!(tr.state(PEER), CircuitState::HalfOpen);
        assert_eq!(tr.on_forward_acked(t(71), PEER), SuspicionVerdict::Refuted);
        assert_eq!(tr.state(PEER), CircuitState::Closed);
    }

    #[test]
    fn acked_forwards_decay_conduct() {
        let mut tr = tracker();
        tr.observe(t(0), PEER);
        for k in 1..100 {
            // One drop per four acks: decay dominates, stays closed.
            let v = if k % 5 == 0 {
                tr.on_forward_unacked(t(k), PEER)
            } else {
                tr.on_forward_acked(t(k), PEER)
            };
            assert_ne!(v, SuspicionVerdict::Opened, "lossy-but-honest peer opened at {k}");
        }
        assert_eq!(tr.state(PEER), CircuitState::Closed);
    }

    #[test]
    fn banned_peers_stay_banned() {
        let mut tr = tracker();
        tr.evict(PEER);
        assert!(tr.is_banned(PEER));
        // Later evidence does not resurrect it.
        tr.on_contact(t(5), PEER);
        assert!(tr.is_banned(PEER));
        assert!(!tr.allows_placement(PEER));
    }
}
