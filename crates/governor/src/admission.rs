//! Join admission control: a token bucket per source prefix plus
//! exponential backoff with deterministic jitter for rejected requests.
//!
//! Rendezvous nodes (bootstraps, nodes adjacent in key space to many
//! joiners) are the melting point of a reconnection stampede: when a
//! partition heals, every node that crashed behind it retries its join at
//! once. The admission governor bounds the rate each node is willing to
//! serve per source neighbourhood and tells the overflow *when* to come
//! back, spreading the stampede over time instead of shedding it blindly.

use crate::bucket::TokenBucket;
use gloss_sim::{splitmix64, FnvHashMap, NodeIndex, SimDuration, SimTime};

/// Admission policy knobs.
#[derive(Debug, Clone)]
pub struct AdmissionConfig {
    /// Maximum burst of join requests admitted per source prefix.
    pub burst: f64,
    /// Sustained admission rate per source prefix (tokens per second).
    pub refill_per_sec: f64,
    /// Source addresses are grouped by `node_index >> prefix_shift`, so a
    /// misbehaving neighbourhood exhausts its own bucket, not everyone's.
    pub prefix_shift: u32,
    /// First retry delay pushed back to a rejected joiner.
    pub base_backoff: SimDuration,
    /// Backoff ceiling (doubling stops here).
    pub max_backoff: SimDuration,
    /// Fraction of the backoff randomised (`0.25` means ±25%), so
    /// rejected joiners do not re-synchronise into a second stampede.
    pub jitter: f64,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        AdmissionConfig {
            burst: 8.0,
            refill_per_sec: 4.0,
            prefix_shift: 4,
            base_backoff: SimDuration::from_millis(500),
            max_backoff: SimDuration::from_secs(8),
            jitter: 0.25,
        }
    }
}

/// The governor's verdict on one join request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// Serve the request.
    Admit,
    /// Reject; the joiner should retry after the given delay.
    Backoff(SimDuration),
}

/// Token-bucket join admission with per-source exponential backoff.
///
/// Deterministic: jitter draws from a private splitmix64 stream seeded by
/// the owner, and bucket state advances only on calls carrying simulated
/// time — identical call sequences yield identical verdicts. The bucket
/// itself is the shared [`TokenBucket`] primitive the storage plane's
/// repair pipeline also paces itself with.
#[derive(Debug, Clone)]
pub struct AdmissionGovernor {
    cfg: AdmissionConfig,
    buckets: FnvHashMap<u32, TokenBucket>,
    /// Consecutive rejections per source prefix (drives the exponent).
    strikes: FnvHashMap<u32, u32>,
    rng: u64,
    /// Requests admitted.
    pub admitted: u64,
    /// Requests rejected with a backoff.
    pub rejected: u64,
}

impl AdmissionGovernor {
    /// Creates a governor; `seed` feeds the jitter stream.
    pub fn new(cfg: AdmissionConfig, seed: u64) -> Self {
        let mut s = seed ^ 0xad31_5510_9e37_79b9;
        splitmix64(&mut s);
        AdmissionGovernor {
            cfg,
            buckets: FnvHashMap::default(),
            strikes: FnvHashMap::default(),
            rng: s,
            admitted: 0,
            rejected: 0,
        }
    }

    fn prefix(&self, source: NodeIndex) -> u32 {
        source.0 >> self.cfg.prefix_shift
    }

    /// Judges one join request from `source` at time `now`.
    pub fn check(&mut self, now: SimTime, source: NodeIndex) -> Admission {
        let prefix = self.prefix(source);
        let cfg = &self.cfg;
        let b = self
            .buckets
            .entry(prefix)
            .or_insert_with(|| TokenBucket::new(cfg.burst, cfg.refill_per_sec, now));
        if b.try_take(now, 1.0) {
            self.strikes.remove(&prefix);
            self.admitted += 1;
            return Admission::Admit;
        }
        let strikes = self.strikes.entry(prefix).or_insert(0);
        let exp = (*strikes).min(16);
        *strikes = strikes.saturating_add(1);
        self.rejected += 1;
        let base = cfg.base_backoff.as_micros().saturating_mul(1u64 << exp);
        let capped = base.min(cfg.max_backoff.as_micros()).max(1);
        // Deterministic jitter: backoff * (1 - jitter .. 1 + jitter).
        let unit = gloss_sim::splitmix_unit(&mut self.rng);
        let factor = 1.0 - cfg.jitter + 2.0 * cfg.jitter * unit;
        let jittered = ((capped as f64) * factor).round().max(1.0) as u64;
        Admission::Backoff(SimDuration::from_micros(jittered))
    }

    /// Joiner-side retry delay for an *unanswered* join attempt (the
    /// bootstrap never replied — it is down, partitioned away, or the
    /// message was lost). Follows the same exponential schedule the
    /// server side pushes to rejected joiners, jittered from this
    /// governor's private stream, but floored at one second so a healthy
    /// join round-trip is never raced by its own retry. Contrast with the
    /// ungoverned protocol's blind fixed-interval fallback: after a
    /// partition heals, governed joiners are already retrying on a short
    /// (≤ `max_backoff`) cadence and complete quickly, while the jitter
    /// keeps them from re-synchronising into a stampede.
    pub fn retry_backoff(&mut self, attempt: u32) -> SimDuration {
        let cfg = &self.cfg;
        let base = cfg.base_backoff.as_micros().saturating_mul(1u64 << attempt.min(16));
        let capped =
            base.min(cfg.max_backoff.as_micros()).max(SimDuration::from_secs(1).as_micros());
        let unit = gloss_sim::splitmix_unit(&mut self.rng);
        let factor = 1.0 - cfg.jitter + 2.0 * cfg.jitter * unit;
        SimDuration::from_micros(((capped as f64) * factor).round().max(1.0) as u64)
    }

    /// Drops per-source state (e.g. after the source completed its join).
    pub fn forget(&mut self, source: NodeIndex) {
        let prefix = self.prefix(source);
        self.strikes.remove(&prefix);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gov() -> AdmissionGovernor {
        AdmissionGovernor::new(AdmissionConfig::default(), 7)
    }

    #[test]
    fn burst_admitted_then_rejected() {
        let mut g = gov();
        let t = SimTime::ZERO;
        for _ in 0..8 {
            assert_eq!(g.check(t, NodeIndex(1)), Admission::Admit);
        }
        assert!(matches!(g.check(t, NodeIndex(1)), Admission::Backoff(_)));
        assert_eq!(g.admitted, 8);
        assert_eq!(g.rejected, 1);
    }

    #[test]
    fn refill_restores_admission() {
        let mut g = gov();
        for _ in 0..8 {
            g.check(SimTime::ZERO, NodeIndex(1));
        }
        assert!(matches!(g.check(SimTime::ZERO, NodeIndex(1)), Admission::Backoff(_)));
        // 1 second refills 4 tokens.
        assert_eq!(g.check(SimTime::from_secs(1), NodeIndex(1)), Admission::Admit);
    }

    #[test]
    fn backoff_grows_exponentially_and_caps() {
        let mut g = gov();
        for _ in 0..8 {
            g.check(SimTime::ZERO, NodeIndex(1));
        }
        let mut last = SimDuration::ZERO;
        let mut grew = 0;
        for _ in 0..12 {
            match g.check(SimTime::ZERO, NodeIndex(1)) {
                Admission::Backoff(d) => {
                    if d > last {
                        grew += 1;
                    }
                    assert!(
                        d.as_micros()
                            <= (AdmissionConfig::default().max_backoff.as_micros() as f64 * 1.25)
                                as u64,
                        "backoff {d:?} exceeds jittered ceiling"
                    );
                    last = d;
                }
                Admission::Admit => panic!("no refill happened"),
            }
        }
        assert!(grew >= 4, "backoff never grew: {grew}");
    }

    #[test]
    fn sources_in_different_prefixes_do_not_interfere() {
        let mut g = gov();
        for _ in 0..8 {
            g.check(SimTime::ZERO, NodeIndex(1));
        }
        assert!(matches!(g.check(SimTime::ZERO, NodeIndex(2)), Admission::Backoff(_)));
        // Prefix shift 4: node 16 lives in another bucket.
        assert_eq!(g.check(SimTime::ZERO, NodeIndex(16)), Admission::Admit);
    }

    #[test]
    fn deterministic_across_instances() {
        let run = || {
            let mut g = AdmissionGovernor::new(AdmissionConfig::default(), 99);
            let mut vs = Vec::new();
            for i in 0..20 {
                vs.push(g.check(SimTime::from_millis(i * 10), NodeIndex((i % 3) as u32)));
            }
            vs
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn admission_resets_strikes() {
        let mut g = gov();
        for _ in 0..9 {
            g.check(SimTime::ZERO, NodeIndex(1));
        }
        // Refill fully, admit, then exhaust again: backoff restarts small.
        let t = SimTime::from_secs(10);
        assert_eq!(g.check(t, NodeIndex(1)), Admission::Admit);
        for _ in 0..7 {
            g.check(t, NodeIndex(1));
        }
        match g.check(t, NodeIndex(1)) {
            Admission::Backoff(d) => {
                let ceiling = AdmissionConfig::default().base_backoff.as_micros() as f64 * 1.3;
                assert!((d.as_micros() as f64) <= ceiling, "strikes were not reset: {d:?}");
            }
            Admission::Admit => panic!("bucket should be empty"),
        }
    }
}
