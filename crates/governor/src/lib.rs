//! The admission and health plane ("governor") for the Gloss stack.
//!
//! The paper's active architecture assumes peers that join, advertise,
//! and fail politely. A pervasive deployment does not get that luxury:
//! radios flap, devices reconnect in stampedes after a partition heals,
//! and compromised nodes acknowledge probes while silently dropping
//! traffic. This crate is the layer between "node joins the overlay" and
//! "node is a trusted peer":
//!
//! * [`AdmissionGovernor`] — per-source-prefix token-bucket rate limiting
//!   for join requests, with exponential backoff + jitter pushed back to
//!   rejected joiners so a reconnection stampede drains smoothly.
//! * [`SuspicionTracker`] — a phi-accrual-style per-peer health score fed
//!   by the SWIM probe machinery (probe timeouts, contact inter-arrival,
//!   refutations) and by routing-layer conduct evidence (unacknowledged
//!   forwards), with hysteresis and a per-peer circuit breaker
//!   (closed → open → half-open) that gates routing and replica
//!   placement.
//! * [`LoadShedder`] — a bounded-ingress-queue model with a watermark
//!   policy for brokers: shed lowest-priority publications first, reject
//!   new subscriptions under overload, always admit unsubscribes and
//!   control traffic, with per-client fairness counters.
//!
//! Everything here is sans-IO and deterministic: no wall clocks, no
//! global randomness. Jitter draws from a seeded splitmix64 stream owned
//! by each governor instance, so simulation runs are byte-identical at
//! any thread count.

pub mod admission;
pub mod bucket;
pub mod shedding;
pub mod suspicion;

pub use admission::{Admission, AdmissionConfig, AdmissionGovernor};
pub use bucket::TokenBucket;
pub use shedding::{IngressClass, LoadShedder, ShedConfig, ShedDecision};
pub use suspicion::{
    CircuitState, ProbeDecision, SuspicionConfig, SuspicionTracker, SuspicionVerdict,
};

/// Combined configuration for an overlay node's governor (admission +
/// suspicion), so embedders wire one value through their constructors.
#[derive(Debug, Clone, Default)]
pub struct GovernorConfig {
    /// Join admission policy.
    pub admission: AdmissionConfig,
    /// Peer suspicion / circuit breaker policy.
    pub suspicion: SuspicionConfig,
}
