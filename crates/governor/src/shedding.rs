//! Broker ingress load shedding: a bounded-queue model with watermarks
//! and per-client fairness.
//!
//! The broker's ingress is modelled as one bounded queue that drains at a
//! fixed service rate. Between calls the backlog drains by elapsed
//! simulated time; each admitted message deepens it by one and inherits a
//! service delay proportional to the depth ahead of it. Policy by class:
//!
//! * **Control** (unsubscribes, detach/attach, mobility) is always
//!   admitted — shedding the traffic that *reduces* load is
//!   self-defeating.
//! * **Subscriptions** are rejected once the backlog crosses the high
//!   watermark: new work contracts are the easiest load to refuse.
//! * **Publications** are shed above the high watermark when they are low
//!   priority or their client is over its fair share of the current
//!   window, and shed unconditionally once the queue is full.

use gloss_sim::{FnvHashMap, SimDuration, SimTime};

/// Load-shedding policy knobs.
#[derive(Debug, Clone)]
pub struct ShedConfig {
    /// Hard queue bound: publications are shed unconditionally beyond it.
    pub capacity: f64,
    /// Backlog depth at which selective shedding starts and new
    /// subscriptions are rejected.
    pub high_watermark: f64,
    /// Service rate: messages drained per simulated second.
    pub drain_per_sec: f64,
    /// Above the high watermark, publications with priority below this
    /// are shed first.
    pub priority_floor: f64,
    /// Length of the per-client fairness accounting window.
    pub fair_window: SimDuration,
    /// Messages one client may admit per window before it is considered
    /// over its fair share (only enforced above the high watermark).
    pub fair_share: u32,
}

impl Default for ShedConfig {
    fn default() -> Self {
        ShedConfig {
            capacity: 256.0,
            high_watermark: 128.0,
            drain_per_sec: 400.0,
            priority_floor: 4.0,
            fair_window: SimDuration::from_secs(1),
            fair_share: 64,
        }
    }
}

/// Classification of one ingress message for shedding purposes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IngressClass {
    /// Unsubscribe / detach / mobility / administrative traffic.
    Control,
    /// A new subscription (a request for future work).
    Subscription,
    /// A publication or forwarded notification.
    Publication,
}

/// The shedder's verdict on one ingress message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShedDecision {
    /// Process the message after the given queueing delay.
    Admit(SimDuration),
    /// Drop the publication.
    Shed,
    /// Refuse the subscription; the client may retry later.
    RejectSubscription,
}

#[derive(Debug, Clone, Copy)]
struct ClientWindow {
    window_start: SimTime,
    admitted: u32,
}

/// A deterministic bounded-ingress model for one broker.
#[derive(Debug, Clone)]
pub struct LoadShedder {
    cfg: ShedConfig,
    backlog: f64,
    drained_at: SimTime,
    clients: FnvHashMap<u32, ClientWindow>,
    /// Messages admitted.
    pub admitted: u64,
    /// Publications shed.
    pub shed: u64,
    /// Subscriptions rejected.
    pub rejected_subs: u64,
}

impl LoadShedder {
    /// Creates a shedder with the given policy.
    pub fn new(cfg: ShedConfig) -> Self {
        LoadShedder {
            cfg,
            backlog: 0.0,
            drained_at: SimTime::ZERO,
            clients: FnvHashMap::default(),
            admitted: 0,
            shed: 0,
            rejected_subs: 0,
        }
    }

    fn drain(&mut self, now: SimTime) {
        let dt = now.since(self.drained_at).as_secs_f64();
        self.backlog = (self.backlog - dt * self.cfg.drain_per_sec).max(0.0);
        self.drained_at = now;
    }

    fn over_fair_share(&mut self, now: SimTime, client: u32) -> bool {
        let w =
            self.clients.entry(client).or_insert(ClientWindow { window_start: now, admitted: 0 });
        if now.since(w.window_start) >= self.cfg.fair_window {
            w.window_start = now;
            w.admitted = 0;
        }
        w.admitted >= self.cfg.fair_share
    }

    fn admit(&mut self, client: u32) -> ShedDecision {
        self.backlog += 1.0;
        if let Some(w) = self.clients.get_mut(&client) {
            w.admitted += 1;
        }
        self.admitted += 1;
        let delay_s = self.backlog / self.cfg.drain_per_sec;
        ShedDecision::Admit(SimDuration::from_micros((delay_s * 1e6).round() as u64))
    }

    /// Judges one ingress message. `priority` only matters for
    /// publications (higher is more important).
    pub fn offer(
        &mut self,
        now: SimTime,
        client: u32,
        class: IngressClass,
        priority: f64,
    ) -> ShedDecision {
        self.drain(now);
        match class {
            IngressClass::Control => self.admit(client),
            IngressClass::Subscription => {
                if self.backlog >= self.cfg.high_watermark {
                    self.rejected_subs += 1;
                    ShedDecision::RejectSubscription
                } else {
                    self.admit(client)
                }
            }
            IngressClass::Publication => {
                if self.backlog >= self.cfg.capacity {
                    self.shed += 1;
                    return ShedDecision::Shed;
                }
                if self.backlog >= self.cfg.high_watermark
                    && (priority < self.cfg.priority_floor || self.over_fair_share(now, client))
                {
                    self.shed += 1;
                    return ShedDecision::Shed;
                }
                // Track the window even below the watermark so fairness
                // reflects actual recent admission, not just overload-era
                // arrivals.
                let _ = self.over_fair_share(now, client);
                self.admit(client)
            }
        }
    }

    /// Current modelled queue depth.
    pub fn depth(&self) -> f64 {
        self.backlog
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shedder() -> LoadShedder {
        LoadShedder::new(ShedConfig::default())
    }

    fn t_ms(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    const HI: f64 = 7.0;
    const LO: f64 = 1.0;

    /// Fills the backlog to `depth` instantly via high-priority traffic
    /// from many distinct clients (so fairness never triggers).
    fn fill(s: &mut LoadShedder, now: SimTime, depth: usize) {
        for i in 0..depth {
            let d = s.offer(now, 1000 + i as u32, IngressClass::Publication, HI);
            assert!(matches!(d, ShedDecision::Admit(_)), "fill blocked at {i}: {d:?}");
        }
    }

    #[test]
    fn below_watermark_everything_is_admitted() {
        let mut s = shedder();
        for i in 0..100 {
            assert!(matches!(
                s.offer(SimTime::ZERO, i % 5, IngressClass::Publication, LO),
                ShedDecision::Admit(_)
            ));
        }
        assert_eq!(s.shed, 0);
    }

    #[test]
    fn above_watermark_low_priority_is_shed_high_survives() {
        let mut s = shedder();
        fill(&mut s, SimTime::ZERO, 130);
        assert_eq!(s.offer(SimTime::ZERO, 1, IngressClass::Publication, LO), ShedDecision::Shed);
        assert!(matches!(
            s.offer(SimTime::ZERO, 2, IngressClass::Publication, HI),
            ShedDecision::Admit(_)
        ));
    }

    #[test]
    fn full_queue_sheds_even_high_priority() {
        let mut s = shedder();
        fill(&mut s, SimTime::ZERO, 256);
        assert_eq!(s.offer(SimTime::ZERO, 1, IngressClass::Publication, HI), ShedDecision::Shed);
    }

    #[test]
    fn control_is_always_admitted() {
        let mut s = shedder();
        fill(&mut s, SimTime::ZERO, 256);
        assert!(matches!(
            s.offer(SimTime::ZERO, 1, IngressClass::Control, 0.0),
            ShedDecision::Admit(_)
        ));
    }

    #[test]
    fn subscriptions_rejected_above_watermark() {
        let mut s = shedder();
        assert!(matches!(
            s.offer(SimTime::ZERO, 1, IngressClass::Subscription, 0.0),
            ShedDecision::Admit(_)
        ));
        fill(&mut s, SimTime::ZERO, 130);
        assert_eq!(
            s.offer(SimTime::ZERO, 1, IngressClass::Subscription, 0.0),
            ShedDecision::RejectSubscription
        );
        assert_eq!(s.rejected_subs, 1);
    }

    #[test]
    fn backlog_drains_over_time() {
        let mut s = shedder();
        fill(&mut s, SimTime::ZERO, 200);
        assert_eq!(s.offer(SimTime::ZERO, 1, IngressClass::Publication, LO), ShedDecision::Shed);
        // 400 msg/s drain: 500 ms empties 200 messages.
        assert!(matches!(
            s.offer(t_ms(500), 1, IngressClass::Publication, LO),
            ShedDecision::Admit(_)
        ));
        assert!(s.depth() < 2.0);
    }

    #[test]
    fn admitted_delay_grows_with_backlog() {
        let mut s = shedder();
        let ShedDecision::Admit(first) = s.offer(SimTime::ZERO, 1, IngressClass::Publication, HI)
        else {
            panic!()
        };
        fill(&mut s, SimTime::ZERO, 100);
        let ShedDecision::Admit(later) = s.offer(SimTime::ZERO, 2, IngressClass::Publication, HI)
        else {
            panic!()
        };
        assert!(later > first, "delay did not grow: {first:?} vs {later:?}");
    }

    #[test]
    fn greedy_client_is_shed_before_polite_ones() {
        let mut s = shedder();
        // One client burns through its fair share while the queue climbs
        // past the watermark.
        for _ in 0..140 {
            s.offer(SimTime::ZERO, 7, IngressClass::Publication, HI);
        }
        assert!(s.depth() >= 128.0 - 64.0, "setup failed: {}", s.depth());
        // Keep pushing from the greedy client until over the watermark.
        while s.depth() < 128.0 {
            s.offer(SimTime::ZERO, 7, IngressClass::Publication, HI);
        }
        assert_eq!(s.offer(SimTime::ZERO, 7, IngressClass::Publication, HI), ShedDecision::Shed);
        // A fresh client at the same priority still gets through.
        assert!(matches!(
            s.offer(SimTime::ZERO, 8, IngressClass::Publication, HI),
            ShedDecision::Admit(_)
        ));
    }

    #[test]
    fn fairness_window_resets() {
        let mut s = shedder();
        for _ in 0..200 {
            s.offer(SimTime::ZERO, 7, IngressClass::Publication, HI);
        }
        // After the window (1 s) the backlog also drained; refill it from
        // other clients, then client 7 is forgiven.
        fill(&mut s, t_ms(1100), 130);
        assert!(matches!(
            s.offer(t_ms(1100), 7, IngressClass::Publication, HI),
            ShedDecision::Admit(_)
        ));
    }
}
