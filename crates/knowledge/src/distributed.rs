//! Distribution of the knowledge base over the P2P store.
//!
//! "In addition to the input event streams, the matching service will
//! operate over a global knowledge base" (§1.1); caching and replication
//! of that knowledge is handled by "a Plaxton based storage architecture
//! supported by promiscuous caching mechanisms" (§5).
//!
//! Facts are grouped by subject into one XML document per subject
//! (`kb/<subject>`), so a matchlet that needs everything known about
//! "bob" or "Janetta's" fetches one document — and repeat fetches hit the
//! promiscuous caches measured in experiment C3.

use crate::fact::{Fact, Term};
use gloss_sim::{GeoPoint, NodeIndex, SimTime};
use gloss_store::{Document, StoreNetwork};
use gloss_xml::Element;

/// Client-side API for reading and writing facts in the P2P store.
///
/// One instance per accessing node; it remembers the node it issues
/// requests from.
#[derive(Debug, Clone, Copy)]
pub struct DistributedKnowledge {
    node: NodeIndex,
}

impl DistributedKnowledge {
    /// Creates a KB client issuing from `node`.
    pub fn new(node: NodeIndex) -> Self {
        DistributedKnowledge { node }
    }

    /// The store document name for a subject.
    pub fn doc_name(subject: &str) -> String {
        format!("kb/{subject}")
    }

    /// Serialises facts about one subject to the XML document form.
    pub fn facts_to_xml(subject: &str, facts: &[&Fact]) -> Element {
        let mut el = Element::new("facts").with_attr("subject", subject);
        for f in facts {
            debug_assert_eq!(f.subject, subject, "grouped by subject");
            el.push(fact_element("fact", f));
        }
        el
    }

    /// [`facts_to_xml`](Self::facts_to_xml) with the authoritative
    /// store's identity stamped on: receivers of this snapshot anchor at
    /// `(source, epoch)` and can then apply delta batches on top.
    pub fn facts_to_xml_versioned(
        subject: &str,
        facts: &[&Fact],
        source: u64,
        epoch: u64,
    ) -> Element {
        let mut el = Self::facts_to_xml(subject, facts);
        el.set_attr("source", source.to_string());
        el.set_attr("epoch", epoch.to_string());
        el
    }

    /// The `(source, epoch)` a versioned snapshot was taken at, if the
    /// document carries one (legacy snapshots do not).
    pub fn snapshot_version(el: &Element) -> Option<(u64, u64)> {
        let source = el.attr("source")?.parse().ok()?;
        let epoch = el.attr("epoch")?.parse().ok()?;
        Some((source, epoch))
    }

    /// Parses facts back from the XML document form. Malformed entries
    /// are skipped (forward compatibility).
    pub fn facts_from_xml(el: &Element) -> Vec<Fact> {
        let subject = el.attr("subject").unwrap_or("unknown");
        el.children_named("fact").filter_map(|fe| fact_from_element(subject, fe)).collect()
    }

    /// Writes all facts about `subject` into the store (replacing any
    /// previous document for the subject).
    pub fn put_subject(&self, net: &mut StoreNetwork, subject: &str, facts: &[&Fact]) {
        let xml = Self::facts_to_xml(subject, facts).to_xml();
        let doc = Document::new(Self::doc_name(subject), xml.into_bytes());
        net.insert(self.node, doc);
    }

    /// Starts a fetch of the facts about `subject`; returns the request
    /// id to pass to [`take_facts`](Self::take_facts) once the simulation
    /// has run.
    pub fn fetch_subject(&self, net: &mut StoreNetwork, subject: &str) -> u64 {
        let guid = Document::new(Self::doc_name(subject), Vec::new()).guid;
        net.lookup(self.node, guid)
    }

    /// Extracts the facts from a concluded fetch (`None` while in flight
    /// or when the subject has no document).
    pub fn take_facts(&self, net: &StoreNetwork, req_id: u64) -> Option<Vec<Fact>> {
        let result = net.result(req_id)?;
        let doc = result.doc.as_ref()?;
        let text = std::str::from_utf8(&doc.content).ok()?;
        let el = gloss_xml::parse(text).ok()?;
        Some(Self::facts_from_xml(&el))
    }
}

/// Encodes one fact as an element named `tag` (shared between subject
/// snapshots, which use `fact`, and delta batches, which use the
/// operation name).
pub(crate) fn fact_element(tag: &str, f: &Fact) -> Element {
    let mut fe = Element::new(tag)
        .with_attr("predicate", &f.predicate)
        .with_attr("type", f.object.type_name());
    match &f.object {
        Term::Geo(g) => {
            fe.set_attr("lat", g.lat.to_string());
            fe.set_attr("lon", g.lon.to_string());
        }
        Term::Time(t) => {
            fe.set_attr("us", t.as_micros().to_string());
        }
        Term::Str(s) => fe.push(Element::new("value").with_text(s.as_ref())),
        Term::Int(i) => fe.push(Element::new("value").with_text(i.to_string())),
        Term::Float(x) => fe.push(Element::new("value").with_text(x.to_string())),
        Term::Bool(b) => fe.push(Element::new("value").with_text(b.to_string())),
    }
    if let Some(from) = f.valid_from {
        fe.set_attr("from_us", from.as_micros().to_string());
    }
    if let Some(to) = f.valid_to {
        fe.set_attr("to_us", to.as_micros().to_string());
    }
    fe
}

/// Decodes one fact element (any tag), `None` when malformed.
pub(crate) fn fact_from_element(subject: &str, fe: &Element) -> Option<Fact> {
    let predicate = fe.attr("predicate")?;
    let value_text = fe.child("value").map(|v| v.text()).unwrap_or_default();
    let object = match fe.attr("type") {
        Some("str") => Term::Str(value_text.into()),
        Some("int") => Term::Int(value_text.parse().ok()?),
        Some("float") => Term::Float(value_text.parse().ok()?),
        Some("bool") => Term::Bool(value_text.parse().ok()?),
        Some("geo") => {
            let lat = fe.attr("lat")?.parse().ok()?;
            let lon = fe.attr("lon")?.parse().ok()?;
            Term::Geo(GeoPoint::new(lat, lon))
        }
        Some("time") => Term::Time(SimTime::from_micros(fe.attr("us")?.parse().ok()?)),
        _ => return None,
    };
    let mut fact = Fact::new(subject, predicate, object);
    fact.valid_from = fe.attr("from_us").and_then(|s| s.parse().ok()).map(SimTime::from_micros);
    fact.valid_to = fe.attr("to_us").and_then(|s| s.parse().ok()).map(SimTime::from_micros);
    Some(fact)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gloss_sim::SimDuration;
    use gloss_store::StoreConfig;

    #[test]
    fn xml_round_trip_all_term_types() {
        let facts = [
            Fact::new("bob", "likes", Term::str("ice cream")),
            Fact::new("bob", "age", Term::Int(34)),
            Fact::new("bob", "height_m", Term::Float(1.82)),
            Fact::new("bob", "on_foot", Term::Bool(true)),
            Fact::new("bob", "at", Term::Geo(GeoPoint::new(56.34, -2.8))),
            Fact::new("bob", "seen", Term::Time(SimTime::from_millis(1500))),
            Fact::new("bob", "on_holiday", Term::Bool(true))
                .valid_between(SimTime::from_secs(1), SimTime::from_secs(2)),
        ];
        let refs: Vec<&Fact> = facts.iter().collect();
        let xml = DistributedKnowledge::facts_to_xml("bob", &refs);
        let back = DistributedKnowledge::facts_from_xml(&xml);
        assert_eq!(back.len(), facts.len());
        for (a, b) in facts.iter().zip(back.iter()) {
            assert_eq!(a.predicate, b.predicate);
            assert!(a.object.eq_term(&b.object) || a.object == b.object, "{a} vs {b}");
            assert_eq!(a.valid_from, b.valid_from);
            assert_eq!(a.valid_to, b.valid_to);
        }
    }

    #[test]
    fn malformed_entries_are_skipped() {
        let xml = gloss_xml::parse(
            r#"<facts subject="x">
                 <fact predicate="ok" type="int"><value>5</value></fact>
                 <fact predicate="bad" type="int"><value>five</value></fact>
                 <fact type="int"><value>5</value></fact>
                 <fact predicate="odd" type="tensor"><value>?</value></fact>
               </facts>"#,
        )
        .unwrap();
        let facts = DistributedKnowledge::facts_from_xml(&xml);
        assert_eq!(facts.len(), 1);
        assert_eq!(facts[0].predicate, "ok");
    }

    #[test]
    fn store_round_trip_over_the_network() {
        let mut net = StoreNetwork::build(12, StoreConfig::default(), 31);
        net.settle();
        let writer = DistributedKnowledge::new(NodeIndex(1));
        let reader = DistributedKnowledge::new(NodeIndex(9));
        let facts = [
            Fact::new("janettas", "sells", Term::str("ice cream")),
            Fact::new("janettas", "closes_at", Term::Int(1020)),
        ];
        let refs: Vec<&Fact> = facts.iter().collect();
        writer.put_subject(&mut net, "janettas", &refs);
        net.run_for(SimDuration::from_secs(30));
        let req = reader.fetch_subject(&mut net, "janettas");
        net.run_for(SimDuration::from_secs(30));
        let fetched = reader.take_facts(&net, req).expect("facts fetched");
        assert_eq!(fetched.len(), 2);
        assert_eq!(fetched[0].subject, "janettas");
    }

    #[test]
    fn missing_subject_yields_none() {
        let mut net = StoreNetwork::build(8, StoreConfig::default(), 32);
        net.settle();
        let reader = DistributedKnowledge::new(NodeIndex(2));
        let req = reader.fetch_subject(&mut net, "nobody");
        net.run_for(SimDuration::from_secs(30));
        assert!(reader.take_facts(&net, req).is_none());
    }
}
