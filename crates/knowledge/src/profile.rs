//! User profiles: "personal preferences, user history" (§1.1) and the
//! social graph the ice-cream scenario relies on ("Bob knows Anna").

use crate::fact::{Fact, Term};
use gloss_sim::{GeoPoint, SimTime};

/// A user profile, convertible to knowledge-base facts.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct UserProfile {
    /// The user id ("bob").
    pub name: String,
    /// Things the user likes ("ice cream").
    pub likes: Vec<String>,
    /// Named traits ("nationality" → "scottish").
    pub traits: Vec<(String, Term)>,
    /// Other users this one knows.
    pub knows: Vec<String>,
    /// Visited places, most recent last.
    pub history: Vec<(SimTime, String)>,
}

impl UserProfile {
    /// Creates an empty profile for `name`.
    pub fn new(name: impl Into<String>) -> Self {
        UserProfile { name: name.into(), ..Default::default() }
    }

    /// Adds a liked item.
    pub fn likes(mut self, item: impl Into<String>) -> Self {
        self.likes.push(item.into());
        self
    }

    /// Adds a trait.
    pub fn with_trait(mut self, key: impl Into<String>, value: impl Into<Term>) -> Self {
        self.traits.push((key.into(), value.into()));
        self
    }

    /// Adds a social edge.
    pub fn knows(mut self, other: impl Into<String>) -> Self {
        self.knows.push(other.into());
        self
    }

    /// Records a visit.
    pub fn visited(&mut self, at: SimTime, place: impl Into<String>) {
        self.history.push((at, place.into()));
    }

    /// The trait value for `key`, if set.
    pub fn trait_value(&self, key: &str) -> Option<&Term> {
        self.traits.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Facts describing this profile.
    pub fn to_facts(&self) -> Vec<Fact> {
        let mut facts = Vec::new();
        for item in &self.likes {
            facts.push(Fact::new(&self.name, "likes", Term::str(item.as_str())));
        }
        for (k, v) in &self.traits {
            facts.push(Fact::new(&self.name, k, v.clone()));
        }
        for other in &self.knows {
            facts.push(Fact::new(&self.name, "knows", Term::str(other.as_str())));
        }
        for (at, place) in &self.history {
            facts.push(
                Fact::new(&self.name, "visited", Term::str(place.as_str()))
                    .valid_between(*at, SimTime::MAX),
            );
        }
        facts
    }

    /// The paper's Bob: "user Bob likes ice cream ... Bob is Scottish ...
    /// Bob knows Anna".
    pub fn paper_bob(holiday_from: SimTime, holiday_to: SimTime) -> (UserProfile, Vec<Fact>) {
        let profile = UserProfile::new("bob")
            .likes("ice cream")
            .with_trait("nationality", Term::str("scottish"))
            .knows("anna");
        let mut extra = profile.to_facts();
        extra.push(
            Fact::new("bob", "on_holiday", Term::Bool(true))
                .valid_between(holiday_from, holiday_to),
        );
        (profile, extra)
    }

    /// The paper's Anna (who previously recommended a restaurant).
    pub fn paper_anna() -> UserProfile {
        UserProfile::new("anna").likes("coffee").knows("bob")
    }
}

/// What counts as "hot" depends on who you ask: "it can be inferred that
/// Bob would probably like an ice cream given that he is Scottish and
/// therefore regards 20º as hot."
pub fn hot_threshold_celsius(nationality: Option<&str>) -> f64 {
    match nationality {
        Some("scottish") => 18.0,
        Some("australian") => 30.0,
        Some("brazilian") => 28.0,
        _ => 25.0,
    }
}

/// A movement trace entry (feeds the sensor simulators).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Movement {
    /// When.
    pub at: SimTime,
    /// Where.
    pub geo: GeoPoint,
    /// Mode of travel ("foot", "car").
    pub on_foot: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_and_accessors() {
        let p = UserProfile::new("bob")
            .likes("ice cream")
            .with_trait("nationality", Term::str("scottish"))
            .knows("anna");
        assert_eq!(p.trait_value("nationality").unwrap().as_str(), Some("scottish"));
        assert!(p.trait_value("shoe_size").is_none());
    }

    #[test]
    fn facts_cover_profile() {
        let mut p = UserProfile::new("bob").likes("ice cream").knows("anna");
        p.visited(SimTime::from_secs(10), "Janetta's");
        let facts = p.to_facts();
        assert!(facts.iter().any(|f| f.predicate == "likes"));
        assert!(facts.iter().any(|f| f.predicate == "knows"));
        let visit = facts.iter().find(|f| f.predicate == "visited").unwrap();
        assert!(!visit.valid_at(SimTime::from_secs(5)), "visit not yet true");
        assert!(visit.valid_at(SimTime::from_secs(11)));
    }

    #[test]
    fn paper_bob_matches_scenario() {
        let (profile, facts) =
            UserProfile::paper_bob(SimTime::from_secs(100), SimTime::from_secs(700));
        assert!(profile.likes.iter().any(|l| l == "ice cream"));
        let holiday = facts.iter().find(|f| f.predicate == "on_holiday").unwrap();
        assert!(holiday.valid_at(SimTime::from_secs(400)));
        assert!(!holiday.valid_at(SimTime::from_secs(800)));
    }

    #[test]
    fn hot_depends_on_nationality() {
        assert!(
            hot_threshold_celsius(Some("scottish")) < hot_threshold_celsius(Some("australian"))
        );
        assert!(20.0 >= hot_threshold_celsius(Some("scottish")), "20C is hot for Bob");
        assert!(20.0 < hot_threshold_celsius(None), "20C is not hot by default");
    }
}
