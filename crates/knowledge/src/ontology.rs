//! Ontologies and the three description-matching strategies of §3.
//!
//! "Proposed solutions fall into three categories: text based, lexical
//! descriptor based and specification based." The paper observes that
//! text matching "could be misleading", that lexical descriptors built
//! from "a predefined vocabulary provided by subject experts" (optionally
//! multi-faceted) are "sounder and more complete", and that specification
//! languages define the classification scheme precisely. Experiment
//! **C9** measures precision/recall of all three on a common corpus.

use std::collections::{BTreeMap, BTreeSet};

/// A vocabulary with an *is-a* hierarchy ("gelato is-a ice cream is-a
/// dessert"), used to expand lexical queries.
#[derive(Debug, Clone, Default)]
pub struct Ontology {
    broader: BTreeMap<String, BTreeSet<String>>,
}

impl Ontology {
    /// Creates an empty ontology.
    pub fn new() -> Self {
        Ontology::default()
    }

    /// Declares `narrow` is-a `broad`.
    pub fn declare(&mut self, narrow: impl Into<String>, broad: impl Into<String>) {
        self.broader.entry(narrow.into()).or_default().insert(broad.into());
    }

    /// Whether `a` is (transitively) a kind of `b`. Every term is a kind
    /// of itself.
    pub fn is_a(&self, a: &str, b: &str) -> bool {
        if a == b {
            return true;
        }
        let mut frontier = vec![a];
        let mut seen = BTreeSet::new();
        while let Some(t) = frontier.pop() {
            if !seen.insert(t) {
                continue;
            }
            if let Some(broader) = self.broader.get(t) {
                for p in broader {
                    if p == b {
                        return true;
                    }
                    frontier.push(p);
                }
            }
        }
        false
    }

    /// All terms `t` (transitively) broader than `term`, including itself.
    pub fn expand(&self, term: &str) -> BTreeSet<String> {
        let mut out = BTreeSet::new();
        let mut frontier = vec![term.to_string()];
        while let Some(t) = frontier.pop() {
            if !out.insert(t.clone()) {
                continue;
            }
            if let Some(broader) = self.broader.get(&t) {
                frontier.extend(broader.iter().cloned());
            }
        }
        out
    }

    /// A small food/context vocabulary for the experiments.
    pub fn food_and_context() -> Self {
        let mut o = Ontology::new();
        for (n, b) in [
            ("gelato", "ice cream"),
            ("sorbet", "ice cream"),
            ("ice cream", "dessert"),
            ("dessert", "food"),
            ("espresso", "coffee"),
            ("coffee", "drink"),
            ("ale", "beer"),
            ("beer", "drink"),
            ("drink", "food"),
            ("pizza", "food"),
            ("gps", "location sensor"),
            ("gsm", "location sensor"),
            ("location sensor", "sensor"),
            ("thermometer", "sensor"),
        ] {
            o.declare(n, b);
        }
        o
    }
}

/// A description of a service/component to be classified and retrieved.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ServiceDescription {
    /// The service name.
    pub name: String,
    /// Free prose (input to the text matcher).
    pub text: String,
    /// Faceted keyphrases: facet → controlled terms (input to the lexical
    /// matcher), e.g. `"offers" → ["ice cream"]`, `"area" → ["fife"]`.
    pub facets: BTreeMap<String, Vec<String>>,
}

impl ServiceDescription {
    /// Creates a description.
    pub fn new(name: impl Into<String>, text: impl Into<String>) -> Self {
        ServiceDescription { name: name.into(), text: text.into(), facets: BTreeMap::new() }
    }

    /// Adds a faceted keyphrase.
    pub fn with_facet(mut self, facet: impl Into<String>, term: impl Into<String>) -> Self {
        self.facets.entry(facet.into()).or_default().push(term.into());
        self
    }
}

/// Precision/recall of one retrieval run.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct RetrievalScores {
    /// Fraction of retrieved items that were relevant.
    pub precision: f64,
    /// Fraction of relevant items that were retrieved.
    pub recall: f64,
}

impl RetrievalScores {
    /// Computes scores given retrieved and relevant name sets.
    pub fn compute(retrieved: &BTreeSet<String>, relevant: &BTreeSet<String>) -> Self {
        let hit = retrieved.intersection(relevant).count() as f64;
        RetrievalScores {
            precision: if retrieved.is_empty() { 1.0 } else { hit / retrieved.len() as f64 },
            recall: if relevant.is_empty() { 1.0 } else { hit / relevant.len() as f64 },
        }
    }

    /// Harmonic mean of precision and recall.
    pub fn f1(&self) -> f64 {
        if self.precision + self.recall == 0.0 {
            0.0
        } else {
            2.0 * self.precision * self.recall / (self.precision + self.recall)
        }
    }
}

fn tokens(s: &str) -> BTreeSet<String> {
    s.to_lowercase()
        .split(|c: char| !c.is_alphanumeric())
        .filter(|t| t.len() > 2)
        .map(str::to_string)
        .collect()
}

/// Text-based matching: token overlap with the prose description.
/// "A textual representation does not guarantee sufficient information
/// for the classification and in fact could be misleading."
#[derive(Debug, Clone, Default)]
pub struct TextMatcher;

impl TextMatcher {
    /// Retrieves descriptions whose prose shares at least one
    /// non-trivial token with the query.
    pub fn retrieve(&self, query: &str, corpus: &[ServiceDescription]) -> BTreeSet<String> {
        let q = tokens(query);
        corpus.iter().filter(|d| !q.is_disjoint(&tokens(&d.text))).map(|d| d.name.clone()).collect()
    }
}

/// Lexical-descriptor matching over multi-faceted classifications,
/// expanded through the ontology.
#[derive(Debug, Clone)]
pub struct LexicalMatcher {
    ontology: Ontology,
}

impl LexicalMatcher {
    /// Creates a matcher over the given vocabulary.
    pub fn new(ontology: Ontology) -> Self {
        LexicalMatcher { ontology }
    }

    /// Retrieves descriptions carrying a facet term that *is-a* the query
    /// term in the requested facet.
    pub fn retrieve(
        &self,
        facet: &str,
        term: &str,
        corpus: &[ServiceDescription],
    ) -> BTreeSet<String> {
        corpus
            .iter()
            .filter(|d| {
                d.facets.get(facet).is_some_and(|ts| ts.iter().any(|t| self.ontology.is_a(t, term)))
            })
            .map(|d| d.name.clone())
            .collect()
    }
}

/// Specification-based matching: a conjunction of exact facet
/// requirements, "whose semantics define the classification and
/// retrieval scheme".
#[derive(Debug, Clone, Default)]
pub struct SpecMatcher {
    requirements: Vec<(String, String)>,
}

impl SpecMatcher {
    /// Creates an empty specification.
    pub fn new() -> Self {
        SpecMatcher::default()
    }

    /// Requires `facet` to contain exactly `term`.
    pub fn require(mut self, facet: impl Into<String>, term: impl Into<String>) -> Self {
        self.requirements.push((facet.into(), term.into()));
        self
    }

    /// Retrieves descriptions satisfying every requirement.
    pub fn retrieve(&self, corpus: &[ServiceDescription]) -> BTreeSet<String> {
        corpus
            .iter()
            .filter(|d| {
                self.requirements.iter().all(|(facet, term)| {
                    d.facets.get(facet).is_some_and(|ts| ts.iter().any(|t| t == term))
                })
            })
            .map(|d| d.name.clone())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn corpus() -> Vec<ServiceDescription> {
        vec![
            ServiceDescription::new(
                "janettas",
                "Janetta's sells award winning gelato on Market Street",
            )
            .with_facet("offers", "gelato")
            .with_facet("area", "st andrews"),
            ServiceDescription::new(
                "icy-vans",
                "Mobile vans selling ice cream across Fife in the summer",
            )
            .with_facet("offers", "ice cream")
            .with_facet("area", "fife"),
            ServiceDescription::new(
                "screen-repair",
                "We repair cracked ice-damaged phone screens and sell cream cases",
            )
            .with_facet("offers", "phone repair")
            .with_facet("area", "st andrews"),
            ServiceDescription::new("brew-bar", "Espresso bar with single origin beans")
                .with_facet("offers", "espresso")
                .with_facet("area", "st andrews"),
        ]
    }

    #[test]
    fn is_a_transitivity() {
        let o = Ontology::food_and_context();
        assert!(o.is_a("gelato", "ice cream"));
        assert!(o.is_a("gelato", "dessert"));
        assert!(o.is_a("gelato", "food"));
        assert!(o.is_a("gelato", "gelato"));
        assert!(!o.is_a("ice cream", "gelato"), "is-a is directional");
        assert!(!o.is_a("espresso", "dessert"));
    }

    #[test]
    fn expand_includes_all_broader_terms() {
        let o = Ontology::food_and_context();
        let e = o.expand("gelato");
        for t in ["gelato", "ice cream", "dessert", "food"] {
            assert!(e.contains(t), "missing {t}");
        }
        assert!(!e.contains("coffee"));
    }

    #[test]
    fn text_matching_is_misleading() {
        // The paper's criticism in action: "ice" and "cream" tokens pull
        // in the phone repair shop.
        let retrieved = TextMatcher.retrieve("ice cream", &corpus());
        assert!(retrieved.contains("icy-vans"));
        assert!(
            retrieved.contains("screen-repair"),
            "text matcher should be fooled by token overlap"
        );
        // And it misses the gelato shop entirely (no shared token).
        assert!(!retrieved.contains("janettas"));
    }

    #[test]
    fn lexical_matching_uses_the_ontology() {
        let m = LexicalMatcher::new(Ontology::food_and_context());
        let retrieved = m.retrieve("offers", "ice cream", &corpus());
        assert!(retrieved.contains("janettas"), "gelato is-a ice cream");
        assert!(retrieved.contains("icy-vans"));
        assert!(!retrieved.contains("screen-repair"));
        assert!(!retrieved.contains("brew-bar"));
    }

    #[test]
    fn spec_matching_is_exact_conjunction() {
        let spec = SpecMatcher::new().require("offers", "gelato").require("area", "st andrews");
        let retrieved = spec.retrieve(&corpus());
        assert_eq!(retrieved.len(), 1);
        assert!(retrieved.contains("janettas"));
        // Exactness cuts recall: "ice cream" spec does not know gelato.
        let spec = SpecMatcher::new().require("offers", "ice cream");
        let retrieved = spec.retrieve(&corpus());
        assert!(!retrieved.contains("janettas"));
        assert!(retrieved.contains("icy-vans"));
    }

    #[test]
    fn precision_recall_computation() {
        let relevant: BTreeSet<String> =
            ["janettas", "icy-vans"].iter().map(|s| s.to_string()).collect();
        let m = LexicalMatcher::new(Ontology::food_and_context());
        let lexical =
            RetrievalScores::compute(&m.retrieve("offers", "ice cream", &corpus()), &relevant);
        assert_eq!(lexical.precision, 1.0);
        assert_eq!(lexical.recall, 1.0);
        let text =
            RetrievalScores::compute(&TextMatcher.retrieve("ice cream", &corpus()), &relevant);
        assert!(text.precision < 1.0, "text matcher retrieves junk");
        assert!(text.recall < 1.0, "text matcher misses the gelato shop");
        assert!(lexical.f1() > text.f1());
    }

    #[test]
    fn empty_sets_score_sanely() {
        let empty = BTreeSet::new();
        let s = RetrievalScores::compute(&empty, &empty);
        assert_eq!(s.precision, 1.0);
        assert_eq!(s.recall, 1.0);
        assert_eq!(s.f1(), 1.0);
        let some: BTreeSet<String> = ["x".to_string()].into_iter().collect();
        let s = RetrievalScores::compute(&empty, &some);
        assert_eq!(s.f1(), 0.0);
    }
}
