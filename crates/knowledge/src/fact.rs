//! Facts: subject/predicate/object triples with validity intervals.

use gloss_sim::FnvHashMap;
use gloss_sim::{GeoPoint, SimTime};
use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

/// A knowledge-base value (also the runtime value type of the matchlet
/// language).
///
/// Strings are `Arc<str>` so cloning a term — which matching does for
/// every binding it materialises — is a reference-count bump, never a
/// heap copy.
#[derive(Debug, Clone, PartialEq)]
pub enum Term {
    /// A string.
    Str(Arc<str>),
    /// An integer.
    Int(i64),
    /// A float.
    Float(f64),
    /// A boolean.
    Bool(bool),
    /// A geographic point.
    Geo(GeoPoint),
    /// An instant of simulated time.
    Time(SimTime),
}

impl Term {
    /// Convenience string constructor.
    pub fn str(s: impl Into<Arc<str>>) -> Term {
        Term::Str(s.into())
    }

    /// The string inside, if any.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Term::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric view (`Int` and `Float`; `Time` yields seconds).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Term::Int(i) => Some(*i as f64),
            Term::Float(f) => Some(*f),
            Term::Time(t) => Some(t.as_secs_f64()),
            _ => None,
        }
    }

    /// The boolean inside, if any.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Term::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The geographic point inside, if any.
    pub fn as_geo(&self) -> Option<GeoPoint> {
        match self {
            Term::Geo(g) => Some(*g),
            _ => None,
        }
    }

    /// The time inside, if any.
    pub fn as_time(&self) -> Option<SimTime> {
        match self {
            Term::Time(t) => Some(*t),
            _ => None,
        }
    }

    /// Semantic equality: numerics compare numerically, other types by
    /// structure.
    pub fn eq_term(&self, other: &Term) -> bool {
        match (self.as_f64(), other.as_f64()) {
            (Some(a), Some(b)) => (a - b).abs() < 1e-12,
            _ => self == other,
        }
    }

    /// The type name (used by the XML encoding).
    pub fn type_name(&self) -> &'static str {
        match self {
            Term::Str(_) => "str",
            Term::Int(_) => "int",
            Term::Float(_) => "float",
            Term::Bool(_) => "bool",
            Term::Geo(_) => "geo",
            Term::Time(_) => "time",
        }
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Str(s) => write!(f, "\"{s}\""),
            Term::Int(i) => write!(f, "{i}"),
            Term::Float(x) => write!(f, "{x}"),
            Term::Bool(b) => write!(f, "{b}"),
            Term::Geo(g) => write!(f, "{g}"),
            Term::Time(t) => write!(f, "{t}"),
        }
    }
}

impl From<&str> for Term {
    fn from(s: &str) -> Term {
        Term::Str(s.into())
    }
}
impl From<String> for Term {
    fn from(s: String) -> Term {
        Term::Str(s.into())
    }
}
impl From<i64> for Term {
    fn from(i: i64) -> Term {
        Term::Int(i)
    }
}
impl From<f64> for Term {
    fn from(f: f64) -> Term {
        Term::Float(f)
    }
}
impl From<bool> for Term {
    fn from(b: bool) -> Term {
        Term::Bool(b)
    }
}
impl From<GeoPoint> for Term {
    fn from(g: GeoPoint) -> Term {
        Term::Geo(g)
    }
}
impl From<SimTime> for Term {
    fn from(t: SimTime) -> Term {
        Term::Time(t)
    }
}

/// A fact: `subject predicate object`, optionally valid only within a
/// time interval ("Bob is on holiday from 20/6/2003 to 27/6/2003").
#[derive(Debug, Clone, PartialEq)]
pub struct Fact {
    /// The subject ("bob").
    pub subject: String,
    /// The predicate ("likes").
    pub predicate: String,
    /// The object.
    pub object: Term,
    /// Validity start (inclusive), if bounded.
    pub valid_from: Option<SimTime>,
    /// Validity end (exclusive), if bounded.
    pub valid_to: Option<SimTime>,
}

impl Fact {
    /// Creates an always-valid fact.
    pub fn new(subject: impl Into<String>, predicate: impl Into<String>, object: Term) -> Self {
        Fact {
            subject: subject.into(),
            predicate: predicate.into(),
            object,
            valid_from: None,
            valid_to: None,
        }
    }

    /// Restricts validity to `[from, to)`.
    pub fn valid_between(mut self, from: SimTime, to: SimTime) -> Self {
        self.valid_from = Some(from);
        self.valid_to = Some(to);
        self
    }

    /// Whether the fact holds at `t`.
    pub fn valid_at(&self, t: SimTime) -> bool {
        self.valid_from.is_none_or(|f| t >= f) && self.valid_to.is_none_or(|e| t < e)
    }
}

impl fmt::Display for Fact {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} {}", self.subject, self.predicate, self.object)
    }
}

/// Read access to a fact collection, as used by the matchlet engine.
pub trait FactSource {
    /// Facts with the given subject and/or predicate (either may be left
    /// open), regardless of validity.
    fn query<'a>(
        &'a self,
        subject: Option<&'a str>,
        predicate: Option<&'a str>,
    ) -> Box<dyn Iterator<Item = &'a Fact> + 'a>;

    /// Facts valid at `t` with the given subject and/or predicate.
    fn query_at<'a>(
        &'a self,
        subject: Option<&'a str>,
        predicate: Option<&'a str>,
        t: SimTime,
    ) -> Box<dyn Iterator<Item = &'a Fact> + 'a> {
        Box::new(self.query(subject, predicate).filter(move |f| f.valid_at(t)))
    }

    /// Calls `f` for every fact valid at `t` with the given subject
    /// and/or predicate. This is the matcher's inner loop; implementors
    /// with indexed storage can override it to avoid boxing an iterator
    /// per query.
    fn for_each_at(
        &self,
        subject: Option<&str>,
        predicate: Option<&str>,
        t: SimTime,
        f: &mut dyn FnMut(&Fact),
    ) {
        for fact in self.query_at(subject, predicate, t) {
            f(fact);
        }
    }
}

/// An indexed in-memory fact store.
#[derive(Debug, Clone, Default)]
pub struct InMemoryFacts {
    facts: Vec<Fact>,
    by_predicate: FnvHashMap<String, Vec<usize>>,
    by_subject: FnvHashMap<String, Vec<usize>>,
}

impl InMemoryFacts {
    /// Creates an empty store.
    pub fn new() -> Self {
        InMemoryFacts::default()
    }

    /// Adds a fact.
    pub fn add(&mut self, fact: Fact) {
        let i = self.facts.len();
        self.by_predicate.entry(fact.predicate.clone()).or_default().push(i);
        self.by_subject.entry(fact.subject.clone()).or_default().push(i);
        self.facts.push(fact);
    }

    /// Adds many facts.
    pub fn extend(&mut self, facts: impl IntoIterator<Item = Fact>) {
        for f in facts {
            self.add(f);
        }
    }

    /// Number of facts.
    pub fn len(&self) -> usize {
        self.facts.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.facts.is_empty()
    }

    /// Removes all facts about a subject (profile update), returning how
    /// many were removed.
    pub fn remove_subject(&mut self, subject: &str) -> usize {
        let before = self.facts.len();
        self.facts.retain(|f| f.subject != subject);
        self.reindex();
        before - self.facts.len()
    }

    fn reindex(&mut self) {
        self.by_predicate.clear();
        self.by_subject.clear();
        for (i, f) in self.facts.iter().enumerate() {
            self.by_predicate.entry(f.predicate.clone()).or_default().push(i);
            self.by_subject.entry(f.subject.clone()).or_default().push(i);
        }
    }

    /// All facts, grouped by subject (for distribution into the store).
    pub fn by_subject(&self) -> BTreeMap<&str, Vec<&Fact>> {
        let mut map: BTreeMap<&str, Vec<&Fact>> = BTreeMap::new();
        for f in &self.facts {
            map.entry(f.subject.as_str()).or_default().push(f);
        }
        map
    }
}

impl InMemoryFacts {
    /// The index positions matching a subject/predicate query (the
    /// smaller index wins; subject lists are usually short), or `None`
    /// for an unconstrained query. The flag reports whether candidates
    /// still need the predicate checked (only the subject-indexed arm
    /// does; the predicate index already guarantees it).
    fn candidate_indices(
        &self,
        subject: Option<&str>,
        predicate: Option<&str>,
    ) -> Option<(&[usize], bool)> {
        static EMPTY: &[usize] = &[];
        match (subject, predicate) {
            (Some(s), _) => {
                let idx = self.by_subject.get(s).map_or(EMPTY, Vec::as_slice);
                Some((idx, predicate.is_some()))
            }
            (None, Some(p)) => Some((self.by_predicate.get(p).map_or(EMPTY, Vec::as_slice), false)),
            (None, None) => None,
        }
    }
}

impl FactSource for InMemoryFacts {
    fn query<'a>(
        &'a self,
        subject: Option<&'a str>,
        predicate: Option<&'a str>,
    ) -> Box<dyn Iterator<Item = &'a Fact> + 'a> {
        match self.candidate_indices(subject, predicate) {
            Some((idx, check_predicate)) => {
                Box::new(idx.iter().map(|&i| &self.facts[i]).filter(move |f| {
                    !check_predicate || predicate.is_none_or(|p| f.predicate == p)
                }))
            }
            None => Box::new(self.facts.iter()),
        }
    }

    fn for_each_at(
        &self,
        subject: Option<&str>,
        predicate: Option<&str>,
        t: SimTime,
        f: &mut dyn FnMut(&Fact),
    ) {
        match self.candidate_indices(subject, predicate) {
            Some((idx, check_predicate)) => {
                for &i in idx {
                    let fact = &self.facts[i];
                    if (!check_predicate || predicate.is_none_or(|p| fact.predicate == p))
                        && fact.valid_at(t)
                    {
                        f(fact);
                    }
                }
            }
            None => {
                for fact in &self.facts {
                    if fact.valid_at(t) {
                        f(fact);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kb() -> InMemoryFacts {
        let mut kb = InMemoryFacts::new();
        kb.add(Fact::new("bob", "likes", Term::str("ice cream")));
        kb.add(Fact::new("bob", "nationality", Term::str("scottish")));
        kb.add(Fact::new("anna", "likes", Term::str("coffee")));
        kb.add(Fact::new("bob", "knows", Term::str("anna")));
        kb.add(
            Fact::new("bob", "on_holiday", Term::Bool(true))
                .valid_between(SimTime::from_secs(100), SimTime::from_secs(200)),
        );
        kb
    }

    #[test]
    fn query_combinations() {
        let kb = kb();
        assert_eq!(kb.query(Some("bob"), Some("likes")).count(), 1);
        assert_eq!(kb.query(Some("bob"), None).count(), 4);
        assert_eq!(kb.query(None, Some("likes")).count(), 2);
        assert_eq!(kb.query(None, None).count(), 5);
        assert_eq!(kb.query(Some("zoe"), None).count(), 0);
    }

    #[test]
    fn validity_intervals() {
        let kb = kb();
        let at = |s| kb.query_at(Some("bob"), Some("on_holiday"), SimTime::from_secs(s)).count();
        assert_eq!(at(50), 0);
        assert_eq!(at(100), 1);
        assert_eq!(at(199), 1);
        assert_eq!(at(200), 0, "end is exclusive");
    }

    #[test]
    fn remove_subject_reindexes() {
        let mut kb = kb();
        assert_eq!(kb.remove_subject("bob"), 4);
        assert_eq!(kb.query(Some("bob"), None).count(), 0);
        assert_eq!(kb.query(None, Some("likes")).count(), 1);
        assert_eq!(kb.len(), 1);
    }

    #[test]
    fn term_accessors_and_equality() {
        assert!(Term::Int(3).eq_term(&Term::Float(3.0)));
        assert!(!Term::Int(3).eq_term(&Term::str("3")));
        assert_eq!(Term::str("x").as_str(), Some("x"));
        assert_eq!(Term::Float(1.5).as_f64(), Some(1.5));
        assert_eq!(Term::Bool(true).as_bool(), Some(true));
        let g = GeoPoint::new(56.0, -3.0);
        assert_eq!(Term::Geo(g).as_geo(), Some(g));
        assert_eq!(Term::Time(SimTime::from_secs(2)).as_f64(), Some(2.0));
    }

    #[test]
    fn by_subject_grouping() {
        let kb = kb();
        let groups = kb.by_subject();
        assert_eq!(groups["bob"].len(), 4);
        assert_eq!(groups["anna"].len(), 1);
    }

    #[test]
    fn term_display() {
        assert_eq!(Term::str("a").to_string(), "\"a\"");
        assert_eq!(Term::Int(4).to_string(), "4");
        assert_eq!(Fact::new("a", "b", Term::Int(1)).to_string(), "a b 1");
    }
}
