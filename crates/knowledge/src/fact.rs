//! Facts: subject/predicate/object triples with validity intervals, with
//! an insert/retract change feed for incremental consumers.

use gloss_sim::FnvHashMap;
use gloss_sim::{GeoPoint, SimTime};
use std::collections::{BTreeMap, VecDeque};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A knowledge-base value (also the runtime value type of the matchlet
/// language).
///
/// Strings are `Arc<str>` so cloning a term — which matching does for
/// every binding it materialises — is a reference-count bump, never a
/// heap copy.
#[derive(Debug, Clone, PartialEq)]
pub enum Term {
    /// A string.
    Str(Arc<str>),
    /// An integer.
    Int(i64),
    /// A float.
    Float(f64),
    /// A boolean.
    Bool(bool),
    /// A geographic point.
    Geo(GeoPoint),
    /// An instant of simulated time.
    Time(SimTime),
}

impl Term {
    /// Convenience string constructor.
    pub fn str(s: impl Into<Arc<str>>) -> Term {
        Term::Str(s.into())
    }

    /// The string inside, if any.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Term::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric view (`Int` and `Float`; `Time` yields seconds).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Term::Int(i) => Some(*i as f64),
            Term::Float(f) => Some(*f),
            Term::Time(t) => Some(t.as_secs_f64()),
            _ => None,
        }
    }

    /// The boolean inside, if any.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Term::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The geographic point inside, if any.
    pub fn as_geo(&self) -> Option<GeoPoint> {
        match self {
            Term::Geo(g) => Some(*g),
            _ => None,
        }
    }

    /// The time inside, if any.
    pub fn as_time(&self) -> Option<SimTime> {
        match self {
            Term::Time(t) => Some(*t),
            _ => None,
        }
    }

    /// Semantic equality: numerics compare numerically, other types by
    /// structure.
    pub fn eq_term(&self, other: &Term) -> bool {
        match (self.as_f64(), other.as_f64()) {
            (Some(a), Some(b)) => (a - b).abs() < 1e-12,
            _ => self == other,
        }
    }

    /// The type name (used by the XML encoding).
    pub fn type_name(&self) -> &'static str {
        match self {
            Term::Str(_) => "str",
            Term::Int(_) => "int",
            Term::Float(_) => "float",
            Term::Bool(_) => "bool",
            Term::Geo(_) => "geo",
            Term::Time(_) => "time",
        }
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Str(s) => write!(f, "\"{s}\""),
            Term::Int(i) => write!(f, "{i}"),
            Term::Float(x) => write!(f, "{x}"),
            Term::Bool(b) => write!(f, "{b}"),
            Term::Geo(g) => write!(f, "{g}"),
            Term::Time(t) => write!(f, "{t}"),
        }
    }
}

impl From<&str> for Term {
    fn from(s: &str) -> Term {
        Term::Str(s.into())
    }
}
impl From<String> for Term {
    fn from(s: String) -> Term {
        Term::Str(s.into())
    }
}
impl From<i64> for Term {
    fn from(i: i64) -> Term {
        Term::Int(i)
    }
}
impl From<f64> for Term {
    fn from(f: f64) -> Term {
        Term::Float(f)
    }
}
impl From<bool> for Term {
    fn from(b: bool) -> Term {
        Term::Bool(b)
    }
}
impl From<GeoPoint> for Term {
    fn from(g: GeoPoint) -> Term {
        Term::Geo(g)
    }
}
impl From<SimTime> for Term {
    fn from(t: SimTime) -> Term {
        Term::Time(t)
    }
}

/// A fact: `subject predicate object`, optionally valid only within a
/// time interval ("Bob is on holiday from 20/6/2003 to 27/6/2003").
#[derive(Debug, Clone, PartialEq)]
pub struct Fact {
    /// The subject ("bob").
    pub subject: String,
    /// The predicate ("likes").
    pub predicate: String,
    /// The object.
    pub object: Term,
    /// Validity start (inclusive), if bounded.
    pub valid_from: Option<SimTime>,
    /// Validity end (exclusive), if bounded.
    pub valid_to: Option<SimTime>,
}

impl Fact {
    /// Creates an always-valid fact.
    pub fn new(subject: impl Into<String>, predicate: impl Into<String>, object: Term) -> Self {
        Fact {
            subject: subject.into(),
            predicate: predicate.into(),
            object,
            valid_from: None,
            valid_to: None,
        }
    }

    /// Restricts validity to `[from, to)`.
    pub fn valid_between(mut self, from: SimTime, to: SimTime) -> Self {
        self.valid_from = Some(from);
        self.valid_to = Some(to);
        self
    }

    /// Whether the fact holds at `t`.
    pub fn valid_at(&self, t: SimTime) -> bool {
        self.valid_from.is_none_or(|f| t >= f) && self.valid_to.is_none_or(|e| t < e)
    }
}

impl fmt::Display for Fact {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} {}", self.subject, self.predicate, self.object)
    }
}

/// One entry in a fact store's change feed.
#[derive(Debug, Clone, PartialEq)]
pub enum FactDelta {
    /// The fact was added.
    Insert(Fact),
    /// The fact was removed.
    Retract(Fact),
}

impl FactDelta {
    /// The fact the delta concerns.
    pub fn fact(&self) -> &Fact {
        match self {
            FactDelta::Insert(f) | FactDelta::Retract(f) => f,
        }
    }
}

/// Identity of a fact store's mutation state: a per-instance source id
/// plus a monotonically increasing epoch (one tick per insert/retract).
/// Consumers compare versions to tell "the same store, advanced" (replay
/// deltas) from "a different store entirely" (rebuild).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FactsVersion {
    /// Unique per store instance; clones get fresh ids, so two stores
    /// never alias each other's epochs.
    pub source: u64,
    /// Mutation count of this instance.
    pub epoch: u64,
}

/// Read access to a fact collection, as used by the matchlet engine.
pub trait FactSource {
    /// Facts with the given subject and/or predicate (either may be left
    /// open), regardless of validity.
    fn query<'a>(
        &'a self,
        subject: Option<&'a str>,
        predicate: Option<&'a str>,
    ) -> Box<dyn Iterator<Item = &'a Fact> + 'a>;

    /// Facts valid at `t` with the given subject and/or predicate.
    fn query_at<'a>(
        &'a self,
        subject: Option<&'a str>,
        predicate: Option<&'a str>,
        t: SimTime,
    ) -> Box<dyn Iterator<Item = &'a Fact> + 'a> {
        Box::new(self.query(subject, predicate).filter(move |f| f.valid_at(t)))
    }

    /// Calls `f` for every fact valid at `t` with the given subject
    /// and/or predicate. This is the matcher's inner loop; implementors
    /// with indexed storage can override it to avoid boxing an iterator
    /// per query.
    fn for_each_at(
        &self,
        subject: Option<&str>,
        predicate: Option<&str>,
        t: SimTime,
        f: &mut dyn FnMut(&Fact),
    ) {
        for fact in self.query_at(subject, predicate, t) {
            f(fact);
        }
    }

    /// The store's mutation version, when it maintains a change feed.
    /// `None` (the default) means the source has no incremental support
    /// and consumers must re-read on every use.
    fn version(&self) -> Option<FactsVersion> {
        None
    }

    /// Replays every delta applied after `epoch`, in application order.
    /// Returns `false` when the span is unavailable (no feed, or the log
    /// has been truncated past `epoch`), in which case the consumer must
    /// rebuild from a full read instead.
    fn for_each_delta_since(&self, _epoch: u64, _f: &mut dyn FnMut(&FactDelta)) -> bool {
        false
    }
}

/// How many deltas the in-memory store keeps for replay before a
/// consumer that fell this far behind is told to rebuild instead.
const DELTA_LOG_CAP: usize = 4096;

fn fresh_source_id() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(1);
    NEXT.fetch_add(1, Ordering::Relaxed)
}

/// An indexed in-memory fact store with a bounded insert/retract delta
/// log (the change feed incremental matchers repair their indexes from).
#[derive(Debug)]
pub struct InMemoryFacts {
    facts: Vec<Fact>,
    by_predicate: FnvHashMap<String, Vec<usize>>,
    by_subject: FnvHashMap<String, Vec<usize>>,
    source: u64,
    epoch: u64,
    /// Deltas for epochs `log_base + 1 ..= epoch`, oldest first.
    log: VecDeque<FactDelta>,
    log_base: u64,
    /// Times a consumer asked for a span the wrapped log no longer holds
    /// and was forced to rebuild from a full read. Previously this
    /// happened silently; surfacing it is what tells an operator the
    /// 4096-delta window is too small for their churn rate.
    truncated_reads: AtomicU64,
}

impl Default for InMemoryFacts {
    fn default() -> Self {
        InMemoryFacts {
            facts: Vec::new(),
            by_predicate: FnvHashMap::default(),
            by_subject: FnvHashMap::default(),
            source: fresh_source_id(),
            epoch: 0,
            log: VecDeque::new(),
            log_base: 0,
            truncated_reads: AtomicU64::new(0),
        }
    }
}

impl Clone for InMemoryFacts {
    /// Clones the contents under a *fresh* source id (so a consumer
    /// synced to the original never mistakes the clone's epochs for a
    /// continuation). The delta log is not carried over.
    fn clone(&self) -> Self {
        InMemoryFacts {
            facts: self.facts.clone(),
            by_predicate: self.by_predicate.clone(),
            by_subject: self.by_subject.clone(),
            source: fresh_source_id(),
            epoch: self.epoch,
            log: VecDeque::new(),
            log_base: self.epoch,
            truncated_reads: AtomicU64::new(0),
        }
    }
}

impl InMemoryFacts {
    /// Creates an empty store.
    pub fn new() -> Self {
        InMemoryFacts::default()
    }

    /// The store's mutation count.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// How many delta-feed reads failed because the bounded log had
    /// already wrapped past the requested epoch (each one forced a
    /// consumer to rebuild from a full read). Surfaced by hosts as the
    /// `kb.delta_log_truncated` metric.
    pub fn delta_log_truncations(&self) -> u64 {
        self.truncated_reads.load(Ordering::Relaxed)
    }

    fn record(&mut self, delta: FactDelta) {
        self.epoch += 1;
        self.log.push_back(delta);
        while self.log.len() > DELTA_LOG_CAP {
            self.log.pop_front();
            self.log_base += 1;
        }
    }

    /// Adds a fact.
    pub fn add(&mut self, fact: Fact) {
        let i = self.facts.len();
        self.by_predicate.entry(fact.predicate.clone()).or_default().push(i);
        self.by_subject.entry(fact.subject.clone()).or_default().push(i);
        self.facts.push(fact.clone());
        self.record(FactDelta::Insert(fact));
    }

    /// Adds many facts.
    pub fn extend(&mut self, facts: impl IntoIterator<Item = Fact>) {
        for f in facts {
            self.add(f);
        }
    }

    /// Number of facts.
    pub fn len(&self) -> usize {
        self.facts.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.facts.is_empty()
    }

    /// Removes all facts about a subject (profile update), returning how
    /// many were removed.
    pub fn remove_subject(&mut self, subject: &str) -> usize {
        self.retract_where(|f| f.subject == subject)
    }

    /// Removes every fact whose subject, predicate, and object all match
    /// (object by structural equality; validity bounds are *not*
    /// compared, so windowed variants of the triple go too), returning
    /// how many were removed. The targeted counterpart of
    /// [`remove_subject`](Self::remove_subject) for fact churn.
    pub fn retract(&mut self, subject: &str, predicate: &str, object: &Term) -> usize {
        self.retract_where(|f| {
            f.subject == subject && f.predicate == predicate && f.object == *object
        })
    }

    fn retract_where(&mut self, mut gone: impl FnMut(&Fact) -> bool) -> usize {
        // Collect the doomed positions first (ascending by construction),
        // then splice both indexes in place: surviving entries shift down
        // by the number of removals below them. This keeps a retract at
        // O(index entries) pointer work instead of rebuilding both maps
        // with a String clone per fact — the store-side cost that would
        // otherwise dominate the delta path churn exists to make cheap.
        let mut removed_at: Vec<usize> = Vec::new();
        let mut removed: Vec<Fact> = Vec::new();
        for (i, f) in self.facts.iter().enumerate() {
            if gone(f) {
                removed_at.push(i);
                removed.push(f.clone());
            }
        }
        if removed_at.is_empty() {
            return 0;
        }
        let mut i = 0;
        let mut r = 0;
        self.facts.retain(|_| {
            let dead = r < removed_at.len() && removed_at[r] == i;
            if dead {
                r += 1;
            }
            i += 1;
            !dead
        });
        let splice = |map: &mut FnvHashMap<String, Vec<usize>>| {
            map.retain(|_, positions| {
                positions.retain_mut(|pos| match removed_at.binary_search(pos) {
                    Ok(_) => false,
                    Err(below) => {
                        *pos -= below;
                        true
                    }
                });
                !positions.is_empty()
            });
        };
        splice(&mut self.by_predicate);
        splice(&mut self.by_subject);
        for f in removed {
            self.record(FactDelta::Retract(f));
        }
        removed_at.len()
    }

    /// All facts, grouped by subject (for distribution into the store).
    pub fn by_subject(&self) -> BTreeMap<&str, Vec<&Fact>> {
        let mut map: BTreeMap<&str, Vec<&Fact>> = BTreeMap::new();
        for f in &self.facts {
            map.entry(f.subject.as_str()).or_default().push(f);
        }
        map
    }
}

impl InMemoryFacts {
    /// The index positions matching a subject/predicate query (the
    /// smaller index wins; subject lists are usually short), or `None`
    /// for an unconstrained query. The flag reports whether candidates
    /// still need the predicate checked (only the subject-indexed arm
    /// does; the predicate index already guarantees it).
    fn candidate_indices(
        &self,
        subject: Option<&str>,
        predicate: Option<&str>,
    ) -> Option<(&[usize], bool)> {
        static EMPTY: &[usize] = &[];
        match (subject, predicate) {
            (Some(s), _) => {
                let idx = self.by_subject.get(s).map_or(EMPTY, Vec::as_slice);
                Some((idx, predicate.is_some()))
            }
            (None, Some(p)) => Some((self.by_predicate.get(p).map_or(EMPTY, Vec::as_slice), false)),
            (None, None) => None,
        }
    }
}

impl FactSource for InMemoryFacts {
    fn query<'a>(
        &'a self,
        subject: Option<&'a str>,
        predicate: Option<&'a str>,
    ) -> Box<dyn Iterator<Item = &'a Fact> + 'a> {
        match self.candidate_indices(subject, predicate) {
            Some((idx, check_predicate)) => {
                Box::new(idx.iter().map(|&i| &self.facts[i]).filter(move |f| {
                    !check_predicate || predicate.is_none_or(|p| f.predicate == p)
                }))
            }
            None => Box::new(self.facts.iter()),
        }
    }

    fn for_each_at(
        &self,
        subject: Option<&str>,
        predicate: Option<&str>,
        t: SimTime,
        f: &mut dyn FnMut(&Fact),
    ) {
        match self.candidate_indices(subject, predicate) {
            Some((idx, check_predicate)) => {
                for &i in idx {
                    let fact = &self.facts[i];
                    if (!check_predicate || predicate.is_none_or(|p| fact.predicate == p))
                        && fact.valid_at(t)
                    {
                        f(fact);
                    }
                }
            }
            None => {
                for fact in &self.facts {
                    if fact.valid_at(t) {
                        f(fact);
                    }
                }
            }
        }
    }

    fn version(&self) -> Option<FactsVersion> {
        Some(FactsVersion { source: self.source, epoch: self.epoch })
    }

    fn for_each_delta_since(&self, epoch: u64, f: &mut dyn FnMut(&FactDelta)) -> bool {
        if epoch < self.log_base {
            // The bounded log wrapped past the consumer: it must rebuild.
            self.truncated_reads.fetch_add(1, Ordering::Relaxed);
            return false;
        }
        if epoch > self.epoch {
            return false;
        }
        for d in self.log.iter().skip((epoch - self.log_base) as usize) {
            f(d);
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kb() -> InMemoryFacts {
        let mut kb = InMemoryFacts::new();
        kb.add(Fact::new("bob", "likes", Term::str("ice cream")));
        kb.add(Fact::new("bob", "nationality", Term::str("scottish")));
        kb.add(Fact::new("anna", "likes", Term::str("coffee")));
        kb.add(Fact::new("bob", "knows", Term::str("anna")));
        kb.add(
            Fact::new("bob", "on_holiday", Term::Bool(true))
                .valid_between(SimTime::from_secs(100), SimTime::from_secs(200)),
        );
        kb
    }

    #[test]
    fn query_combinations() {
        let kb = kb();
        assert_eq!(kb.query(Some("bob"), Some("likes")).count(), 1);
        assert_eq!(kb.query(Some("bob"), None).count(), 4);
        assert_eq!(kb.query(None, Some("likes")).count(), 2);
        assert_eq!(kb.query(None, None).count(), 5);
        assert_eq!(kb.query(Some("zoe"), None).count(), 0);
    }

    #[test]
    fn validity_intervals() {
        let kb = kb();
        let at = |s| kb.query_at(Some("bob"), Some("on_holiday"), SimTime::from_secs(s)).count();
        assert_eq!(at(50), 0);
        assert_eq!(at(100), 1);
        assert_eq!(at(199), 1);
        assert_eq!(at(200), 0, "end is exclusive");
    }

    #[test]
    fn remove_subject_reindexes() {
        let mut kb = kb();
        assert_eq!(kb.remove_subject("bob"), 4);
        assert_eq!(kb.query(Some("bob"), None).count(), 0);
        assert_eq!(kb.query(None, Some("likes")).count(), 1);
        assert_eq!(kb.len(), 1);
    }

    #[test]
    fn term_accessors_and_equality() {
        assert!(Term::Int(3).eq_term(&Term::Float(3.0)));
        assert!(!Term::Int(3).eq_term(&Term::str("3")));
        assert_eq!(Term::str("x").as_str(), Some("x"));
        assert_eq!(Term::Float(1.5).as_f64(), Some(1.5));
        assert_eq!(Term::Bool(true).as_bool(), Some(true));
        let g = GeoPoint::new(56.0, -3.0);
        assert_eq!(Term::Geo(g).as_geo(), Some(g));
        assert_eq!(Term::Time(SimTime::from_secs(2)).as_f64(), Some(2.0));
    }

    #[test]
    fn by_subject_grouping() {
        let kb = kb();
        let groups = kb.by_subject();
        assert_eq!(groups["bob"].len(), 4);
        assert_eq!(groups["anna"].len(), 1);
    }

    #[test]
    fn term_display() {
        assert_eq!(Term::str("a").to_string(), "\"a\"");
        assert_eq!(Term::Int(4).to_string(), "4");
        assert_eq!(Fact::new("a", "b", Term::Int(1)).to_string(), "a b 1");
    }

    #[test]
    fn delta_feed_replays_mutations_in_order() {
        let mut kb = InMemoryFacts::new();
        let v0 = kb.version().unwrap();
        assert_eq!(v0.epoch, 0);
        kb.add(Fact::new("bob", "likes", Term::str("ice cream")));
        kb.add(Fact::new("bob", "likes", Term::str("golf")));
        assert_eq!(kb.retract("bob", "likes", &Term::str("golf")), 1);
        assert_eq!(kb.version().unwrap().epoch, 3);
        let mut seen = Vec::new();
        assert!(kb.for_each_delta_since(0, &mut |d| seen.push(d.clone())));
        assert_eq!(seen.len(), 3);
        assert!(matches!(&seen[0], FactDelta::Insert(f) if f.object.as_str() == Some("ice cream")));
        assert!(matches!(&seen[2], FactDelta::Retract(f) if f.object.as_str() == Some("golf")));
        // Mid-stream replay only sees the tail.
        let mut tail = Vec::new();
        assert!(kb.for_each_delta_since(2, &mut |d| tail.push(d.clone())));
        assert_eq!(tail.len(), 1);
        // A future epoch is unavailable.
        assert!(!kb.for_each_delta_since(99, &mut |_| {}));
    }

    #[test]
    fn remove_subject_emits_one_retract_per_fact() {
        let mut kb = kb();
        let e = kb.epoch();
        assert_eq!(kb.remove_subject("bob"), 4);
        let mut retracts = 0;
        assert!(kb.for_each_delta_since(e, &mut |d| {
            assert!(matches!(d, FactDelta::Retract(f) if f.subject == "bob"));
            retracts += 1;
        }));
        assert_eq!(retracts, 4);
        // Retracting nothing does not advance the epoch.
        assert_eq!(kb.retract("zoe", "likes", &Term::str("x")), 0);
        assert_eq!(kb.epoch(), e + 4);
    }

    #[test]
    fn targeted_retract_splices_indexes() {
        let mut kb = InMemoryFacts::new();
        kb.add(Fact::new("a", "p", Term::Int(1)));
        kb.add(Fact::new("b", "p", Term::Int(2)));
        kb.add(Fact::new("a", "q", Term::Int(3)));
        kb.add(Fact::new("c", "p", Term::Int(4)));
        assert_eq!(kb.retract("b", "p", &Term::Int(2)), 1);
        // Shifted survivors still resolve through both indexes.
        assert_eq!(kb.query(Some("a"), Some("q")).next().unwrap().object, Term::Int(3));
        assert_eq!(kb.query(None, Some("p")).count(), 2);
        assert_eq!(kb.query(Some("c"), None).count(), 1);
        // Subsequent adds land on correct positions after the splice.
        kb.add(Fact::new("d", "p", Term::Int(5)));
        assert_eq!(kb.query(None, Some("p")).count(), 3);
        assert_eq!(kb.query(Some("d"), Some("p")).count(), 1);
        // Validity bounds are not part of the match: the windowed
        // variant of the triple is retracted along with the plain one.
        kb.add(
            Fact::new("d", "p", Term::Int(5))
                .valid_between(SimTime::from_secs(1), SimTime::from_secs(2)),
        );
        assert_eq!(kb.retract("d", "p", &Term::Int(5)), 2);
        assert_eq!(kb.query(Some("d"), None).count(), 0);
    }

    #[test]
    fn clones_get_a_fresh_source_id_and_empty_log() {
        let mut kb = InMemoryFacts::new();
        kb.add(Fact::new("bob", "likes", Term::str("ice cream")));
        let twin = kb.clone();
        assert_ne!(kb.version().unwrap().source, twin.version().unwrap().source);
        // The clone's history is unavailable: consumers must rebuild.
        assert!(!twin.for_each_delta_since(0, &mut |_| {}));
        assert_eq!(twin.len(), 1);
    }

    #[test]
    fn overflowing_log_reports_truncation() {
        let mut kb = InMemoryFacts::new();
        for i in 0..(super::DELTA_LOG_CAP + 10) {
            kb.add(Fact::new(format!("s{i}"), "p", Term::Int(i as i64)));
        }
        assert!(!kb.for_each_delta_since(0, &mut |_| {}), "oldest span truncated");
        let recent = kb.epoch() - 5;
        let mut n = 0;
        assert!(kb.for_each_delta_since(recent, &mut |_| n += 1));
        assert_eq!(n, 5);
    }

    #[test]
    fn truncated_reads_are_counted_not_silent() {
        let mut kb = InMemoryFacts::new();
        kb.add(Fact::new("s", "p", Term::Int(0)));
        assert_eq!(kb.delta_log_truncations(), 0);
        // In-window reads never count, even at the exact log base.
        assert!(kb.for_each_delta_since(0, &mut |_| {}));
        assert_eq!(kb.delta_log_truncations(), 0);
        // Wrap the bounded log: epoch 0 now precedes the log base by one.
        for i in 0..super::DELTA_LOG_CAP {
            kb.add(Fact::new(format!("s{i}"), "p", Term::Int(i as i64)));
        }
        assert!(!kb.for_each_delta_since(0, &mut |_| {}));
        assert_eq!(kb.delta_log_truncations(), 1, "wrapped read counted");
        assert!(kb.for_each_delta_since(1, &mut |_| {}), "log base itself still replays");
        // A *future* epoch is unavailable but not a truncation.
        assert!(!kb.for_each_delta_since(kb.epoch() + 1, &mut |_| {}));
        assert_eq!(kb.delta_log_truncations(), 1);
    }
}
