//! Epoch-tagged knowledge deltas over the store plane.
//!
//! Whole-document replication ships everything known about a subject on
//! every change; under context churn (a user's location updating every
//! few seconds) that is almost entirely redundant bytes. This module
//! extends the [`FactDelta`](crate::FactDelta)/epoch feed across nodes:
//! an authoritative writer ships **delta batches** — the insert/retract
//! tail since the receiver's last known epoch, as a
//! `kbdelta/<subject>@<from..to>` document — and receivers repair their
//! local fact stores (and through them the matching engine's alpha
//! memories) incrementally.
//!
//! The protocol is anchored by versioned snapshots
//! ([`DistributedKnowledge::facts_to_xml_versioned`]): a snapshot stamps
//! the authority's `(source, epoch)`, and a batch applies only when it
//! extends exactly the state the receiver holds. [`reconcile`] is the
//! receiver-side decision: apply (possibly skipping an already-covered
//! prefix), ignore as stale, or fall back to a full snapshot fetch —
//! which is forced whenever the writer's bounded delta log has truncated
//! past the receiver's epoch, the writer is a different store instance
//! (clones never alias epochs), or the receiver was never anchored.

use crate::distributed::{fact_element, fact_from_element};
use crate::fact::{Fact, FactDelta, FactSource, InMemoryFacts};
use gloss_xml::Element;
use std::collections::BTreeMap;

/// A contiguous run of one subject's fact deltas: epochs
/// `from + 1 ..= to` of the authority store `source`.
#[derive(Debug, Clone, PartialEq)]
pub struct DeltaBatch {
    /// The subject the deltas concern.
    pub subject: String,
    /// The authority store's instance id.
    pub source: u64,
    /// Epoch the batch extends (the receiver must hold this state).
    pub from: u64,
    /// Epoch after the last delta.
    pub to: u64,
    /// The deltas, in application order (`deltas.len() == to - from`).
    pub deltas: Vec<FactDelta>,
}

impl DeltaBatch {
    /// The store document name: `kbdelta/<subject>@<from..to>`.
    pub fn doc_name(&self) -> String {
        format!("kbdelta/{}@{}..{}", self.subject, self.from, self.to)
    }

    /// The subject encoded in a `kbdelta/…` document name, or `None`
    /// when the name is not a delta document.
    pub fn subject_of_doc(name: &str) -> Option<&str> {
        let rest = name.strip_prefix("kbdelta/")?;
        Some(rest.rsplit_once('@').map_or(rest, |(s, _)| s))
    }

    /// Serialises the batch to its XML document form.
    pub fn to_xml(&self) -> Element {
        let mut el = Element::new("kbdelta")
            .with_attr("subject", &self.subject)
            .with_attr("source", self.source.to_string())
            .with_attr("from", self.from.to_string())
            .with_attr("to", self.to.to_string());
        for d in &self.deltas {
            let (tag, f) = match d {
                FactDelta::Insert(f) => ("insert", f),
                FactDelta::Retract(f) => ("retract", f),
            };
            el.push(fact_element(tag, f));
        }
        el
    }

    /// Parses a batch back from XML. `None` when the envelope is
    /// malformed or any delta fails to decode — a batch with a hole
    /// cannot be applied soundly, so unlike snapshot parsing this does
    /// not skip bad entries.
    pub fn from_xml(el: &Element) -> Option<DeltaBatch> {
        if el.name() != "kbdelta" {
            return None;
        }
        let subject = el.attr("subject")?.to_string();
        let source = el.attr("source")?.parse().ok()?;
        let from: u64 = el.attr("from")?.parse().ok()?;
        let to: u64 = el.attr("to")?.parse().ok()?;
        let mut deltas = Vec::new();
        for fe in el.children() {
            let fact = fact_from_element(&subject, fe)?;
            deltas.push(match fe.name() {
                "insert" => FactDelta::Insert(fact),
                "retract" => FactDelta::Retract(fact),
                _ => return None,
            });
        }
        if to.checked_sub(from)? != deltas.len() as u64 {
            return None;
        }
        Some(DeltaBatch { subject, source, from, to, deltas })
    }
}

/// Why a receiver must fall back to a full snapshot fetch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SnapshotReason {
    /// The receiver has no anchored `(source, epoch)` for the subject.
    Unanchored,
    /// The batch comes from a different store instance than the one the
    /// receiver anchored to (a clone, a restarted writer): its epochs
    /// are not comparable.
    SourceChanged,
    /// The batch starts past the receiver's epoch — intervening deltas
    /// were lost (or the writer's bounded log truncated them).
    EpochGap,
}

/// The receiver-side verdict on an arriving delta batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeltaAction {
    /// Apply `deltas[skip..]`, then anchor at `(batch.source, batch.to)`.
    /// `skip` covers the prefix an interleaved snapshot already
    /// incorporated.
    Apply {
        /// Leading deltas already covered by the receiver's state.
        skip: usize,
    },
    /// Everything in the batch is already incorporated; ignore it.
    Stale,
    /// The batch cannot be applied: fetch a full snapshot instead.
    Snapshot(SnapshotReason),
}

/// Decides what a receiver anchored at `tracked` (`(source, epoch)`, or
/// `None` before any versioned snapshot) does with `batch`.
pub fn reconcile(tracked: Option<(u64, u64)>, batch: &DeltaBatch) -> DeltaAction {
    let Some((source, epoch)) = tracked else {
        // Bootstrap: a batch from the very first epoch is a complete
        // history and can build the subject from nothing.
        return if batch.from == 0 {
            DeltaAction::Apply { skip: 0 }
        } else {
            DeltaAction::Snapshot(SnapshotReason::Unanchored)
        };
    };
    if source != batch.source {
        return DeltaAction::Snapshot(SnapshotReason::SourceChanged);
    }
    if batch.to <= epoch {
        return DeltaAction::Stale;
    }
    if batch.from > epoch {
        return DeltaAction::Snapshot(SnapshotReason::EpochGap);
    }
    DeltaAction::Apply { skip: (epoch - batch.from) as usize }
}

/// What a flush of an authority subject produces for the wire.
#[derive(Debug, Clone, PartialEq)]
pub enum Shipment {
    /// A full snapshot (first publication, or the delta log truncated).
    Snapshot {
        /// The authority store's instance id.
        source: u64,
        /// The epoch the snapshot captures.
        epoch: u64,
        /// Every fact currently held for the subject.
        facts: Vec<Fact>,
    },
    /// An incremental batch extending the last shipment.
    Delta(DeltaBatch),
}

/// The writer side: one authoritative bounded-log fact store per
/// subject, tracking what has been shipped so each flush emits exactly
/// the unshipped tail — or a snapshot when the log wrapped past it
/// (observable via
/// [`delta_log_truncations`](InMemoryFacts::delta_log_truncations) on
/// the subject's store).
#[derive(Debug, Default)]
pub struct KnowledgeAuthority {
    subjects: BTreeMap<String, InMemoryFacts>,
    shipped: BTreeMap<String, u64>,
}

impl KnowledgeAuthority {
    /// Creates an empty authority.
    pub fn new() -> Self {
        KnowledgeAuthority::default()
    }

    /// The authoritative store for `subject`, created on first use.
    /// Mutate it freely; the changes ship at the next
    /// [`flush`](Self::flush).
    pub fn facts_mut(&mut self, subject: &str) -> &mut InMemoryFacts {
        self.subjects.entry(subject.to_string()).or_default()
    }

    /// The authoritative store for `subject`, if it exists.
    pub fn facts(&self, subject: &str) -> Option<&InMemoryFacts> {
        self.subjects.get(subject)
    }

    /// A forced full snapshot of `subject` (used when the wire format
    /// must be a whole document — e.g. compat-seeding `kb/<subject>`).
    /// Marks the subject fully shipped, so the next [`flush`](Self::flush)
    /// emits only deltas on top of it.
    pub fn snapshot(&mut self, subject: &str) -> Option<Shipment> {
        let store = self.subjects.get(subject)?;
        let epoch = store.epoch();
        let source = store.version().expect("in-memory stores are versioned").source;
        self.shipped.insert(subject.to_string(), epoch);
        Some(Shipment::Snapshot {
            source,
            epoch,
            facts: store.query(None, None).cloned().collect(),
        })
    }

    /// Everything to ship for `subject` since the last flush: `None`
    /// when nothing changed, a [`Shipment::Delta`] for the unshipped
    /// tail, or a [`Shipment::Snapshot`] on first publication and
    /// whenever the bounded log truncated past the last shipment.
    pub fn flush(&mut self, subject: &str) -> Option<Shipment> {
        let store = self.subjects.get(subject)?;
        let epoch = store.epoch();
        let source = store.version().expect("in-memory stores are versioned").source;
        let snapshot = |store: &InMemoryFacts| Shipment::Snapshot {
            source,
            epoch,
            facts: store.query(None, None).cloned().collect(),
        };
        let shipment = match self.shipped.get(subject) {
            None => snapshot(store),
            Some(&at) if at == epoch => return None,
            Some(&at) => {
                let mut deltas = Vec::with_capacity((epoch - at) as usize);
                if store.for_each_delta_since(at, &mut |d| deltas.push(d.clone())) {
                    Shipment::Delta(DeltaBatch {
                        subject: subject.to_string(),
                        source,
                        from: at,
                        to: epoch,
                        deltas,
                    })
                } else {
                    // The log wrapped past the last shipment (counted on
                    // the store): consumers must rebuild.
                    snapshot(store)
                }
            }
        };
        self.shipped.insert(subject.to_string(), epoch);
        Some(shipment)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fact::Term;

    fn batch(source: u64, from: u64, deltas: Vec<FactDelta>) -> DeltaBatch {
        let to = from + deltas.len() as u64;
        DeltaBatch { subject: "bob".into(), source, from, to, deltas }
    }

    fn ins(p: &str, v: i64) -> FactDelta {
        FactDelta::Insert(Fact::new("bob", p, Term::Int(v)))
    }

    #[test]
    fn batch_xml_round_trip() {
        let b = batch(
            7,
            3,
            vec![
                ins("score", 1),
                FactDelta::Retract(Fact::new("bob", "score", Term::Int(1))),
                FactDelta::Insert(Fact::new("bob", "at", Term::str("market st")).valid_between(
                    gloss_sim::SimTime::from_secs(1),
                    gloss_sim::SimTime::from_secs(9),
                )),
            ],
        );
        assert_eq!(b.doc_name(), "kbdelta/bob@3..6");
        assert_eq!(DeltaBatch::subject_of_doc(&b.doc_name()), Some("bob"));
        assert_eq!(DeltaBatch::subject_of_doc("kb/bob"), None);
        let parsed =
            DeltaBatch::from_xml(&gloss_xml::parse(&b.to_xml().to_xml()).unwrap()).unwrap();
        assert_eq!(parsed, b);
    }

    #[test]
    fn corrupt_batches_are_rejected_whole() {
        let b = batch(7, 3, vec![ins("score", 1), ins("score", 2)]);
        let text = b.to_xml().to_xml();
        let holed = text.replacen("type=\"int\"", "type=\"tensor\"", 1);
        assert_ne!(holed, text);
        let el = gloss_xml::parse(&holed).unwrap();
        assert!(DeltaBatch::from_xml(&el).is_none(), "a hole is not skippable");
        let short = text.replacen("to=\"5\"", "to=\"9\"", 1);
        assert_ne!(short, text);
        let el = gloss_xml::parse(&short).unwrap();
        assert!(DeltaBatch::from_xml(&el).is_none(), "length must match the range");
    }

    #[test]
    fn reconcile_applies_contiguous_batches() {
        assert_eq!(
            reconcile(Some((7, 3)), &batch(7, 3, vec![ins("p", 1)])),
            DeltaAction::Apply { skip: 0 }
        );
        // Bootstrap from nothing with a complete history.
        assert_eq!(
            reconcile(None, &batch(7, 0, vec![ins("p", 1)])),
            DeltaAction::Apply { skip: 0 }
        );
        assert_eq!(
            reconcile(None, &batch(7, 2, vec![ins("p", 1)])),
            DeltaAction::Snapshot(SnapshotReason::Unanchored)
        );
    }

    #[test]
    fn receiver_ahead_of_sender_ignores_stale_batches() {
        // The receiver already holds epoch 9 (a snapshot overtook the
        // batch in flight): everything the batch carries is old news.
        assert_eq!(reconcile(Some((7, 9)), &batch(7, 3, vec![ins("p", 1)])), DeltaAction::Stale);
        assert_eq!(
            reconcile(Some((7, 9)), &batch(7, 8, vec![ins("p", 1)])),
            DeltaAction::Stale,
            "to == epoch is already incorporated"
        );
    }

    #[test]
    fn interleaved_snapshot_skips_the_covered_prefix() {
        // Snapshot at epoch 5 arrived mid-range; a 3..8 batch must apply
        // only its 5..8 tail or retracted facts would resurrect.
        let b = batch(7, 3, vec![ins("a", 1), ins("b", 2), ins("c", 3), ins("d", 4), ins("e", 5)]);
        assert_eq!(reconcile(Some((7, 5)), &b), DeltaAction::Apply { skip: 2 });
    }

    #[test]
    fn epoch_gaps_force_a_snapshot() {
        assert_eq!(
            reconcile(Some((7, 3)), &batch(7, 5, vec![ins("p", 1)])),
            DeltaAction::Snapshot(SnapshotReason::EpochGap)
        );
    }

    #[test]
    fn divergent_source_ids_never_alias_epochs() {
        let mut original = InMemoryFacts::new();
        original.add(Fact::new("bob", "likes", Term::str("ice cream")));
        let clone = original.clone();
        let (os, cs) = (original.version().unwrap().source, clone.version().unwrap().source);
        assert_ne!(os, cs);
        // A receiver anchored to the original must snapshot on a batch
        // from the clone even though the epoch numbers line up.
        let epoch = original.epoch();
        assert_eq!(
            reconcile(Some((os, epoch)), &batch(cs, epoch, vec![ins("p", 1)])),
            DeltaAction::Snapshot(SnapshotReason::SourceChanged)
        );
    }

    #[test]
    fn authority_ships_snapshot_then_deltas() {
        let mut auth = KnowledgeAuthority::new();
        auth.facts_mut("bob").add(Fact::new("bob", "likes", Term::str("ice cream")));
        auth.facts_mut("bob").add(Fact::new("bob", "age", Term::Int(34)));
        let Some(Shipment::Snapshot { epoch, facts, .. }) = auth.flush("bob") else {
            panic!("first flush is a snapshot")
        };
        assert_eq!((epoch, facts.len()), (2, 2));
        assert!(auth.flush("bob").is_none(), "nothing changed");
        auth.facts_mut("bob").retract("bob", "age", &Term::Int(34));
        auth.facts_mut("bob").add(Fact::new("bob", "age", Term::Int(35)));
        let Some(Shipment::Delta(b)) = auth.flush("bob") else {
            panic!("subsequent flushes ship the delta tail")
        };
        assert_eq!((b.from, b.to), (2, 4));
        assert!(matches!(&b.deltas[0], FactDelta::Retract(f) if f.object == Term::Int(34)));
        assert!(auth.flush("nobody").is_none());
    }

    #[test]
    fn truncated_log_falls_back_to_snapshot() {
        let mut auth = KnowledgeAuthority::new();
        auth.facts_mut("bob").add(Fact::new("bob", "seq", Term::Int(-1)));
        assert!(matches!(auth.flush("bob"), Some(Shipment::Snapshot { .. })));
        // More unshipped churn than the bounded log holds.
        for i in 0..5000i64 {
            auth.facts_mut("bob").retract("bob", "seq", &Term::Int(i - 1));
            auth.facts_mut("bob").add(Fact::new("bob", "seq", Term::Int(i)));
        }
        let Some(Shipment::Snapshot { epoch, facts, .. }) = auth.flush("bob") else {
            panic!("wrapped log cannot ship deltas")
        };
        assert_eq!(epoch, 1 + 10_000);
        assert_eq!(facts.len(), 1);
        assert_eq!(auth.facts("bob").unwrap().delta_log_truncations(), 1, "wrap was counted");
        // Fully shipped again: the next churn round is a delta.
        auth.facts_mut("bob").add(Fact::new("bob", "extra", Term::Int(1)));
        assert!(matches!(auth.flush("bob"), Some(Shipment::Delta(_))));
    }
}
