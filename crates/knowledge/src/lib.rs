//! The knowledge base: "relatively static information such as spatial data
//! from GIS, and more general information published on intranets and the
//! internet" (§1.1), plus user profiles, preferences and history.
//!
//! The matching service "will operate over a global knowledge base
//! comprising elements such as GIS, web-based systems, databases,
//! semi-structured data". This crate provides the synthetic equivalent:
//!
//! * [`Fact`]s — subject/predicate/object triples with optional validity
//!   intervals, behind the [`FactSource`] query trait used by matchlets.
//!   [`InMemoryFacts`] additionally keeps an insert/retract change feed
//!   ([`FactDelta`] + [`FactsVersion`] epochs) that incremental consumers
//!   — the matchlet engine's alpha/beta memories — repair their indexes
//!   from instead of re-reading the store,
//! * [`gis`] — a spatial directory (places, streets, opening hours,
//!   haversine geometry) including the St Andrews scene of the paper's
//!   ice-cream scenario,
//! * [`profile`] — user profiles: preferences, traits, social graph,
//!   movement history,
//! * [`ontology`] — a term hierarchy plus the paper's three
//!   description-matching strategies (§3): text-based, lexical-descriptor
//!   (multi-faceted classification) and specification-based, compared in
//!   experiment **C9**,
//! * [`distributed`] — facts serialised as XML documents in the P2P store
//!   (one document per subject), with promiscuous caching applying
//!   transparently,
//! * [`delta`] — epoch-tagged delta propagation: authoritative writers
//!   ship `kbdelta/<subject>@<from..to>` batches of the insert/retract
//!   tail instead of whole subject documents, and [`reconcile`] decides
//!   receiver-side whether a batch applies, is stale, or forces a full
//!   snapshot fetch (e.g. after the bounded delta log truncated).
//!
//! # Example
//!
//! ```
//! use gloss_knowledge::{Fact, FactSource, InMemoryFacts, Term};
//!
//! let mut kb = InMemoryFacts::new();
//! kb.add(Fact::new("bob", "likes", Term::str("ice cream")));
//! kb.add(Fact::new("bob", "nationality", Term::str("scottish")));
//! let likes: Vec<_> = kb.query(Some("bob"), Some("likes")).collect();
//! assert_eq!(likes[0].object.as_str(), Some("ice cream"));
//! ```

pub mod delta;
pub mod distributed;
pub mod fact;
pub mod gis;
pub mod ontology;
pub mod profile;

pub use delta::{reconcile, DeltaAction, DeltaBatch, KnowledgeAuthority, Shipment, SnapshotReason};
pub use distributed::DistributedKnowledge;
pub use fact::{Fact, FactDelta, FactSource, FactsVersion, InMemoryFacts, Term};
pub use gis::{Place, PlaceDirectory};
pub use ontology::{
    LexicalMatcher, Ontology, RetrievalScores, ServiceDescription, SpecMatcher, TextMatcher,
};
pub use profile::UserProfile;
