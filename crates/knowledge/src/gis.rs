//! GIS-lite: places, streets, opening hours, and spatial queries.
//!
//! "Information sources include ... relatively static information such as
//! spatial data from GIS" (§1.1). The demo directory reproduces the
//! paper's scene: "Janetta's in Market Street sells ice cream, and is open
//! between 9.00 and 17.00."

use crate::fact::{Fact, Term};
use gloss_sim::GeoPoint;

/// A named place with location, street, categories, and opening hours.
#[derive(Debug, Clone, PartialEq)]
pub struct Place {
    /// The place name ("Janetta's").
    pub name: String,
    /// Where it is.
    pub geo: GeoPoint,
    /// The street it is on ("Market Street").
    pub street: String,
    /// What it offers ("ice cream", "cafe"...).
    pub categories: Vec<String>,
    /// Opening interval in minutes-of-day `[open, close)`, if it has one.
    pub hours: Option<(u32, u32)>,
}

impl Place {
    /// Creates a place with no categories or hours.
    pub fn new(name: impl Into<String>, geo: GeoPoint, street: impl Into<String>) -> Self {
        Place { name: name.into(), geo, street: street.into(), categories: Vec::new(), hours: None }
    }

    /// Adds a category.
    pub fn with_category(mut self, cat: impl Into<String>) -> Self {
        self.categories.push(cat.into());
        self
    }

    /// Sets opening hours (minutes of day, `[open, close)`).
    pub fn with_hours(mut self, open: u32, close: u32) -> Self {
        self.hours = Some((open, close));
        self
    }

    /// Whether the place is open at `minute_of_day`.
    pub fn open_at(&self, minute_of_day: u32) -> bool {
        match self.hours {
            None => true,
            Some((open, close)) => {
                let m = minute_of_day % (24 * 60);
                if open <= close {
                    m >= open && m < close
                } else {
                    // Over midnight.
                    m >= open || m < close
                }
            }
        }
    }

    /// Facts describing this place, for the knowledge base.
    pub fn to_facts(&self) -> Vec<Fact> {
        let mut facts = vec![
            Fact::new(&self.name, "located_at", Term::Geo(self.geo)),
            Fact::new(&self.name, "on_street", Term::str(self.street.as_str())),
        ];
        for c in &self.categories {
            facts.push(Fact::new(&self.name, "sells", Term::str(c.as_str())));
        }
        if let Some((open, close)) = self.hours {
            facts.push(Fact::new(&self.name, "opens_at", Term::Int(open as i64)));
            facts.push(Fact::new(&self.name, "closes_at", Term::Int(close as i64)));
        }
        facts
    }
}

/// A directory of places with spatial queries.
#[derive(Debug, Clone, Default)]
pub struct PlaceDirectory {
    places: Vec<Place>,
}

impl PlaceDirectory {
    /// Creates an empty directory.
    pub fn new() -> Self {
        PlaceDirectory::default()
    }

    /// The St Andrews scene from the paper's ice-cream example, plus
    /// enough surrounding places for realistic workloads.
    pub fn st_andrews() -> Self {
        let mut d = PlaceDirectory::new();
        d.add(
            Place::new("Janetta's", GeoPoint::new(56.3403, -2.7931), "Market Street")
                .with_category("ice cream")
                .with_hours(9 * 60, 17 * 60),
        );
        d.add(
            Place::new("The Central", GeoPoint::new(56.3400, -2.7950), "Market Street")
                .with_category("pub")
                .with_category("food")
                .with_hours(11 * 60, 23 * 60),
        );
        d.add(
            Place::new("North Point Cafe", GeoPoint::new(56.3417, -2.7956), "North Street")
                .with_category("coffee")
                .with_category("cafe")
                .with_hours(8 * 60, 18 * 60),
        );
        d.add(
            Place::new("West Port Bar", GeoPoint::new(56.3385, -2.8011), "South Street")
                .with_category("pub")
                .with_hours(12 * 60, 24 * 60),
        );
        d.add(
            Place::new("University Library", GeoPoint::new(56.3414, -2.7989), "North Street")
                .with_category("library")
                .with_hours(8 * 60, 22 * 60),
        );
        d.add(
            Place::new("The Old Course", GeoPoint::new(56.3433, -2.8036), "Golf Place")
                .with_category("golf"),
        );
        d
    }

    /// Adds a place.
    pub fn add(&mut self, place: Place) {
        self.places.push(place);
    }

    /// All places.
    pub fn iter(&self) -> impl Iterator<Item = &Place> {
        self.places.iter()
    }

    /// Number of places.
    pub fn len(&self) -> usize {
        self.places.len()
    }

    /// Whether the directory is empty.
    pub fn is_empty(&self) -> bool {
        self.places.is_empty()
    }

    /// The place with the given name.
    pub fn by_name(&self, name: &str) -> Option<&Place> {
        self.places.iter().find(|p| p.name == name)
    }

    /// Places within `radius_km` of `point`, nearest first.
    pub fn nearby(&self, point: GeoPoint, radius_km: f64) -> Vec<&Place> {
        let mut hits: Vec<(&Place, f64)> = self
            .places
            .iter()
            .map(|p| (p, p.geo.distance_km(point)))
            .filter(|(_, d)| *d <= radius_km)
            .collect();
        hits.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("finite distances"));
        hits.into_iter().map(|(p, _)| p).collect()
    }

    /// Places selling `category`, open at `minute_of_day`, within
    /// `radius_km` of `point`, nearest first.
    pub fn find_open(
        &self,
        category: &str,
        point: GeoPoint,
        radius_km: f64,
        minute_of_day: u32,
    ) -> Vec<&Place> {
        self.nearby(point, radius_km)
            .into_iter()
            .filter(|p| p.categories.iter().any(|c| c == category))
            .filter(|p| p.open_at(minute_of_day))
            .collect()
    }

    /// Facts describing every place.
    pub fn to_facts(&self) -> Vec<Fact> {
        self.places.iter().flat_map(Place::to_facts).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn janettas_matches_the_paper() {
        let d = PlaceDirectory::st_andrews();
        let j = d.by_name("Janetta's").unwrap();
        assert_eq!(j.street, "Market Street");
        assert!(j.categories.iter().any(|c| c == "ice cream"));
        assert!(j.open_at(16 * 60 + 55), "open at 16:55");
        assert!(!j.open_at(17 * 60), "closed at 17:00");
        assert!(!j.open_at(8 * 60), "closed at 08:00");
    }

    #[test]
    fn nearby_sorts_by_distance() {
        let d = PlaceDirectory::st_andrews();
        // Near Market Street.
        let here = GeoPoint::new(56.3402, -2.7935);
        let nearby = d.nearby(here, 1.0);
        assert!(!nearby.is_empty());
        assert_eq!(nearby[0].name, "Janetta's");
        // Tight radius excludes the golf course.
        assert!(nearby.iter().all(|p| p.name != "The Old Course") || nearby.len() == d.len());
    }

    #[test]
    fn find_open_filters_category_and_hours() {
        let d = PlaceDirectory::st_andrews();
        let here = GeoPoint::new(56.3402, -2.7935);
        let at_1655 = d.find_open("ice cream", here, 2.0, 16 * 60 + 55);
        assert_eq!(at_1655.len(), 1);
        assert_eq!(at_1655[0].name, "Janetta's");
        let at_1800 = d.find_open("ice cream", here, 2.0, 18 * 60);
        assert!(at_1800.is_empty(), "Janetta's closes at 17:00");
        let no_such = d.find_open("submarines", here, 2.0, 12 * 60);
        assert!(no_such.is_empty());
    }

    #[test]
    fn hours_over_midnight() {
        let p = Place::new("Night Van", GeoPoint::new(0.0, 0.0), "x").with_hours(22 * 60, 2 * 60);
        assert!(p.open_at(23 * 60));
        assert!(p.open_at(60));
        assert!(!p.open_at(12 * 60));
        // No hours means always open.
        let q = Place::new("Park", GeoPoint::new(0.0, 0.0), "y");
        assert!(q.open_at(3 * 60));
    }

    #[test]
    fn to_facts_covers_all_aspects() {
        let d = PlaceDirectory::st_andrews();
        let facts = d.to_facts();
        assert!(facts.iter().any(|f| f.subject == "Janetta's"
            && f.predicate == "sells"
            && f.object.as_str() == Some("ice cream")));
        assert!(facts.iter().any(|f| f.subject == "Janetta's" && f.predicate == "closes_at"));
        assert!(facts.iter().any(|f| f.predicate == "located_at"));
    }
}
