//! Thread-count byte-identity with the governor active: a governed
//! overlay under the full robustness plane — regional partition + heal,
//! a byzantine ack-then-drop peer, crash/recover casualties, routed
//! traffic — must produce an identical trace, identical route outcomes,
//! and identical governor counters at worker thread counts 1, 2, and 4.
//! The suspicion clock, circuit transitions, admission verdicts, and
//! re-route decisions are functions of the seed, not of the scheduler.

use gloss_overlay::{GovernorConfig, Key, OverlayNetwork};
use gloss_sim::{ByzBehavior, NodeIndex, SimDuration};

type Outcome = (String, Vec<(u64, u32, u64)>, Vec<(String, u64)>);

fn run(seed: u64, threads: usize) -> Outcome {
    const N: usize = 32;
    let mut net = OverlayNetwork::build_with(N, seed, Some(GovernorConfig::default()));
    net.world_mut().set_threads(threads);
    net.world_mut().enable_tracing(1 << 20);
    net.run_for(SimDuration::from_millis(200) * N as u64 + SimDuration::from_secs(60));
    assert!(net.joined_fraction() > 0.99, "governed overlay failed to settle");
    net.set_byzantine(NodeIndex((seed % N as u64) as u32), ByzBehavior::AckThenDrop);
    let t0 = net.now() + SimDuration::from_secs(1);
    let heal = t0 + SimDuration::from_secs(20);
    net.world_mut().partition_regions_at(t0, Some(heal), &["us-west", "australia"]);
    // Casualties stay down past the heal: ~24 s of silence is enough for
    // the phi-accrual detector to suspect and quarantine them (traced),
    // short enough that none is evicted.
    for k in 0..3u32 {
        let victim = NodeIndex(1 + (5 * k) % (N as u32 - 1));
        net.world_mut().crash_at(t0 + SimDuration::from_secs(2), victim);
        net.world_mut().recover_at(t0 + SimDuration::from_secs(26), victim);
    }
    // Route perturbed node keys throughout the cut, the heal, and the
    // recovery (random hashes cluster under FNV; perturbed node keys
    // exercise the whole ring, including forwards through suspects).
    for round in 0..8u64 {
        for j in (0..N as u32).step_by(3) {
            let target = Key(net.id_of(NodeIndex(j)).key.0 ^ (round as u128 * 97 + j as u128 + 1));
            let from = net.random_node();
            net.route_from(from, target);
        }
        net.run_for(SimDuration::from_secs(5));
    }
    net.run_for(SimDuration::from_secs(30));
    let routes: Vec<(u64, u32, u64)> =
        net.outcomes().iter().map(|(id, o)| (*id, o.delivered_at.0, o.hops as u64)).collect();
    let m = net.world().metrics();
    let counters: Vec<(String, u64)> = [
        "sim.messages_sent",
        "sim.messages_delivered",
        "sim.messages_partitioned",
        "overlay.suspected",
        "overlay.evictions",
        "overlay.reroutes",
        "overlay.refutations",
        "overlay.join_backoff",
        "overlay.byz_dropped",
        "overlay.delivered",
    ]
    .iter()
    .map(|name| (name.to_string(), m.counter(name) as u64))
    .collect();
    (net.world().tracer().render(), routes, counters)
}

#[test]
fn governed_faults_identical_at_threads_1_2_4() {
    for seed in [11u64, 4242] {
        let baseline = run(seed, 1);
        assert!(!baseline.0.is_empty(), "trace recorded nothing at seed {seed}");
        for threads in [2usize, 4] {
            let other = run(seed, threads);
            assert_eq!(baseline.0, other.0, "trace diverged at {threads} threads (seed {seed})");
            assert_eq!(
                baseline.1, other.1,
                "route outcomes diverged at {threads} threads (seed {seed})"
            );
            assert_eq!(
                baseline.2, other.2,
                "governor counters diverged at {threads} threads (seed {seed})"
            );
        }
    }
}
