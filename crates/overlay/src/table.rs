//! Pastry routing state: the prefix routing table and the leaf set.

use crate::id::{Key, KeyedNode, DIGITS};
use gloss_sim::NodeIndex;
use std::sync::Arc;

/// FNV-1a digest of a membership list (content identity for gossip
/// deduplication).
pub fn digest_of(members: &[KeyedNode]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut mix = |v: u64| {
        h ^= v;
        h = h.wrapping_mul(0x100_0000_01b3);
    };
    for m in members {
        mix(m.key.0 as u64);
        mix((m.key.0 >> 64) as u64);
        mix(m.node.0 as u64);
    }
    h
}

/// The prefix routing table: `DIGITS` rows × 16 columns. Row `r` holds
/// nodes sharing an `r`-digit prefix with the owner and differing at digit
/// `r`; column = that digit's value.
#[derive(Debug, Clone)]
pub struct RoutingTable {
    owner: Key,
    rows: Vec<[Option<KeyedNode>; 16]>,
}

impl RoutingTable {
    /// Creates an empty table for `owner`.
    pub fn new(owner: Key) -> Self {
        RoutingTable { owner, rows: vec![[None; 16]; DIGITS] }
    }

    /// The entry that advances routing toward `key` by one digit, if any:
    /// row = shared prefix length, column = `key`'s digit there.
    pub fn next_hop(&self, key: Key) -> Option<KeyedNode> {
        let p = self.owner.shared_prefix(key);
        if p >= DIGITS {
            return None;
        }
        self.rows[p][key.digit(p) as usize]
    }

    /// Offers a node for inclusion; returns `true` if the table changed.
    ///
    /// The slot is determined by the node's prefix relation to the owner;
    /// an occupied slot keeps its current entry unless it is the same
    /// physical node (whose key may have changed on rejoin).
    pub fn offer(&mut self, candidate: KeyedNode) -> bool {
        if candidate.key == self.owner {
            return false;
        }
        let p = self.owner.shared_prefix(candidate.key);
        debug_assert!(p < DIGITS, "equal keys handled above");
        let col = candidate.key.digit(p) as usize;
        let slot = &mut self.rows[p][col];
        match slot {
            Some(existing) if existing.node == candidate.node => {
                if *existing != candidate {
                    *slot = Some(candidate);
                    true
                } else {
                    false
                }
            }
            Some(_) => false,
            None => {
                *slot = Some(candidate);
                true
            }
        }
    }

    /// Removes every entry hosted on the given physical node (failure
    /// handling); returns how many entries were removed.
    pub fn remove_node(&mut self, node: NodeIndex) -> usize {
        let mut removed = 0;
        for row in &mut self.rows {
            for slot in row.iter_mut() {
                if slot.is_some_and(|e| e.node == node) {
                    *slot = None;
                    removed += 1;
                }
            }
        }
        removed
    }

    /// One row of the table (for transferring state during joins).
    pub fn row(&self, r: usize) -> Vec<KeyedNode> {
        self.rows[r].iter().flatten().copied().collect()
    }

    /// All entries in the table.
    pub fn entries(&self) -> Vec<KeyedNode> {
        self.rows.iter().flat_map(|r| r.iter().flatten().copied()).collect()
    }

    /// Number of populated slots.
    pub fn len(&self) -> usize {
        self.rows.iter().map(|r| r.iter().flatten().count()).sum()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// The leaf set: the `l/2` nearest keys clockwise and anticlockwise of the
/// owner on the ring. Used for the final hops of routing and for replica
/// placement in the storage layer.
///
/// The deduplicated member list is cached and rebuilt only when the set
/// changes: probes read it once per heartbeat per neighbour, which made
/// the recompute-per-call version the hottest allocation site in
/// 1k-node overlay runs.
#[derive(Debug, Clone)]
pub struct LeafSet {
    owner: Key,
    half: usize,
    cw: Vec<KeyedNode>,  // sorted by clockwise distance from owner
    ccw: Vec<KeyedNode>, // sorted by anticlockwise distance from owner
    members: Arc<[KeyedNode]>,
    digest: u64,
}

impl LeafSet {
    /// Creates an empty leaf set holding up to `l/2` nodes per side.
    ///
    /// # Panics
    ///
    /// Panics if `l` is zero or odd.
    pub fn new(owner: Key, l: usize) -> Self {
        assert!(l >= 2 && l.is_multiple_of(2), "leaf set size must be even and positive");
        LeafSet {
            owner,
            half: l / 2,
            cw: Vec::new(),
            ccw: Vec::new(),
            members: Arc::new([]),
            digest: digest_of(&[]),
        }
    }

    /// Offers a node; returns `true` if the leaf set changed.
    pub fn offer(&mut self, candidate: KeyedNode) -> bool {
        if candidate.key == self.owner {
            return false;
        }
        let mut changed = false;
        // A node near the owner may qualify on both sides of a small ring;
        // keep the sides independent.
        changed |= Self::insert_side(&mut self.cw, self.half, candidate, |k| {
            self.owner.clockwise_distance(k)
        });
        changed |= Self::insert_side(&mut self.ccw, self.half, candidate, |k| {
            k.clockwise_distance(self.owner)
        });
        if changed {
            self.rebuild_members();
        }
        changed
    }

    fn rebuild_members(&mut self) {
        let mut all = self.cw.clone();
        for e in &self.ccw {
            if !self.cw.iter().any(|x| x.key == e.key) {
                all.push(*e);
            }
        }
        self.digest = digest_of(&all);
        self.members = all.into();
    }

    fn insert_side(
        side: &mut Vec<KeyedNode>,
        cap: usize,
        candidate: KeyedNode,
        dist: impl Fn(Key) -> u128,
    ) -> bool {
        if side.iter().any(|e| e.key == candidate.key) {
            return false;
        }
        side.push(candidate);
        side.sort_by_key(|e| dist(e.key));
        if side.len() > cap {
            side.truncate(cap);
        }
        side.iter().any(|e| e.key == candidate.key)
    }

    /// Removes a physical node; returns `true` if anything was removed.
    pub fn remove_node(&mut self, node: NodeIndex) -> bool {
        let before = self.cw.len() + self.ccw.len();
        self.cw.retain(|e| e.node != node);
        self.ccw.retain(|e| e.node != node);
        let removed = before != self.cw.len() + self.ccw.len();
        if removed {
            self.rebuild_members();
        }
        removed
    }

    /// All members (deduplicated), nearest-clockwise first.
    pub fn members(&self) -> &[KeyedNode] {
        &self.members
    }

    /// The member list behind a cheap shared handle (messages carrying a
    /// leaf set clone the `Arc`, not the list).
    pub fn members_shared(&self) -> Arc<[KeyedNode]> {
        Arc::clone(&self.members)
    }

    /// A content digest of the member list, maintained on change. Gossip
    /// receivers compare digests to skip re-learning an unchanged list.
    pub fn digest(&self) -> u64 {
        self.digest
    }

    /// Whether `key` falls within the span covered by the leaf set (i.e.
    /// the final-hop region where the numerically closest member decides
    /// delivery).
    pub fn covers(&self, key: Key) -> bool {
        // A side below capacity means this node knows everyone on that
        // side of the ring, so the closest-member rule is globally correct
        // (this includes the singleton ring).
        if self.cw.len() < self.half || self.ccw.len() < self.half {
            return true;
        }
        let cw_span = self.cw.last().map(|e| self.owner.clockwise_distance(e.key)).unwrap_or(0);
        let ccw_span = self.ccw.last().map(|e| e.key.clockwise_distance(self.owner)).unwrap_or(0);
        let d_cw = self.owner.clockwise_distance(key);
        let d_ccw = key.clockwise_distance(self.owner);
        d_cw <= cw_span || d_ccw <= ccw_span
    }

    /// The member (or the owner, represented by `owner_as`) numerically
    /// closest to `key`.
    pub fn closest(&self, key: Key, owner_as: KeyedNode) -> KeyedNode {
        let mut best = owner_as;
        let mut best_d = self.owner.ring_distance(key);
        for e in self.members.iter() {
            let d = e.key.ring_distance(key);
            if d < best_d {
                best = *e;
                best_d = d;
            }
        }
        best
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether the leaf set is empty.
    pub fn is_empty(&self) -> bool {
        self.cw.is_empty() && self.ccw.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kn(key: u128, node: u32) -> KeyedNode {
        KeyedNode::new(Key(key), NodeIndex(node))
    }

    const TOP: u128 = 1 << 124; // sets the first hex digit to 1

    #[test]
    fn routing_table_slot_placement() {
        let owner = Key(0);
        let mut t = RoutingTable::new(owner);
        // Differs at digit 0 (value 1): row 0, col 1.
        assert!(t.offer(kn(TOP, 1)));
        assert_eq!(t.row(0), vec![kn(TOP, 1)]);
        // Same prefix of one digit (0), differs at digit 1.
        assert!(t.offer(kn(TOP >> 4, 2)));
        assert_eq!(t.row(1), vec![kn(TOP >> 4, 2)]);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn routing_table_next_hop_advances_prefix() {
        let owner = Key(0);
        let mut t = RoutingTable::new(owner);
        let target = Key(0x2 << 120 | 0x5); // digit0 = 2
        assert!(t.next_hop(target).is_none());
        let hop = kn(0x2 << 120, 7); // shares 0 digits, digit0 = 2
        t.offer(hop);
        assert_eq!(t.next_hop(target), Some(hop));
    }

    #[test]
    fn routing_table_keeps_first_entry() {
        let mut t = RoutingTable::new(Key(0));
        assert!(t.offer(kn(TOP, 1)));
        assert!(!t.offer(kn(TOP | 99, 2)), "occupied slot not replaced");
        // Same physical node updates its key.
        assert!(t.offer(kn(TOP | 99, 1)));
    }

    #[test]
    fn routing_table_remove_node() {
        let mut t = RoutingTable::new(Key(0));
        t.offer(kn(TOP, 1));
        t.offer(kn(2 << 120, 1));
        t.offer(kn(3 << 120, 2));
        assert_eq!(t.remove_node(NodeIndex(1)), 2);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn routing_table_ignores_own_key() {
        let mut t = RoutingTable::new(Key(5));
        assert!(!t.offer(kn(5, 9)));
    }

    #[test]
    fn leaf_set_keeps_nearest_per_side() {
        let mut l = LeafSet::new(Key(1000), 4);
        for (k, n) in [(1010u128, 1u32), (1020, 2), (1030, 3), (990, 4), (980, 5), (970, 6)] {
            l.offer(kn(k, n));
        }
        let members = l.members();
        // Two nearest clockwise: 1010, 1020. Two nearest anticlockwise: 990, 980.
        assert!(members.contains(&kn(1010, 1)));
        assert!(members.contains(&kn(1020, 2)));
        assert!(members.contains(&kn(990, 4)));
        assert!(members.contains(&kn(980, 5)));
        assert!(!members.contains(&kn(1030, 3)));
        assert!(!members.contains(&kn(970, 6)));
    }

    #[test]
    fn leaf_set_covers_and_closest() {
        let mut l = LeafSet::new(Key(1000), 4);
        for (k, i) in [(1010u128, 1u32), (1020, 2), (990, 3), (980, 4)] {
            l.offer(kn(k, i));
        }
        assert!(l.covers(Key(1005)));
        assert!(l.covers(Key(995)));
        assert!(!l.covers(Key(5000)), "full leaf set bounds its span");
        let me = kn(1000, 0);
        assert_eq!(l.closest(Key(1004), me), me);
        assert_eq!(l.closest(Key(1008), me), kn(1010, 1));
        assert_eq!(l.closest(Key(992), me), kn(990, 3));
    }

    #[test]
    fn partially_filled_leaf_set_covers_everything() {
        let mut l = LeafSet::new(Key(1000), 4);
        l.offer(kn(1010, 1));
        l.offer(kn(990, 2));
        // Two members with capacity four: the node knows the whole ring.
        assert!(l.covers(Key(5000)));
        assert_eq!(l.closest(Key(5000), kn(1000, 0)), kn(1010, 1));
    }

    #[test]
    fn leaf_set_wraps_around_ring() {
        let mut l = LeafSet::new(Key(u128::MAX - 10), 4);
        l.offer(kn(5, 1)); // clockwise across the wrap
        l.offer(kn(u128::MAX - 30, 2));
        assert!(l.covers(Key(2)));
        let me = kn(u128::MAX - 10, 0);
        assert_eq!(l.closest(Key(3), me), kn(5, 1));
    }

    #[test]
    fn leaf_set_remove_and_empty_covers_all() {
        let mut l = LeafSet::new(Key(0), 4);
        l.offer(kn(10, 1));
        assert!(l.remove_node(NodeIndex(1)));
        assert!(!l.remove_node(NodeIndex(1)));
        assert!(l.is_empty());
        assert!(l.covers(Key(1 << 100)), "singleton ring owns everything");
    }

    #[test]
    #[should_panic(expected = "even")]
    fn leaf_set_odd_size_panics() {
        let _ = LeafSet::new(Key(0), 3);
    }
}
