//! The Pastry-style overlay node state machine: joining, prefix routing,
//! failure detection, and repair. Sans-IO; drive it with
//! [`crate::OverlayNetwork`] or embed it (the storage layer does).

use crate::id::{Key, KeyedNode};
use crate::table::{LeafSet, RoutingTable};
use gloss_governor::{
    Admission, AdmissionGovernor, GovernorConfig, ProbeDecision, SuspicionTracker, SuspicionVerdict,
};
use gloss_sim::{FaultClass, FnvHashMap, NodeIndex, Outbox, SimDuration, SimTime};
use std::sync::Arc;

/// Timer tags used by the overlay (the embedding layer must route timer
/// fires with these tags back into [`OverlayNode::on_timer`]). Tags use
/// the low 32 bits; the overlay stamps join-attempt sequence numbers into
/// the high bits, so embedders must pass tags through unmodified.
pub mod timers {
    /// Periodic leaf-set heartbeat.
    pub const PROBE: u64 = 0x10;
    /// Deferred join (staggered bootstrap). The high 32 bits carry the
    /// join attempt sequence, so superseded retry timers are ignored.
    pub const JOIN: u64 = 0x11;
}

/// Overlay protocol messages, generic over the routed payload `P`.
#[derive(Debug, Clone, PartialEq)]
pub enum OverlayMsg<P> {
    /// A joining node's request, routed toward its own key.
    Join {
        /// The joiner.
        joiner: KeyedNode,
    },
    /// Routing state sent to a joiner by each node on the join path.
    JoinInfo {
        /// The sender's routing entries (a superset of one row; sending
        /// everything known speeds convergence in small networks).
        known: Vec<KeyedNode>,
    },
    /// Final join message from the numerically closest node.
    JoinDone {
        /// The closest node itself.
        closest: KeyedNode,
        /// Its leaf set, which seeds the joiner's.
        leaves: Arc<[KeyedNode]>,
    },
    /// A (re)joined node introduces itself to everyone it knows.
    Announce {
        /// The new node.
        node: KeyedNode,
    },
    /// Reply to an announcement, so the joiner learns the replier too.
    AnnounceAck {
        /// The replying node.
        node: KeyedNode,
    },
    /// An application payload being routed to the live node closest to
    /// `target`.
    Route {
        /// The destination key.
        target: Key,
        /// The payload delivered at the destination.
        payload: P,
        /// Who originated the route (for replies).
        origin: NodeIndex,
        /// Hops taken so far.
        hops: u32,
    },
    /// Leaf-set heartbeat.
    Probe,
    /// Heartbeat acknowledgement, carrying the responder's leaf set so
    /// ring-neighbour knowledge converges continuously (gossip). The list
    /// is shared (`Arc`): responding costs a pointer clone, not a copy.
    ProbeAck {
        /// The responder's current leaf members.
        leaves: Arc<[KeyedNode]>,
        /// Content digest of `leaves`; receivers skip re-learning a list
        /// they already absorbed from this neighbour.
        digest: u64,
    },
    /// Ask a neighbour for its leaf set (repair after a failure).
    LeafSetRequest,
    /// Leaf set contents.
    LeafSetReply {
        /// The members.
        leaves: Arc<[KeyedNode]>,
    },
    /// Join rejected by admission control: retry after the given delay
    /// (the governor's exponential backoff with jitter).
    JoinRetry {
        /// When the joiner should try again.
        after: SimDuration,
    },
    /// Per-hop acknowledgement that a routed payload was accepted
    /// (conduct evidence for the suspicion tracker; only sent when the
    /// governor is enabled).
    RouteAck,
}

/// Classifies an overlay message for byzantine fault policies
/// ([`gloss_sim::ByzantineActor`]).
pub fn fault_class<P>(msg: &OverlayMsg<P>) -> FaultClass {
    match msg {
        OverlayMsg::Route { .. } => FaultClass::Payload,
        OverlayMsg::Probe | OverlayMsg::ProbeAck { .. } => FaultClass::Liveness,
        OverlayMsg::JoinInfo { .. }
        | OverlayMsg::Announce { .. }
        | OverlayMsg::AnnounceAck { .. }
        | OverlayMsg::LeafSetRequest
        | OverlayMsg::LeafSetReply { .. } => FaultClass::Gossip,
        OverlayMsg::Join { .. }
        | OverlayMsg::JoinDone { .. }
        | OverlayMsg::JoinRetry { .. }
        | OverlayMsg::RouteAck => FaultClass::Control,
    }
}

/// A payload delivered at this node (it is the live node numerically
/// closest to the target).
#[derive(Debug, Clone, PartialEq)]
pub struct Delivery<P> {
    /// The routed key.
    pub target: Key,
    /// The payload.
    pub payload: P,
    /// The originating physical node.
    pub origin: NodeIndex,
    /// Overlay hops from origin to delivery.
    pub hops: u32,
}

/// Safety valve: routes longer than this deliver locally and are counted,
/// preventing pathological loops while tables converge.
const MAX_HOPS: u32 = 64;
/// Consecutive missed probes before a leaf is declared dead (legacy
/// three-strikes path, used when no governor is installed).
const PROBE_DEATH: u32 = 3;

/// An in-flight routed payload: (`target`, `payload`, `origin`, `hops`).
type PendingForwards<P> = Vec<(Key, P, NodeIndex, u32)>;

/// The per-node governor state: join admission, peer suspicion, and the
/// outstanding-forward ledger feeding the conduct channel.
#[derive(Debug, Clone)]
struct Governor<P> {
    admission: AdmissionGovernor,
    suspicion: SuspicionTracker,
    /// Routed payloads forwarded per peer and awaiting
    /// [`OverlayMsg::RouteAck`], retained in full so the next probe
    /// round can re-route an abandoned payload around the suspect
    /// instead of losing it.
    pending_acks: FnvHashMap<u32, PendingForwards<P>>,
}

impl<P> Governor<P> {
    fn new(cfg: &GovernorConfig, probe_interval: SimDuration, seed: u64) -> Self {
        let mut scfg = cfg.suspicion.clone();
        scfg.probe_interval = probe_interval;
        Governor {
            admission: AdmissionGovernor::new(cfg.admission.clone(), seed),
            suspicion: SuspicionTracker::new(scfg),
            pending_acks: FnvHashMap::default(),
        }
    }
}

/// A Pastry-style overlay node.
#[derive(Debug, Clone)]
pub struct OverlayNode<P> {
    me: KeyedNode,
    table: RoutingTable,
    leaves: LeafSet,
    joined: bool,
    bootstrap: Option<NodeIndex>,
    join_delay: SimDuration,
    probe_interval: SimDuration,
    /// Missed-probe counters aligned index-for-index with `known_cache`
    /// (rebuilt together); the per-heartbeat probe loop walks both arrays
    /// with no map lookups. `u32::MAX` marks "acked since last probe".
    probe_counters: Vec<u32>,
    /// Nodes heard from (probe or ack) since the counters were last
    /// walked. Fresh evidence both clears the missed counter and
    /// suppresses this round's probe to that node — any contact proves
    /// liveness, so symmetric heartbeat pairs collapse to one probe/ack
    /// exchange per interval (SWIM-style suppression), at the cost of at
    /// most one extra heartbeat interval of detection latency for a node
    /// that dies right after making contact.
    acked_since: FnvHashMap<u32, ()>,
    /// Cached `known()` result; rebuilt only after the routing state
    /// changes (the probe loop reads it every heartbeat).
    known_cache: Vec<KeyedNode>,
    known_dirty: bool,
    /// Digest of the last leaf-set gossip learned per neighbour: at steady
    /// state every ack repeats the same list, and re-learning it is the
    /// hottest no-op in large settled overlays.
    acked_gossip: FnvHashMap<u32, u64>,
    /// Admission + suspicion plane (None = legacy three-strikes detection).
    governor: Option<Governor<P>>,
    /// Governor config and seed, kept to rebuild fresh state on restart.
    gov_setup: Option<(GovernorConfig, u64)>,
    /// Join attempt sequence; stamped into JOIN timer tags so a backoff
    /// retry invalidates the fixed-interval fallback timer (and vice
    /// versa).
    join_attempt: u64,
    /// Peers declared dead (probe exhaustion or circuit eviction) since
    /// the embedder last drained [`take_failed`](Self::take_failed).
    /// Embedding layers hold state keyed by peer — replica location maps,
    /// placement holder sets — that silently rots when a peer crashes;
    /// this is the notification channel that lets them purge it.
    failed_peers: Vec<NodeIndex>,
}

impl<P: Clone> OverlayNode<P> {
    /// Creates a node with identifier `key` on physical node `node`.
    ///
    /// `bootstrap` is the physical node to join through (`None` for the
    /// first node of the ring). `join_delay` staggers joins so the ring
    /// forms incrementally.
    pub fn new(
        key: Key,
        node: NodeIndex,
        bootstrap: Option<NodeIndex>,
        join_delay: SimDuration,
    ) -> Self {
        let me = KeyedNode::new(key, node);
        OverlayNode {
            me,
            table: RoutingTable::new(key),
            leaves: LeafSet::new(key, 8),
            joined: bootstrap.is_none(),
            bootstrap,
            join_delay,
            probe_interval: SimDuration::from_secs(5),
            probe_counters: Vec::new(),
            acked_since: FnvHashMap::default(),
            known_cache: Vec::new(),
            known_dirty: false,
            acked_gossip: FnvHashMap::default(),
            governor: None,
            gov_setup: None,
            join_attempt: 0,
            failed_peers: Vec::new(),
        }
    }

    /// Sets the leaf-set heartbeat interval.
    pub fn with_probe_interval(mut self, interval: SimDuration) -> Self {
        self.probe_interval = interval;
        self
    }

    /// Installs the admission + suspicion governor (call after
    /// [`with_probe_interval`](Self::with_probe_interval): the suspicion
    /// phi scale follows the probe cadence). `seed` drives the backoff
    /// jitter stream; derive it from the world seed and the node index so
    /// every node jitters independently but deterministically.
    pub fn with_governor(mut self, cfg: GovernorConfig, seed: u64) -> Self {
        self.governor = Some(Governor::new(&cfg, self.probe_interval, seed));
        self.gov_setup = Some((cfg, seed));
        self
    }

    /// Whether the governor plane is active.
    pub fn governed(&self) -> bool {
        self.governor.is_some()
    }

    /// The suspicion tracker, when the governor is installed (for harness
    /// assertions and embedders).
    pub fn suspicion(&self) -> Option<&SuspicionTracker> {
        self.governor.as_ref().map(|g| &g.suspicion)
    }

    /// This node's key and address.
    pub fn id(&self) -> KeyedNode {
        self.me
    }

    /// Whether the node has completed its join.
    pub fn is_joined(&self) -> bool {
        self.joined
    }

    /// The current leaf set members.
    pub fn leaf_members(&self) -> Vec<KeyedNode> {
        self.leaves.members().to_vec()
    }

    /// Leaf set members whose circuit allows replica placement (all of
    /// them when no governor is installed). Placement is stricter than
    /// routing: half-open peers carry trial traffic but do not receive
    /// new replicas.
    pub fn usable_leaf_members(&self) -> Vec<KeyedNode> {
        match &self.governor {
            None => self.leaf_members(),
            Some(g) => self
                .leaves
                .members()
                .iter()
                .copied()
                .filter(|m| g.suspicion.allows_placement(m.node))
                .collect(),
        }
    }

    /// Whether routing may currently use `node` as a hop.
    fn peer_usable(&self, node: NodeIndex) -> bool {
        self.governor.as_ref().is_none_or(|g| g.suspicion.allows_routing(node))
    }

    /// Every node this node knows about.
    pub fn known(&self) -> Vec<KeyedNode> {
        let mut all = self.table.entries();
        for m in self.leaves.members() {
            if !all.iter().any(|e| e.key == m.key) {
                all.push(*m);
            }
        }
        all
    }

    /// The cached `known()` set, rebuilt only after routing-state changes.
    /// The missed-probe counters move with it (keyed rebuild).
    fn known_refreshed(&mut self) -> &[KeyedNode] {
        if self.known_dirty {
            let old: FnvHashMap<u32, u32> = self
                .known_cache
                .iter()
                .zip(&self.probe_counters)
                .map(|(k, c)| (k.node.0, *c))
                .collect();
            self.known_cache = self.known();
            self.probe_counters =
                self.known_cache.iter().map(|k| old.get(&k.node.0).copied().unwrap_or(0)).collect();
            self.known_dirty = false;
        }
        &self.known_cache
    }

    fn reset_probe_counter(&mut self, from: NodeIndex) {
        self.acked_since.insert(from.0, ());
    }

    /// Incorporates a discovered node into the routing state. Evicted
    /// peers are ignored: gossip cannot re-introduce a banned node (the
    /// one readmission path is an explicit [`OverlayMsg::Join`], which is
    /// guarded by admission control).
    pub fn learn(&mut self, node: KeyedNode) {
        if let Some(g) = &self.governor {
            if g.suspicion.is_banned(node.node) {
                return;
            }
        }
        if node.key != self.me.key {
            let changed = self.table.offer(node) | self.leaves.offer(node);
            self.known_dirty |= changed;
        }
    }

    /// Handles a cold start (initial or post-crash): reset volatile state,
    /// arm timers, and begin joining if a bootstrap is configured.
    pub fn on_start(&mut self, out: &mut Outbox<OverlayMsg<P>>) {
        self.table = RoutingTable::new(self.me.key);
        self.leaves = LeafSet::new(self.me.key, 8);
        self.probe_counters.clear();
        self.acked_since.clear();
        self.known_cache.clear();
        self.known_dirty = false;
        self.acked_gossip.clear();
        if let Some((cfg, seed)) = &self.gov_setup {
            // A restarted node starts with a clean slate: suspicion scores
            // and bans describe the previous incarnation's world view.
            self.governor = Some(Governor::new(cfg, self.probe_interval, *seed));
        }
        self.joined = self.bootstrap.is_none();
        self.join_attempt = 0;
        self.failed_peers.clear();
        if self.bootstrap.is_some() {
            out.timer(self.join_delay, timers::JOIN);
        }
        out.timer(self.probe_interval, timers::PROBE);
    }

    /// Handles a timer fire for one of [`timers`]' tags (high bits may
    /// carry a join attempt sequence).
    pub fn on_timer(&mut self, now: SimTime, tag: u64, out: &mut Outbox<OverlayMsg<P>>) {
        let seq = tag >> 32;
        match tag & 0xffff_ffff {
            timers::JOIN if !self.joined => {
                // A stale timer: a JoinRetry backoff (or a newer fallback)
                // superseded this attempt.
                if seq != self.join_attempt {
                    return;
                }
                if let Some(b) = self.bootstrap {
                    out.send(b, OverlayMsg::Join { joiner: self.me });
                    // Retry until JoinDone (or a JoinRetry backoff)
                    // arrives. Governed joiners retry on the admission
                    // plane's exponential-with-jitter schedule (capped at
                    // max_backoff), so a joiner cut off from its
                    // bootstrap re-completes quickly once connectivity
                    // returns; the ungoverned fallback is a blind fixed
                    // interval.
                    let attempt = self.join_attempt as u32;
                    let fallback = match &mut self.governor {
                        Some(g) => g.admission.retry_backoff(attempt),
                        None => self.probe_interval * 4,
                    };
                    self.join_attempt += 1;
                    out.timer(fallback, timers::JOIN | (self.join_attempt << 32));
                }
            }
            timers::PROBE => {
                // Probe everything we know (leaves *and* routing table):
                // stale table entries would otherwise silently eat routed
                // messages after a crash.
                self.known_refreshed();
                let mut dead: Vec<NodeIndex> = Vec::new();
                let mut abandoned = Vec::new();
                if self.governor.is_some() {
                    abandoned = self.governed_probe_round(now, &mut dead, out);
                } else {
                    let drain_acks = !self.acked_since.is_empty();
                    for i in 0..self.known_cache.len() {
                        let target = self.known_cache[i].node;
                        if drain_acks && self.acked_since.remove(&target.0).is_some() {
                            // Heard from this node since the last
                            // heartbeat: it is alive, skip this round's
                            // probe.
                            self.probe_counters[i] = 0;
                            continue;
                        }
                        if self.probe_counters[i] >= PROBE_DEATH {
                            dead.push(target);
                        } else {
                            self.probe_counters[i] += 1;
                            out.send(target, OverlayMsg::Probe);
                        }
                    }
                }
                self.acked_since.clear();
                for d in dead {
                    self.handle_failure(d, out);
                }
                // Give abandoned payloads a second life now that evicted
                // peers are gone and opened circuits divert routing.
                for (target, payload, origin, hops) in abandoned {
                    self.reroute(target, payload, origin, hops, out);
                }
                out.timer(self.probe_interval, timers::PROBE);
            }
            _ => {}
        }
    }

    /// One probe round under the governor: expire outstanding forward
    /// acks into conduct evidence, feed probe contact/timeout evidence,
    /// and gate probes on each peer's circuit state. Peers whose circuit
    /// exhausts its half-open trials land in `dead`.
    fn governed_probe_round(
        &mut self,
        now: SimTime,
        dead: &mut Vec<NodeIndex>,
        out: &mut Outbox<OverlayMsg<P>>,
    ) -> PendingForwards<P> {
        let g = self.governor.as_mut().expect("caller checked");
        // Forwards that went unacknowledged for a whole probe interval are
        // conduct evidence (an honest peer acks within a round trip). The
        // abandoned payloads themselves are returned to the caller, which
        // re-routes them once failure handling has settled the circuit
        // state. Sorted: hash-map iteration order must not influence the
        // schedule.
        let mut outstanding: Vec<(u32, PendingForwards<P>)> = g.pending_acks.drain().collect();
        outstanding.sort_unstable_by_key(|(peer, _)| *peer);
        let mut abandoned = Vec::new();
        for (peer, pending) in outstanding {
            let target = NodeIndex(peer);
            match g.suspicion.on_forward_unacked(now, target) {
                SuspicionVerdict::Opened => {
                    out.count("overlay.suspected", 1.0);
                    out.trace("overlay.suspect", format!("conduct:{peer}"));
                }
                SuspicionVerdict::Evict => dead.push(target),
                _ => {}
            }
            abandoned.extend(pending);
        }
        let drain_acks = !self.acked_since.is_empty();
        for i in 0..self.known_cache.len() {
            let target = self.known_cache[i].node;
            if dead.contains(&target) {
                continue;
            }
            if drain_acks && self.acked_since.remove(&target.0).is_some() {
                self.probe_counters[i] = 0;
                if g.suspicion.on_contact(now, target) == SuspicionVerdict::Refuted {
                    out.count("overlay.refutations", 1.0);
                }
                // Contact alone cannot re-close a conduct-opened circuit,
                // but its cooldown must still elapse into the half-open
                // trial — that trial (routing forwards to the peer again)
                // is what decides between refutation and eviction for an
                // ack-then-drop peer.
                let _ = g.suspicion.probe_decision(now, target);
                continue;
            }
            if self.probe_counters[i] > 0 {
                // The previous round's probe went unanswered.
                match g.suspicion.on_probe_timeout(now, target) {
                    SuspicionVerdict::Opened => {
                        out.count("overlay.suspected", 1.0);
                        out.trace("overlay.suspect", format!("liveness:{}", target.0));
                    }
                    SuspicionVerdict::Evict => {
                        dead.push(target);
                        continue;
                    }
                    _ => {}
                }
            }
            match g.suspicion.probe_decision(now, target) {
                ProbeDecision::Skip => {}
                ProbeDecision::Probe => {
                    self.probe_counters[i] = self.probe_counters[i].saturating_add(1);
                    out.send(target, OverlayMsg::Probe);
                }
            }
        }
        abandoned
    }

    /// Re-routes a payload whose forward went unacknowledged. The next
    /// hop is re-chosen under the *current* circuit state, so a payload
    /// abandoned by a suspected peer detours around it; if this node is
    /// now the best usable destination, the payload is looped back to
    /// itself as a message so the delivery surfaces through the normal
    /// [`handle`](Self::handle) path.
    fn reroute(
        &mut self,
        target: Key,
        payload: P,
        origin: NodeIndex,
        hops: u32,
        out: &mut Outbox<OverlayMsg<P>>,
    ) {
        out.count("overlay.reroutes", 1.0);
        match self.next_hop(target) {
            None => {
                out.send(self.me.node, OverlayMsg::Route { target, payload, origin, hops });
            }
            Some(hop) => {
                if let Some(g) = &mut self.governor {
                    g.pending_acks.entry(hop.node.0).or_default().push((
                        target,
                        payload.clone(),
                        origin,
                        hops,
                    ));
                }
                out.send(hop.node, OverlayMsg::Route { target, payload, origin, hops: hops + 1 });
            }
        }
    }

    /// Dead peers detected since the last call (probe exhaustion or
    /// circuit eviction), in detection order. Embedders drain this after
    /// every [`on_timer`](Self::on_timer)/[`handle`](Self::handle) call
    /// to purge peer-keyed state (the storage layer's replica location
    /// maps are the canonical customer).
    pub fn take_failed(&mut self) -> Vec<NodeIndex> {
        std::mem::take(&mut self.failed_peers)
    }

    /// Declares `node` dead on external evidence (an embedder's own
    /// fault detector, an operator action): same state purge and leaf
    /// repair as a probe-exhaustion detection, and `node` appears in the
    /// next [`take_failed`](Self::take_failed) drain.
    pub fn declare_failed(&mut self, node: NodeIndex, out: &mut Outbox<OverlayMsg<P>>) {
        self.handle_failure(node, out);
    }

    fn handle_failure(&mut self, node: NodeIndex, out: &mut Outbox<OverlayMsg<P>>) {
        self.failed_peers.push(node);
        self.acked_since.remove(&node.0);
        if let Some(g) = &mut self.governor {
            g.suspicion.evict(node);
            g.pending_acks.remove(&node.0);
            out.count("overlay.evictions", 1.0);
            out.trace("overlay.evict", node.0.to_string());
        }
        let in_leaves = self.leaves.remove_node(node);
        let in_table = self.table.remove_node(node) > 0;
        self.known_dirty |= in_leaves || in_table;
        out.count("overlay.failures_detected", 1.0);
        if in_leaves {
            // Repair the leaf set from the survivors.
            for m in self.leaves.members() {
                out.send(m.node, OverlayMsg::LeafSetRequest);
            }
        }
    }

    /// Handles a protocol message; returns payloads delivered here.
    pub fn handle(
        &mut self,
        now: SimTime,
        from: NodeIndex,
        msg: OverlayMsg<P>,
        out: &mut Outbox<OverlayMsg<P>>,
    ) -> Vec<Delivery<P>> {
        match msg {
            OverlayMsg::Join { joiner } => {
                // Admission control applies at the ingress node (the one
                // the joiner contacted directly); forwarded joins already
                // paid at the door.
                if let Some(g) = &mut self.governor {
                    if from != joiner.node {
                        g.suspicion.readmit(joiner.node);
                    } else {
                        match g.admission.check(now, joiner.node) {
                            Admission::Admit => {
                                // An explicit, admitted join is the one
                                // path back in for an evicted node: a
                                // restart means a new incarnation.
                                g.suspicion.readmit(joiner.node);
                            }
                            Admission::Backoff(after) => {
                                out.count("overlay.joins_rejected", 1.0);
                                out.send(joiner.node, OverlayMsg::JoinRetry { after });
                                return Vec::new();
                            }
                        }
                    }
                }
                // Send the joiner everything we know, then pass the join
                // along the route toward its key.
                let mut known = self.known();
                known.push(self.me);
                out.send(joiner.node, OverlayMsg::JoinInfo { known });
                match self.next_hop(joiner.key) {
                    Some(hop) if hop.node != joiner.node => {
                        out.send(hop.node, OverlayMsg::Join { joiner });
                    }
                    _ => {
                        out.send(
                            joiner.node,
                            OverlayMsg::JoinDone {
                                closest: self.me,
                                leaves: self.leaves.members_shared(),
                            },
                        );
                    }
                }
                self.learn(joiner);
                Vec::new()
            }
            OverlayMsg::JoinInfo { known } => {
                for k in known {
                    self.learn(k);
                }
                Vec::new()
            }
            OverlayMsg::JoinDone { closest, leaves } => {
                self.learn(closest);
                for l in leaves.iter().copied() {
                    self.learn(l);
                }
                if !self.joined {
                    self.joined = true;
                    out.count("overlay.joins_completed", 1.0);
                    for k in self.known() {
                        out.send(k.node, OverlayMsg::Announce { node: self.me });
                    }
                }
                Vec::new()
            }
            OverlayMsg::Announce { node } => {
                self.learn(node);
                out.send(node.node, OverlayMsg::AnnounceAck { node: self.me });
                Vec::new()
            }
            OverlayMsg::AnnounceAck { node } => {
                self.learn(node);
                Vec::new()
            }
            OverlayMsg::Route { target, payload, origin, hops } => {
                if self.governor.is_some() && from != self.me.node {
                    // Conduct evidence for the previous hop: we accepted
                    // the payload.
                    out.send(from, OverlayMsg::RouteAck);
                }
                self.route_step(target, payload, origin, hops, out).into_iter().collect()
            }
            OverlayMsg::RouteAck => {
                self.reset_probe_counter(from);
                if let Some(g) = &mut self.governor {
                    if let Some(pending) = g.pending_acks.get_mut(&from.0) {
                        // FIFO: acks arrive in forward order on a lossless
                        // link, and any ack is equal evidence of conduct.
                        if !pending.is_empty() {
                            pending.remove(0);
                        }
                        if pending.is_empty() {
                            g.pending_acks.remove(&from.0);
                        }
                    }
                    if g.suspicion.on_forward_acked(now, from) == SuspicionVerdict::Refuted {
                        out.count("overlay.refutations", 1.0);
                    }
                }
                Vec::new()
            }
            OverlayMsg::JoinRetry { after } => {
                if !self.joined {
                    out.count("overlay.join_backoff", 1.0);
                    // Supersede the pending fixed-interval retry with the
                    // governor's backoff.
                    self.join_attempt += 1;
                    out.timer(after, timers::JOIN | (self.join_attempt << 32));
                }
                Vec::new()
            }
            OverlayMsg::Probe => {
                // An incoming probe is itself liveness evidence.
                self.reset_probe_counter(from);
                out.send(
                    from,
                    OverlayMsg::ProbeAck {
                        leaves: self.leaves.members_shared(),
                        digest: self.leaves.digest(),
                    },
                );
                Vec::new()
            }
            OverlayMsg::ProbeAck { leaves, digest } => {
                self.reset_probe_counter(from);
                // Skip re-learning gossip we already absorbed from this
                // neighbour (learning is idempotent, so this is purely an
                // optimisation).
                if self.acked_gossip.get(&from.0) != Some(&digest) {
                    self.acked_gossip.insert(from.0, digest);
                    for l in leaves.iter().copied() {
                        self.learn(l);
                    }
                }
                Vec::new()
            }
            OverlayMsg::LeafSetRequest => {
                let mut leaves = self.leaves.members().to_vec();
                leaves.push(self.me);
                out.send(from, OverlayMsg::LeafSetReply { leaves: leaves.into() });
                Vec::new()
            }
            OverlayMsg::LeafSetReply { leaves } => {
                for l in leaves.iter().copied() {
                    self.learn(l);
                }
                Vec::new()
            }
        }
    }

    /// Originates a route from this node; returns the delivery if this
    /// node is itself the destination.
    pub fn route(
        &mut self,
        target: Key,
        payload: P,
        out: &mut Outbox<OverlayMsg<P>>,
    ) -> Option<Delivery<P>> {
        let origin = self.me.node;
        self.route_step(target, payload, origin, 0, out)
    }

    /// The Pastry routing decision for `key`: `None` means this node is
    /// the destination.
    pub fn next_hop(&self, key: Key) -> Option<KeyedNode> {
        if key == self.me.key {
            return None;
        }
        // Final hops: within the leaf-set span, go numerically closest.
        if self.leaves.covers(key) {
            let closest = self.leaves.closest(key, self.me);
            if closest.key == self.me.key {
                return None;
            }
            if self.peer_usable(closest.node) {
                return Some(closest);
            }
            // The numerically closest leaf's circuit is open: deliver to
            // the closest *usable* leaf instead (or locally), exactly as
            // if the suspected peer had already been removed.
            let best = self
                .leaves
                .members()
                .iter()
                .copied()
                .filter(|m| self.peer_usable(m.node))
                .chain(std::iter::once(self.me))
                .min_by_key(|k| k.key.ring_distance(key))
                .expect("chain includes self");
            return if best.key == self.me.key { None } else { Some(best) };
        }
        // Prefix routing: advance the shared prefix by one digit.
        if let Some(hop) = self.table.next_hop(key) {
            if self.peer_usable(hop.node) {
                return Some(hop);
            }
        }
        // Rare case: no (usable) entry; take any known node strictly
        // closer with at least our prefix length. (Iterates the raw state
        // directly: a duplicate between table and leaves cannot change
        // the minimum.)
        let my_prefix = self.me.key.shared_prefix(key);
        let my_dist = self.me.key.ring_distance(key);
        self.table
            .entries()
            .into_iter()
            .chain(self.leaves.members().iter().copied())
            .filter(|k| {
                k.key.shared_prefix(key) >= my_prefix
                    && k.key.ring_distance(key) < my_dist
                    && self.peer_usable(k.node)
            })
            .min_by_key(|k| k.key.ring_distance(key))
    }

    fn route_step(
        &mut self,
        target: Key,
        payload: P,
        origin: NodeIndex,
        hops: u32,
        out: &mut Outbox<OverlayMsg<P>>,
    ) -> Option<Delivery<P>> {
        if hops >= MAX_HOPS {
            out.count("overlay.route_overflow", 1.0);
            return Some(Delivery { target, payload, origin, hops });
        }
        match self.next_hop(target) {
            None => {
                out.count("overlay.delivered", 1.0);
                out.observe("overlay.hops", hops as f64);
                Some(Delivery { target, payload, origin, hops })
            }
            Some(hop) => {
                if let Some(g) = &mut self.governor {
                    g.pending_acks.entry(hop.node.0).or_default().push((
                        target,
                        payload.clone(),
                        origin,
                        hops,
                    ));
                }
                out.send(hop.node, OverlayMsg::Route { target, payload, origin, hops: hops + 1 });
                None
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u32) -> NodeIndex {
        NodeIndex(i)
    }

    fn node(key: u128, idx: u32) -> OverlayNode<u64> {
        OverlayNode::new(Key(key), n(idx), None, SimDuration::ZERO)
    }

    #[test]
    fn singleton_delivers_everything_to_itself() {
        let mut a = node(0x1000, 0);
        let mut out = Outbox::new();
        let d = a.route(Key(0xffff), 7, &mut out);
        assert!(d.is_some());
        assert_eq!(d.unwrap().hops, 0);
        assert!(out.sends().is_empty());
    }

    #[test]
    fn routes_toward_numerically_closest_known() {
        let mut a = node(0, 0);
        let far = KeyedNode::new(Key(8 << 120), n(1));
        a.learn(far);
        let mut out = Outbox::new();
        // Target right next to the far node: must forward there.
        let d = a.route(Key(8 << 120 | 5), 1, &mut out);
        assert!(d.is_none());
        assert_eq!(out.sends()[0].0, n(1));
    }

    #[test]
    fn keeps_local_when_self_is_closest() {
        let mut a = node(0, 0);
        a.learn(KeyedNode::new(Key(8 << 120), n(1)));
        let mut out = Outbox::new();
        let d = a.route(Key(3), 1, &mut out);
        assert!(d.is_some(), "self is numerically closest to 3");
    }

    #[test]
    fn join_done_triggers_announcements() {
        let mut joiner: OverlayNode<u64> =
            OverlayNode::new(Key(0x77), n(5), Some(n(0)), SimDuration::ZERO);
        let mut out = Outbox::new();
        joiner.on_start(&mut out);
        assert!(!joiner.is_joined());
        let mut out = Outbox::new();
        joiner.handle(
            SimTime::ZERO,
            n(0),
            OverlayMsg::JoinDone {
                closest: KeyedNode::new(Key(0x70), n(0)),
                leaves: vec![KeyedNode::new(Key(0x90), n(1))].into(),
            },
            &mut out,
        );
        assert!(joiner.is_joined());
        // Announces to both learned nodes.
        let targets: Vec<NodeIndex> = out.sends().iter().map(|(t, _, _)| *t).collect();
        assert!(targets.contains(&n(0)));
        assert!(targets.contains(&n(1)));
    }

    #[test]
    fn join_request_is_forwarded_or_answered() {
        // Closest node answers with JoinDone.
        let mut a = node(0x100, 0);
        let joiner = KeyedNode::new(Key(0x105), n(9));
        let mut out = Outbox::new();
        a.handle(SimTime::ZERO, n(9), OverlayMsg::Join { joiner }, &mut out);
        assert!(out
            .sends()
            .iter()
            .any(|(t, m, _)| *t == n(9) && matches!(m, OverlayMsg::JoinDone { .. })));
        // A node that knows someone closer forwards the join.
        let mut b = node(0, 1);
        b.learn(KeyedNode::new(Key(0x100), n(0)));
        let joiner2 = KeyedNode::new(Key(0x101), n(8));
        let mut out = Outbox::new();
        b.handle(SimTime::ZERO, n(8), OverlayMsg::Join { joiner: joiner2 }, &mut out);
        assert!(out
            .sends()
            .iter()
            .any(|(t, m, _)| *t == n(0) && matches!(m, OverlayMsg::Join { .. })));
    }

    #[test]
    fn probes_acknowledge_and_detect_death() {
        let mut a = node(0x100, 0);
        a.learn(KeyedNode::new(Key(0x110), n(1)));
        // Probe timer fires four times with no acks: node 1 declared dead.
        for _ in 0..=PROBE_DEATH {
            let mut out = Outbox::new();
            a.on_timer(SimTime::ZERO, timers::PROBE, &mut out);
        }
        assert!(a.leaf_members().is_empty());
        // An ack in between resets the counter.
        let mut b = node(0x100, 0);
        b.learn(KeyedNode::new(Key(0x110), n(1)));
        for _ in 0..10 {
            let mut out = Outbox::new();
            b.on_timer(SimTime::ZERO, timers::PROBE, &mut out);
            b.handle(
                SimTime::ZERO,
                n(1),
                OverlayMsg::ProbeAck { leaves: Vec::new().into(), digest: 0 },
                &mut out,
            );
        }
        assert_eq!(b.leaf_members().len(), 1);
    }

    #[test]
    fn probe_is_answered() {
        let mut a = node(0x1, 0);
        let mut out = Outbox::new();
        a.handle(SimTime::ZERO, n(3), OverlayMsg::Probe, &mut out);
        assert!(matches!(&out.sends()[0], (to, OverlayMsg::ProbeAck { .. }, _) if *to == n(3)));
    }

    #[test]
    fn leaf_set_request_reply_cycle() {
        let mut a = node(0x1, 0);
        a.learn(KeyedNode::new(Key(0x2), n(1)));
        let mut out = Outbox::new();
        a.handle(SimTime::ZERO, n(5), OverlayMsg::LeafSetRequest, &mut out);
        let (to, msg, _) = &out.sends()[0];
        assert_eq!(*to, n(5));
        match msg {
            OverlayMsg::LeafSetReply { leaves } => assert_eq!(leaves.len(), 2),
            other => panic!("unexpected {other:?}"),
        }
        // Receiving a reply teaches us the members.
        let mut b = node(0x9, 2);
        let mut out = Outbox::new();
        b.handle(
            SimTime::ZERO,
            n(0),
            OverlayMsg::LeafSetReply { leaves: vec![KeyedNode::new(Key(0x1), n(0))].into() },
            &mut out,
        );
        assert_eq!(b.leaf_members().len(), 1);
    }

    #[test]
    fn hop_overflow_delivers_locally() {
        let mut a = node(0, 0);
        a.learn(KeyedNode::new(Key(8 << 120), n(1)));
        let mut out = Outbox::new();
        let d = a.route_step(Key(8 << 120), 1, n(0), MAX_HOPS, &mut out);
        assert!(d.is_some());
    }

    fn gnode(key: u128, idx: u32, bootstrap: Option<NodeIndex>) -> OverlayNode<u64> {
        OverlayNode::new(Key(key), n(idx), bootstrap, SimDuration::ZERO)
            .with_governor(GovernorConfig::default(), 7)
    }

    fn t(secs: u64) -> SimTime {
        SimTime::from_secs(secs)
    }

    #[test]
    fn admission_overflow_sends_join_retry() {
        let mut a = gnode(0x100, 0, None);
        // Burst of 8 ingress joins from one source prefix admitted, the
        // ninth pushed back with a backoff.
        for i in 1..=8 {
            let joiner = KeyedNode::new(Key(0x200 + i as u128), n(i));
            let mut out = Outbox::new();
            a.handle(SimTime::ZERO, n(i), OverlayMsg::Join { joiner }, &mut out);
            assert!(
                !out.sends().iter().any(|(_, m, _)| matches!(m, OverlayMsg::JoinRetry { .. })),
                "join {i} should be admitted"
            );
        }
        let joiner = KeyedNode::new(Key(0x300), n(9));
        let mut out = Outbox::new();
        a.handle(SimTime::ZERO, n(9), OverlayMsg::Join { joiner }, &mut out);
        assert!(
            out.sends()
                .iter()
                .any(|(to, m, _)| *to == n(9) && matches!(m, OverlayMsg::JoinRetry { .. })),
            "ninth join should be rejected with a backoff"
        );
        // Forwarded joins (from != joiner) are not re-charged.
        let joiner = KeyedNode::new(Key(0x400), n(10));
        let mut out = Outbox::new();
        a.handle(SimTime::ZERO, n(3), OverlayMsg::Join { joiner }, &mut out);
        assert!(!out.sends().iter().any(|(_, m, _)| matches!(m, OverlayMsg::JoinRetry { .. })));
    }

    #[test]
    fn join_retry_supersedes_pending_attempt() {
        let mut j = gnode(0x77, 5, Some(n(0)));
        let mut out = Outbox::new();
        j.on_start(&mut out);
        // First JOIN fire (seq 0): sends the join, arms fallback seq 1.
        let mut out = Outbox::new();
        j.on_timer(t(1), timers::JOIN, &mut out);
        assert!(out.sends().iter().any(|(_, m, _)| matches!(m, OverlayMsg::Join { .. })));
        let (_, fallback_tag) = out.timers()[0];
        assert_eq!(fallback_tag & 0xffff_ffff, timers::JOIN);
        assert_eq!(fallback_tag >> 32, 1);
        // A JoinRetry arrives: arms a backoff timer with seq 2.
        let mut out = Outbox::new();
        j.handle(
            t(1),
            n(0),
            OverlayMsg::JoinRetry { after: SimDuration::from_millis(700) },
            &mut out,
        );
        let (delay, retry_tag) = out.timers()[0];
        assert_eq!(delay, SimDuration::from_millis(700));
        assert_eq!(retry_tag >> 32, 2);
        // The stale fallback timer is now ignored...
        let mut out = Outbox::new();
        j.on_timer(t(2), fallback_tag, &mut out);
        assert!(out.sends().is_empty(), "superseded timer must not re-send the join");
        // ...while the backoff timer re-sends.
        let mut out = Outbox::new();
        j.on_timer(t(2), retry_tag, &mut out);
        assert!(out.sends().iter().any(|(_, m, _)| matches!(m, OverlayMsg::Join { .. })));
    }

    #[test]
    fn governed_silence_evicts_and_bans() {
        let mut a = gnode(0x100, 0, None);
        let peer = KeyedNode::new(Key(0x110), n(1));
        a.learn(peer);
        for k in 1..=12 {
            let mut out = Outbox::new();
            a.on_timer(t(5 * k), timers::PROBE, &mut out);
        }
        let g = a.suspicion().expect("governor installed");
        assert!(g.is_banned(n(1)), "silent peer should be evicted");
        assert!(a.leaf_members().is_empty());
        // Gossip cannot re-introduce the banned peer.
        a.learn(peer);
        assert!(a.leaf_members().is_empty());
        // An explicit admitted join can.
        let mut out = Outbox::new();
        a.handle(t(100), n(1), OverlayMsg::Join { joiner: peer }, &mut out);
        assert!(!a.suspicion().unwrap().is_banned(n(1)));
    }

    #[test]
    fn ack_then_drop_peer_is_evicted_despite_probe_contact() {
        let mut a = gnode(0x100, 0, None);
        let peer = KeyedNode::new(Key(8 << 120), n(1));
        a.learn(peer);
        let mut evicted_at = None;
        for k in 1..=30u64 {
            let now = t(5 * k);
            let mut out = Outbox::new();
            a.on_timer(now, timers::PROBE, &mut out);
            if a.suspicion().unwrap().is_banned(n(1)) {
                evicted_at = Some(now);
                break;
            }
            // The byzantine peer acks every probe (liveness looks fine)...
            a.handle(
                now,
                n(1),
                OverlayMsg::ProbeAck { leaves: Vec::new().into(), digest: 0 },
                &mut out,
            );
            // ...but never acks the payloads we forward to it.
            let mut out = Outbox::new();
            a.route(Key(8 << 120 | 1), k, &mut out);
        }
        assert!(evicted_at.is_some(), "conduct evidence should evict an ack-then-drop peer");
        // Liveness-only flapping would have been refuted; conduct was not.
        assert!(a.suspicion().unwrap().evicted >= 1);
    }

    #[test]
    fn open_circuit_diverts_routing() {
        let mut a = gnode(0x100, 0, None);
        let near = KeyedNode::new(Key(0x111), n(1));
        let far = KeyedNode::new(Key(0x140), n(2));
        a.learn(near);
        a.learn(far);
        // Silence from `near` until its circuit opens (but before
        // eviction).
        for k in 1..=6 {
            let mut out = Outbox::new();
            a.on_timer(t(5 * k), timers::PROBE, &mut out);
            // `far` stays healthy.
            a.handle(
                t(5 * k),
                n(2),
                OverlayMsg::ProbeAck { leaves: Vec::new().into(), digest: 0 },
                &mut out,
            );
            if a.suspicion().unwrap().state(n(1)) == gloss_governor::CircuitState::Open {
                break;
            }
        }
        assert_eq!(a.suspicion().unwrap().state(n(1)), gloss_governor::CircuitState::Open);
        // A key numerically closest to the suspected peer routes to the
        // next usable node instead.
        let hop = a.next_hop(Key(0x112));
        assert_ne!(hop.map(|h| h.node), Some(n(1)), "open circuit must not carry traffic");
        // Placement is stricter still: only closed circuits.
        assert!(a.usable_leaf_members().iter().all(|m| m.node != n(1)));
    }

    #[test]
    fn prefix_routing_uses_table() {
        let mut a = node(0, 0);
        // A node sharing no prefix, first digit 0xf.
        let hop = KeyedNode::new(Key(0xf << 124), n(3));
        a.learn(hop);
        // Force leaf set not to cover by targeting far away: with only one
        // known node the leaf set spans little of the ring... the target
        // shares the first digit with `hop`.
        let target = Key(0xf << 124 | 0xabc);
        assert_eq!(a.next_hop(target), Some(hop));
    }
}
