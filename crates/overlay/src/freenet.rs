//! Non-deterministic routing baseline (Freenet-like greedy walk).
//!
//! The paper (§3): "Some systems, such as [Freenet], rely exclusively on
//! non-deterministic algorithms. This means that data cannot always be
//! found, rendering them unsuitable as a base technology for this work."
//! Experiment **C2** quantifies that: lookups here are greedy walks with a
//! TTL over a random neighbour graph, so success degrades as the network
//! grows, while Plaxton routing stays at 100%.

use crate::id::{Key, KeyedNode};
use gloss_sim::{Input, Node, NodeIndex, Outbox, SimDuration, SimRng, SimTime, Topology, World};
use std::collections::BTreeMap;

/// A lookup walking the random graph.
#[derive(Debug, Clone, PartialEq)]
pub struct Walk {
    /// Request id.
    pub id: u64,
    /// The key being sought (a lookup succeeds only at the node whose key
    /// is globally numerically closest — the node that "stores" the key).
    pub target: Key,
    /// Remaining hops before the walk gives up.
    pub ttl: u32,
    /// Nodes already visited (loop avoidance).
    pub visited: Vec<NodeIndex>,
}

/// Messages of the Freenet-like network.
#[derive(Debug, Clone, PartialEq)]
pub enum FreenetMsg {
    /// Continue a walk.
    Lookup(Walk),
    /// The walk found the responsible node.
    Found {
        /// Request id.
        id: u64,
        /// Hops used.
        hops: u32,
    },
    /// The walk exhausted its TTL or its options.
    Failed {
        /// Request id.
        id: u64,
    },
}

/// A node in the Freenet-like baseline: random neighbours, greedy
/// forwarding with random tie-breaks, no global structure.
#[derive(Debug, Clone)]
pub struct FreenetNode {
    /// This node's identity.
    pub me: KeyedNode,
    /// Random graph neighbours.
    pub neighbors: Vec<KeyedNode>,
    /// The key this node is responsible for storing (ground truth is
    /// computed by the harness).
    pub stores: Vec<Key>,
    rng: SimRng,
    /// Outcomes observed at the *originating* node: id → success.
    pub results: BTreeMap<u64, Option<u32>>,
}

impl Node for FreenetNode {
    type Msg = FreenetMsg;

    fn handle(&mut self, _now: SimTime, input: Input<FreenetMsg>, out: &mut Outbox<FreenetMsg>) {
        let Input::Msg { from: _, msg } = input else {
            return;
        };
        match msg {
            FreenetMsg::Lookup(mut walk) => {
                if self.stores.contains(&walk.target) {
                    out.count("freenet.found", 1.0);
                    let origin = walk.visited.first().copied().unwrap_or(self.me.node);
                    out.send(
                        origin,
                        FreenetMsg::Found { id: walk.id, hops: walk.visited.len() as u32 },
                    );
                    return;
                }
                if walk.ttl == 0 {
                    let origin = walk.visited.first().copied().unwrap_or(self.me.node);
                    out.count("freenet.ttl_exhausted", 1.0);
                    out.send(origin, FreenetMsg::Failed { id: walk.id });
                    return;
                }
                walk.ttl -= 1;
                if !walk.visited.contains(&self.me.node) {
                    walk.visited.push(self.me.node);
                }
                // Greedy: unvisited neighbour closest to the target;
                // otherwise a random unvisited neighbour (the walk is not
                // guaranteed to make progress — that is the point).
                let mut candidates: Vec<&KeyedNode> =
                    self.neighbors.iter().filter(|n| !walk.visited.contains(&n.node)).collect();
                if candidates.is_empty() {
                    let origin = walk.visited.first().copied().unwrap_or(self.me.node);
                    out.count("freenet.dead_end", 1.0);
                    out.send(origin, FreenetMsg::Failed { id: walk.id });
                    return;
                }
                candidates.sort_by_key(|n| n.key.ring_distance(walk.target));
                // Mostly greedy with occasional random exploration.
                let next = if self.rng.chance(0.8) {
                    *candidates[0]
                } else {
                    **self.rng.choose(&candidates).expect("non-empty")
                };
                out.send(next.node, FreenetMsg::Lookup(walk));
            }
            FreenetMsg::Found { id, hops } => {
                self.results.insert(id, Some(hops));
            }
            FreenetMsg::Failed { id } => {
                self.results.insert(id, None);
            }
        }
    }
}

/// The Freenet-like baseline network.
#[derive(Debug)]
pub struct FreenetNetwork {
    world: World<FreenetNode>,
    next_req: u64,
    rng: SimRng,
    ttl: u32,
}

impl FreenetNetwork {
    /// Builds `n` nodes, each wired to `degree` random neighbours, with
    /// every key stored at the globally closest node (same placement rule
    /// as the structured overlay, so lookups are comparable).
    pub fn build(n: usize, degree: usize, ttl: u32, seed: u64) -> Self {
        let topology = Topology::random(
            n,
            &["scotland", "england", "europe", "us-east", "us-west", "australia"],
            seed,
        );
        let mut rng = SimRng::new(seed).fork("freenet");
        let ids: Vec<KeyedNode> = (0..n)
            .map(|i| {
                KeyedNode::new(
                    Key::hash_of(format!("freenet-node-{i}-{seed}").as_bytes()),
                    NodeIndex(i as u32),
                )
            })
            .collect();
        let nodes: Vec<FreenetNode> = (0..n)
            .map(|i| {
                let mut neighbors = Vec::new();
                let mut guard = 0;
                while neighbors.len() < degree.min(n - 1) && guard < 10 * degree {
                    guard += 1;
                    let j = rng.index(n);
                    if j != i && !neighbors.iter().any(|k: &KeyedNode| k.node.0 as usize == j) {
                        neighbors.push(ids[j]);
                    }
                }
                FreenetNode {
                    me: ids[i],
                    neighbors,
                    stores: Vec::new(),
                    rng: rng.fork_indexed("node", i as u64),
                    results: BTreeMap::new(),
                }
            })
            .collect();
        let world = World::new(topology, seed, nodes);
        FreenetNetwork { world, next_req: 0, rng, ttl }
    }

    /// Stores `key` at the node whose id is numerically closest (ground
    /// truth placement; the walk has to *find* it).
    pub fn store(&mut self, key: Key) {
        let closest = (0..self.world.topology().len() as u32)
            .map(NodeIndex)
            .min_by_key(|&i| self.world.node(i).me.key.ring_distance(key))
            .expect("non-empty network");
        self.world.node_mut(closest).stores.push(key);
    }

    /// Starts a lookup from a random node; returns (request id, origin).
    pub fn lookup(&mut self, key: Key) -> (u64, NodeIndex) {
        self.next_req += 1;
        let id = self.next_req;
        let origin = NodeIndex(self.rng.index(self.world.topology().len()) as u32);
        let walk = Walk { id, target: key, ttl: self.ttl, visited: vec![origin] };
        self.world.inject(origin, origin, FreenetMsg::Lookup(walk));
        (id, origin)
    }

    /// Advances the simulation.
    pub fn run_for(&mut self, d: SimDuration) {
        self.world.run_for(d);
    }

    /// The outcome of a lookup: `Some(hops)` on success, `None` on failure
    /// or if still in flight.
    pub fn result(&self, id: u64, origin: NodeIndex) -> Option<u32> {
        self.world.node(origin).results.get(&id).copied().flatten()
    }

    /// Whether the lookup has concluded (either way).
    pub fn concluded(&self, id: u64, origin: NodeIndex) -> bool {
        self.world.node(origin).results.contains_key(&id)
    }

    /// Success rate over a batch of `(id, origin)` pairs.
    pub fn success_rate(&self, batch: &[(u64, NodeIndex)]) -> f64 {
        if batch.is_empty() {
            return 0.0;
        }
        let ok = batch.iter().filter(|(id, o)| self.result(*id, *o).is_some()).count();
        ok as f64 / batch.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_can_succeed_on_small_network() {
        let mut net = FreenetNetwork::build(8, 4, 32, 1);
        let key = Key::hash_of(b"popular-doc");
        net.store(key);
        let mut batch = Vec::new();
        for _ in 0..20 {
            batch.push(net.lookup(key));
        }
        net.run_for(SimDuration::from_secs(60));
        assert!(net.success_rate(&batch) > 0.5, "rate {}", net.success_rate(&batch));
    }

    #[test]
    fn success_degrades_with_scale() {
        let rate = |n: usize| {
            let mut net = FreenetNetwork::build(n, 4, 16, 2);
            let mut batch = Vec::new();
            for i in 0..40 {
                let key = Key::hash_of(format!("doc-{i}").as_bytes());
                net.store(key);
                batch.push(net.lookup(key));
            }
            net.run_for(SimDuration::from_secs(120));
            net.success_rate(&batch)
        };
        let small = rate(8);
        let large = rate(256);
        assert!(small > large, "expected degradation: small {small} vs large {large}");
        assert!(large < 0.9, "large networks should miss sometimes: {large}");
    }

    #[test]
    fn every_lookup_concludes() {
        let mut net = FreenetNetwork::build(32, 4, 16, 3);
        let key = Key::hash_of(b"x");
        net.store(key);
        let batch: Vec<(u64, NodeIndex)> = (0..10).map(|_| net.lookup(key)).collect();
        net.run_for(SimDuration::from_secs(120));
        for (id, origin) in &batch {
            assert!(net.concluded(*id, *origin), "walk {id} never concluded");
        }
    }

    #[test]
    fn ttl_zero_fails_immediately_unless_local() {
        let mut net = FreenetNetwork::build(8, 3, 0, 4);
        let key = Key::hash_of(b"y");
        net.store(key);
        let batch: Vec<(u64, NodeIndex)> = (0..10).map(|_| net.lookup(key)).collect();
        net.run_for(SimDuration::from_secs(30));
        // With TTL 0 the only successes are lookups starting at the
        // storing node itself.
        for (id, origin) in &batch {
            if let Some(hops) = net.result(*id, *origin) {
                assert_eq!(hops, 1);
            }
        }
    }
}
