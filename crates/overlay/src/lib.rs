//! Plaxton-style structured overlay routing (Pastry flavour).
//!
//! The paper's storage architecture (§3, §4.5) builds on "a deterministic
//! routing algorithm by Plaxton, which permits the discovery of documents
//! stored in a wide area network", as used by PAST/Pastry/OceanStore, and
//! explicitly rejects systems that "rely exclusively on non-deterministic
//! algorithms", because then "data cannot always be found, rendering them
//! unsuitable as a base technology for this work".
//!
//! This crate implements:
//!
//! * [`Key`] — 128-bit identifiers with hexadecimal digit routing and
//!   FNV-1a content hashing (GUIDs),
//! * [`OverlayNode`] — a sans-IO Pastry-style node: prefix routing table +
//!   leaf set, join protocol, heartbeat failure detection and repair,
//! * [`OverlayNetwork`] — a simulation harness over [`gloss_sim::World`],
//! * [`freenet`] — the non-deterministic greedy/random-walk baseline used
//!   by experiment **C2** to quantify the paper's objection.
//!
//! Routing reaches the live node whose key is numerically closest to the
//! target in `O(log₁₆ N)` hops (measured in C2).
//!
//! # Example
//!
//! ```
//! use gloss_overlay::Key;
//! let a = Key::hash_of(b"janettas-gelateria");
//! let b = Key::hash_of(b"janettas-gelateria");
//! assert_eq!(a, b); // content-derived GUIDs are deterministic
//! ```

pub mod freenet;
pub mod id;
pub mod network;
pub mod node;
pub mod table;

pub use freenet::{FreenetNetwork, FreenetNode};
// Re-exported so embedders can configure the governor without depending
// on `gloss_governor` directly.
pub use gloss_governor::{
    AdmissionConfig, CircuitState, GovernorConfig, SuspicionConfig, SuspicionTracker,
};
pub use id::{Key, KeyedNode, DIGITS};
pub use network::{OverlayNetwork, RouteOutcome};
pub use node::{fault_class, Delivery, OverlayMsg, OverlayNode};
pub use table::{LeafSet, RoutingTable};
