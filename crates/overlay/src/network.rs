//! Simulation harness for the overlay: staggered joins, routing
//! experiments, churn (experiment C2), and adversarial scenarios
//! (partitions, byzantine peers — experiments C14/C15).

use crate::id::{Key, KeyedNode};
use crate::node::{fault_class, Delivery, OverlayMsg, OverlayNode};
use gloss_governor::GovernorConfig;
use gloss_sim::{
    Batch, ByzBehavior, ByzantineActor, Input, Node, NodeIndex, Outbox, SimDuration, SimRng,
    SimTime, Topology, World,
};
use std::collections::BTreeMap;

/// The world node: an overlay node plus its delivered payloads and an
/// optional byzantine behaviour wrapper (the adversary lives here in the
/// harness, not in the protocol).
#[derive(Debug)]
pub struct OverlayWorldNode {
    /// The protocol state machine.
    pub overlay: OverlayNode<u64>,
    /// Payloads delivered here, by request id.
    pub delivered: Vec<Delivery<u64>>,
    /// Misbehaviour policy (honest by default).
    pub byz: ByzantineActor,
    /// Cached first gossip payload for [`ByzBehavior::StaleGossip`].
    stale: Option<OverlayMsg<u64>>,
}

impl OverlayWorldNode {
    fn dispatch(
        &mut self,
        now: SimTime,
        from: NodeIndex,
        msg: OverlayMsg<u64>,
        out: &mut Outbox<OverlayMsg<u64>>,
    ) {
        if !self.byz.is_honest() && self.byz.should_drop_input(from, fault_class(&msg)) {
            out.count("overlay.byz_dropped", 1.0);
            return;
        }
        let delivered = self.overlay.handle(now, from, msg, out);
        self.delivered.extend(delivered);
    }

    fn post_process(&mut self, out: &mut Outbox<OverlayMsg<u64>>) {
        if !self.byz.is_honest() {
            self.byz.rewrite_outputs(out, &mut self.stale, |m| {
                matches!(m, OverlayMsg::ProbeAck { .. } | OverlayMsg::LeafSetReply { .. })
            });
        }
    }
}

impl Node for OverlayWorldNode {
    type Msg = OverlayMsg<u64>;

    fn handle(&mut self, now: SimTime, input: Input<Self::Msg>, out: &mut Outbox<Self::Msg>) {
        match input {
            Input::Start => self.overlay.on_start(out),
            Input::Timer { tag } => self.overlay.on_timer(now, tag, out),
            Input::Msg { from, msg } => self.dispatch(now, from, msg, out),
        }
        self.post_process(out);
    }

    fn on_batch(
        &mut self,
        now: SimTime,
        batch: &mut Batch<'_, Self::Msg>,
        out: &mut Outbox<Self::Msg>,
    ) {
        // Same-instant arrivals dispatch straight into the protocol state
        // machine, skipping the per-message input match.
        for (from, msg) in batch {
            self.dispatch(now, from, msg, out);
        }
        self.post_process(out);
    }
}

/// Where one routed request ended up.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RouteOutcome {
    /// The request id.
    pub id: u64,
    /// The target key.
    pub target: Key,
    /// The node it was delivered at.
    pub delivered_at: NodeIndex,
    /// Overlay hops taken.
    pub hops: u32,
}

/// An overlay network on a simulated topology.
///
/// # Example
///
/// ```
/// use gloss_overlay::{Key, OverlayNetwork};
/// use gloss_sim::SimDuration;
///
/// let mut net = OverlayNetwork::build(16, 42);
/// net.run_for(SimDuration::from_secs(120)); // let all nodes join
/// let from = net.random_node();
/// let id = net.route_from(from, Key::hash_of_str("doc"));
/// net.run_for(SimDuration::from_secs(10));
/// let outcome = net.outcomes()[&id];
/// assert_eq!(outcome.delivered_at, net.closest_alive(Key::hash_of_str("doc")));
/// ```
#[derive(Debug)]
pub struct OverlayNetwork {
    world: World<OverlayWorldNode>,
    next_req: u64,
    rng: SimRng,
}

impl OverlayNetwork {
    /// Builds `n` overlay nodes on a random wide-area topology; node 0 is
    /// the bootstrap, later nodes join at 200 ms intervals. The governor
    /// plane (admission control + suspicion scoring) is enabled with
    /// default policy; use [`build_with`](Self::build_with) to disable it
    /// or tune it.
    pub fn build(n: usize, seed: u64) -> Self {
        Self::build_with(n, seed, Some(GovernorConfig::default()))
    }

    /// Builds `n` overlay nodes with an explicit governor policy (`None`
    /// = legacy three-strikes failure detection, no admission control).
    pub fn build_with(n: usize, seed: u64, governor: Option<GovernorConfig>) -> Self {
        let topology = Topology::random(
            n,
            &["scotland", "england", "europe", "us-east", "us-west", "australia"],
            seed,
        );
        Self::build_on_with(topology, seed, governor)
    }

    /// Builds the overlay over an explicit topology (governor enabled).
    pub fn build_on(topology: Topology, seed: u64) -> Self {
        Self::build_on_with(topology, seed, Some(GovernorConfig::default()))
    }

    /// Builds the overlay over an explicit topology and governor policy.
    pub fn build_on_with(topology: Topology, seed: u64, governor: Option<GovernorConfig>) -> Self {
        let n = topology.len();
        let mut rng = SimRng::new(seed).fork("overlay-net");
        let mut nodes = Vec::with_capacity(n);
        for i in 0..n {
            let idx = NodeIndex(i as u32);
            let key = Key::hash_of(format!("overlay-node-{i}-{seed}").as_bytes());
            let (bootstrap, delay) = if i == 0 {
                (None, SimDuration::ZERO)
            } else {
                // Join through a random earlier node, staggered.
                let b = NodeIndex(rng.index(i) as u32);
                (Some(b), SimDuration::from_millis(200) * i as u64)
            };
            let mut overlay = OverlayNode::new(key, idx, bootstrap, delay)
                .with_probe_interval(SimDuration::from_secs(5));
            if let Some(cfg) = &governor {
                // Per-node jitter seed: deterministic, but no two nodes
                // share a backoff stream.
                overlay = overlay.with_governor(cfg.clone(), seed ^ ((i as u64) << 17));
            }
            nodes.push(OverlayWorldNode {
                overlay,
                delivered: Vec::new(),
                byz: ByzantineActor::default(),
                stale: None,
            });
        }
        let world = World::new(topology, seed, nodes);
        OverlayNetwork { world, next_req: 0, rng }
    }

    /// Assigns a byzantine behaviour to one node (honest by default).
    pub fn set_byzantine(&mut self, node: NodeIndex, behavior: ByzBehavior) {
        self.world.node_mut(node).byz = ByzantineActor::new(behavior);
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.world.topology().len()
    }

    /// Whether the network is empty (never true after `build`).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A uniformly random node index.
    pub fn random_node(&mut self) -> NodeIndex {
        NodeIndex(self.rng.index(self.len()) as u32)
    }

    /// Advances the simulation.
    pub fn run_for(&mut self, d: SimDuration) {
        self.world.run_for(d);
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.world.now()
    }

    /// The underlying world.
    pub fn world(&self) -> &World<OverlayWorldNode> {
        &self.world
    }

    /// Mutable world access (crash/recover injection).
    pub fn world_mut(&mut self) -> &mut World<OverlayWorldNode> {
        &mut self.world
    }

    /// Fraction of alive nodes that have completed their join.
    pub fn joined_fraction(&self) -> f64 {
        let mut joined = 0usize;
        let mut alive = 0usize;
        for i in 0..self.len() {
            let idx = NodeIndex(i as u32);
            if self.world.is_alive(idx) {
                alive += 1;
                if self.world.node(idx).overlay.is_joined() {
                    joined += 1;
                }
            }
        }
        if alive == 0 {
            0.0
        } else {
            joined as f64 / alive as f64
        }
    }

    /// Originates a route from `from` toward `target`; returns the request
    /// id for correlation in [`outcomes`](Self::outcomes).
    pub fn route_from(&mut self, from: NodeIndex, target: Key) -> u64 {
        self.next_req += 1;
        let id = self.next_req;
        self.world.inject(
            from,
            from,
            OverlayMsg::Route { target, payload: id, origin: from, hops: 0 },
        );
        id
    }

    /// All route outcomes observed so far, keyed by request id.
    pub fn outcomes(&self) -> BTreeMap<u64, RouteOutcome> {
        let mut map = BTreeMap::new();
        for i in 0..self.len() {
            let idx = NodeIndex(i as u32);
            for d in &self.world.node(idx).delivered {
                map.insert(
                    d.payload,
                    RouteOutcome {
                        id: d.payload,
                        target: d.target,
                        delivered_at: idx,
                        hops: d.hops,
                    },
                );
            }
        }
        map
    }

    /// Ground truth: the alive node whose key is numerically closest to
    /// `key`.
    ///
    /// # Panics
    ///
    /// Panics if no nodes are alive.
    pub fn closest_alive(&self, key: Key) -> NodeIndex {
        (0..self.len() as u32)
            .map(NodeIndex)
            .filter(|&i| self.world.is_alive(i))
            .min_by_key(|&i| self.world.node(i).overlay.id().key.ring_distance(key))
            .expect("at least one alive node")
    }

    /// The overlay identifier of a node.
    pub fn id_of(&self, node: NodeIndex) -> KeyedNode {
        self.world.node(node).overlay.id()
    }

    /// Crashes a node immediately.
    pub fn crash(&mut self, node: NodeIndex) {
        self.world.crash(node);
    }
}

// Re-export the timer tags so embedders see one canonical place.
pub use crate::node::timers as overlay_timers;

#[cfg(test)]
mod tests {
    use super::*;

    fn settled(n: usize, seed: u64) -> OverlayNetwork {
        let mut net = OverlayNetwork::build(n, seed);
        // Staggered joins at 200 ms apart plus retry slack.
        net.run_for(SimDuration::from_millis(200) * (n as u64) + SimDuration::from_secs(60));
        net
    }

    #[test]
    fn all_nodes_join() {
        let net = settled(24, 3);
        assert!((net.joined_fraction() - 1.0).abs() < f64::EPSILON);
    }

    #[test]
    fn routes_reach_numerically_closest_node() {
        let mut net = settled(24, 4);
        let mut ids = Vec::new();
        for i in 0..40 {
            let from = net.random_node();
            let target = Key::hash_of(format!("doc-{i}").as_bytes());
            ids.push((net.route_from(from, target), target));
        }
        net.run_for(SimDuration::from_secs(30));
        let outcomes = net.outcomes();
        for (id, target) in ids {
            let o = outcomes.get(&id).expect("route delivered");
            assert_eq!(
                o.delivered_at,
                net.closest_alive(target),
                "request {id} landed at the wrong node"
            );
        }
    }

    #[test]
    fn hop_counts_are_logarithmic() {
        let mut net = settled(64, 5);
        for i in 0..60 {
            let from = net.random_node();
            net.route_from(from, Key::hash_of(format!("h-{i}").as_bytes()));
        }
        net.run_for(SimDuration::from_secs(30));
        let outcomes = net.outcomes();
        assert_eq!(outcomes.len(), 60, "all routes delivered");
        let mean_hops: f64 =
            outcomes.values().map(|o| o.hops as f64).sum::<f64>() / outcomes.len() as f64;
        // log16(64) = 1.5; allow generous slack for imperfect tables.
        assert!(mean_hops < 6.0, "mean hops {mean_hops}");
    }

    #[test]
    fn routing_survives_node_failures() {
        let mut net = settled(24, 6);
        // Crash a quarter of the nodes (not the bootstrap).
        let victims: Vec<NodeIndex> = (1..=6).map(NodeIndex).collect();
        for v in &victims {
            net.crash(*v);
        }
        // Allow probe timeouts (3 × 5 s) plus repair to run.
        net.run_for(SimDuration::from_secs(60));
        let mut ids = Vec::new();
        for i in 0..30 {
            let mut from = net.random_node();
            while victims.contains(&from) {
                from = net.random_node();
            }
            let target = Key::hash_of(format!("after-churn-{i}").as_bytes());
            ids.push((net.route_from(from, target), target));
        }
        net.run_for(SimDuration::from_secs(30));
        let outcomes = net.outcomes();
        let mut correct = 0;
        for (id, target) in &ids {
            if let Some(o) = outcomes.get(id) {
                if o.delivered_at == net.closest_alive(*target) {
                    correct += 1;
                }
            }
        }
        // Deterministic routing heals: all routes delivered, at the right
        // live node.
        assert_eq!(correct, ids.len(), "{correct}/{} correct", ids.len());
    }

    #[test]
    fn deterministic_same_seed_same_outcomes() {
        let run = |seed| {
            let mut net = settled(12, seed);
            for i in 0..10 {
                let from = net.random_node();
                net.route_from(from, Key::hash_of(format!("d-{i}").as_bytes()));
            }
            net.run_for(SimDuration::from_secs(20));
            net.outcomes()
        };
        assert_eq!(run(9), run(9));
    }
}
