//! 128-bit overlay identifiers with hexadecimal digit access.

use gloss_sim::NodeIndex;
use std::fmt;

/// Number of hexadecimal digits in a [`Key`] (128 bits / 4).
pub const DIGITS: usize = 32;

/// A 128-bit identifier on the overlay ring: node identifiers and document
/// GUIDs share this space, as in Pastry/PAST.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Key(pub u128);

impl Key {
    /// Derives a GUID from content bytes (FNV-1a, 128-bit, with a
    /// murmur-style finalisation pass).
    ///
    /// The paper: "all the P2P architectures cited use hashing algorithms
    /// to assign each document with a globally unique identifier (GUID)",
    /// derived "purely from document content using secure hashes". FNV-1a
    /// stands in for a secure hash here (see DESIGN.md substitutions).
    ///
    /// Raw FNV-1a gives a trailing byte only one multiply by the (small)
    /// FNV prime, so names differing near the end ("x#shard0" …
    /// "x#shard5") differ only in their low ~34 bits and land adjacent
    /// on the ring — the same primary would hold every fragment, which
    /// defeats erasure coding's independent-failure premise. The
    /// finalisation avalanches every input bit across all 128 output
    /// bits so related names scatter uniformly.
    pub fn hash_of(bytes: &[u8]) -> Key {
        const OFFSET: u128 = 0x6c62272e07bb014262b821756295c58d;
        const PRIME: u128 = 0x0000000001000000000000000000013b;
        let mut h = OFFSET;
        for &b in bytes {
            h ^= b as u128;
            h = h.wrapping_mul(PRIME);
        }
        fn fmix64(mut k: u64) -> u64 {
            k ^= k >> 33;
            k = k.wrapping_mul(0xff51_afd7_ed55_8ccd);
            k ^= k >> 33;
            k = k.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
            k ^= k >> 33;
            k
        }
        let mut lo = h as u64;
        let mut hi = (h >> 64) as u64;
        lo = lo.wrapping_add(hi);
        hi = hi.wrapping_add(lo);
        lo = fmix64(lo);
        hi = fmix64(hi);
        lo = lo.wrapping_add(hi);
        hi = hi.wrapping_add(lo);
        Key(((hi as u128) << 64) | lo as u128)
    }

    /// Derives a GUID from a text name (convenience over
    /// [`hash_of`](Self::hash_of)).
    pub fn hash_of_str(s: &str) -> Key {
        Key::hash_of(s.as_bytes())
    }

    /// The `i`-th hexadecimal digit, most significant first.
    ///
    /// # Panics
    ///
    /// Panics if `i >= DIGITS`.
    pub fn digit(self, i: usize) -> u8 {
        assert!(i < DIGITS, "digit index out of range");
        ((self.0 >> ((DIGITS - 1 - i) * 4)) & 0xf) as u8
    }

    /// Length of the shared hexadecimal prefix with `other` (0..=32).
    pub fn shared_prefix(self, other: Key) -> usize {
        let x = self.0 ^ other.0;
        if x == 0 {
            DIGITS
        } else {
            (x.leading_zeros() / 4) as usize
        }
    }

    /// Distance around the ring (minimum of clockwise and anticlockwise).
    pub fn ring_distance(self, other: Key) -> u128 {
        let cw = other.0.wrapping_sub(self.0);
        let ccw = self.0.wrapping_sub(other.0);
        cw.min(ccw)
    }

    /// Clockwise distance from `self` to `other`.
    pub fn clockwise_distance(self, other: Key) -> u128 {
        other.0.wrapping_sub(self.0)
    }
}

impl fmt::Display for Key {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Show the leading 8 digits; enough to distinguish in traces.
        write!(f, "{:08x}..", (self.0 >> 96) as u32)
    }
}

impl fmt::LowerHex for Key {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:032x}", self.0)
    }
}

/// A known overlay participant: its key and the physical node hosting it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct KeyedNode {
    /// The overlay identifier.
    pub key: Key,
    /// The physical node (for message addressing in the simulator).
    pub node: NodeIndex,
}

impl KeyedNode {
    /// Creates a keyed node.
    pub fn new(key: Key, node: NodeIndex) -> Self {
        KeyedNode { key, node }
    }
}

impl fmt::Display for KeyedNode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}@{}", self.key, self.node)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hashing_is_deterministic_and_spread() {
        let a = Key::hash_of(b"alpha");
        let b = Key::hash_of(b"alpha");
        let c = Key::hash_of(b"beta");
        assert_eq!(a, b);
        assert_ne!(a, c);
        // Single-byte difference flips high digits with good probability;
        // just check the keys differ substantially.
        assert!(a.ring_distance(c) > 1 << 64);
    }

    #[test]
    fn sequentially_named_documents_scatter_on_the_ring() {
        // Erasure shards are named "{base}#shard{i}" — differing only in
        // the final byte. Without output avalanching they would share
        // their high bits, cluster on the ring, and all land on one
        // primary, losing fragment independence.
        let keys: Vec<Key> = (0..6).map(|i| Key::hash_of_str(&format!("obj#shard{i}"))).collect();
        for (i, a) in keys.iter().enumerate() {
            for b in keys.iter().skip(i + 1) {
                assert!(a.shared_prefix(*b) <= 4, "{a} and {b} cluster");
                assert!(a.ring_distance(*b) > 1 << 100, "{a} and {b} are ring-adjacent");
            }
        }
    }

    #[test]
    fn digit_extraction() {
        let k = Key(0x0123_4567_89ab_cdef_0123_4567_89ab_cdef);
        assert_eq!(k.digit(0), 0x0);
        assert_eq!(k.digit(1), 0x1);
        assert_eq!(k.digit(15), 0xf);
        assert_eq!(k.digit(16), 0x0);
        assert_eq!(k.digit(31), 0xf);
    }

    #[test]
    #[should_panic(expected = "digit index")]
    fn digit_out_of_range_panics() {
        Key(0).digit(DIGITS);
    }

    #[test]
    fn shared_prefix_lengths() {
        let a = Key(0xaaaa_0000_0000_0000_0000_0000_0000_0000);
        let b = Key(0xaaab_0000_0000_0000_0000_0000_0000_0000);
        assert_eq!(a.shared_prefix(b), 3);
        assert_eq!(a.shared_prefix(a), DIGITS);
        let c = Key(0x1aaa_0000_0000_0000_0000_0000_0000_0000);
        assert_eq!(a.shared_prefix(c), 0);
    }

    #[test]
    fn ring_distance_wraps() {
        let near_top = Key(u128::MAX - 5);
        let near_bottom = Key(5);
        assert_eq!(near_top.ring_distance(near_bottom), 11);
        assert_eq!(near_bottom.ring_distance(near_top), 11);
        assert_eq!(near_top.clockwise_distance(near_bottom), 11);
    }

    #[test]
    fn display_is_short_hex() {
        let k = Key(0xdead_beef_0000_0000_0000_0000_0000_0000);
        assert_eq!(k.to_string(), "deadbeef..");
        assert_eq!(format!("{k:x}").len(), 32);
    }
}
