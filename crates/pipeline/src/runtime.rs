//! A threaded in-process pipeline runtime: the same [`Component`]s that
//! run under the simulator, executed concurrently with one OS thread per
//! component and crossbeam channels as the event bus.
//!
//! This demonstrates that the component model is runtime-agnostic (the
//! paper's "interconnection topology is orthogonal to the service
//! definition and its deployment"). The simulator remains the reference
//! environment for experiments; this runtime exists for realism and for
//! embedding pipelines into ordinary applications.

use crate::component::{Component, Emit};
use crossbeam::channel::{unbounded, Receiver, Sender};
use gloss_event::Event;
use gloss_sim::SimTime;
use parking_lot::Mutex;
use std::sync::Arc;
use std::thread::JoinHandle;

enum Work {
    Event(Event),
    Stop,
}

/// A running threaded pipeline: a linear chain of components, each on its
/// own thread.
#[derive(Debug)]
pub struct ThreadedPipeline {
    input: Sender<Work>,
    outputs: Arc<Mutex<Vec<Event>>>,
    handles: Vec<JoinHandle<()>>,
}

impl ThreadedPipeline {
    /// Spawns a chain of components. Events pushed with
    /// [`put`](Self::put) flow through every component in order; events
    /// leaving the last component are collected for
    /// [`drain_outputs`](Self::drain_outputs).
    pub fn spawn_chain(components: Vec<Box<dyn Component>>) -> Self {
        let outputs: Arc<Mutex<Vec<Event>>> = Arc::new(Mutex::new(Vec::new()));
        let (input, mut upstream): (Sender<Work>, Receiver<Work>) = unbounded();
        let mut handles = Vec::new();
        let n = components.len();
        for (i, mut component) in components.into_iter().enumerate() {
            let (tx, rx): (Sender<Work>, Receiver<Work>) = unbounded();
            let sink = outputs.clone();
            let is_last = i == n - 1;
            let rx_in = upstream;
            upstream = rx;
            handles.push(std::thread::spawn(move || {
                // Wall-clock microseconds stand in for SimTime here.
                let epoch = std::time::Instant::now();
                while let Ok(work) = rx_in.recv() {
                    match work {
                        Work::Stop => {
                            let _ = tx.send(Work::Stop);
                            break;
                        }
                        Work::Event(event) => {
                            let now = SimTime::from_micros(epoch.elapsed().as_micros() as u64);
                            let mut emit = Emit::new();
                            component.put(now, event, &mut emit);
                            for ev in emit.drain() {
                                if is_last {
                                    sink.lock().push(ev);
                                } else {
                                    let _ = tx.send(Work::Event(ev));
                                }
                            }
                        }
                    }
                }
            }));
        }
        // Terminal receiver keeps the last channel alive until Stop.
        let final_rx = upstream;
        handles.push(std::thread::spawn(move || {
            while let Ok(work) = final_rx.recv() {
                if matches!(work, Work::Stop) {
                    break;
                }
            }
        }));
        ThreadedPipeline { input, outputs, handles }
    }

    /// Pushes an event into the head of the chain.
    pub fn put(&self, event: Event) {
        let _ = self.input.send(Work::Event(event));
    }

    /// Stops all component threads and waits for them, returning the
    /// collected outputs.
    pub fn shutdown(self) -> Vec<Event> {
        let _ = self.input.send(Work::Stop);
        for h in self.handles {
            let _ = h.join();
        }
        let mut guard = self.outputs.lock();
        std::mem::take(&mut *guard)
    }

    /// Takes the outputs collected so far without stopping.
    pub fn drain_outputs(&self) -> Vec<Event> {
        let mut guard = self.outputs.lock();
        std::mem::take(&mut *guard)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::standard::{Counter, KindFilter, MovementThreshold};
    use gloss_event::Filter;

    #[test]
    fn chain_processes_concurrently() {
        let pipeline = ThreadedPipeline::spawn_chain(vec![
            Box::new(KindFilter::new("f", Filter::for_kind("user.location"))),
            Box::new(MovementThreshold::new("m", 0.05)),
            Box::new(Counter::new("c")),
        ]);
        let loc = |lat: f64| {
            Event::new("user.location")
                .with_attr("user", "bob")
                .with_attr("lat", lat)
                .with_attr("lon", -2.8)
        };
        pipeline.put(loc(56.3400));
        pipeline.put(loc(56.3401)); // suppressed by movement threshold
        pipeline.put(loc(56.4400));
        pipeline.put(Event::new("noise")); // dropped by the filter
        let outputs = pipeline.shutdown();
        assert_eq!(outputs.len(), 2);
        assert!(outputs.iter().all(|e| e.kind() == "user.location"));
    }

    #[test]
    fn shutdown_with_no_events_is_clean() {
        let pipeline = ThreadedPipeline::spawn_chain(vec![Box::new(Counter::new("c"))]);
        assert!(pipeline.shutdown().is_empty());
    }

    #[test]
    fn drain_outputs_without_stopping() {
        let pipeline = ThreadedPipeline::spawn_chain(vec![Box::new(Counter::new("c"))]);
        pipeline.put(Event::new("a"));
        // Wait for the event to traverse the chain.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        loop {
            let got = pipeline.drain_outputs();
            if !got.is_empty() {
                assert_eq!(got[0].kind(), "a");
                break;
            }
            assert!(std::time::Instant::now() < deadline, "event never arrived");
            std::thread::yield_now();
        }
        pipeline.put(Event::new("b"));
        let rest = pipeline.shutdown();
        assert_eq!(rest.len(), 1);
    }

    #[test]
    fn high_volume_through_threads() {
        let pipeline = ThreadedPipeline::spawn_chain(vec![
            Box::new(Counter::new("a")),
            Box::new(Counter::new("b")),
        ]);
        for i in 0..1_000i64 {
            pipeline.put(Event::new("tick").with_attr("n", i));
        }
        let outputs = pipeline.shutdown();
        assert_eq!(outputs.len(), 1_000);
    }
}
