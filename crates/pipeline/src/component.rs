//! The component model and the intra-node pipeline graph.

use gloss_event::Event;
use gloss_sim::SimTime;
use std::fmt;

/// Events emitted by one component activation.
#[derive(Debug, Default)]
pub struct Emit {
    events: Vec<Event>,
}

impl Emit {
    /// Creates an empty emission buffer.
    pub fn new() -> Self {
        Emit::default()
    }

    /// Emits an event downstream.
    pub fn push(&mut self, event: Event) {
        self.events.push(event);
    }

    /// Number of events emitted.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether nothing was emitted.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Drains the emitted events.
    pub fn drain(&mut self) -> Vec<Event> {
        std::mem::take(&mut self.events)
    }
}

/// A pipeline component: anything with a `put(event)` interface.
pub trait Component: fmt::Debug + Send {
    /// The component's instance name (for tracing and assembly).
    fn name(&self) -> &str;

    /// Processes one event, emitting zero or more events downstream.
    fn put(&mut self, now: SimTime, event: Event, out: &mut Emit);

    /// Periodic activation for time-driven components (buffers flushing
    /// on deadline, device wrappers sampling). Default: nothing.
    fn tick(&mut self, _now: SimTime, _out: &mut Emit) {}
}

/// An intra-node pipeline: components wired by directed edges, fed
/// through entry components; events leaving components with no outgoing
/// edge become the graph's outputs.
#[derive(Debug, Default)]
pub struct PipelineGraph {
    components: Vec<Box<dyn Component>>,
    edges: Vec<Vec<usize>>,
    entries: Vec<usize>,
    /// Events processed (puts performed).
    pub puts: u64,
}

/// Safety valve against accidental cycles in hand-built graphs.
const MAX_STEPS_PER_PUSH: usize = 100_000;

impl PipelineGraph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        PipelineGraph::default()
    }

    /// Adds a component; returns its index.
    pub fn add(&mut self, component: Box<dyn Component>) -> usize {
        self.components.push(component);
        self.edges.push(Vec::new());
        self.components.len() - 1
    }

    /// Connects `from` → `to`.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn connect(&mut self, from: usize, to: usize) {
        assert!(from < self.components.len() && to < self.components.len(), "bad component index");
        self.edges[from].push(to);
    }

    /// Marks a component as an entry point for externally pushed events.
    ///
    /// # Panics
    ///
    /// Panics if the index is out of range.
    pub fn mark_entry(&mut self, idx: usize) {
        assert!(idx < self.components.len(), "bad component index");
        self.entries.push(idx);
    }

    /// Number of components.
    pub fn len(&self) -> usize {
        self.components.len()
    }

    /// Whether the graph has no components.
    pub fn is_empty(&self) -> bool {
        self.components.is_empty()
    }

    /// The index of the named component.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.components.iter().position(|c| c.name() == name)
    }

    /// Pushes an event into every entry component (the `put(event)` web
    /// service interface of the whole pipeline); returns the events that
    /// leave the graph.
    pub fn push(&mut self, now: SimTime, event: Event) -> Vec<Event> {
        let entries = self.entries.clone();
        let queue: Vec<(usize, Event)> = entries.iter().map(|&i| (i, event.clone())).collect();
        self.run_queue(now, queue)
    }

    /// Pushes an event into one specific component.
    pub fn push_into(&mut self, now: SimTime, idx: usize, event: Event) -> Vec<Event> {
        self.run_queue(now, vec![(idx, event)])
    }

    /// Ticks every component (time-driven flushing), collecting outputs.
    pub fn tick(&mut self, now: SimTime) -> Vec<Event> {
        let mut initial = Vec::new();
        for i in 0..self.components.len() {
            let mut emit = Emit::new();
            self.components[i].tick(now, &mut emit);
            for ev in emit.drain() {
                initial.push((i, ev, true));
            }
        }
        // Tick outputs flow along the same edges.
        let mut outputs = Vec::new();
        let mut queue: Vec<(usize, Event)> = Vec::new();
        for (i, ev, _) in initial {
            if self.edges[i].is_empty() {
                outputs.push(ev);
            } else {
                for &next in &self.edges[i].clone() {
                    queue.push((next, ev.clone()));
                }
            }
        }
        outputs.extend(self.run_queue(now, queue));
        outputs
    }

    fn run_queue(&mut self, now: SimTime, mut queue: Vec<(usize, Event)>) -> Vec<Event> {
        let mut outputs = Vec::new();
        let mut steps = 0;
        while let Some((idx, event)) = queue.pop() {
            steps += 1;
            if steps > MAX_STEPS_PER_PUSH {
                break;
            }
            self.puts += 1;
            let mut emit = Emit::new();
            self.components[idx].put(now, event, &mut emit);
            for produced in emit.drain() {
                if self.edges[idx].is_empty() {
                    outputs.push(produced);
                } else {
                    for &next in &self.edges[idx] {
                        queue.push((next, produced.clone()));
                    }
                }
            }
        }
        outputs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Passes events through, stamping its name into an attribute.
    #[derive(Debug)]
    struct Tag(String);

    impl Component for Tag {
        fn name(&self) -> &str {
            &self.0
        }
        fn put(&mut self, _now: SimTime, event: Event, out: &mut Emit) {
            out.push(event.with_attr(self.0.clone(), true));
        }
    }

    /// Drops everything.
    #[derive(Debug)]
    struct Sink;

    impl Component for Sink {
        fn name(&self) -> &str {
            "sink"
        }
        fn put(&mut self, _now: SimTime, _event: Event, _out: &mut Emit) {}
    }

    /// Duplicates events.
    #[derive(Debug)]
    struct Dup;

    impl Component for Dup {
        fn name(&self) -> &str {
            "dup"
        }
        fn put(&mut self, _now: SimTime, event: Event, out: &mut Emit) {
            out.push(event.clone());
            out.push(event);
        }
    }

    #[test]
    fn chain_processes_in_order() {
        let mut g = PipelineGraph::new();
        let a = g.add(Box::new(Tag("a".into())));
        let b = g.add(Box::new(Tag("b".into())));
        g.connect(a, b);
        g.mark_entry(a);
        let out = g.push(SimTime::ZERO, Event::new("e"));
        assert_eq!(out.len(), 1);
        assert!(out[0].attr("a").is_some());
        assert!(out[0].attr("b").is_some());
        assert_eq!(g.puts, 2);
    }

    #[test]
    fn fan_out_duplicates_downstream() {
        let mut g = PipelineGraph::new();
        let a = g.add(Box::new(Tag("a".into())));
        let b = g.add(Box::new(Tag("b".into())));
        let c = g.add(Box::new(Tag("c".into())));
        g.connect(a, b);
        g.connect(a, c);
        g.mark_entry(a);
        let out = g.push(SimTime::ZERO, Event::new("e"));
        assert_eq!(out.len(), 2, "event bus delivers to both downstream components");
    }

    #[test]
    fn sink_consumes() {
        let mut g = PipelineGraph::new();
        let a = g.add(Box::new(Sink));
        g.mark_entry(a);
        assert!(g.push(SimTime::ZERO, Event::new("e")).is_empty());
    }

    #[test]
    fn duplicator_multiplies() {
        let mut g = PipelineGraph::new();
        let d = g.add(Box::new(Dup));
        g.mark_entry(d);
        assert_eq!(g.push(SimTime::ZERO, Event::new("e")).len(), 2);
    }

    #[test]
    fn push_into_targets_one_component() {
        let mut g = PipelineGraph::new();
        let a = g.add(Box::new(Tag("a".into())));
        let b = g.add(Box::new(Tag("b".into())));
        g.mark_entry(a);
        let out = g.push_into(SimTime::ZERO, b, Event::new("e"));
        assert_eq!(out.len(), 1);
        assert!(out[0].attr("a").is_none());
    }

    #[test]
    fn index_of_finds_names() {
        let mut g = PipelineGraph::new();
        g.add(Box::new(Tag("alpha".into())));
        let b = g.add(Box::new(Tag("beta".into())));
        assert_eq!(g.index_of("beta"), Some(b));
        assert_eq!(g.index_of("gamma"), None);
    }

    #[test]
    fn cycle_guard_terminates() {
        let mut g = PipelineGraph::new();
        let a = g.add(Box::new(Tag("a".into())));
        let b = g.add(Box::new(Tag("b".into())));
        g.connect(a, b);
        g.connect(b, a); // accidental cycle
        g.mark_entry(a);
        // Must terminate (outputs are irrelevant here).
        let _ = g.push(SimTime::ZERO, Event::new("e"));
        assert!(g.puts as usize <= MAX_STEPS_PER_PUSH + 1);
    }

    #[test]
    #[should_panic(expected = "bad component index")]
    fn connect_validates() {
        let mut g = PipelineGraph::new();
        g.connect(0, 1);
    }
}
