//! The standard component library, registered by kind name so components
//! can arrive in code bundles.

use crate::component::{Component, Emit};
use gloss_bundle::Registry;
use gloss_event::{Event, Filter, Op};
use gloss_sim::{GeoPoint, SimDuration, SimTime};
use gloss_xml::Element;
use std::collections::HashMap;

/// Passes only events matching a content-based filter.
#[derive(Debug)]
pub struct KindFilter {
    name: String,
    filter: Filter,
    /// Events dropped.
    pub dropped: u64,
}

impl KindFilter {
    /// Creates a filter component.
    pub fn new(name: impl Into<String>, filter: Filter) -> Self {
        KindFilter { name: name.into(), filter, dropped: 0 }
    }
}

impl Component for KindFilter {
    fn name(&self) -> &str {
        &self.name
    }
    fn put(&mut self, _now: SimTime, event: Event, out: &mut Emit) {
        if self.filter.matches(&event) {
            out.push(event);
        } else {
            self.dropped += 1;
        }
    }
}

/// The paper's filtering example: "transmitting user-location events only
/// when the distance moved exceeds a certain threshold". Tracks the last
/// reported position per user.
#[derive(Debug)]
pub struct MovementThreshold {
    name: String,
    min_km: f64,
    last: HashMap<String, GeoPoint>,
    /// Events suppressed as insignificant movement.
    pub suppressed: u64,
}

impl MovementThreshold {
    /// Creates a movement-threshold filter.
    pub fn new(name: impl Into<String>, min_km: f64) -> Self {
        MovementThreshold { name: name.into(), min_km, last: HashMap::new(), suppressed: 0 }
    }
}

impl Component for MovementThreshold {
    fn name(&self) -> &str {
        &self.name
    }
    fn put(&mut self, _now: SimTime, event: Event, out: &mut Emit) {
        let (Some(user), Some(lat), Some(lon)) = (
            event.str_attr("user").map(str::to_string),
            event.num_attr("lat"),
            event.num_attr("lon"),
        ) else {
            out.push(event); // not a location event: pass through
            return;
        };
        let here = GeoPoint::new(lat, lon);
        match self.last.get(&user) {
            Some(prev) if prev.distance_km(here) < self.min_km => {
                self.suppressed += 1;
            }
            _ => {
                self.last.insert(user, here);
                out.push(event);
            }
        }
    }
}

/// Batches events and flushes on size or on tick after a deadline.
#[derive(Debug)]
pub struct Buffer {
    name: String,
    capacity: usize,
    max_age: SimDuration,
    held: Vec<Event>,
    oldest: Option<SimTime>,
}

impl Buffer {
    /// Creates a buffer flushing at `capacity` events or `max_age`.
    pub fn new(name: impl Into<String>, capacity: usize, max_age: SimDuration) -> Self {
        Buffer {
            name: name.into(),
            capacity: capacity.max(1),
            max_age,
            held: Vec::new(),
            oldest: None,
        }
    }

    /// Events currently held.
    pub fn held(&self) -> usize {
        self.held.len()
    }

    fn flush(&mut self, out: &mut Emit) {
        for e in self.held.drain(..) {
            out.push(e);
        }
        self.oldest = None;
    }
}

impl Component for Buffer {
    fn name(&self) -> &str {
        &self.name
    }
    fn put(&mut self, now: SimTime, event: Event, out: &mut Emit) {
        if self.held.is_empty() {
            self.oldest = Some(now);
        }
        self.held.push(event);
        if self.held.len() >= self.capacity {
            self.flush(out);
        }
    }
    fn tick(&mut self, now: SimTime, out: &mut Emit) {
        if let Some(oldest) = self.oldest {
            if now.since(oldest) >= self.max_age {
                self.flush(out);
            }
        }
    }
}

/// Rate limiter: at most one event per key attribute per period.
#[derive(Debug)]
pub struct Throttle {
    name: String,
    key_attr: String,
    period: SimDuration,
    last: HashMap<String, SimTime>,
    /// Events dropped by the rate limit.
    pub throttled: u64,
}

impl Throttle {
    /// Creates a throttle keyed by `key_attr`.
    pub fn new(name: impl Into<String>, key_attr: impl Into<String>, period: SimDuration) -> Self {
        Throttle {
            name: name.into(),
            key_attr: key_attr.into(),
            period,
            last: HashMap::new(),
            throttled: 0,
        }
    }
}

impl Component for Throttle {
    fn name(&self) -> &str {
        &self.name
    }
    fn put(&mut self, now: SimTime, event: Event, out: &mut Emit) {
        let key = event.str_attr(&self.key_attr).unwrap_or("").to_string();
        match self.last.get(&key) {
            Some(&t) if now.since(t) < self.period => {
                self.throttled += 1;
            }
            _ => {
                self.last.insert(key, now);
                out.push(event);
            }
        }
    }
}

/// Re-kinds events and/or stamps constant attributes (a trivial
/// transformer; real enrichment is the matchlet engine's job).
#[derive(Debug)]
pub struct Relabel {
    name: String,
    new_kind: Option<String>,
    stamps: Vec<(String, String)>,
}

impl Relabel {
    /// Creates a relabeller.
    pub fn new(name: impl Into<String>) -> Self {
        Relabel { name: name.into(), new_kind: None, stamps: Vec::new() }
    }

    /// Changes the event kind.
    pub fn with_kind(mut self, kind: impl Into<String>) -> Self {
        self.new_kind = Some(kind.into());
        self
    }

    /// Adds a constant attribute stamp.
    pub fn with_stamp(mut self, key: impl Into<String>, value: impl Into<String>) -> Self {
        self.stamps.push((key.into(), value.into()));
        self
    }
}

impl Component for Relabel {
    fn name(&self) -> &str {
        &self.name
    }
    fn put(&mut self, _now: SimTime, event: Event, out: &mut Emit) {
        let mut e = match &self.new_kind {
            Some(k) => {
                let mut n = Event::new(k.clone());
                for (key, v) in event.attrs() {
                    n.set_attr(key, v.clone());
                }
                if let Some(p) = event.payload() {
                    n = n.with_payload(p.clone());
                }
                n.stamp(event.id(), event.published_at());
                n
            }
            None => event,
        };
        for (k, v) in &self.stamps {
            e.set_attr(k.clone(), v.as_str());
        }
        out.push(e);
    }
}

/// Counts events by kind; passes them through untouched.
#[derive(Debug, Default)]
pub struct Counter {
    name: String,
    /// Count per event kind.
    pub counts: HashMap<String, u64>,
}

impl Counter {
    /// Creates a counter.
    pub fn new(name: impl Into<String>) -> Self {
        Counter { name: name.into(), counts: HashMap::new() }
    }

    /// Total events seen.
    pub fn total(&self) -> u64 {
        self.counts.values().sum()
    }
}

impl Component for Counter {
    fn name(&self) -> &str {
        &self.name
    }
    fn put(&mut self, _now: SimTime, event: Event, out: &mut Emit) {
        *self.counts.entry(event.kind().to_string()).or_insert(0) += 1;
        out.push(event);
    }
}

/// Registers every standard kind into a component registry, under the
/// names used by pipeline specifications and component bundles.
///
/// Kinds and their configuration attributes:
///
/// | kind | config |
/// |---|---|
/// | `filter.kind` | `kind` — event kind to pass |
/// | `filter.movement` | `min_km` |
/// | `buffer` | `capacity`, `max_age_ms` |
/// | `throttle` | `key`, `period_ms` |
/// | `relabel` | `kind` (optional), nested `<stamp key= value=>` |
/// | `counter` | — |
pub fn register_standard(registry: &mut Registry<Box<dyn Component>>) {
    registry.register("filter.kind", |cfg| {
        let kind = cfg.attr("kind").ok_or("filter.kind needs kind attribute")?;
        Ok(Box::new(KindFilter::new(format!("filter-{kind}"), Filter::for_kind(kind)))
            as Box<dyn Component>)
    });
    registry.register("filter.movement", |cfg| {
        let min_km: f64 = cfg
            .attr("min_km")
            .and_then(|s| s.parse().ok())
            .ok_or("filter.movement needs numeric min_km")?;
        Ok(Box::new(MovementThreshold::new("movement", min_km)) as Box<dyn Component>)
    });
    registry.register("buffer", |cfg| {
        let capacity: usize = cfg.attr("capacity").and_then(|s| s.parse().ok()).unwrap_or(16);
        let max_age_ms: u64 = cfg.attr("max_age_ms").and_then(|s| s.parse().ok()).unwrap_or(1_000);
        Ok(Box::new(Buffer::new("buffer", capacity, SimDuration::from_millis(max_age_ms)))
            as Box<dyn Component>)
    });
    registry.register("throttle", |cfg| {
        let key = cfg.attr("key").unwrap_or("user").to_string();
        let period_ms: u64 = cfg.attr("period_ms").and_then(|s| s.parse().ok()).unwrap_or(1_000);
        Ok(Box::new(Throttle::new("throttle", key, SimDuration::from_millis(period_ms)))
            as Box<dyn Component>)
    });
    registry.register("relabel", |cfg| {
        let mut r = Relabel::new("relabel");
        if let Some(kind) = cfg.attr("kind") {
            r = r.with_kind(kind);
        }
        for stamp in cfg.children_named("stamp") {
            if let (Some(k), Some(v)) = (stamp.attr("key"), stamp.attr("value")) {
                r = r.with_stamp(k, v);
            }
        }
        Ok(Box::new(r) as Box<dyn Component>)
    });
    registry
        .register("counter", |_cfg| Ok(Box::new(Counter::new("counter")) as Box<dyn Component>));
}

/// Builds a filter component from a full content-based filter spec given
/// as XML (`<filter kind="..."><constraint attr= op= value= type=/></filter>`),
/// used by subscriptions shipped in bundles.
pub fn filter_from_xml(cfg: &Element) -> Result<Filter, String> {
    let mut f = match cfg.attr("kind") {
        Some(k) => Filter::for_kind(k),
        None => Filter::any(),
    };
    for c in cfg.children_named("constraint") {
        let attr = c.attr("attr").ok_or("constraint needs attr")?;
        let op = match c.attr("op").unwrap_or("=") {
            "=" => Op::Eq,
            "!=" => Op::Ne,
            "<" => Op::Lt,
            "<=" => Op::Le,
            ">" => Op::Gt,
            ">=" => Op::Ge,
            "prefix" => Op::Prefix,
            "suffix" => Op::Suffix,
            "contains" => Op::Contains,
            "exists" => Op::Exists,
            other => return Err(format!("unknown op `{other}`")),
        };
        let ty = c.attr("type").unwrap_or("str");
        let text = c.attr("value").unwrap_or("");
        let value = gloss_event::AttrValue::from_text(ty, text)
            .ok_or_else(|| format!("bad {ty} value `{text}`"))?;
        f = f.with_constraint(attr, op, value);
    }
    Ok(f)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gloss_xml::parse;

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    fn loc(user: &str, lat: f64, lon: f64) -> Event {
        Event::new("user.location")
            .with_attr("user", user)
            .with_attr("lat", lat)
            .with_attr("lon", lon)
    }

    #[test]
    fn kind_filter_passes_and_drops() {
        let mut f = KindFilter::new("f", Filter::for_kind("a"));
        let mut out = Emit::new();
        f.put(t(0), Event::new("a"), &mut out);
        f.put(t(0), Event::new("b"), &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(f.dropped, 1);
    }

    #[test]
    fn movement_threshold_suppresses_small_moves() {
        let mut m = MovementThreshold::new("m", 0.5);
        let mut out = Emit::new();
        m.put(t(0), loc("bob", 56.3400, -2.8000), &mut out); // first: passes
        m.put(t(1), loc("bob", 56.3401, -2.8001), &mut out); // ~10 m: suppressed
        m.put(t(2), loc("bob", 56.3500, -2.8000), &mut out); // ~1.1 km: passes
        assert_eq!(out.len(), 2);
        assert_eq!(m.suppressed, 1);
        // Per-user tracking: anna's first report always passes.
        m.put(t(3), loc("anna", 56.3401, -2.8001), &mut out);
        assert_eq!(out.len(), 3);
    }

    #[test]
    fn movement_threshold_passes_non_location_events() {
        let mut m = MovementThreshold::new("m", 0.5);
        let mut out = Emit::new();
        m.put(t(0), Event::new("weather"), &mut out);
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn buffer_flushes_on_capacity_and_age() {
        let mut b = Buffer::new("b", 3, SimDuration::from_secs(10));
        let mut out = Emit::new();
        b.put(t(0), Event::new("e"), &mut out);
        b.put(t(1), Event::new("e"), &mut out);
        assert!(out.is_empty());
        assert_eq!(b.held(), 2);
        b.put(t(2), Event::new("e"), &mut out);
        assert_eq!(out.len(), 3, "flush at capacity");
        // Age-based flush via tick.
        let mut out = Emit::new();
        b.put(t(3), Event::new("e"), &mut out);
        b.tick(t(5), &mut out);
        assert!(out.is_empty(), "too young to flush");
        b.tick(t(14), &mut out);
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn throttle_limits_per_key() {
        let mut th = Throttle::new("t", "user", SimDuration::from_secs(60));
        let mut out = Emit::new();
        th.put(t(0), loc("bob", 1.0, 1.0), &mut out);
        th.put(t(10), loc("bob", 1.0, 1.0), &mut out);
        th.put(t(10), loc("anna", 1.0, 1.0), &mut out);
        th.put(t(70), loc("bob", 1.0, 1.0), &mut out);
        assert_eq!(out.len(), 3);
        assert_eq!(th.throttled, 1);
    }

    #[test]
    fn relabel_changes_kind_and_stamps() {
        let mut r = Relabel::new("r").with_kind("renamed").with_stamp("source", "gps");
        let mut out = Emit::new();
        r.put(t(0), Event::new("old").with_attr("x", 1i64), &mut out);
        let e = &out.drain()[0];
        assert_eq!(e.kind(), "renamed");
        assert_eq!(e.num_attr("x"), Some(1.0));
        assert_eq!(e.str_attr("source"), Some("gps"));
    }

    #[test]
    fn counter_counts_by_kind() {
        let mut c = Counter::new("c");
        let mut out = Emit::new();
        c.put(t(0), Event::new("a"), &mut out);
        c.put(t(0), Event::new("a"), &mut out);
        c.put(t(0), Event::new("b"), &mut out);
        assert_eq!(c.counts["a"], 2);
        assert_eq!(c.total(), 3);
        assert_eq!(out.len(), 3, "counter passes events through");
    }

    #[test]
    fn registry_builds_standard_kinds() {
        let mut reg: Registry<Box<dyn Component>> = Registry::new();
        register_standard(&mut reg);
        for (kind, cfg) in [
            ("filter.kind", r#"<cfg kind="a"/>"#),
            ("filter.movement", r#"<cfg min_km="0.5"/>"#),
            ("buffer", r#"<cfg capacity="4" max_age_ms="100"/>"#),
            ("throttle", r#"<cfg key="user" period_ms="500"/>"#),
            ("relabel", r#"<cfg kind="x"><stamp key="a" value="b"/></cfg>"#),
            ("counter", "<cfg/>"),
        ] {
            let c = reg.build(kind, &parse(cfg).unwrap());
            assert!(c.is_ok(), "kind {kind}: {:?}", c.err());
        }
        assert!(reg.build("filter.movement", &parse("<cfg/>").unwrap()).is_err());
        assert!(reg.build("no.such.kind", &parse("<cfg/>").unwrap()).is_err());
    }

    #[test]
    fn filter_from_xml_parses_constraints() {
        let cfg = parse(
            r#"<filter kind="weather.reading">
                 <constraint attr="celsius" op=">=" value="18" type="float"/>
                 <constraint attr="street" op="contains" value="Street" type="str"/>
               </filter>"#,
        )
        .unwrap();
        let f = filter_from_xml(&cfg).unwrap();
        let hot = Event::new("weather.reading")
            .with_attr("celsius", 21.0)
            .with_attr("street", "Market Street");
        let cold = Event::new("weather.reading")
            .with_attr("celsius", 3.0)
            .with_attr("street", "Market Street");
        assert!(f.matches(&hot));
        assert!(!f.matches(&cold));
        assert!(filter_from_xml(&parse(r#"<f><constraint op="="/></f>"#).unwrap()).is_err());
        assert!(filter_from_xml(
            &parse(r#"<f><constraint attr="a" op="fuzzy" value="1"/></f>"#).unwrap()
        )
        .is_err());
    }
}
