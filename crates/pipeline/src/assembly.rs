//! Pipeline assembly from XML specifications (Figure 3's "pipeline
//! assembly process": bundles arrive carrying component specs, and the
//! deployment infrastructure wires them into a running pipeline).
//!
//! Specification format:
//!
//! ```xml
//! <pipeline>
//!   <component id="f1" kind="filter.kind"><cfg kind="user.location"/></component>
//!   <component id="m1" kind="filter.movement"><cfg min_km="0.1"/></component>
//!   <link from="f1" to="m1"/>
//!   <entry id="f1"/>
//! </pipeline>
//! ```

use crate::component::{Component, PipelineGraph};
use gloss_bundle::Registry;
use gloss_xml::Element;
use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;

/// An assembly failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AssemblyError {
    /// A `<component>` was missing its `id` or `kind`.
    MissingAttribute(String),
    /// Two components share an id.
    DuplicateId(String),
    /// The registry does not know a kind.
    UnknownKind(String),
    /// A factory rejected its configuration.
    BadConfig {
        /// The component id.
        id: String,
        /// The factory's message.
        message: String,
    },
    /// A link or entry referenced an unknown id.
    UnknownId(String),
    /// The spec declared no entry points.
    NoEntries,
}

impl fmt::Display for AssemblyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AssemblyError::MissingAttribute(what) => write!(f, "component missing {what}"),
            AssemblyError::DuplicateId(id) => write!(f, "duplicate component id `{id}`"),
            AssemblyError::UnknownKind(k) => write!(f, "unknown component kind `{k}`"),
            AssemblyError::BadConfig { id, message } => {
                write!(f, "component `{id}` rejected its config: {message}")
            }
            AssemblyError::UnknownId(id) => write!(f, "reference to unknown component `{id}`"),
            AssemblyError::NoEntries => write!(f, "pipeline spec declares no <entry>"),
        }
    }
}

impl Error for AssemblyError {}

/// Builds a [`PipelineGraph`] from an XML spec and a component registry.
///
/// # Errors
///
/// Returns [`AssemblyError`] describing the first structural problem.
pub fn assemble(
    spec: &Element,
    registry: &Registry<Box<dyn Component>>,
) -> Result<PipelineGraph, AssemblyError> {
    let mut graph = PipelineGraph::new();
    let mut ids: BTreeMap<String, usize> = BTreeMap::new();

    for c in spec.children_named("component") {
        let id =
            c.attr("id").ok_or_else(|| AssemblyError::MissingAttribute("id".into()))?.to_string();
        let kind = c.attr("kind").ok_or_else(|| AssemblyError::MissingAttribute("kind".into()))?;
        if ids.contains_key(&id) {
            return Err(AssemblyError::DuplicateId(id));
        }
        let default_cfg = Element::new("cfg");
        let cfg = c.children().next().unwrap_or(&default_cfg);
        let component = registry.build(kind, cfg).map_err(|e| match e {
            None => AssemblyError::UnknownKind(kind.to_string()),
            Some(message) => AssemblyError::BadConfig { id: id.clone(), message },
        })?;
        let idx = graph.add(component);
        ids.insert(id, idx);
    }

    for l in spec.children_named("link") {
        let from =
            l.attr("from").ok_or_else(|| AssemblyError::MissingAttribute("link/@from".into()))?;
        let to = l.attr("to").ok_or_else(|| AssemblyError::MissingAttribute("link/@to".into()))?;
        let fi = *ids.get(from).ok_or_else(|| AssemblyError::UnknownId(from.to_string()))?;
        let ti = *ids.get(to).ok_or_else(|| AssemblyError::UnknownId(to.to_string()))?;
        graph.connect(fi, ti);
    }

    let mut any_entry = false;
    for e in spec.children_named("entry") {
        let id = e.attr("id").ok_or_else(|| AssemblyError::MissingAttribute("entry/@id".into()))?;
        let idx = *ids.get(id).ok_or_else(|| AssemblyError::UnknownId(id.to_string()))?;
        graph.mark_entry(idx);
        any_entry = true;
    }
    if !any_entry {
        return Err(AssemblyError::NoEntries);
    }
    Ok(graph)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::standard::register_standard;
    use gloss_event::Event;
    use gloss_sim::SimTime;
    use gloss_xml::parse;

    fn registry() -> Registry<Box<dyn Component>> {
        let mut r = Registry::new();
        register_standard(&mut r);
        r
    }

    const SPEC: &str = r#"
        <pipeline>
          <component id="f1" kind="filter.kind"><cfg kind="user.location"/></component>
          <component id="m1" kind="filter.movement"><cfg min_km="0.1"/></component>
          <component id="c1" kind="counter"/>
          <link from="f1" to="m1"/>
          <link from="m1" to="c1"/>
          <entry id="f1"/>
        </pipeline>
    "#;

    #[test]
    fn assembles_and_runs() {
        let spec = parse(SPEC).unwrap();
        let mut graph = assemble(&spec, &registry()).unwrap();
        assert_eq!(graph.len(), 3);
        let loc = Event::new("user.location")
            .with_attr("user", "bob")
            .with_attr("lat", 56.34)
            .with_attr("lon", -2.80);
        let out = graph.push(SimTime::ZERO, loc);
        assert_eq!(out.len(), 1, "filter passes, movement passes (first fix), counter passes");
        let noise = Event::new("noise");
        assert!(graph.push(SimTime::ZERO, noise).is_empty());
    }

    #[test]
    fn rejects_structural_problems() {
        let reg = registry();
        let cases = [
            (r#"<p><component kind="counter"/><entry id="x"/></p>"#, "missing id"),
            (
                r#"<p><component id="a" kind="counter"/><component id="a" kind="counter"/><entry id="a"/></p>"#,
                "duplicate",
            ),
            (r#"<p><component id="a" kind="warp.drive"/><entry id="a"/></p>"#, "unknown kind"),
            (
                r#"<p><component id="a" kind="counter"/><link from="a" to="zz"/><entry id="a"/></p>"#,
                "unknown id",
            ),
            (r#"<p><component id="a" kind="counter"/></p>"#, "no entries"),
            (
                r#"<p><component id="a" kind="filter.movement"><cfg/></component><entry id="a"/></p>"#,
                "bad config",
            ),
        ];
        for (src, what) in cases {
            let spec = parse(src).unwrap();
            assert!(assemble(&spec, &reg).is_err(), "{what}");
        }
    }

    #[test]
    fn error_variants_are_specific() {
        let reg = registry();
        let spec = parse(r#"<p><component id="a" kind="warp"/><entry id="a"/></p>"#).unwrap();
        assert_eq!(assemble(&spec, &reg).unwrap_err(), AssemblyError::UnknownKind("warp".into()));
        let spec = parse(r#"<p><component id="a" kind="counter"/></p>"#).unwrap();
        assert_eq!(assemble(&spec, &reg).unwrap_err(), AssemblyError::NoEntries);
    }
}
