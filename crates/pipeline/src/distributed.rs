//! Inter-node pipelines over the simulator: Figure 2's "pipeline
//! distributed over two nodes". Each node hosts a [`PipelineGraph`]; the
//! graph's outputs are forwarded to remote hosts through the `put(event)`
//! interface, serialised in the XML wire form.

use crate::component::PipelineGraph;
use gloss_event::Event;
use gloss_sim::{Input, Node, NodeIndex, Outbox, SimDuration, SimTime, Topology, World};

/// Messages between pipeline hosts: the `put(event)` web-service call,
/// carrying the XML wire form (string) exactly as a real deployment
/// would.
#[derive(Debug, Clone, PartialEq)]
pub enum PipelineMsg {
    /// Push an event into the receiving host's pipeline.
    Put(String),
}

/// A pipeline host: one node's pipeline plus its remote forwarding links.
#[derive(Debug)]
pub struct PipelineHost {
    /// The local pipeline.
    pub graph: PipelineGraph,
    /// Remote hosts that receive this pipeline's outputs.
    pub forward_to: Vec<NodeIndex>,
    /// Events that left the pipeline at this node (no remote link).
    pub outputs: Vec<Event>,
    /// Tick period for time-driven components (zero = no ticking).
    pub tick_every: SimDuration,
}

impl PipelineHost {
    /// Creates a host around a graph.
    pub fn new(graph: PipelineGraph) -> Self {
        PipelineHost {
            graph,
            forward_to: Vec::new(),
            outputs: Vec::new(),
            tick_every: SimDuration::ZERO,
        }
    }

    /// Adds a remote forwarding link.
    pub fn with_forward(mut self, to: NodeIndex) -> Self {
        self.forward_to.push(to);
        self
    }

    /// Enables periodic ticking.
    pub fn with_ticks(mut self, every: SimDuration) -> Self {
        self.tick_every = every;
        self
    }

    fn dispatch(&mut self, now: SimTime, produced: Vec<Event>, out: &mut Outbox<PipelineMsg>) {
        for ev in produced {
            if self.forward_to.is_empty() {
                out.count("pipeline.outputs", 1.0);
                let latency_ms = now.since(ev.published_at()).as_secs_f64() * 1e3;
                out.observe("pipeline.end_to_end_ms", latency_ms);
                self.outputs.push(ev);
            } else {
                for &to in &self.forward_to {
                    out.count("pipeline.forwarded", 1.0);
                    out.send(to, PipelineMsg::Put(ev.to_xml().to_xml()));
                }
            }
        }
    }
}

const TICK_TIMER: u64 = 0x30;

impl Node for PipelineHost {
    type Msg = PipelineMsg;

    fn handle(&mut self, now: SimTime, input: Input<PipelineMsg>, out: &mut Outbox<PipelineMsg>) {
        match input {
            Input::Start => {
                if !self.tick_every.is_zero() {
                    out.timer(self.tick_every, TICK_TIMER);
                }
            }
            Input::Timer { tag: TICK_TIMER } => {
                let produced = self.graph.tick(now);
                self.dispatch(now, produced, out);
                out.timer(self.tick_every, TICK_TIMER);
            }
            Input::Timer { .. } => {}
            Input::Msg { msg: PipelineMsg::Put(xml), .. } => match Event::from_xml_text(&xml) {
                Ok(event) => {
                    let produced = self.graph.push(now, event);
                    self.dispatch(now, produced, out);
                }
                Err(_) => out.count("pipeline.malformed_events", 1.0),
            },
        }
    }
}

/// A set of pipeline hosts on a simulated topology.
///
/// # Example
///
/// ```
/// use gloss_pipeline::{DistributedPipeline, PipelineGraph, standard::Relabel};
/// use gloss_event::Event;
/// use gloss_sim::{NodeIndex, SimDuration};
///
/// // Node 0 relabels and forwards to node 1, which counts as output.
/// let mut g0 = PipelineGraph::new();
/// let r = g0.add(Box::new(Relabel::new("r").with_stamp("hop", "n0")));
/// g0.mark_entry(r);
/// let mut g1 = PipelineGraph::new();
/// let c = g1.add(Box::new(Relabel::new("c").with_stamp("hop2", "n1")));
/// g1.mark_entry(c);
///
/// let mut dp = DistributedPipeline::build(vec![g0, g1], 42);
/// dp.link(NodeIndex(0), NodeIndex(1));
/// dp.put(NodeIndex(0), Event::new("e"));
/// dp.run_for(SimDuration::from_secs(1));
/// let outs = dp.outputs(NodeIndex(1));
/// assert_eq!(outs.len(), 1);
/// assert_eq!(outs[0].str_attr("hop"), Some("n0"));
/// assert_eq!(outs[0].str_attr("hop2"), Some("n1"));
/// ```
#[derive(Debug)]
pub struct DistributedPipeline {
    world: World<PipelineHost>,
    seq: u64,
}

impl DistributedPipeline {
    /// Builds one host per graph on a LAN-like topology.
    pub fn build(graphs: Vec<PipelineGraph>, seed: u64) -> Self {
        let topology = Topology::lan(graphs.len(), seed);
        Self::build_on(topology, graphs, seed)
    }

    /// Builds hosts on an explicit topology.
    pub fn build_on(topology: Topology, graphs: Vec<PipelineGraph>, seed: u64) -> Self {
        let hosts: Vec<PipelineHost> = graphs.into_iter().map(PipelineHost::new).collect();
        DistributedPipeline { world: World::new(topology, seed, hosts), seq: 0 }
    }

    /// Adds a forwarding link from node `from`'s pipeline outputs to node
    /// `to`'s pipeline entries.
    pub fn link(&mut self, from: NodeIndex, to: NodeIndex) {
        self.world.node_mut(from).forward_to.push(to);
    }

    /// Enables ticking on a host.
    pub fn enable_ticks(&mut self, node: NodeIndex, every: SimDuration) {
        self.world.node_mut(node).tick_every = every;
    }

    /// Pushes an event into a node's pipeline (stamping provenance).
    pub fn put(&mut self, node: NodeIndex, mut event: Event) {
        self.seq += 1;
        event.stamp(gloss_event::EventId { origin: node, seq: self.seq }, self.world.now());
        self.world.inject(node, node, PipelineMsg::Put(event.to_xml().to_xml()));
    }

    /// Advances the simulation.
    pub fn run_for(&mut self, d: SimDuration) {
        self.world.run_for(d);
    }

    /// The events that left the pipeline at `node`.
    pub fn outputs(&self, node: NodeIndex) -> &[Event] {
        &self.world.node(node).outputs
    }

    /// The underlying world (metrics, failure injection).
    pub fn world(&self) -> &World<PipelineHost> {
        &self.world
    }

    /// Mutable world access.
    pub fn world_mut(&mut self) -> &mut World<PipelineHost> {
        &mut self.world
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::standard::{Counter, KindFilter, MovementThreshold};
    use gloss_event::Filter;

    fn passthrough(name: &str) -> PipelineGraph {
        let mut g = PipelineGraph::new();
        let c = g.add(Box::new(Counter::new(name)));
        g.mark_entry(c);
        g
    }

    #[test]
    fn intra_node_output_stays_local() {
        let mut dp = DistributedPipeline::build(vec![passthrough("a")], 1);
        dp.put(NodeIndex(0), Event::new("e"));
        dp.run_for(SimDuration::from_secs(1));
        assert_eq!(dp.outputs(NodeIndex(0)).len(), 1);
    }

    #[test]
    fn inter_node_forwarding_works_and_adds_latency() {
        // Chain across three nodes.
        let graphs = vec![passthrough("a"), passthrough("b"), passthrough("c")];
        let mut dp = DistributedPipeline::build(graphs, 2);
        dp.link(NodeIndex(0), NodeIndex(1));
        dp.link(NodeIndex(1), NodeIndex(2));
        dp.put(NodeIndex(0), Event::new("e"));
        dp.run_for(SimDuration::from_secs(2));
        assert!(dp.outputs(NodeIndex(0)).is_empty());
        assert!(dp.outputs(NodeIndex(1)).is_empty());
        assert_eq!(dp.outputs(NodeIndex(2)).len(), 1);
        let s = dp.world().metrics().summary("pipeline.end_to_end_ms");
        assert_eq!(s.count, 1);
        assert!(s.mean > 0.0, "network hops add latency");
    }

    #[test]
    fn filters_drop_before_the_wire() {
        // Node 0 filters: only user.location crosses to node 1.
        let mut g0 = PipelineGraph::new();
        let f = g0.add(Box::new(KindFilter::new("f", Filter::for_kind("user.location"))));
        let m = g0.add(Box::new(MovementThreshold::new("m", 0.05)));
        g0.connect(f, m);
        g0.mark_entry(f);
        let mut dp = DistributedPipeline::build(vec![g0, passthrough("sink")], 3);
        dp.link(NodeIndex(0), NodeIndex(1));
        let loc = |lat: f64| {
            Event::new("user.location")
                .with_attr("user", "bob")
                .with_attr("lat", lat)
                .with_attr("lon", -2.8)
        };
        dp.put(NodeIndex(0), loc(56.3400));
        dp.put(NodeIndex(0), loc(56.3401)); // tiny move: suppressed
        dp.put(NodeIndex(0), loc(56.4400)); // big move: passes
        dp.put(NodeIndex(0), Event::new("noise"));
        dp.run_for(SimDuration::from_secs(2));
        assert_eq!(dp.outputs(NodeIndex(1)).len(), 2);
        assert_eq!(dp.world().metrics().counter("pipeline.forwarded"), 2.0);
    }

    #[test]
    fn events_survive_xml_wire_form() {
        let mut dp = DistributedPipeline::build(vec![passthrough("a"), passthrough("b")], 4);
        dp.link(NodeIndex(0), NodeIndex(1));
        let ev = Event::new("rich")
            .with_attr("s", "text with <brackets> & ampersands")
            .with_attr("f", 2.5)
            .with_attr("b", true)
            .with_payload(gloss_xml::Element::new("data").with_attr("deep", "yes"));
        dp.put(NodeIndex(0), ev);
        dp.run_for(SimDuration::from_secs(1));
        let out = &dp.outputs(NodeIndex(1))[0];
        assert_eq!(out.str_attr("s"), Some("text with <brackets> & ampersands"));
        assert_eq!(out.num_attr("f"), Some(2.5));
        assert_eq!(out.payload().unwrap().attr("deep"), Some("yes"));
    }

    #[test]
    fn ticking_drives_device_wrappers() {
        use crate::wrapper::Thermometer;
        let mut g = PipelineGraph::new();
        let t = g.add(Box::new(
            Thermometer::new("South Street", 14.0, 6.0, gloss_sim::SimRng::new(5))
                .with_report_interval(SimDuration::from_secs(60)),
        ));
        g.mark_entry(t);
        let mut dp = DistributedPipeline::build(vec![g], 5);
        dp.enable_ticks(NodeIndex(0), SimDuration::from_secs(10));
        dp.run_for(SimDuration::from_secs(300));
        let outs = dp.outputs(NodeIndex(0));
        assert!(outs.len() >= 4, "one reading per minute over 5 min, got {}", outs.len());
        assert_eq!(outs[0].kind(), "weather.reading");
    }
}
